//! The common envelope every `BENCH_*.json` results file shares, plus
//! the summarizer behind the `bench_report` binary.
//!
//! Each results writer (`client_encrypt`, `fold_precompute`,
//! `server_throughput`, `shard_speedup`) opens its document with the
//! same four fields so tooling can read any results file without
//! per-bench casing:
//!
//! ```json
//! {
//!   "schema_version": 1,
//!   "bench": "shard_speedup",
//!   "host_parallelism": 8,
//!   "meta": { "key_bits": 512, "note": "...", ... },
//!   ...payload (rows / engines / histograms)...
//! }
//! ```
//!
//! `meta` carries the run's scalar configuration — whatever the bench
//! needs to make its numbers comparable across checkouts (key sizes,
//! session counts, free-form caveats). Payload fields stay bench-
//! specific and live beside the envelope, not inside it, so existing
//! row shapes did not have to move.

use pps_obs::JsonValue;

/// Version of the shared envelope. Bump when a field is renamed or
/// moved; readers refuse documents from a future schema rather than
/// misreading them.
pub const SCHEMA_VERSION: u64 = 1;

/// Opens a results document with the common envelope. Callers chain
/// their payload fields onto the returned object and render it.
pub fn envelope(bench: &str, meta: JsonValue) -> JsonValue {
    JsonValue::object()
        .field("schema_version", SCHEMA_VERSION)
        .field("bench", bench)
        .field("host_parallelism", pps_crypto::host_parallelism() as u64)
        .field("meta", meta)
}

/// One parsed results file, reduced to what the trajectory table shows.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchSummary {
    /// The `bench` field.
    pub bench: String,
    /// Envelope schema the file was written under (0 = legacy file
    /// predating the envelope).
    pub schema_version: u64,
    /// Cores the writing host offered.
    pub host_parallelism: u64,
    /// Headline numbers, one formatted line per metric.
    pub headlines: Vec<String>,
}

/// Reduces one parsed results document to its summary. Returns `None`
/// when the document does not carry a recognizable `bench` field or
/// claims a future schema this reader would misinterpret.
pub fn summarize(doc: &JsonValue) -> Option<BenchSummary> {
    let bench = doc.get("bench")?.as_str()?.to_string();
    let schema_version = doc
        .get("schema_version")
        .and_then(JsonValue::as_u64)
        .unwrap_or(0);
    if schema_version > SCHEMA_VERSION {
        return None;
    }
    let host_parallelism = doc
        .get("host_parallelism")
        .and_then(JsonValue::as_u64)
        .unwrap_or(1);
    let headlines = match bench.as_str() {
        "client_encrypt" => client_encrypt_headlines(doc),
        "fold_precompute" => fold_precompute_headlines(doc),
        "server_throughput" => server_throughput_headlines(doc),
        "shard_speedup" => shard_speedup_headlines(doc),
        _ => Vec::new(),
    };
    Some(BenchSummary {
        bench,
        schema_version,
        host_parallelism,
        headlines,
    })
}

/// The row with the largest value under `key` — benches report their
/// headline at the biggest problem size they ran.
fn largest_row<'a>(doc: &'a JsonValue, rows: &str, key: &str) -> Option<&'a JsonValue> {
    doc.get(rows)?
        .as_array()?
        .iter()
        .max_by_key(|r| r.get(key).and_then(JsonValue::as_u64).unwrap_or(0))
}

fn client_encrypt_headlines(doc: &JsonValue) -> Vec<String> {
    let Some(row) = largest_row(doc, "rows", "n") else {
        return Vec::new();
    };
    let mut out = Vec::new();
    if let (Some(n), Some(seq)) = (
        row.get("n").and_then(JsonValue::as_u64),
        row.get("sequential_secs").and_then(JsonValue::as_f64),
    ) {
        out.push(format!("n={n}: sequential encrypt {seq:.2} s"));
        if let Some(speedup) = row.get("parallel_speedup").and_then(JsonValue::as_f64) {
            out.push(format!("n={n}: parallel speedup {speedup:.2}x"));
        }
    }
    out
}

fn fold_precompute_headlines(doc: &JsonValue) -> Vec<String> {
    let Some(row) = largest_row(doc, "rows", "n") else {
        return Vec::new();
    };
    let mut out = Vec::new();
    if let (Some(n), Some(fold)) = (
        row.get("n").and_then(JsonValue::as_u64),
        row.get("precomputed_fold_secs").and_then(JsonValue::as_f64),
    ) {
        out.push(format!("n={n}: precomputed fold {fold:.3} s"));
        if let Some(speedup) = row
            .get("speedup_vs_incremental")
            .and_then(JsonValue::as_f64)
        {
            out.push(format!("n={n}: {speedup:.1}x vs incremental"));
        }
    }
    out
}

fn server_throughput_headlines(doc: &JsonValue) -> Vec<String> {
    let Some(engines) = doc.get("engines").and_then(JsonValue::as_array) else {
        return Vec::new();
    };
    engines
        .iter()
        .filter_map(|e| {
            let name = e.get("engine")?.as_str()?;
            let rate = e.get("sessions_per_sec").and_then(JsonValue::as_f64)?;
            let p99 = e.get("p99_ms").and_then(JsonValue::as_f64)?;
            Some(format!("{name}: {rate:.0} sessions/s, p99 {p99:.0} ms"))
        })
        .collect()
}

fn shard_speedup_headlines(doc: &JsonValue) -> Vec<String> {
    let Some(row) = largest_row(doc, "rows", "k") else {
        return Vec::new();
    };
    let mut out = Vec::new();
    if let (Some(k), Some(speedup)) = (
        row.get("k").and_then(JsonValue::as_u64),
        row.get("server_compute_speedup")
            .and_then(JsonValue::as_f64),
    ) {
        let degraded = row
            .get("degraded_host")
            .and_then(JsonValue::as_bool)
            .unwrap_or(false);
        let caveat = if degraded { " (degraded host)" } else { "" };
        out.push(format!(
            "k={k}: server_compute speedup {speedup:.2}x{caveat}"
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_opens_with_the_shared_fields() {
        let doc = envelope(
            "fold_precompute",
            JsonValue::object().field("key_bits", 512u64),
        )
        .field("rows", JsonValue::Array(Vec::new()));
        let parsed = JsonValue::parse(&doc.render()).unwrap();
        assert_eq!(
            parsed.get("schema_version").and_then(JsonValue::as_u64),
            Some(SCHEMA_VERSION)
        );
        assert_eq!(
            parsed.get("bench").and_then(JsonValue::as_str),
            Some("fold_precompute")
        );
        assert!(parsed
            .get("host_parallelism")
            .and_then(JsonValue::as_u64)
            .is_some_and(|p| p >= 1));
        assert_eq!(
            parsed
                .get("meta")
                .and_then(|m| m.get("key_bits"))
                .and_then(JsonValue::as_u64),
            Some(512)
        );
    }

    #[test]
    fn summarize_reads_an_enveloped_shard_file() {
        let doc =
            envelope("shard_speedup", JsonValue::object()).field(
                "rows",
                JsonValue::array([(1u64, 1.0, false), (3u64, 2.7, false)].iter().map(
                    |(k, s, d)| {
                        JsonValue::object()
                            .field("k", *k)
                            .field("server_compute_speedup", *s)
                            .field("degraded_host", *d)
                    },
                )),
            );
        let summary = summarize(&doc).unwrap();
        assert_eq!(summary.bench, "shard_speedup");
        assert_eq!(summary.schema_version, SCHEMA_VERSION);
        assert_eq!(
            summary.headlines,
            vec!["k=3: server_compute speedup 2.70x".to_string()]
        );
    }

    #[test]
    fn summarize_tolerates_legacy_files_and_refuses_future_schemas() {
        let legacy = JsonValue::object()
            .field("bench", "server_throughput")
            .field(
                "engines",
                JsonValue::array(std::iter::once(
                    JsonValue::object()
                        .field("engine", "event")
                        .field("sessions_per_sec", 290.0)
                        .field("p99_ms", 6100.0),
                )),
            );
        let summary = summarize(&legacy).unwrap();
        assert_eq!(summary.schema_version, 0, "legacy file, no envelope");
        assert_eq!(summary.headlines.len(), 1);

        let future = JsonValue::object()
            .field("schema_version", SCHEMA_VERSION + 1)
            .field("bench", "server_throughput");
        assert!(summarize(&future).is_none(), "never misread a newer schema");
    }
}
