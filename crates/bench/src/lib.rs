//! # pps-bench
//!
//! The figure-regeneration harness for the SDM/VLDB 2004 reproduction.
//!
//! [`figures`] contains one function per results figure in the paper
//! (Figs. 2–7 and 9, plus the §2 general-SMC comparison and a baseline
//! table); each executes the corresponding experiment and returns a
//! printable [`table::FigureTable`]. The `figures` binary
//! (`cargo run -p pps-bench --release --bin figures -- all`) drives them
//! from the command line; Criterion microbenchmarks live under
//! `benches/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod figures;
pub mod report;
pub mod table;
