//! Regeneration of every results figure in the paper (Figs. 2–7, 9, plus
//! the §2 general-SMC comparison).
//!
//! Computation is measured on this machine; communication comes from the
//! virtual-clock link models; a calibrated [`CostModel`] additionally
//! rescales compute to the paper's 2004 testbeds so the *shape* claims
//! (who dominates, what the optimizations save, where crossovers sit)
//! can be compared at the paper's own operating point.

use std::time::Duration;

use pps_gc::run_gc_selected_sum;
use pps_protocol::{
    run_basic, run_batched, run_combined, run_download_baseline, run_multiclient,
    run_plain_baseline, run_preprocessed, CostModel, Database, RunReport, Selection, SumClient,
};
use pps_transport::LinkProfile;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::table::{minutes, secs, FigureTable};

/// Estimated slowdown of the paper's long-distance client (500 MHz
/// UltraSparc) relative to its short-distance client (2 GHz P-III).
/// Figures 3/6 apply this on top of the base calibration.
pub const ULTRASPARC_FACTOR: f64 = 5.0;

/// The paper's batch size for the §3.2 experiments.
pub const PAPER_BATCH: usize = 100;

/// Fraction of rows selected in the synthetic workloads.
const SELECT_P: f64 = 0.5;

/// Shared state across figure runs: one client keypair (the paper reuses
/// its key across experiments) and a calibrated cost model.
pub struct Harness {
    /// The querying client (512-bit keys by default, as in the paper).
    pub client: SumClient,
    /// Calibration to the paper's 2 GHz P-III / C++ testbed.
    pub paper_model: CostModel,
    /// Deterministic RNG for reproducible workloads.
    pub rng: StdRng,
}

impl Harness {
    /// Builds a harness with `key_bits` keys (512 reproduces the paper).
    ///
    /// # Panics
    /// Panics if key generation fails (effectively never).
    pub fn new(key_bits: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let client = SumClient::generate(key_bits, &mut rng).expect("key generation");
        let paper_model = CostModel::paper_cpp(&client.keypair().public, &mut rng);
        Harness {
            client,
            paper_model,
            rng,
        }
    }

    fn workload(&mut self, n: usize) -> (Database, Selection) {
        let db = Database::random_32bit(n, &mut self.rng).expect("n > 0");
        let sel = Selection::random(n, SELECT_P, &mut self.rng).expect("valid p");
        (db, sel)
    }

    /// Paper-scale total (compute rescaled, communication as simulated).
    fn paper_total(&self, r: &RunReport, client_extra: f64) -> Duration {
        let f = self.paper_model.factor();
        Duration::from_secs_f64(
            r.client_encrypt.as_secs_f64() * f * client_extra
                + r.server_compute.as_secs_f64() * f
                + r.client_decrypt.as_secs_f64() * f * client_extra
                + r.comm.as_secs_f64(),
        )
    }
}

fn component_row(h: &Harness, r: &RunReport, client_extra: f64) -> Vec<String> {
    vec![
        r.n.to_string(),
        secs(r.client_encrypt),
        secs(r.server_compute),
        secs(r.comm),
        secs(r.client_decrypt),
        secs(r.total_sequential()),
        minutes(h.paper_total(r, client_extra)),
    ]
}

const COMPONENT_COLS: [&str; 7] = [
    "n",
    "enc(s)",
    "server(s)",
    "comm(s)",
    "dec(s)",
    "total(s)",
    "paper-scale(min)",
];

/// Fig. 2 — components of overall runtime, no optimizations, short
/// distance (gigabit LAN, both parties on 2 GHz P-IIIs).
pub fn fig2(h: &mut Harness, ns: &[usize]) -> FigureTable {
    let mut t = FigureTable::new(
        "Fig. 2: runtime components, no optimizations, short distance (gigabit LAN)",
        &COMPONENT_COLS,
    );
    for &n in ns {
        let (db, sel) = h.workload(n);
        let r = run_basic(&db, &sel, &h.client, LinkProfile::gigabit_lan(), &mut h.rng)
            .expect("fig2 run");
        t.row(component_row(h, &r, 1.0));
    }
    t.note("paper: linear in n; client encryption dominates; ≈20 min at n=100,000");
    t.note(format!(
        "calibration: {:.2} ms/encryption measured here vs 12 ms on the paper's P-III (factor {:.1}x)",
        12.0 / h.paper_model.cpu_slowdown,
        h.paper_model.cpu_slowdown
    ));
    t
}

/// Fig. 3 — same protocol over the 56 Kbps Chicago↔Hoboken modem, client
/// on a 500 MHz UltraSparc.
pub fn fig3(h: &mut Harness, ns: &[usize]) -> FigureTable {
    let mut t = FigureTable::new(
        "Fig. 3: runtime components, no optimizations, long distance (56 Kbps modem)",
        &COMPONENT_COLS,
    );
    for &n in ns {
        let (db, sel) = h.workload(n);
        let r = run_basic(&db, &sel, &h.client, LinkProfile::modem_56k(), &mut h.rng)
            .expect("fig3 run");
        t.row(component_row(h, &r, ULTRASPARC_FACTOR));
    }
    t.note("paper: communication grows but computation still prevails (UltraSparc client)");
    t.note(format!(
        "paper-scale column applies a {ULTRASPARC_FACTOR}x UltraSparc factor to client compute"
    ));
    // Make the headline claim checkable: at paper scale, does computation
    // still dominate the 56 Kbps communication?
    if let Some(&n) = ns.last() {
        let (db, sel) = h.workload(n);
        let r = run_basic(&db, &sel, &h.client, LinkProfile::modem_56k(), &mut h.rng)
            .expect("fig3 verdict run");
        let f = h.paper_model.factor();
        let compute = (r.client_encrypt.as_secs_f64() + r.client_decrypt.as_secs_f64())
            * f
            * ULTRASPARC_FACTOR
            + r.server_compute.as_secs_f64() * f;
        let comm = r.comm.as_secs_f64();
        t.note(format!(
            "paper-scale verdict at n={n}: compute {compute:.0}s vs comm {comm:.0}s — computation {}",
            if compute > comm { "prevails (matches the paper)" } else { "does NOT prevail" }
        ));
    }
    t
}

/// Fig. 4 — overall runtime with vs without batching the index vector
/// (batch = 100), short distance.
pub fn fig4(h: &mut Harness, ns: &[usize]) -> FigureTable {
    let mut t = FigureTable::new(
        "Fig. 4: overall runtime with and without batching (chunk = 100), short distance",
        &["n", "unbatched(s)", "batched(s)", "reduction(%)"],
    );
    for &n in ns {
        let (db, sel) = h.workload(n);
        let plain = run_basic(&db, &sel, &h.client, LinkProfile::gigabit_lan(), &mut h.rng)
            .expect("fig4 basic");
        let batched = run_batched(
            &db,
            &sel,
            &h.client,
            LinkProfile::gigabit_lan(),
            PAPER_BATCH,
            &mut h.rng,
        )
        .expect("fig4 batched");
        let a = plain.total_sequential().as_secs_f64();
        let b = batched.total_online().as_secs_f64();
        t.row(vec![
            n.to_string(),
            format!("{a:.3}"),
            format!("{b:.3}"),
            format!("{:.1}", 100.0 * (1.0 - b / a)),
        ]);
    }
    t.note("paper: ≈10% reduction from overlapping client/link/server stages");
    t
}

/// Fig. 5 — runtime components after preprocessing the index vector,
/// short distance (the 64 Gbps cluster switch).
pub fn fig5(h: &mut Harness, ns: &[usize]) -> FigureTable {
    let mut t = FigureTable::new(
        "Fig. 5: runtime components with preprocessed index vector, short distance",
        &COMPONENT_COLS,
    );
    for &n in ns {
        let (db, sel) = h.workload(n);
        let r = run_preprocessed(
            &db,
            &sel,
            &h.client,
            LinkProfile::cluster_switch(),
            &mut h.rng,
        )
        .expect("fig5 run");
        t.row(component_row(h, &r, 1.0));
    }
    t.note("paper: ≈82% online reduction; server computation becomes the dominant factor");
    t.note("offline pool-fill time excluded from online totals (as in the paper)");
    t
}

/// Fig. 6 — preprocessing over the 56 Kbps modem: communication becomes
/// the dominant component.
pub fn fig6(h: &mut Harness, ns: &[usize]) -> FigureTable {
    let mut t = FigureTable::new(
        "Fig. 6: runtime components with preprocessed index vector, long distance (56 Kbps)",
        &[
            "n",
            "enc(s)",
            "server(s)",
            "comm(s)",
            "dec(s)",
            "comm share(%)",
            "paper comm share(%)",
        ],
    );
    for &n in ns {
        let (db, sel) = h.workload(n);
        let r = run_preprocessed(&db, &sel, &h.client, LinkProfile::modem_56k(), &mut h.rng)
            .expect("fig6 run");
        let total = r.total_sequential().as_secs_f64();
        let paper_total = h.paper_total(&r, ULTRASPARC_FACTOR).as_secs_f64();
        t.row(vec![
            r.n.to_string(),
            secs(r.client_encrypt),
            secs(r.server_compute),
            secs(r.comm),
            secs(r.client_decrypt),
            format!("{:.1}", 100.0 * r.comm.as_secs_f64() / total),
            format!("{:.1}", 100.0 * r.comm.as_secs_f64() / paper_total),
        ]);
    }
    t.note("paper: with client encryption gone, the 56 Kbps link dominates the runtime");
    t
}

/// Fig. 7 — batching + preprocessing combined vs no optimizations.
pub fn fig7(h: &mut Harness, ns: &[usize]) -> FigureTable {
    let mut t = FigureTable::new(
        "Fig. 7: combined batching + preprocessing vs no optimizations, short distance",
        &["n", "unoptimized(s)", "combined(s)", "reduction(%)"],
    );
    for &n in ns {
        let (db, sel) = h.workload(n);
        let plain = run_basic(
            &db,
            &sel,
            &h.client,
            LinkProfile::cluster_switch(),
            &mut h.rng,
        )
        .expect("fig7 basic");
        let combined = run_combined(
            &db,
            &sel,
            &h.client,
            LinkProfile::cluster_switch(),
            PAPER_BATCH,
            &mut h.rng,
        )
        .expect("fig7 combined");
        let a = plain.total_sequential().as_secs_f64();
        let b = combined.total_online().as_secs_f64();
        t.row(vec![
            n.to_string(),
            format!("{a:.3}"),
            format!("{b:.3}"),
            format!("{:.1}", 100.0 * (1.0 - b / a)),
        ]);
    }
    t.note("paper: ≈94% reduction in overall online runtime");
    t
}

/// Fig. 9 — multi-client secret sharing (k = 3) vs a single client.
pub fn fig9(h: &mut Harness, ns: &[usize]) -> FigureTable {
    let mut t = FigureTable::new(
        "Fig. 9: single client vs 3 clients with blinded partial sums",
        &[
            "n",
            "1 client(s)",
            "3 clients(s)",
            "speed-up(x)",
            "ring overhead(ms)",
        ],
    );
    let key_bits = h.client.keypair().public.key_bits();
    for &n in ns {
        let (db, sel) = h.workload(n);
        let single = run_basic(&db, &sel, &h.client, LinkProfile::gigabit_lan(), &mut h.rng)
            .expect("fig9 single");
        let multi = run_multiclient(
            &db,
            &sel,
            3,
            key_bits,
            LinkProfile::gigabit_lan(),
            &mut h.rng,
        )
        .expect("fig9 multi");
        let a = single.total_sequential().as_secs_f64();
        let b = multi.aggregate.total_online().as_secs_f64();
        t.row(vec![
            n.to_string(),
            format!("{a:.3}"),
            format!("{b:.3}"),
            format!("{:.2}", a / b),
            format!("{:.3}", multi.ring_comm.as_secs_f64() * 1e3),
        ]);
    }
    t.note("paper: ≈2.99x for k = 3 (3-fold minus combination overhead; Java implementation)");
    t.note("the paper's absolute Fig. 9 numbers carry an additional ≈5x Java/C++ factor (§3)");
    t
}

/// §2 context — the general-SMC (garbled-circuit) comparator vs the
/// homomorphic protocol, with a Fairplay-style extrapolation to n = 1000.
pub fn smc(h: &mut Harness, ns: &[usize]) -> FigureTable {
    let mut t = FigureTable::new(
        "§2: general SMC (garbled circuits) vs the homomorphic selected-sum protocol",
        &[
            "n",
            "GC gates",
            "GC bytes",
            "GC time(s)",
            "HE time(s)",
            "HE bytes",
            "GC/HE time",
        ],
    );
    let mut last: Option<(usize, f64)> = None;
    for &n in ns {
        let (db, sel) = h.workload(n);
        let bits: Vec<bool> = sel.weights().iter().map(|&w| w == 1).collect();
        let gc = run_gc_selected_sum(db.values(), &bits, 32, h.client.keypair(), &mut h.rng)
            .expect("gc run");
        let he = run_basic(&db, &sel, &h.client, LinkProfile::gigabit_lan(), &mut h.rng)
            .expect("he run");
        let gt = gc.total_time().as_secs_f64();
        let ht = he.total_sequential().as_secs_f64();
        t.row(vec![
            n.to_string(),
            gc.gates.to_string(),
            gc.total_bytes().to_string(),
            format!("{gt:.3}"),
            format!("{ht:.3}"),
            (he.bytes_to_server + he.bytes_to_client).to_string(),
            format!("{:.1}", gt / ht),
        ]);
        last = Some((n, gt));
    }
    if let Some((n, gt)) = last {
        let per_elem = gt / n as f64;
        let at_1000 = per_elem * 1000.0;
        // Fairplay was a Java interpreter; apply both calibration factors.
        let paper_scale = at_1000 * h.paper_model.cpu_slowdown * pps_protocol::JAVA_SLOWDOWN;
        t.note(format!(
            "extrapolated GC cost at n=1000: {at_1000:.1}s here ≈ {:.1} min at 2004 CPU speeds \
             with the Java factor (paper cites Fairplay needing ≥15 min for n=1,000 [16])",
            paper_scale / 60.0
        ));
        t.note(
            "the byte gap is the structural story: ~15 KB of garbled tables per 32-bit element \
             vs one 128-byte ciphertext for the homomorphic protocol",
        );
    }
    t
}

/// Ablation (§3.2 discussion): sweep of the batch size. The paper notes
/// "the optimal chunk size will depend on the relative communication and
/// computation speeds" — this table locates the optimum for a given n
/// and link.
pub fn ablation_batch(h: &mut Harness, n: usize, link: LinkProfile) -> FigureTable {
    let mut t = FigureTable::new(
        format!("§3.2 ablation: batch size sweep, n = {n}, {}", link.name),
        &["batch", "makespan(s)", "comm(s)", "messages"],
    );
    let (db, sel) = h.workload(n);
    for batch in [1usize, 10, 50, 100, 500, 1000, n] {
        if batch > n {
            continue;
        }
        let r = run_batched(&db, &sel, &h.client, link.clone(), batch, &mut h.rng)
            .expect("batch ablation run");
        t.row(vec![
            batch.to_string(),
            secs(r.total_online()),
            secs(r.comm),
            r.messages.to_string(),
        ]);
    }
    t.note("small batches pay per-message latency; one huge batch forfeits overlap");
    t.note("paper uses batch = 100 for its §3.2 experiments");
    t
}

/// §2 context — sublinear-communication retrieval: the O(√n) PIR
/// building block behind the "sublinear-communication solutions" the
/// paper attributes to Canetti et al., against the linear protocol's
/// O(n) traffic and the trivial download's O(n) reply.
pub fn pir(h: &mut Harness, ns: &[usize]) -> FigureTable {
    let mut t = FigureTable::new(
        "§2: sublinear PIR vs linear selected-sum vs trivial download (bytes on the wire)",
        &[
            "n",
            "PIR bytes",
            "selected-sum bytes",
            "download bytes",
            "PIR/linear",
        ],
    );
    for &n in ns {
        let (db, sel) = h.workload(n);
        let pir_report =
            pps_pir::run_pir(db.values(), n / 2, h.client.keypair(), &mut h.rng).expect("pir run");
        let linear = run_basic(&db, &sel, &h.client, LinkProfile::gigabit_lan(), &mut h.rng)
            .expect("linear run");
        let download =
            run_download_baseline(&db, &sel, LinkProfile::gigabit_lan()).expect("download run");
        let pir_bytes = pir_report.bytes_up + pir_report.bytes_down;
        let lin_bytes = linear.bytes_to_server + linear.bytes_to_client;
        t.row(vec![
            n.to_string(),
            pir_bytes.to_string(),
            lin_bytes.to_string(),
            (download.bytes_to_server + download.bytes_to_client).to_string(),
            format!("{:.4}", pir_bytes as f64 / lin_bytes as f64),
        ]);
    }
    t.note("PIR traffic grows like √n; both alternatives grow like n");
    t.note("PIR retrieves one item (leaking its √n-item matrix row to the client); the linear protocol computes arbitrary selected sums — different functionality at different communication costs");
    t
}

/// §4 future work: "methods that give up some quantifiable amount of
/// privacy in order to achieve significant performance improvements" —
/// randomized response on the index vector vs the exact cryptographic
/// protocol, across per-bit local-DP budgets ε.
pub fn futurework(h: &mut Harness, n: usize) -> FigureTable {
    let mut t = FigureTable::new(
        format!("§4 future work: perturbation (ε-LDP) vs exact crypto, n = {n}"),
        &["mechanism", "ε", "flip p", "time(s)", "bytes", "rel err(%)"],
    );
    let (db, sel) = h.workload(n);
    let exact =
        run_basic(&db, &sel, &h.client, LinkProfile::gigabit_lan(), &mut h.rng).expect("exact run");
    t.row(vec![
        "Paillier (exact)".into(),
        "∞ (crypto)".into(),
        "-".into(),
        secs(exact.total_sequential()),
        (exact.bytes_to_server + exact.bytes_to_client).to_string(),
        "0.0".into(),
    ]);
    for eps in [4.0f64, 2.0, 1.0, 0.5] {
        let r = pps_protocol::run_randomized_response(
            &db,
            &sel,
            eps,
            LinkProfile::gigabit_lan(),
            &mut h.rng,
        )
        .expect("perturbed run");
        t.row(vec![
            "randomized response".into(),
            format!("{eps:.1}"),
            format!("{:.3}", r.flip_probability),
            secs(r.compute + r.comm),
            r.bytes.to_string(),
            format!("{:.2}", 100.0 * r.relative_error),
        ]);
    }
    t.note("perturbation removes all cryptography (orders of magnitude faster/lighter)");
    t.note("the price: per-bit plausible deniability instead of semantic security, plus estimator noise");
    t
}

/// Extra (not a paper figure): the §2 non-private baselines against the
/// private protocol — what privacy costs.
pub fn baselines(h: &mut Harness, ns: &[usize]) -> FigureTable {
    let mut t = FigureTable::new(
        "§2 baselines: non-private alternatives vs the private protocol (gigabit LAN)",
        &[
            "n",
            "plain-idx(s)",
            "download(s)",
            "private(s)",
            "plain B",
            "download B",
            "private B",
        ],
    );
    for &n in ns {
        let (db, sel) = h.workload(n);
        let plain = run_plain_baseline(&db, &sel, LinkProfile::gigabit_lan()).expect("plain");
        let dl = run_download_baseline(&db, &sel, LinkProfile::gigabit_lan()).expect("download");
        let private = run_basic(&db, &sel, &h.client, LinkProfile::gigabit_lan(), &mut h.rng)
            .expect("private");
        t.row(vec![
            n.to_string(),
            secs(plain.total_sequential()),
            secs(dl.total_sequential()),
            secs(private.total_sequential()),
            (plain.bytes_to_server + plain.bytes_to_client).to_string(),
            (dl.bytes_to_server + dl.bytes_to_client).to_string(),
            (private.bytes_to_server + private.bytes_to_client).to_string(),
        ]);
    }
    t.note("plain-indices leaks the client's selection; download-all leaks the database");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One tiny harness shared by the smoke tests (keygen is the
    /// expensive part).
    fn harness() -> Harness {
        Harness::new(128, 99)
    }

    #[test]
    fn fig2_smoke() {
        let mut h = harness();
        let t = fig2(&mut h, &[20, 40]);
        assert_eq!(t.rows.len(), 2);
        assert_eq!(t.rows[0][0], "20");
        assert!(t.render().contains("Fig. 2"));
    }

    #[test]
    fn fig3_comm_exceeds_fig2_comm() {
        let mut h = harness();
        let lan = fig2(&mut h, &[30]);
        let modem = fig3(&mut h, &[30]);
        let lan_comm: f64 = lan.rows[0][3].parse().unwrap();
        let modem_comm: f64 = modem.rows[0][3].parse().unwrap();
        assert!(modem_comm > lan_comm * 100.0, "{modem_comm} vs {lan_comm}");
    }

    #[test]
    fn fig4_produces_both_series() {
        // Timing magnitudes are noisy in debug builds under parallel test
        // load, so assert structure, parseability, and the hard upper
        // bound only.
        let mut h = harness();
        let t = fig4(&mut h, &[60]);
        let unbatched: f64 = t.rows[0][1].parse().unwrap();
        let batched: f64 = t.rows[0][2].parse().unwrap();
        let red: f64 = t.rows[0][3].parse().unwrap();
        assert!(unbatched > 0.0 && batched > 0.0);
        assert!(red < 100.0, "reduction={red}");
    }

    #[test]
    fn fig5_and_fig7_preprocessing_wins() {
        // n is large enough that the systematic effect (hundreds of fresh
        // encryptions vs pool lookups) dwarfs scheduler noise even when
        // the whole workspace test suite runs in parallel.
        let mut h = harness();
        let f7 = fig7(&mut h, &[400]);
        let red: f64 = f7.rows[0][3].parse().unwrap();
        assert!(
            red > 40.0,
            "combined optimizations must cut most of the runtime, got {red}%"
        );
        let f5 = fig5(&mut h, &[400]);
        // enc(s) far below total: lookups only.
        let enc: f64 = f5.rows[0][1].parse().unwrap();
        let total: f64 = f5.rows[0][5].parse().unwrap();
        assert!(enc < total / 2.0, "enc {enc} vs total {total}");
    }

    #[test]
    fn fig6_comm_dominates() {
        let mut h = harness();
        let t = fig6(&mut h, &[40]);
        let share: f64 = t.rows[0][5].parse().unwrap();
        assert!(
            share > 80.0,
            "modem comm share should dominate, got {share}%"
        );
    }

    #[test]
    fn fig9_speedup_positive() {
        // Structural check only: the absolute speed-up is asserted by the
        // release-mode integration suite, not here under debug-build
        // timing noise.
        let mut h = harness();
        let t = fig9(&mut h, &[45]);
        let speedup: f64 = t.rows[0][3].parse().unwrap();
        assert!(
            speedup > 0.0,
            "speed-up must parse positive, got {speedup}x"
        );
        assert_eq!(t.rows.len(), 1);
    }

    #[test]
    fn smc_gc_slower_than_he() {
        // GC label OT needs keys wider than the 128-bit labels.
        let mut h = Harness::new(192, 99);
        let t = smc(&mut h, &[8, 16]);
        for row in &t.rows {
            let ratio: f64 = row[6].parse().unwrap();
            assert!(ratio > 1.0, "GC must be slower: {ratio}");
        }
        assert!(t.notes[0].contains("n=1000"));
    }

    #[test]
    fn batch_ablation_sweeps() {
        let mut h = harness();
        let t = ablation_batch(&mut h, 60, LinkProfile::gigabit_lan());
        // 1, 10, 50 and the n=60 row.
        assert_eq!(t.rows.len(), 4);
        // Message count strictly decreases as batches grow.
        let msgs: Vec<usize> = t.rows.iter().map(|r| r[3].parse().unwrap()).collect();
        assert!(msgs.windows(2).all(|w| w[0] > w[1]), "{msgs:?}");
    }

    #[test]
    fn baselines_cheaper_than_private() {
        let mut h = harness();
        let t = baselines(&mut h, &[50]);
        let plain: f64 = t.rows[0][1].parse().unwrap();
        let private: f64 = t.rows[0][3].parse().unwrap();
        assert!(plain < private);
    }
}
