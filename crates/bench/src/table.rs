//! Plain-text result tables for the figure harness.

use std::fmt::Write as _;

/// A printable result table: one per reproduced figure.
#[derive(Clone, Debug)]
pub struct FigureTable {
    /// Figure identifier and caption.
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Data rows (stringified cells).
    pub rows: Vec<Vec<String>>,
    /// Free-form notes printed under the table (paper comparison, etc.).
    pub notes: Vec<String>,
}

impl FigureTable {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Self {
        FigureTable {
            title: title.into(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics when the cell count disagrees with the header (harness bug).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.columns.len(), "table arity");
        self.rows.push(cells);
    }

    /// Appends a note line.
    pub fn note(&mut self, text: impl Into<String>) {
        self.notes.push(text.into());
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let header: Vec<String> = self
            .columns
            .iter()
            .zip(&widths)
            .map(|(c, &w)| format!("{c:>w$}"))
            .collect();
        let _ = writeln!(out, "{}", header.join("  "));
        let _ = writeln!(out, "{}", "-".repeat(header.join("  ").len()));
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .zip(&widths)
                .map(|(c, &w)| format!("{c:>w$}"))
                .collect();
            let _ = writeln!(out, "{}", line.join("  "));
        }
        for note in &self.notes {
            let _ = writeln!(out, "  note: {note}");
        }
        out
    }
}

/// Formats a duration in seconds with 3 decimals.
pub fn secs(d: std::time::Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

/// Formats a duration in (fractional) minutes, the paper's unit.
pub fn minutes(d: std::time::Duration) -> String {
    format!("{:.2}", d.as_secs_f64() / 60.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn renders_aligned() {
        let mut t = FigureTable::new("Fig. X", &["n", "time"]);
        t.row(vec!["1000".into(), "2.5".into()]);
        t.row(vec!["100000".into(), "250.0".into()]);
        t.note("shape matches");
        let r = t.render();
        assert!(r.contains("Fig. X"));
        assert!(r.contains("100000"));
        assert!(r.contains("note: shape matches"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = FigureTable::new("t", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn formatting() {
        assert_eq!(secs(Duration::from_millis(1500)), "1.500");
        assert_eq!(minutes(Duration::from_secs(90)), "1.50");
    }
}
