//! `client_encrypt` ablation: where does the client's index-vector
//! encryption time go, and what do multi-core and precomputation buy?
//!
//! Four strategies over the same batch of 0/1 index plaintexts:
//!
//! * **sequential** — `encrypt_batch`, one fresh `r^N mod N²` per element
//!   on one core (the paper's client as written);
//! * **parallel** — `encrypt_batch_parallel` across all host cores;
//! * **pool** — §3.3 preprocessing: a `RandomizerPool` filled offline
//!   (sequentially), then the cheap online `(1+mN)·r^N` multiply per
//!   element; fill and online phases are timed separately;
//! * **parallel pool fill** — the same offline fill via
//!   `RandomizerPool::fill_parallel` across all host cores.
//!
//! Results land as hand-rolled JSON in `BENCH_client_encrypt.json`
//! (repo root, or `--out PATH`). The JSON records `host_parallelism`
//! because the headline ≥2× parallel speedup only applies on a multi-core
//! host — on a single-core box the parallel paths fall back to the
//! sequential code and the speedup honestly reports ≈1×.
//!
//! ```sh
//! cargo run --release -p pps-bench --bin client_encrypt
//! PPS_NS=1000,5000 cargo run --release -p pps-bench --bin client_encrypt -- --key-bits 256
//! ```

use std::time::Instant;

use pps_bignum::Uint;
use pps_crypto::{host_parallelism, PaillierKeypair, RandomizerPool};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The paper's client-side sweep: n = 1,000 … 100,000 selections.
const DEFAULT_NS: &[usize] = &[1_000, 10_000, 100_000];

const USAGE: &str = "usage: client_encrypt [--key-bits B] [--threads T] [--out PATH]
env: PPS_NS=comma,separated,sizes overrides the n sweep";

struct Row {
    n: usize,
    sequential_secs: f64,
    parallel_secs: f64,
    pool_fill_secs: f64,
    pool_online_secs: f64,
    parallel_pool_fill_secs: f64,
}

fn time<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

fn parse_env_ns() -> Option<Vec<usize>> {
    let raw = std::env::var("PPS_NS").ok()?;
    let ns: Vec<usize> = raw
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .filter(|&n| n > 0)
        .collect();
    (!ns.is_empty()).then_some(ns)
}

fn main() {
    let mut key_bits = 512usize;
    let mut threads = host_parallelism();
    let mut out_path = String::from("BENCH_client_encrypt.json");
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut grab = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}\n{USAGE}");
                std::process::exit(2);
            })
        };
        match a.as_str() {
            "--key-bits" => {
                key_bits = grab("--key-bits").parse().unwrap_or_else(|_| {
                    eprintln!("{USAGE}");
                    std::process::exit(2);
                })
            }
            "--threads" => {
                threads = grab("--threads").parse().unwrap_or_else(|_| {
                    eprintln!("{USAGE}");
                    std::process::exit(2);
                })
            }
            "--out" => out_path = grab("--out"),
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => {
                eprintln!("unknown argument: {other}\n{USAGE}");
                std::process::exit(2);
            }
        }
    }
    let threads = threads.max(1);
    let ns = parse_env_ns().unwrap_or_else(|| DEFAULT_NS.to_vec());

    let host = host_parallelism();
    println!(
        "client_encrypt ablation: key = {key_bits} bits, threads = {threads}, \
         host parallelism = {host}, n sweep = {ns:?}"
    );
    if host < 2 {
        println!(
            "note: single-core host — parallel strategies fall back to the \
             sequential path, so speedups here are ≈1×; rerun on a ≥4-core \
             host for the headline numbers"
        );
    }

    let mut rng = StdRng::seed_from_u64(0x2004_c11e);
    let kp = PaillierKeypair::generate(key_bits, &mut rng).expect("keygen");
    let key = kp.public.clone();

    let mut rows = Vec::new();
    for &n in &ns {
        // Alternating 0/1 plaintexts, the shape of a real index vector.
        let ms: Vec<Uint> = (0..n).map(|i| Uint::from_u64((i % 2) as u64)).collect();

        let (seq_cts, sequential_secs) = time(|| key.encrypt_batch(&ms, &mut rng).expect("seq"));
        let (par_cts, parallel_secs) = time(|| {
            key.encrypt_batch_parallel(&ms, threads, &mut rng)
                .expect("par")
        });
        assert_eq!(seq_cts.len(), par_cts.len());

        let mut pool = RandomizerPool::new(key.clone());
        let ((), pool_fill_secs) = time(|| pool.fill(n, &mut rng).expect("fill"));
        let (_, pool_online_secs) = time(|| {
            ms.iter()
                .map(|m| pool.encrypt(m).expect("online"))
                .collect::<Vec<_>>()
        });

        let mut par_pool = RandomizerPool::new(key.clone());
        let ((), parallel_pool_fill_secs) =
            time(|| par_pool.fill_parallel(n, threads, &mut rng).expect("pfill"));
        assert_eq!(par_pool.remaining(), n);

        let row = Row {
            n,
            sequential_secs,
            parallel_secs,
            pool_fill_secs,
            pool_online_secs,
            parallel_pool_fill_secs,
        };
        println!(
            "n = {:>6}: sequential {:>8.3}s | parallel({} thr) {:>8.3}s ({:.2}x) | \
             pool fill {:>8.3}s + online {:>7.3}s | parallel fill {:>8.3}s ({:.2}x)",
            row.n,
            row.sequential_secs,
            threads,
            row.parallel_secs,
            row.sequential_secs / row.parallel_secs.max(1e-9),
            row.pool_fill_secs,
            row.pool_online_secs,
            row.parallel_pool_fill_secs,
            row.pool_fill_secs / row.parallel_pool_fill_secs.max(1e-9),
        );
        rows.push(row);
    }

    let json = render_json(key_bits, threads, host, &rows);
    std::fs::write(&out_path, &json).expect("write results");
    println!("\nwrote {out_path}");
}

/// Hand-rolled JSON (the workspace deliberately carries no serde).
fn render_json(key_bits: usize, threads: usize, host: usize, rows: &[Row]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"bench\": \"client_encrypt\",\n");
    s.push_str(&format!("  \"key_bits\": {key_bits},\n"));
    s.push_str(&format!("  \"threads\": {threads},\n"));
    s.push_str(&format!("  \"host_parallelism\": {host},\n"));
    s.push_str(
        "  \"note\": \"parallel speedups are meaningful only when host_parallelism >= 2; \
         on a single-core host the parallel engine falls back to the sequential path\",\n",
    );
    s.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"n\": {}, \"sequential_secs\": {:.6}, \"parallel_secs\": {:.6}, \
             \"parallel_speedup\": {:.3}, \"pool_fill_secs\": {:.6}, \
             \"pool_online_secs\": {:.6}, \"parallel_pool_fill_secs\": {:.6}, \
             \"pool_fill_speedup\": {:.3}}}{}\n",
            r.n,
            r.sequential_secs,
            r.parallel_secs,
            r.sequential_secs / r.parallel_secs.max(1e-9),
            r.pool_fill_secs,
            r.pool_online_secs,
            r.parallel_pool_fill_secs,
            r.pool_fill_secs / r.parallel_pool_fill_secs.max(1e-9),
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    s.push_str("  ]\n}\n");
    s
}
