//! `client_encrypt` ablation: where does the client's index-vector
//! encryption time go, and what do multi-core and precomputation buy?
//!
//! Four strategies over the same batch of 0/1 index plaintexts:
//!
//! * **sequential** — `encrypt_batch`, one fresh `r^N mod N²` per element
//!   on one core (the paper's client as written);
//! * **parallel** — `encrypt_batch_parallel` across all host cores;
//! * **pool** — §3.3 preprocessing: a `RandomizerPool` filled offline
//!   (sequentially), then the cheap online `(1+mN)·r^N` multiply per
//!   element; fill and online phases are timed separately;
//! * **parallel pool fill** — the same offline fill via
//!   `RandomizerPool::fill_parallel` across all host cores.
//!
//! Results land in `BENCH_client_encrypt.json` (repo root, or
//! `--out PATH`), serialized through `pps_obs::JsonValue` — the
//! workspace's one JSON writer (no serde). Alongside the per-`n` rows,
//! the file carries per-worker-chunk and pool-fill latency histograms
//! (recorded through `EncryptMetrics`/`PoolMetrics` while the sweep
//! runs) and, for the smallest `n`, a full loopback `RunReport` rendered
//! with `RunReport::to_json` — the paper's four-component decomposition
//! in the same schema the CLI's `--trace json` prints.
//!
//! The JSON records `host_parallelism` because the headline ≥2× parallel
//! speedup only applies on a multi-core host — on a single-core box the
//! parallel paths fall back to the sequential code and the speedup
//! honestly reports ≈1×.
//!
//! ```sh
//! cargo run --release -p pps-bench --bin client_encrypt
//! PPS_NS=1000,5000 cargo run --release -p pps-bench --bin client_encrypt -- --key-bits 256
//! ```

use std::time::Instant;

use pps_bignum::Uint;
use pps_crypto::{
    host_parallelism, EncryptMetrics, PaillierKeypair, ParallelEncryptor, PoolMetrics,
    RandomizerPool,
};
use pps_obs::{HistogramSnapshot, JsonValue, Registry};
use pps_protocol::{run_batched, Database, Selection, SumClient};
use pps_transport::LinkProfile;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The paper's client-side sweep: n = 1,000 … 100,000 selections.
const DEFAULT_NS: &[usize] = &[1_000, 10_000, 100_000];

const USAGE: &str = "usage: client_encrypt [--key-bits B] [--threads T] [--out PATH]
env: PPS_NS=comma,separated,sizes overrides the n sweep";

struct Row {
    n: usize,
    sequential_secs: f64,
    parallel_secs: f64,
    pool_fill_secs: f64,
    pool_online_secs: f64,
    parallel_pool_fill_secs: f64,
}

fn time<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

fn parse_env_ns() -> Option<Vec<usize>> {
    let raw = std::env::var("PPS_NS").ok()?;
    let ns: Vec<usize> = raw
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .filter(|&n| n > 0)
        .collect();
    (!ns.is_empty()).then_some(ns)
}

fn main() {
    let mut key_bits = 512usize;
    let mut threads = host_parallelism();
    let mut out_path = String::from("BENCH_client_encrypt.json");
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut grab = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}\n{USAGE}");
                std::process::exit(2);
            })
        };
        match a.as_str() {
            "--key-bits" => {
                key_bits = grab("--key-bits").parse().unwrap_or_else(|_| {
                    eprintln!("{USAGE}");
                    std::process::exit(2);
                })
            }
            "--threads" => {
                threads = grab("--threads").parse().unwrap_or_else(|_| {
                    eprintln!("{USAGE}");
                    std::process::exit(2);
                })
            }
            "--out" => out_path = grab("--out"),
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => {
                eprintln!("unknown argument: {other}\n{USAGE}");
                std::process::exit(2);
            }
        }
    }
    let threads = threads.max(1);
    let ns = parse_env_ns().unwrap_or_else(|| DEFAULT_NS.to_vec());

    let host = host_parallelism();
    println!(
        "client_encrypt ablation: key = {key_bits} bits, threads = {threads}, \
         host parallelism = {host}, n sweep = {ns:?}"
    );
    if host < 2 {
        println!(
            "note: single-core host — parallel strategies fall back to the \
             sequential path, so speedups here are ≈1×; rerun on a ≥4-core \
             host for the headline numbers"
        );
    }

    let mut rng = StdRng::seed_from_u64(0x2004_c11e);
    let kp = PaillierKeypair::generate(key_bits, &mut rng).expect("keygen");
    let key = kp.public.clone();
    // The keypair moves into the client now; only the public half is
    // needed for the sweep.
    let client = SumClient::new(kp);

    // Latency histograms accumulated across the whole sweep: one sample
    // per parallel worker chunk, one per pool fill.
    let registry = Registry::new();
    let encrypt_metrics = EncryptMetrics::from_registry(&registry);
    let pool_metrics = PoolMetrics::from_registry(&registry);
    let parallel_encryptor =
        ParallelEncryptor::new(key.clone(), threads).with_metrics(encrypt_metrics.clone());

    let mut rows = Vec::new();
    for &n in &ns {
        // Alternating 0/1 plaintexts, the shape of a real index vector.
        let ms: Vec<Uint> = (0..n).map(|i| Uint::from_u64((i % 2) as u64)).collect();

        let (seq_cts, sequential_secs) = time(|| key.encrypt_batch(&ms, &mut rng).expect("seq"));
        let (par_cts, parallel_secs) = time(|| {
            parallel_encryptor
                .encrypt_batch(&ms, &mut rng)
                .expect("par")
        });
        assert_eq!(seq_cts.len(), par_cts.len());

        let mut pool = RandomizerPool::new(key.clone());
        pool.set_metrics(pool_metrics.clone());
        let ((), pool_fill_secs) = time(|| pool.fill(n, &mut rng).expect("fill"));
        let (_, pool_online_secs) = time(|| {
            ms.iter()
                .map(|m| pool.encrypt(m).expect("online"))
                .collect::<Vec<_>>()
        });

        let mut par_pool = RandomizerPool::new(key.clone());
        par_pool.set_metrics(pool_metrics.clone());
        let ((), parallel_pool_fill_secs) =
            time(|| par_pool.fill_parallel(n, threads, &mut rng).expect("pfill"));
        assert_eq!(par_pool.remaining(), n);

        let row = Row {
            n,
            sequential_secs,
            parallel_secs,
            pool_fill_secs,
            pool_online_secs,
            parallel_pool_fill_secs,
        };
        println!(
            "n = {:>6}: sequential {:>8.3}s | parallel({} thr) {:>8.3}s ({:.2}x) | \
             pool fill {:>8.3}s + online {:>7.3}s | parallel fill {:>8.3}s ({:.2}x)",
            row.n,
            row.sequential_secs,
            threads,
            row.parallel_secs,
            row.sequential_secs / row.parallel_secs.max(1e-9),
            row.pool_fill_secs,
            row.pool_online_secs,
            row.parallel_pool_fill_secs,
            row.pool_fill_secs / row.parallel_pool_fill_secs.max(1e-9),
        );
        rows.push(row);
    }

    // A full protocol run over a simulated loopback link for the
    // smallest n, reported in the same RunReport::to_json schema the
    // CLI's `--trace json` prints.
    let loopback = {
        let n = ns.iter().copied().min().expect("non-empty sweep");
        let db = Database::new((0..n as u64).map(|v| v % 1_000).collect()).expect("db");
        let selection =
            Selection::from_indices(n, &(0..n).step_by(2).collect::<Vec<_>>()).expect("selection");
        run_batched(
            &db,
            &selection,
            &client,
            LinkProfile::gigabit_lan(),
            100,
            &mut rng,
        )
        .expect("loopback run")
    };
    println!("loopback: {}", loopback.summary());

    let json = render_json(
        key_bits,
        threads,
        &rows,
        &encrypt_metrics.chunk_seconds.snapshot(),
        &pool_metrics.fill_seconds.snapshot(),
        &loopback.to_json(),
    );
    std::fs::write(&out_path, &json).expect("write results");
    println!("\nwrote {out_path}");
}

fn row_json(r: &Row) -> JsonValue {
    JsonValue::object()
        .field("n", r.n)
        .field("sequential_secs", r.sequential_secs)
        .field("parallel_secs", r.parallel_secs)
        .field(
            "parallel_speedup",
            r.sequential_secs / r.parallel_secs.max(1e-9),
        )
        .field("pool_fill_secs", r.pool_fill_secs)
        .field("pool_online_secs", r.pool_online_secs)
        .field("parallel_pool_fill_secs", r.parallel_pool_fill_secs)
        .field(
            "pool_fill_speedup",
            r.pool_fill_secs / r.parallel_pool_fill_secs.max(1e-9),
        )
}

fn histogram_json(h: &HistogramSnapshot) -> JsonValue {
    JsonValue::object()
        .field("count", h.count)
        .field("sum_seconds", JsonValue::seconds(h.sum()))
        .field("p50_seconds", JsonValue::seconds(h.p50()))
        .field("p95_seconds", JsonValue::seconds(h.p95()))
        .field("p99_seconds", JsonValue::seconds(h.p99()))
}

/// The results file, serialized through the workspace's one JSON writer
/// (`pps_obs::JsonValue` — the workspace deliberately carries no serde)
/// and opened with the shared `BENCH_*.json` envelope.
fn render_json(
    key_bits: usize,
    threads: usize,
    rows: &[Row],
    chunks: &HistogramSnapshot,
    fills: &HistogramSnapshot,
    loopback: &JsonValue,
) -> String {
    pps_bench::report::envelope(
        "client_encrypt",
        JsonValue::object()
            .field("key_bits", key_bits)
            .field("threads", threads)
            .field(
                "note",
                "parallel speedups are meaningful only when host_parallelism >= 2; \
                 on a single-core host the parallel engine falls back to the sequential path",
            ),
    )
    .field("rows", JsonValue::array(rows.iter().map(row_json)))
    .field(
        "histograms",
        JsonValue::object()
            .field("encrypt_chunk_seconds", histogram_json(chunks))
            .field("pool_fill_seconds", histogram_json(fills)),
    )
    .field("loopback_report", loopback.clone())
    .render_pretty()
}
