//! Command-line driver for the figure harness.
//!
//! ```sh
//! cargo run --release -p pps-bench --bin figures -- all
//! cargo run --release -p pps-bench --bin figures -- fig2 fig3
//! cargo run --release -p pps-bench --bin figures -- --full fig2   # paper-scale n sweep
//! PPS_NS=100,500 cargo run --release -p pps-bench --bin figures -- fig4
//! ```
//!
//! Every figure prints measured times on this machine plus a calibrated
//! "paper-scale" column; see EXPERIMENTS.md for the paper-vs-measured
//! discussion.

use std::time::Instant;

use pps_bench::figures::{self, Harness};

/// Default database sizes (kept modest so `all` finishes in ~2 minutes).
const DEFAULT_NS: &[usize] = &[500, 1000, 2500, 5000];
/// `--full` sweep: the paper's 10,000–100,000 range.
const FULL_NS: &[usize] = &[10_000, 25_000, 50_000, 100_000];
/// The GC comparator is orders of magnitude heavier per element.
const SMC_NS: &[usize] = &[8, 16, 32, 64, 128];

const USAGE: &str = "usage: figures [--full] [--key-bits B] [fig2|fig3|fig4|fig5|fig6|fig7|fig9|smc|baselines|batch|futurework|pir|all]...
env: PPS_NS=comma,separated,sizes overrides the sweep";

fn parse_env_ns() -> Option<Vec<usize>> {
    let raw = std::env::var("PPS_NS").ok()?;
    let ns: Vec<usize> = raw
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .filter(|&n| n > 0)
        .collect();
    (!ns.is_empty()).then_some(ns)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut full = false;
    let mut key_bits = 512usize;
    let mut wanted: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--full" => full = true,
            "--key-bits" => {
                key_bits = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("{USAGE}");
                    std::process::exit(2);
                });
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => wanted.push(other.to_string()),
        }
    }
    if wanted.is_empty() {
        wanted.push("all".into());
    }

    let ns = parse_env_ns().unwrap_or_else(|| {
        if full {
            FULL_NS.to_vec()
        } else {
            DEFAULT_NS.to_vec()
        }
    });
    let smc_ns = parse_env_ns().unwrap_or_else(|| SMC_NS.to_vec());

    println!(
        "figure harness: key = {key_bits} bits, n sweep = {ns:?} (paper: 512-bit keys, n up to 100,000)"
    );
    println!("generating keypair and calibrating…");
    let start = Instant::now();
    let mut h = Harness::new(key_bits, 0x5d4c_2004);
    println!(
        "ready in {:.1}s (calibration factor: {:.1}x slower at 2004 P-III speeds)\n",
        start.elapsed().as_secs_f64(),
        h.paper_model.cpu_slowdown
    );

    let all = wanted.iter().any(|w| w == "all");
    let want = |name: &str| all || wanted.iter().any(|w| w == name);

    let mut ran = 0;
    let mut emit = |t: pps_bench::table::FigureTable| {
        println!("{}", t.render());
        ran += 1;
    };

    if want("fig2") {
        emit(figures::fig2(&mut h, &ns));
    }
    if want("fig3") {
        emit(figures::fig3(&mut h, &ns));
    }
    if want("fig4") {
        emit(figures::fig4(&mut h, &ns));
    }
    if want("fig5") {
        emit(figures::fig5(&mut h, &ns));
    }
    if want("fig6") {
        emit(figures::fig6(&mut h, &ns));
    }
    if want("fig7") {
        emit(figures::fig7(&mut h, &ns));
    }
    if want("fig9") {
        emit(figures::fig9(&mut h, &ns));
    }
    if want("smc") {
        emit(figures::smc(&mut h, &smc_ns));
    }
    if want("baselines") {
        emit(figures::baselines(&mut h, &ns));
    }
    if want("pir") {
        emit(figures::pir(&mut h, &ns));
    }
    if want("futurework") {
        let n = *ns.last().expect("non-empty sweep");
        emit(figures::futurework(&mut h, n));
    }
    if want("batch") {
        let n = *ns.last().expect("non-empty sweep");
        emit(figures::ablation_batch(
            &mut h,
            n,
            pps_transport::LinkProfile::gigabit_lan(),
        ));
        emit(figures::ablation_batch(
            &mut h,
            n,
            pps_transport::LinkProfile::modem_56k(),
        ));
    }

    if ran == 0 {
        eprintln!("unknown figure name(s): {wanted:?}\n{USAGE}");
        std::process::exit(2);
    }
    println!(
        "done: {ran} figure(s) in {:.1}s total",
        start.elapsed().as_secs_f64()
    );
}
