//! `fold_precompute` ablation: what does the per-database
//! multi-exponentiation plan buy the server's hot fold path?
//!
//! Three strategies fold the same encrypted index vector against the
//! same fixed database exponents `x_i`:
//!
//! * **incremental** — the paper's server inner loop: one `E(I_i)^{x_i}`
//!   scalar exponentiation plus one homomorphic add per row;
//! * **multiexp** — bit-serial Straus: the rows share one
//!   squaring chain but every base still pays per-bit multiplies;
//! * **precomputed** — [`pps_bignum::MultiExpPlan`]: the windowed digit
//!   decomposition and Pippenger bucket assignment of every `x_i` are
//!   built **once per database**, so a fold reduces to ≈1 modmul per
//!   base per window plus a shared bucket-reduction chain.
//!
//! The plan build is timed separately (it amortizes across every query
//! the database ever serves) and its digit-table size is reported as a
//! memory column. A window-width sweep (4/8/12 effective bits) shows
//! the bucket-count/batch-length tradeoff the plan's cost model
//! navigates. Every fold is oracle-checked: the result is decrypted and
//! compared against the plaintext selected sum.
//!
//! To keep the runtime dominated by the thing being measured (the
//! fold), the index vector is encrypted with **one shared randomizer**
//! `r^N` — valid ciphertexts, cheap to mint. This is a bench-only
//! shortcut: it weakens nothing about the fold (the server never sees
//! randomizers) and the decryption oracle-check still passes.
//!
//! Results land in `BENCH_fold_precompute.json` (repo root, or
//! `--out PATH`), serialized through `pps_obs::JsonValue`.
//!
//! ```sh
//! cargo run --release -p pps-bench --bin fold_precompute
//! PPS_NS=1000 cargo run --release -p pps-bench --bin fold_precompute -- --key-bits 256
//! ```

use std::time::Instant;

use pps_bignum::{MultiExpPlan, Uint};
use pps_crypto::{Ciphertext, PaillierKeypair};
use pps_obs::JsonValue;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The server-side sweep: n = 10,000 and 100,000 database rows.
const DEFAULT_NS: &[usize] = &[10_000, 100_000];

/// Effective window widths swept for the precomputed plan.
const WINDOW_SWEEP: &[usize] = &[4, 8, 12];

const USAGE: &str = "usage: fold_precompute [--key-bits B] [--out PATH]
env: PPS_NS=comma,separated,sizes overrides the n sweep";

struct WindowPoint {
    window_bits: usize,
    fold_secs: f64,
}

struct Row {
    n: usize,
    incremental_fold_secs: f64,
    multiexp_fold_secs: f64,
    precomputed_fold_secs: f64,
    chosen_window_bits: usize,
    plan_build_secs: f64,
    plan_table_bytes: usize,
    window_sweep: Vec<WindowPoint>,
}

fn time<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

fn parse_env_ns() -> Option<Vec<usize>> {
    let raw = std::env::var("PPS_NS").ok()?;
    let ns: Vec<usize> = raw
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .filter(|&n| n > 0)
        .collect();
    (!ns.is_empty()).then_some(ns)
}

/// Pseudo-random 32-bit database exponents (Fibonacci hashing), the
/// regime the paper's experiments assume.
fn database_values(n: usize) -> Vec<u64> {
    (0..n)
        .map(|i| (i as u32).wrapping_mul(0x9E37_79B1) as u64)
        .collect()
}

fn main() {
    let mut key_bits = 512usize;
    let mut out_path = String::from("BENCH_fold_precompute.json");
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut grab = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}\n{USAGE}");
                std::process::exit(2);
            })
        };
        match a.as_str() {
            "--key-bits" => {
                key_bits = grab("--key-bits").parse().unwrap_or_else(|_| {
                    eprintln!("{USAGE}");
                    std::process::exit(2);
                })
            }
            "--out" => out_path = grab("--out"),
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => {
                eprintln!("unknown argument: {other}\n{USAGE}");
                std::process::exit(2);
            }
        }
    }
    let ns = parse_env_ns().unwrap_or_else(|| DEFAULT_NS.to_vec());

    println!("fold_precompute ablation: key = {key_bits} bits, n sweep = {ns:?}");

    let mut rng = StdRng::seed_from_u64(0x2004_f01d);
    let kp = PaillierKeypair::generate(key_bits, &mut rng).expect("keygen");
    let key = kp.public.clone();
    // Bench-only shortcut: one shared randomizer keeps ciphertext
    // minting cheap (the fold, not encryption, is under test).
    let rn = key.sample_randomizer(&mut rng).expect("randomizer");

    let mut rows = Vec::new();
    for &n in &ns {
        let values = database_values(n);
        // Alternating selection vector: I_i = i mod 2.
        let cts: Vec<Ciphertext> = (0..n)
            .map(|i| {
                key.encrypt_with_randomizer(&Uint::from_u64((i % 2) as u64), &rn)
                    .expect("encrypt")
            })
            .collect();
        let oracle: u128 = values
            .iter()
            .enumerate()
            .map(|(i, &x)| (i as u128 % 2) * x as u128)
            .sum();
        let check = |ct: &Ciphertext, label: &str| {
            let sum = kp.secret.decrypt(ct).expect("decrypt").to_u128().unwrap();
            assert_eq!(
                sum, oracle,
                "{label} fold disagrees with the oracle at n={n}"
            );
        };

        // Incremental: the paper's per-row scalar-mul + homomorphic add.
        let (inc, incremental_fold_secs) = time(|| {
            let mut acc = key
                .encrypt_with_randomizer(&Uint::zero(), &rn)
                .expect("acc");
            for (ct, &x) in cts.iter().zip(&values) {
                let term = key.mul_plain(ct, &Uint::from_u64(x)).expect("mul_plain");
                acc = key.add(&acc, &term).expect("add");
            }
            acc
        });
        check(&inc, "incremental");

        // MultiExp: bit-serial Straus over the whole vector.
        let weights: Vec<Uint> = values.iter().map(|&x| Uint::from_u64(x)).collect();
        let (me, multiexp_fold_secs) = time(|| key.fold_product(&cts, &weights).expect("multiexp"));
        check(&me, "multiexp");

        // Precomputed: build the per-database plan (timed separately —
        // it amortizes over every query), then fold through it.
        let (plan, plan_build_secs) = time(|| MultiExpPlan::build(&values));
        let chosen_window_bits = plan.window_bits_for(n);
        let (pc, precomputed_fold_secs) =
            time(|| key.fold_product_planned(&cts, &plan, 0).expect("planned"));
        check(&pc, "precomputed");

        let window_sweep: Vec<WindowPoint> = WINDOW_SWEEP
            .iter()
            .map(|&window_bits| {
                let (ct, fold_secs) = time(|| {
                    key.fold_product_planned_with_window(&cts, &plan, 0, window_bits)
                        .expect("sweep fold")
                });
                check(&ct, "window-sweep");
                WindowPoint {
                    window_bits,
                    fold_secs,
                }
            })
            .collect();

        let row = Row {
            n,
            incremental_fold_secs,
            multiexp_fold_secs,
            precomputed_fold_secs,
            chosen_window_bits,
            plan_build_secs,
            plan_table_bytes: plan.table_bytes(),
            window_sweep,
        };
        println!(
            "n = {:>6}: incremental {:>8.3}s | multiexp {:>8.3}s | precomputed {:>8.3}s \
             ({:.2}x vs multiexp, w={}) | plan build {:>6.3}s, table {} bytes",
            row.n,
            row.incremental_fold_secs,
            row.multiexp_fold_secs,
            row.precomputed_fold_secs,
            row.multiexp_fold_secs / row.precomputed_fold_secs.max(1e-9),
            row.chosen_window_bits,
            row.plan_build_secs,
            row.plan_table_bytes,
        );
        for p in &row.window_sweep {
            println!(
                "            window {:>2} bits: {:>8.3}s",
                p.window_bits, p.fold_secs
            );
        }
        rows.push(row);
    }

    let json = render_json(key_bits, &rows);
    std::fs::write(&out_path, &json).expect("write results");
    println!("\nwrote {out_path}");
}

fn row_json(r: &Row) -> JsonValue {
    JsonValue::object()
        .field("n", r.n)
        .field("incremental_fold_secs", r.incremental_fold_secs)
        .field("multiexp_fold_secs", r.multiexp_fold_secs)
        .field("precomputed_fold_secs", r.precomputed_fold_secs)
        .field("chosen_window_bits", r.chosen_window_bits)
        .field(
            "speedup_vs_multiexp",
            r.multiexp_fold_secs / r.precomputed_fold_secs.max(1e-9),
        )
        .field(
            "speedup_vs_incremental",
            r.incremental_fold_secs / r.precomputed_fold_secs.max(1e-9),
        )
        .field("plan_build_secs", r.plan_build_secs)
        .field("plan_table_bytes", r.plan_table_bytes)
        .field(
            "window_sweep",
            JsonValue::array(r.window_sweep.iter().map(|p| {
                JsonValue::object()
                    .field("window_bits", p.window_bits)
                    .field("fold_secs", p.fold_secs)
            })),
        )
}

/// The results file, serialized through the workspace's one JSON writer
/// (`pps_obs::JsonValue` — the workspace deliberately carries no serde).
fn render_json(key_bits: usize, rows: &[Row]) -> String {
    pps_bench::report::envelope(
        "fold_precompute",
        JsonValue::object().field("key_bits", key_bits).field(
            "note",
            "every fold is oracle-checked against the plaintext selected sum; \
             plan_build_secs amortizes across all queries a database serves",
        ),
    )
    .field("rows", JsonValue::array(rows.iter().map(row_json)))
    .render_pretty()
}
