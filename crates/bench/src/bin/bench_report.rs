//! `bench_report` — the cross-run trajectory table.
//!
//! Reads every `BENCH_*.json` results file (the four writers share one
//! envelope, see `pps_bench::report`) and prints each bench's headline
//! numbers side by side, so successive checkouts can compare their
//! recorded results at a glance:
//!
//! ```text
//! cargo run -p pps-bench --bin bench_report            # repo root files
//! cargo run -p pps-bench --bin bench_report -- a.json  # explicit files
//! ```

use pps_bench::report::{summarize, SCHEMA_VERSION};
use pps_obs::JsonValue;

const DEFAULT_FILES: [&str; 4] = [
    "BENCH_client_encrypt.json",
    "BENCH_fold_precompute.json",
    "BENCH_server_throughput.json",
    "BENCH_shard_speedup.json",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let paths: Vec<String> = if args.is_empty() {
        DEFAULT_FILES.iter().map(|s| s.to_string()).collect()
    } else {
        args
    };

    println!("bench results trajectory (envelope schema {SCHEMA_VERSION})");
    println!("{:-<72}", "");
    let mut shown = 0usize;
    for path in &paths {
        let body = match std::fs::read_to_string(path) {
            Ok(body) => body,
            Err(_) => {
                println!("{path}: missing (bench not run on this checkout)");
                continue;
            }
        };
        let Ok(doc) = JsonValue::parse(&body) else {
            println!("{path}: unreadable (not valid JSON)");
            continue;
        };
        let Some(summary) = summarize(&doc) else {
            println!("{path}: unrecognized or future-schema results file");
            continue;
        };
        let schema = if summary.schema_version == 0 {
            "legacy".to_string()
        } else {
            format!("v{}", summary.schema_version)
        };
        println!(
            "{:<20} {:<8} {} cores",
            summary.bench, schema, summary.host_parallelism
        );
        if summary.headlines.is_empty() {
            println!("    (no headline rows recorded)");
        }
        for line in &summary.headlines {
            println!("    {line}");
        }
        shown += 1;
    }
    println!("{:-<72}", "");
    println!("{shown}/{} results files summarized", paths.len());
}
