//! `server_throughput`: sessions/sec and tail latency for the two
//! server engines — thread-per-connection vs the event-driven
//! orchestrator — at matched load.
//!
//! Both engines serve the same campaign: `--sessions` total loopback
//! sessions driven `--concurrency` at a time, every session replaying
//! one pre-encoded query (one small Paillier key, one `Hello`, one
//! `IndexBatch`). The reply is therefore bitwise identical across
//! sessions: a warm-up session decrypts it against the plaintext
//! selected sum (the oracle), and every other session byte-compares
//! its `Product` against that reference — a throughput number only
//! counts if the answers were right.
//!
//! Per-session latency is measured client-side, connect → product
//! read, under full load (it includes queueing inside the server, which
//! is the point). Results land in `BENCH_server_throughput.json` (repo
//! root, or `--out PATH`).
//!
//! ```sh
//! cargo run --release -p pps-bench --bin server_throughput
//! cargo run --release -p pps-bench --bin server_throughput -- --small
//! ```

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use pps_obs::JsonValue;
use pps_protocol::messages::{Hello, IndexBatch, MsgType};
use pps_protocol::{
    AggregateStats, Database, FoldStrategy, Selection, ServeEngine, SumClient, TcpServer,
};
use pps_transport::{Frame, TcpWire, Wire};
use rand::rngs::StdRng;
use rand::SeedableRng;

const USAGE: &str = "usage: server_throughput [--sessions N] [--concurrency C] \
[--key-bits B] [--workers W] [--small] [--out PATH]
  --small  CI profile: 400 sessions, 100 concurrent";

/// One pre-encoded query and the decryption oracle that validates its
/// reply.
struct Campaign {
    client: SumClient,
    hello: Frame,
    batch: Frame,
    query_bytes: Vec<u8>,
    expected_sum: u128,
}

struct EngineRow {
    engine: &'static str,
    wall_secs: f64,
    sessions_per_sec: f64,
    p50_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
    stats: AggregateStats,
}

fn connect(addr: SocketAddr) -> TcpStream {
    let s = TcpStream::connect(addr).expect("connect");
    s.set_nodelay(true).expect("nodelay");
    s.set_read_timeout(Some(Duration::from_secs(60)))
        .expect("read timeout");
    s
}

fn read_exactly(s: &mut TcpStream, len: usize) -> Vec<u8> {
    let mut buf = vec![0u8; len];
    s.read_exact(&mut buf).expect("read reply");
    buf
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 * p).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx]
}

/// One engine's campaign: `sessions` total, `concurrency` in flight.
fn run_engine(
    engine: ServeEngine,
    name: &'static str,
    db_rows: &[u64],
    campaign: &Campaign,
    sessions: usize,
    concurrency: usize,
    workers: Option<usize>,
) -> EngineRow {
    let mut server = TcpServer::bind(
        Arc::new(Database::new(db_rows.to_vec()).expect("db")),
        "127.0.0.1:0",
        FoldStrategy::Incremental,
    )
    .expect("bind")
    .with_engine(engine);
    if let Some(w) = workers {
        server = server.with_workers(w);
    }
    let addr = server.local_addr().expect("addr");
    let server_thread = std::thread::spawn(move || server.serve(Some(sessions)));

    // Warm-up session over the blocking wire (counts toward the total):
    // decrypt the product against the oracle and pin the exact reply
    // bytes every replayed session must see.
    let start = Instant::now();
    let (hello_ack_len, product_bytes) = {
        let mut wire = TcpWire::new(connect(addr));
        wire.send(campaign.hello.clone()).expect("send hello");
        let ack = wire.recv().expect("hello ack");
        assert_eq!(ack.msg_type, MsgType::HelloAck as u8);
        wire.send(campaign.batch.clone()).expect("send batch");
        let product = wire.recv().expect("product");
        assert_eq!(product.msg_type, MsgType::Product as u8);
        let (sum, _) = campaign.client.decrypt_product(&product).expect("decrypt");
        assert_eq!(
            sum.to_u128().unwrap(),
            campaign.expected_sum,
            "{name}: oracle sum"
        );
        (ack.encoded_len(), product.encode().to_vec())
    };

    let mut latencies_ms: Vec<f64> = Vec::with_capacity(sessions);
    let mut completed = 1usize;
    while completed < sessions {
        let n = concurrency.min(sessions - completed);
        let mut chunk: Vec<(TcpStream, Instant)> = Vec::with_capacity(n);
        for _ in 0..n {
            let began = Instant::now();
            let mut s = connect(addr);
            s.write_all(&campaign.query_bytes).expect("write query");
            chunk.push((s, began));
        }
        for (mut s, began) in chunk {
            read_exactly(&mut s, hello_ack_len);
            let got = read_exactly(&mut s, product_bytes.len());
            assert_eq!(got, product_bytes, "{name}: product mismatch");
            latencies_ms.push(began.elapsed().as_secs_f64() * 1e3);
            completed += 1;
        }
    }
    let wall = start.elapsed();
    let stats = server_thread.join().expect("server thread");
    assert_eq!(stats.sessions, sessions, "{name}: every session completed");
    assert_eq!(stats.failed + stats.refused + stats.evicted, 0, "{name}");

    latencies_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    EngineRow {
        engine: name,
        wall_secs: wall.as_secs_f64(),
        sessions_per_sec: sessions as f64 / wall.as_secs_f64(),
        p50_ms: percentile(&latencies_ms, 0.50),
        p95_ms: percentile(&latencies_ms, 0.95),
        p99_ms: percentile(&latencies_ms, 0.99),
        stats,
    }
}

fn main() {
    let mut sessions = 10_000usize;
    let mut concurrency = 1_000usize;
    let mut key_bits = 128usize;
    let mut workers: Option<usize> = None;
    let mut out_path = String::from("BENCH_server_throughput.json");
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut grab = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}\n{USAGE}");
                std::process::exit(2);
            })
        };
        let parse = |s: String| {
            s.parse::<usize>().unwrap_or_else(|_| {
                eprintln!("{USAGE}");
                std::process::exit(2);
            })
        };
        match a.as_str() {
            "--sessions" => sessions = parse(grab("--sessions")),
            "--concurrency" => concurrency = parse(grab("--concurrency")),
            "--key-bits" => key_bits = parse(grab("--key-bits")),
            "--workers" => workers = Some(parse(grab("--workers"))),
            "--small" => {
                sessions = 400;
                concurrency = 100;
            }
            "--out" => out_path = grab("--out"),
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => {
                eprintln!("unknown argument: {other}\n{USAGE}");
                std::process::exit(2);
            }
        }
    }
    let sessions = sessions.max(2);
    let concurrency = concurrency.max(1);

    let db_rows: Vec<u64> = vec![3, 1, 4, 1, 5, 9, 2, 6];
    let select = [0usize, 2, 5, 7];
    let expected_sum: u128 = select.iter().map(|&i| db_rows[i] as u128).sum();

    println!(
        "server_throughput: {sessions} sessions, {concurrency} concurrent, \
         key = {key_bits} bits, both engines"
    );

    // Pre-encode the query once; every session replays these bytes.
    let mut rng = StdRng::seed_from_u64(0x2004_5e55);
    let client = SumClient::generate(key_bits, &mut rng).expect("keygen");
    let selection = Selection::from_indices(db_rows.len(), &select).expect("selection");
    let hello = Hello {
        modulus: client.keypair().public.n().clone(),
        total: selection.len() as u64,
        batch_size: selection.len() as u32,
        trace: None,
    }
    .encode()
    .expect("hello");
    let cts: Vec<_> = selection
        .weights()
        .iter()
        .map(|&w| {
            client
                .keypair()
                .public
                .encrypt_u64(w, &mut rng)
                .expect("encrypt")
        })
        .collect();
    let batch = IndexBatch {
        seq: 0,
        ciphertexts: cts,
    }
    .encode(&client.keypair().public)
    .expect("batch");
    let mut query_bytes = hello.encode().to_vec();
    query_bytes.extend_from_slice(&batch.encode());
    let campaign = Campaign {
        client,
        hello,
        batch,
        query_bytes,
        expected_sum,
    };

    let mut rows = Vec::new();
    for (engine, name) in [
        (ServeEngine::Threaded, "threaded"),
        (ServeEngine::Event, "event"),
    ] {
        let row = run_engine(
            engine,
            name,
            &db_rows,
            &campaign,
            sessions,
            concurrency,
            workers,
        );
        println!(
            "{:>9}: {:>8.1} sessions/s over {:>6.2}s | p50 {:>7.2} ms, p95 {:>7.2} ms, \
             p99 {:>7.2} ms | peak_active {}",
            row.engine,
            row.sessions_per_sec,
            row.wall_secs,
            row.p50_ms,
            row.p95_ms,
            row.p99_ms,
            row.stats.peak_active,
        );
        rows.push(row);
    }

    let json = render_json(sessions, concurrency, key_bits, workers, &rows);
    std::fs::write(&out_path, &json).expect("write results");
    println!("\nwrote {out_path}");
}

fn render_json(
    sessions: usize,
    concurrency: usize,
    key_bits: usize,
    workers: Option<usize>,
    rows: &[EngineRow],
) -> String {
    pps_bench::report::envelope(
        "server_throughput",
        JsonValue::object()
            .field("sessions", sessions)
            .field("concurrency", concurrency)
            .field("key_bits", key_bits)
            .field(
                "workers",
                workers.map_or_else(|| "auto".to_string(), |w| w.to_string()),
            )
            .field(
                "note",
                "matched load, loopback; every session's product is byte-checked against \
                 a decrypted oracle reply; latency is client-side connect-to-product under load",
            ),
    )
    .field(
        "engines",
        JsonValue::array(rows.iter().map(|r| {
            JsonValue::object()
                .field("engine", r.engine)
                .field("wall_secs", r.wall_secs)
                .field("sessions_per_sec", r.sessions_per_sec)
                .field("p50_ms", r.p50_ms)
                .field("p95_ms", r.p95_ms)
                .field("p99_ms", r.p99_ms)
                .field("peak_active", r.stats.peak_active)
                .field("queued", r.stats.queued)
                .field("sessions_completed", r.stats.sessions)
        })),
    )
    .render_pretty()
}
