//! `shard_speedup` ablation: what does horizontal sharding buy the
//! server side of a *networked* private sum?
//!
//! The paper's §3.5 multi-database experiment reports a ≈2.99× server
//! speedup at k = 3 — each database folds only its own partition, and
//! the folds run concurrently. This harness re-measures that claim over
//! the real deployment stack instead of the simulated link: for each
//! k ∈ {1, 2, 3} it binds k `require_shard_handshake()` TCP workers on
//! loopback, each owning one contiguous horizontal partition, fans one
//! query out with [`run_sharded_query`], checks the combined
//! blinded-partial total against the plaintext oracle, and reads every
//! worker's homomorphic fold time back out of its `pps_fold_seconds`
//! histogram.
//!
//! The headline number is **server-compute speedup**: the k = 1
//! worker's fold time divided by the *slowest* worker's fold time at
//! k — the wall-clock-relevant critical path, since the legs run
//! concurrently. Results land in `BENCH_shard_speedup.json` (repo root,
//! or `--out PATH`), serialized through `pps_obs::JsonValue` — the
//! workspace's one JSON writer (no serde) — alongside the fan-out
//! engine's own `pps_shard_legs_total` / `pps_shard_resumes_total`
//! counters for each run.
//!
//! Each k is measured [`RUNS_PER_K`] times (every run oracle-checked)
//! and the **median** run — by slowest-shard fold time — is reported,
//! so a single preemption spike on a time-sliced host cannot masquerade
//! as signal. Rows where `host_parallelism < k` carry a
//! `degraded_host: true` flag: there the k legs time-slice one CPU,
//! every fold's wall time absorbs preemption by the other legs, and the
//! measured speedup honestly lands near (or below) 1× — rerun on a
//! ≥4-core host for numbers comparable to the paper's.
//!
//! ```sh
//! cargo run --release -p pps-bench --bin shard_speedup
//! cargo run --release -p pps-bench --bin shard_speedup -- --key-bits 256 --n 300
//! ```

use std::sync::Arc;
use std::time::Instant;

use pps_crypto::host_parallelism;
use pps_obs::{names, JsonValue, Registry};
use pps_protocol::{
    run_sharded_query, Database, FoldStrategy, ServerObs, ShardObs, ShardQueryConfig, SumClient,
    TcpQueryConfig, TcpServer,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The paper's multi-database sweep point: k = 1 (the unsharded
/// baseline) up to k = 3, where Fig. 7 reports ≈2.99×.
const KS: &[usize] = &[1, 2, 3];

/// The paper's measured server speedup at k = 3.
const PAPER_K3_SPEEDUP: f64 = 2.99;

/// Oracle-checked runs per k; the median (by slowest-shard fold time)
/// is reported, so one scheduler preemption spike cannot pass as
/// signal.
const RUNS_PER_K: usize = 3;

const USAGE: &str = "usage: shard_speedup [--key-bits B] [--n N] [--out PATH]";

fn value(global: usize) -> u64 {
    global as u64 % 997
}

/// One oracle-checked measurement of a k-shard query.
struct Run {
    wall_secs: f64,
    fold_secs: Vec<f64>,
    legs: u64,
    resumes: u64,
}

impl Run {
    /// The critical path: the slowest worker's total fold time.
    fn max_fold_secs(&self) -> f64 {
        self.fold_secs.iter().copied().fold(0.0, f64::max)
    }
}

struct Row {
    k: usize,
    /// `host_parallelism < k`: the legs time-sliced one CPU, so the
    /// speedup is not comparable to the paper's multi-core number.
    degraded_host: bool,
    /// The median run, by [`Run::max_fold_secs`].
    median: Run,
    /// Every run's critical-path fold time, for dispersion.
    max_fold_secs_runs: Vec<f64>,
}

fn main() {
    let mut key_bits = 512usize;
    let mut n = 600usize;
    let mut out_path = String::from("BENCH_shard_speedup.json");
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut grab = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}\n{USAGE}");
                std::process::exit(2);
            })
        };
        match a.as_str() {
            "--key-bits" => {
                key_bits = grab("--key-bits").parse().unwrap_or_else(|_| {
                    eprintln!("{USAGE}");
                    std::process::exit(2);
                })
            }
            "--n" => {
                n = grab("--n").parse().unwrap_or_else(|_| {
                    eprintln!("{USAGE}");
                    std::process::exit(2);
                })
            }
            "--out" => out_path = grab("--out"),
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => {
                eprintln!("unknown argument: {other}\n{USAGE}");
                std::process::exit(2);
            }
        }
    }
    let max_k = *KS.iter().max().expect("non-empty sweep");
    assert!(n >= max_k, "need at least one row per shard");

    let select: Vec<usize> = (0..n).step_by(2).collect();
    let oracle: u128 = select.iter().map(|&i| value(i) as u128).sum();

    let host = host_parallelism();
    println!(
        "shard_speedup ablation: key = {key_bits} bits, n = {n} rows, \
         {} selected, host parallelism = {host}, k sweep = {KS:?}",
        select.len()
    );
    if host < 2 {
        println!(
            "note: single-core host — the k legs time-slice one CPU, so the \
             measured speedup is ≈1x here; rerun on a ≥4-core host for \
             numbers comparable to the paper's"
        );
    }

    let mut rng = StdRng::seed_from_u64(0x2004_5a4d);
    let client = SumClient::generate(key_bits, &mut rng).expect("keygen");

    let mut rows = Vec::new();
    for &k in KS {
        let mut runs: Vec<Run> = (0..RUNS_PER_K)
            .map(|_| measure_once(k, n, &select, oracle, &client, &mut rng))
            .collect();
        // Median by the critical-path fold time: sort, take the middle.
        runs.sort_by(|a, b| a.max_fold_secs().total_cmp(&b.max_fold_secs()));
        let max_fold_secs_runs: Vec<f64> = runs.iter().map(Run::max_fold_secs).collect();
        let median = runs.remove(runs.len() / 2);
        let row = Row {
            k,
            degraded_host: host < k,
            median,
            max_fold_secs_runs,
        };
        println!(
            "k = {}: wall {:>7.3}s | slowest shard fold {:>7.3}s (median of {}: {:?}) | \
             legs {} resumes {}{}",
            row.k,
            row.median.wall_secs,
            row.median.max_fold_secs(),
            RUNS_PER_K,
            row.max_fold_secs_runs,
            row.median.legs,
            row.median.resumes,
            if row.degraded_host {
                " | degraded host"
            } else {
                ""
            },
        );
        rows.push(row);
    }

    let baseline = rows[0].median.max_fold_secs();
    for row in &rows[1..] {
        println!(
            "k = {}: server-compute speedup {:.2}x over k = 1",
            row.k,
            baseline / row.median.max_fold_secs().max(1e-9),
        );
    }
    if let Some(k3) = rows.iter().find(|r| r.k == 3) {
        println!(
            "paper (Fig. 7, simulated multi-DB) reports {PAPER_K3_SPEEDUP}x at k = 3; \
             measured here over real sockets: {:.2}x",
            baseline / k3.median.max_fold_secs().max(1e-9),
        );
    }

    let json = render_json(key_bits, n, select.len(), baseline, &rows);
    std::fs::write(&out_path, &json).expect("write results");
    println!("\nwrote {out_path}");
}

/// One k-shard query over fresh workers, oracle-checked, with every
/// worker's fold time read back out of its own registry.
fn measure_once(
    k: usize,
    n: usize,
    select: &[usize],
    oracle: u128,
    client: &SumClient,
    rng: &mut StdRng,
) -> Run {
    // Contiguous horizontal partitions; the last shard takes the
    // remainder so every global row is owned by exactly one worker.
    let base = n / k;
    let mut servers = Vec::with_capacity(k);
    let mut registries = Vec::with_capacity(k);
    for i in 0..k {
        let lo = i * base;
        let hi = if i == k - 1 { n } else { lo + base };
        let db = Arc::new(Database::new((lo..hi).map(value).collect()).expect("db"));
        let registry = Arc::new(Registry::new());
        let server = TcpServer::bind(db, "127.0.0.1:0", FoldStrategy::MultiExp)
            .expect("bind")
            .require_shard_handshake()
            .with_observability(ServerObs::new(Arc::clone(&registry)));
        registries.push(registry);
        servers.push(server);
    }
    let addrs: Vec<String> = servers
        .iter()
        .map(|s| s.local_addr().expect("addr").to_string())
        .collect();

    let fanout_registry = Arc::new(Registry::new());
    let obs = ShardObs::new(Arc::clone(&fanout_registry));
    let config = ShardQueryConfig {
        tcp: TcpQueryConfig {
            batch_size: 50,
            ..TcpQueryConfig::default()
        },
        value_bound: Some(997),
    };

    let wall_secs = std::thread::scope(|scope| {
        let handles: Vec<_> = servers
            .into_iter()
            .map(|s| scope.spawn(move || s.serve(Some(1))))
            .collect();
        let start = Instant::now();
        let outcome = run_sharded_query(&addrs, client, select, &config, Some(&obs), rng)
            .expect("sharded query");
        let wall = start.elapsed().as_secs_f64();
        assert_eq!(outcome.sum, oracle, "blindings must cancel exactly");
        for h in handles {
            let stats = h.join().expect("server thread");
            assert_eq!(stats.sessions, 1);
            assert_eq!(stats.failed, 0);
        }
        wall
    });

    // Read each worker's homomorphic fold time back out of its own
    // registry (`Registry::histogram` is get-or-create, so this
    // returns the handle the server recorded into).
    let fold_secs: Vec<f64> = registries
        .iter()
        .map(|r| {
            r.histogram(names::FOLD_SECONDS, "")
                .snapshot()
                .sum()
                .as_secs_f64()
        })
        .collect();
    Run {
        wall_secs,
        fold_secs,
        legs: fanout_registry.counter(names::SHARD_LEGS_TOTAL, "").get(),
        resumes: fanout_registry
            .counter(names::SHARD_RESUMES_TOTAL, "")
            .get(),
    }
}

fn row_json(r: &Row, baseline: f64) -> JsonValue {
    JsonValue::object()
        .field("k", r.k)
        .field("degraded_host", r.degraded_host)
        .field("runs", r.max_fold_secs_runs.len())
        .field("wall_secs", r.median.wall_secs)
        .field(
            "fold_secs_per_shard",
            JsonValue::array(r.median.fold_secs.iter().map(|&s| JsonValue::from(s))),
        )
        .field("max_fold_secs", r.median.max_fold_secs())
        .field(
            "max_fold_secs_runs",
            JsonValue::array(r.max_fold_secs_runs.iter().map(|&s| JsonValue::from(s))),
        )
        .field(
            "server_compute_speedup",
            baseline / r.median.max_fold_secs().max(1e-9),
        )
        .field("shard_legs_total", r.median.legs)
        .field("shard_resumes_total", r.median.resumes)
}

/// The results file, serialized through the workspace's one JSON writer
/// (`pps_obs::JsonValue` — the workspace deliberately carries no serde).
fn render_json(key_bits: usize, n: usize, selected: usize, baseline: f64, rows: &[Row]) -> String {
    pps_bench::report::envelope(
        "shard_speedup",
        JsonValue::object()
            .field("key_bits", key_bits)
            .field("n", n)
            .field("selected", selected)
            .field("paper_k3_speedup", PAPER_K3_SPEEDUP)
            .field("runs_per_k", RUNS_PER_K)
            .field(
                "note",
                "server_compute_speedup divides the k=1 worker's median total \
                 homomorphic fold time by the slowest worker's fold time in the \
                 median run at k — the critical path, since shard legs run \
                 concurrently; every run is oracle-checked before it is recorded. \
                 Rows with degraded_host=true ran with host_parallelism < k and \
                 are not comparable to the paper's multi-core numbers",
            ),
    )
    .field(
        "rows",
        JsonValue::array(rows.iter().map(|r| row_json(r, baseline))),
    )
    .render_pretty()
}
