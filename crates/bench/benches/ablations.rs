//! Ablation benchmarks for the design choices the implementation makes:
//!
//! * modular reduction strategy (generic division vs Barrett vs
//!   Montgomery) on protocol-shaped exponentiations;
//! * `g = N + 1` fast Paillier encryption vs the textbook general-`g`
//!   scheme (the paper's OpenSSL implementation relies on the former);
//! * CRT vs reference Paillier decryption;
//! * classic 4-row garbling vs free-XOR on the selected-sum circuit;
//! * Karatsuba vs schoolbook multiplication around the threshold.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pps_bignum::{Barrett, Montgomery, Uint};
use pps_crypto::{GeneralPaillier, PaillierKeypair};
use pps_gc::{garble, garble_free_xor, selected_sum_circuit};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn odd_modulus(rng: &mut StdRng, bits: usize) -> Uint {
    let mut n = Uint::random_bits_exact(rng, bits);
    n.set_bit(0, true);
    n
}

/// Reduction-strategy ablation: 1024-bit modpow with a 512-bit exponent,
/// the shape of a Paillier encryption at the paper's key size.
fn ablation_reduction_strategy(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let n = odd_modulus(&mut rng, 1024);
    let base = Uint::random_below(&mut rng, &n).unwrap();
    let exp = Uint::random_bits_exact(&mut rng, 512);

    let mut g = c.benchmark_group("ablation_modpow_1024");
    g.sample_size(10);
    g.bench_function("generic_division", |b| {
        b.iter(|| base.mod_pow(&exp, &n).unwrap());
    });
    let barrett = Barrett::new(n.clone()).unwrap();
    g.bench_function("barrett", |b| {
        b.iter(|| barrett.pow(&base, &exp));
    });
    let mont = Montgomery::new(n.clone()).unwrap();
    g.bench_function("montgomery", |b| {
        b.iter(|| mont.pow(&base, &exp).unwrap());
    });
    g.finish();
}

/// Encryption-scheme ablation: g = N+1 (one modpow) vs general g (two).
fn ablation_generator_choice(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let p = Uint::generate_prime(&mut rng, 256).unwrap();
    let q = Uint::generate_prime(&mut rng, 256).unwrap();
    let optimized = PaillierKeypair::from_primes(p.clone(), q.clone()).unwrap();
    let n = &p * &q;
    let general = GeneralPaillier::from_primes_and_g(p, q, n.add_u64(1)).unwrap();
    let m = Uint::from_u64(123_456);

    let mut g = c.benchmark_group("ablation_paillier_encrypt_512");
    g.sample_size(20);
    g.bench_function("g_equals_n_plus_1", |b| {
        b.iter(|| optimized.public.encrypt(&m, &mut rng).unwrap());
    });
    g.bench_function("general_g", |b| {
        b.iter(|| general.encrypt(&m, &mut rng).unwrap());
    });
    g.finish();
}

/// Decryption ablation: CRT over p²/q² vs direct L(c^λ)·μ.
fn ablation_decryption(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let kp = PaillierKeypair::generate(512, &mut rng).unwrap();
    let ct = kp.public.encrypt_u64(42, &mut rng).unwrap();

    let mut g = c.benchmark_group("ablation_paillier_decrypt_512");
    g.bench_function("crt", |b| {
        b.iter(|| kp.secret.decrypt(&ct).unwrap());
    });
    g.bench_function("reference", |b| {
        b.iter(|| kp.secret.decrypt_reference(&ct).unwrap());
    });
    g.finish();
}

/// Garbling ablation on the selected-sum circuit (XOR-heavy adders).
fn ablation_garbling(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_garbling_selected_sum_n32");
    g.sample_size(10);
    let (circuit, _) = selected_sum_circuit(32, 32);
    g.bench_function("classic_4row", |b| {
        let mut rng = StdRng::seed_from_u64(4);
        b.iter(|| garble(&circuit, &mut rng));
    });
    g.bench_function("free_xor", |b| {
        let mut rng = StdRng::seed_from_u64(5);
        b.iter(|| garble_free_xor(&circuit, &mut rng));
    });
    g.finish();
}

/// Server fold ablation: the paper's element-by-element loop vs Straus
/// multi-exponentiation with a shared squaring chain.
fn ablation_server_fold(c: &mut Criterion) {
    use pps_protocol::messages::{Hello, IndexBatch};
    use pps_protocol::{Database, FoldStrategy, Selection, ServerSession, SumClient};

    let mut rng = StdRng::seed_from_u64(7);
    let n = 64;
    let db = Database::random_32bit(n, &mut rng).unwrap();
    let sel = Selection::random(n, 0.5, &mut rng).unwrap();
    let client = SumClient::generate(512, &mut rng).unwrap();
    let key = client.keypair().public.clone();
    let hello = Hello {
        modulus: key.n().clone(),
        total: n as u64,
        batch_size: n as u32,
        trace: None,
    }
    .encode()
    .unwrap();
    let cts: Vec<_> = sel
        .weights()
        .iter()
        .map(|&w| key.encrypt_u64(w, &mut rng).unwrap())
        .collect();
    let batch = IndexBatch {
        seq: 0,
        ciphertexts: cts,
    }
    .encode(&key)
    .unwrap();

    let mut g = c.benchmark_group("ablation_server_fold_n64_512bit");
    g.sample_size(20);
    for (name, strategy) in [
        ("incremental", FoldStrategy::Incremental),
        ("multiexp", FoldStrategy::MultiExp),
        ("parallel_multiexp", FoldStrategy::ParallelMultiExp),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut s = ServerSession::with_fold(&db, strategy);
                s.on_frame(&hello).unwrap();
                s.on_frame(&batch).unwrap().unwrap()
            });
        });
    }
    g.finish();
}

/// Server fold ablation at deployment scale: n = 10k–100k index
/// ciphertexts folded with each strategy, measured at the `fold_product`
/// layer the session dispatches to. A small pool of real ciphertexts is
/// cycled out to length n — the fold's cost depends only on the count
/// and exponent widths, not on ciphertext distinctness — so setup stays
/// seconds instead of minutes.
fn ablation_server_fold_scale(c: &mut Criterion) {
    use pps_protocol::FoldStrategy;

    let mut rng = StdRng::seed_from_u64(8);
    let kp = PaillierKeypair::generate(512, &mut rng).unwrap();
    let key = &kp.public;
    let pool: Vec<_> = (0..64)
        .map(|w| key.encrypt_u64(w & 1, &mut rng).unwrap())
        .collect();
    let threads = FoldStrategy::ParallelMultiExp.threads();

    let mut g = c.benchmark_group("ablation_server_fold_scale_512bit");
    g.sample_size(10);
    for n in [10_000usize, 100_000] {
        let cts: Vec<_> = pool.iter().cycle().take(n).cloned().collect();
        let weights: Vec<Uint> = (0..n)
            .map(|_| Uint::from_u64(rand::Rng::gen::<u32>(&mut rng) as u64))
            .collect();
        g.bench_with_input(BenchmarkId::new("incremental", n), &n, |b, _| {
            b.iter(|| {
                let mut acc = key.identity();
                for (ct, w) in cts.iter().zip(&weights) {
                    acc = key.add(&acc, &key.mul_plain(ct, w).unwrap()).unwrap();
                }
                acc
            });
        });
        g.bench_with_input(BenchmarkId::new("multiexp", n), &n, |b, _| {
            b.iter(|| key.fold_product(&cts, &weights).unwrap());
        });
        g.bench_with_input(BenchmarkId::new("parallel_multiexp", n), &n, |b, _| {
            b.iter(|| key.fold_product_parallel(&cts, &weights, threads).unwrap());
        });
    }
    g.finish();
}

/// Multiplication ablation around the Karatsuba threshold.
fn ablation_karatsuba(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(6);
    let mut g = c.benchmark_group("ablation_mul_width");
    for limbs in [16usize, 32, 64, 128] {
        let a = Uint::from_limbs((0..limbs).map(|_| rand::Rng::gen(&mut rng)).collect());
        let b = Uint::from_limbs((0..limbs).map(|_| rand::Rng::gen(&mut rng)).collect());
        g.bench_with_input(
            BenchmarkId::from_parameter(limbs * 64),
            &limbs,
            |bench, _| {
                bench.iter(|| &a * &b);
            },
        );
    }
    g.finish();
}

criterion_group!(
    benches,
    ablation_reduction_strategy,
    ablation_generator_choice,
    ablation_decryption,
    ablation_garbling,
    ablation_server_fold,
    ablation_server_fold_scale,
    ablation_karatsuba
);
criterion_main!(benches);
