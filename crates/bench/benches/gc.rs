//! Garbled-circuit comparator benchmarks: garbling/evaluation throughput
//! and the end-to-end selected-sum cost that the §2 comparison tables
//! report.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pps_crypto::PaillierKeypair;
use pps_gc::{evaluate, garble, run_gc_selected_sum, selected_sum_circuit, Label};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_garble(c: &mut Criterion) {
    let mut g = c.benchmark_group("gc_garble_selected_sum");
    g.sample_size(10);
    for n in [16usize, 64] {
        let (circuit, _) = selected_sum_circuit(n, 32);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| garble(&circuit, &mut rng));
        });
    }
    g.finish();
}

fn bench_evaluate(c: &mut Criterion) {
    let mut g = c.benchmark_group("gc_evaluate_selected_sum");
    g.sample_size(10);
    for n in [16usize, 64] {
        let (circuit, _) = selected_sum_circuit(n, 32);
        let mut rng = StdRng::seed_from_u64(2);
        let (garbled, secrets) = garble(&circuit, &mut rng);
        let values: Vec<u64> = (0..n as u64).collect();
        let gv = pps_gc::pack_selected_sum_garbler_values(&values, 32, &circuit);
        let gl = secrets.garbler_input_labels(&circuit, &gv).unwrap();
        let el: Vec<Label> = (0..n)
            .map(|i| secrets.evaluator_input_pair(&circuit, i).select(i % 2 == 0))
            .collect();
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| evaluate(&circuit, &garbled, &gl, &el).unwrap());
        });
    }
    g.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let kp = PaillierKeypair::generate(512, &mut rng).unwrap();
    let mut g = c.benchmark_group("gc_end_to_end_32bit");
    g.sample_size(10);
    for n in [8usize, 32] {
        let values: Vec<u64> = (0..n).map(|_| rng.gen_range(0..1u64 << 32)).collect();
        let bits: Vec<bool> = (0..n).map(|_| rng.gen()).collect();
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            let mut inner = StdRng::seed_from_u64(4);
            b.iter(|| run_gc_selected_sum(&values, &bits, 32, &kp, &mut inner).unwrap());
        });
    }
    g.finish();
}

criterion_group!(benches, bench_garble, bench_evaluate, bench_end_to_end);
criterion_main!(benches);
