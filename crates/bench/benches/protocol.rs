//! End-to-end protocol benchmarks: every variant on a fixed small
//! workload, so regressions in any layer show up in one place.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pps_protocol::{
    run_basic, run_batched, run_combined, run_multiclient, run_plain_baseline, run_preprocessed,
    Database, Selection, SumClient,
};
use pps_stats::{private_moments, Wants};
use pps_transport::LinkProfile;
use rand::rngs::StdRng;
use rand::SeedableRng;

const N: usize = 200;
const KEY_BITS: usize = 512;

struct Fixture {
    db: Database,
    sel: Selection,
    client: SumClient,
    rng: StdRng,
}

fn fixture() -> Fixture {
    let mut rng = StdRng::seed_from_u64(2004);
    let db = Database::random_32bit(N, &mut rng).unwrap();
    let sel = Selection::random(N, 0.5, &mut rng).unwrap();
    let client = SumClient::generate(KEY_BITS, &mut rng).unwrap();
    Fixture {
        db,
        sel,
        client,
        rng,
    }
}

fn bench_variants(c: &mut Criterion) {
    let mut f = fixture();
    let mut g = c.benchmark_group("protocol_variants_n200_512bit");
    g.sample_size(10);

    g.bench_function("basic", |b| {
        b.iter(|| {
            run_basic(
                &f.db,
                &f.sel,
                &f.client,
                LinkProfile::gigabit_lan(),
                &mut f.rng,
            )
            .unwrap()
        });
    });
    g.bench_function("batched_100", |b| {
        b.iter(|| {
            run_batched(
                &f.db,
                &f.sel,
                &f.client,
                LinkProfile::gigabit_lan(),
                100,
                &mut f.rng,
            )
            .unwrap()
        });
    });
    g.bench_function("preprocessed", |b| {
        b.iter(|| {
            run_preprocessed(
                &f.db,
                &f.sel,
                &f.client,
                LinkProfile::gigabit_lan(),
                &mut f.rng,
            )
            .unwrap()
        });
    });
    g.bench_function("combined", |b| {
        b.iter(|| {
            run_combined(
                &f.db,
                &f.sel,
                &f.client,
                LinkProfile::gigabit_lan(),
                100,
                &mut f.rng,
            )
            .unwrap()
        });
    });
    g.bench_function("plain_baseline", |b| {
        b.iter(|| run_plain_baseline(&f.db, &f.sel, LinkProfile::gigabit_lan()).unwrap());
    });
    g.finish();
}

fn bench_multiclient(c: &mut Criterion) {
    let mut f = fixture();
    let mut g = c.benchmark_group("multiclient_n200_512bit");
    g.sample_size(10);
    for k in [2usize, 3] {
        g.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| {
                run_multiclient(
                    &f.db,
                    &f.sel,
                    k,
                    KEY_BITS,
                    LinkProfile::gigabit_lan(),
                    &mut f.rng,
                )
                .unwrap()
            });
        });
    }
    g.finish();
}

fn bench_stats_layer(c: &mut Criterion) {
    let mut f = fixture();
    let mut g = c.benchmark_group("stats_n200_512bit");
    g.sample_size(10);
    g.bench_function("sum_only", |b| {
        b.iter(|| {
            pps_stats::run_stats_query(
                &f.db,
                &f.sel,
                &f.client,
                LinkProfile::gigabit_lan(),
                Wants::sum_only(),
                &mut f.rng,
            )
            .unwrap()
        });
    });
    g.bench_function("full_moments", |b| {
        b.iter(|| {
            private_moments(
                &f.db,
                &f.sel,
                &f.client,
                LinkProfile::gigabit_lan(),
                &mut f.rng,
            )
            .unwrap()
        });
    });
    g.finish();
}

fn bench_scaling(c: &mut Criterion) {
    // Linearity check: basic protocol across n.
    let mut rng = StdRng::seed_from_u64(5);
    let client = SumClient::generate(KEY_BITS, &mut rng).unwrap();
    let mut g = c.benchmark_group("protocol_scaling_basic");
    g.sample_size(10);
    for n in [100usize, 200, 400] {
        let db = Database::random_32bit(n, &mut rng).unwrap();
        let sel = Selection::random(n, 0.5, &mut rng).unwrap();
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            let mut inner_rng = StdRng::seed_from_u64(6);
            b.iter(|| {
                run_basic(
                    &db,
                    &sel,
                    &client,
                    LinkProfile::gigabit_lan(),
                    &mut inner_rng,
                )
                .unwrap()
            });
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_variants,
    bench_multiclient,
    bench_stats_layer,
    bench_scaling
);
criterion_main!(benches);
