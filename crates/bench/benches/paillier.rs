//! Paillier operation benchmarks at the paper's 512-bit key size (plus
//! larger moderns), isolating the four protocol cost components.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pps_bignum::Uint;
use pps_crypto::{BitEncryptionPool, PaillierKeypair};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn keypair(bits: usize) -> PaillierKeypair {
    let mut rng = StdRng::seed_from_u64(bits as u64);
    PaillierKeypair::generate(bits, &mut rng).unwrap()
}

fn bench_encrypt(c: &mut Criterion) {
    let mut g = c.benchmark_group("paillier_encrypt");
    for bits in [512usize, 1024, 2048] {
        let kp = keypair(bits);
        let mut rng = StdRng::seed_from_u64(7);
        g.bench_with_input(BenchmarkId::from_parameter(bits), &bits, |b, _| {
            b.iter(|| kp.public.encrypt_u64(1, &mut rng).unwrap());
        });
    }
    g.finish();
}

fn bench_encrypt_pooled(c: &mut Criterion) {
    // The §3.3 online path: a pool lookup instead of an exponentiation.
    let kp = keypair(512);
    let mut rng = StdRng::seed_from_u64(8);
    c.bench_function("paillier_encrypt_pooled_512", |b| {
        b.iter_batched(
            || {
                let mut pool = BitEncryptionPool::new(kp.public.clone());
                pool.fill(0, 64, &mut rng).unwrap();
                pool
            },
            |mut pool| {
                for _ in 0..64 {
                    let _ = pool.take(true).unwrap();
                }
            },
            criterion::BatchSize::SmallInput,
        );
    });
}

fn bench_decrypt(c: &mut Criterion) {
    let mut g = c.benchmark_group("paillier_decrypt_crt");
    for bits in [512usize, 1024, 2048] {
        let kp = keypair(bits);
        let mut rng = StdRng::seed_from_u64(9);
        let ct = kp.public.encrypt_u64(123_456_789, &mut rng).unwrap();
        g.bench_with_input(BenchmarkId::from_parameter(bits), &bits, |b, _| {
            b.iter(|| kp.secret.decrypt(&ct).unwrap());
        });
    }
    g.finish();
}

fn bench_decrypt_reference_vs_crt(c: &mut Criterion) {
    let kp = keypair(512);
    let mut rng = StdRng::seed_from_u64(10);
    let ct = kp.public.encrypt_u64(42, &mut rng).unwrap();
    c.bench_function("paillier_decrypt_reference_512", |b| {
        b.iter(|| kp.secret.decrypt_reference(&ct).unwrap());
    });
}

fn bench_server_fold(c: &mut Criterion) {
    // The server's per-element work: E(I)^x · acc mod N², 32-bit x.
    let kp = keypair(512);
    let mut rng = StdRng::seed_from_u64(11);
    let e_i = kp.public.encrypt_u64(1, &mut rng).unwrap();
    let acc = kp.public.encrypt_u64(0, &mut rng).unwrap();
    let x = Uint::from_u64(0xdead_beef);
    c.bench_function("paillier_server_fold_512", |b| {
        b.iter(|| {
            let term = kp.public.mul_plain(&e_i, &x).unwrap();
            kp.public.add(&acc, &term).unwrap()
        });
    });
}

fn bench_keygen(c: &mut Criterion) {
    let mut g = c.benchmark_group("paillier_keygen");
    g.sample_size(10);
    for bits in [256usize, 512] {
        g.bench_with_input(BenchmarkId::from_parameter(bits), &bits, |b, &bits| {
            let mut rng = StdRng::seed_from_u64(12);
            b.iter(|| PaillierKeypair::generate(bits, &mut rng).unwrap());
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_encrypt,
    bench_encrypt_pooled,
    bench_decrypt,
    bench_decrypt_reference_vs_crt,
    bench_server_fold,
    bench_keygen
);
criterion_main!(benches);
