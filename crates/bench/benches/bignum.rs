//! Microbenchmarks for the bignum substrate: the primitive costs that
//! determine the whole protocol's profile (the paper's bottleneck is one
//! `r^N mod N²` per database element).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pps_bignum::{Montgomery, Uint};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_uint(rng: &mut StdRng, bits: usize) -> Uint {
    Uint::random_bits_exact(rng, bits)
}

fn bench_mul(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let mut g = c.benchmark_group("uint_mul");
    for bits in [512usize, 1024, 2048, 4096] {
        let a = random_uint(&mut rng, bits);
        let b = random_uint(&mut rng, bits);
        g.bench_with_input(BenchmarkId::from_parameter(bits), &bits, |bench, _| {
            bench.iter(|| &a * &b);
        });
    }
    g.finish();
}

fn bench_div(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let mut g = c.benchmark_group("uint_div_rem");
    for bits in [512usize, 1024, 2048] {
        let a = random_uint(&mut rng, 2 * bits);
        let b = random_uint(&mut rng, bits);
        g.bench_with_input(BenchmarkId::from_parameter(bits), &bits, |bench, _| {
            bench.iter(|| a.div_rem(&b).unwrap());
        });
    }
    g.finish();
}

fn bench_modpow(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let mut g = c.benchmark_group("montgomery_pow");
    g.sample_size(20);
    for bits in [512usize, 1024, 2048] {
        let mut n = random_uint(&mut rng, bits);
        n.set_bit(0, true);
        let ctx = Montgomery::new(n.clone()).unwrap();
        let base = random_uint(&mut rng, bits - 1);
        let exp = random_uint(&mut rng, bits - 1);
        g.bench_with_input(BenchmarkId::from_parameter(bits), &bits, |bench, _| {
            bench.iter(|| ctx.pow(&base, &exp).unwrap());
        });
    }
    g.finish();
}

fn bench_modpow_small_exponent(c: &mut Criterion) {
    // The server's per-element cost: ciphertext^x with a 32-bit exponent.
    let mut rng = StdRng::seed_from_u64(4);
    let mut n = random_uint(&mut rng, 1024);
    n.set_bit(0, true);
    let ctx = Montgomery::new(n).unwrap();
    let base = random_uint(&mut rng, 1023);
    let exp = Uint::from_u64(rng.gen::<u32>() as u64);
    c.bench_function("montgomery_pow_32bit_exp_1024bit_mod", |b| {
        b.iter(|| ctx.pow(&base, &exp).unwrap());
    });
}

fn bench_prime_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("prime_generation");
    g.sample_size(10);
    for bits in [128usize, 256] {
        g.bench_with_input(BenchmarkId::from_parameter(bits), &bits, |bench, &bits| {
            let mut rng = StdRng::seed_from_u64(5);
            bench.iter(|| Uint::generate_prime(&mut rng, bits).unwrap());
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_mul,
    bench_div,
    bench_modpow,
    bench_modpow_small_exponent,
    bench_prime_generation
);
criterion_main!(benches);
