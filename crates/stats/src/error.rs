//! Error type for the statistics layer.

use std::fmt;

use pps_protocol::ProtocolError;

/// Errors surfaced by private statistics queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StatsError {
    /// Underlying protocol failure.
    Protocol(ProtocolError),
    /// Query configuration rejected.
    Config(String),
    /// A decrypted aggregate disagreed with the plaintext oracle.
    Mismatch {
        /// Which aggregate.
        aggregate: &'static str,
        /// Decrypted value.
        got: u128,
        /// Oracle value.
        expected: u128,
    },
    /// A ratio statistic was requested over an empty selection.
    EmptySelection,
}

impl fmt::Display for StatsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Protocol(e) => write!(f, "protocol error: {e}"),
            Self::Config(why) => write!(f, "invalid statistics query: {why}"),
            Self::Mismatch {
                aggregate,
                got,
                expected,
            } => {
                write!(f, "{aggregate} mismatch: got {got}, expected {expected}")
            }
            Self::EmptySelection => write!(f, "statistic undefined over an empty selection"),
        }
    }
}

impl std::error::Error for StatsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Protocol(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ProtocolError> for StatsError {
    fn from(e: ProtocolError) -> Self {
        Self::Protocol(e)
    }
}

impl From<pps_transport::TransportError> for StatsError {
    fn from(e: pps_transport::TransportError) -> Self {
        Self::Protocol(ProtocolError::from(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = StatsError::Mismatch {
            aggregate: "sum",
            got: 1,
            expected: 2,
        };
        assert!(e.to_string().contains("sum mismatch"));
        assert!(StatsError::EmptySelection.to_string().contains("empty"));
    }
}
