//! Private bivariate statistics: covariance and Pearson correlation of
//! two server-side columns over a private selection.
//!
//! The same single pass of encrypted indices yields six aggregates — the
//! server folds the received `E(I_i)` against six plaintext value
//! vectors (1, x, y, x², y², x·y) — from which covariance and correlation
//! derive:
//!
//! ```text
//! cov(x, y) = E[xy] − E[x]·E[y]
//! corr(x, y) = cov(x, y) / (σ_x · σ_y)
//! ```
//!
//! This is the natural next statistic after the paper's means and
//! variances, with the identical privacy structure.

use std::time::Duration;

use pps_protocol::{Database, ProtocolError, Selection, ServerSession, SumClient};
use pps_transport::{Frame, LinkProfile, SimLink, TransportError, Wire};
use rand::RngCore;

use crate::error::StatsError;
use crate::report::StatsTimings;

/// Two aligned columns held by the server.
pub struct PairedDatabase {
    x: Database,
    y: Database,
}

impl PairedDatabase {
    /// Wraps two equal-length columns.
    ///
    /// # Errors
    /// [`StatsError::Config`] on length mismatch or empty columns;
    /// values must keep all products within `u64`.
    pub fn new(x: Vec<u64>, y: Vec<u64>) -> Result<Self, StatsError> {
        if x.len() != y.len() {
            return Err(StatsError::Config(format!(
                "column lengths differ: {} vs {}",
                x.len(),
                y.len()
            )));
        }
        for (&a, &b) in x.iter().zip(&y) {
            if a.checked_mul(b).is_none()
                || a.checked_mul(a).is_none()
                || b.checked_mul(b).is_none()
            {
                return Err(StatsError::Config(format!("product {a}·{b} overflows u64")));
            }
        }
        Ok(PairedDatabase {
            x: Database::new(x)?,
            y: Database::new(y)?,
        })
    }

    /// Rows per column.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// True iff empty (cannot happen by construction).
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    /// The x column.
    pub fn x(&self) -> &Database {
        &self.x
    }

    /// The y column.
    pub fn y(&self) -> &Database {
        &self.y
    }
}

/// Decrypted bivariate aggregates and derived statistics.
#[derive(Clone, Debug)]
pub struct PairedReport {
    /// `Σ I_i` — selected count.
    pub count: u128,
    /// `Σ I_i·x_i`.
    pub sum_x: u128,
    /// `Σ I_i·y_i`.
    pub sum_y: u128,
    /// `Σ I_i·x_i²`.
    pub sum_xx: u128,
    /// `Σ I_i·y_i²`.
    pub sum_yy: u128,
    /// `Σ I_i·x_i·y_i`.
    pub sum_xy: u128,
    /// Execution breakdown.
    pub timings: StatsTimings,
}

impl PairedReport {
    /// Population covariance; `None` for an empty selection.
    pub fn covariance(&self) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let n = self.count as f64;
        let mean_x = self.sum_x as f64 / n;
        let mean_y = self.sum_y as f64 / n;
        Some(self.sum_xy as f64 / n - mean_x * mean_y)
    }

    /// Population variance of the x column over the selection.
    pub fn variance_x(&self) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let n = self.count as f64;
        let mean = self.sum_x as f64 / n;
        Some((self.sum_xx as f64 / n - mean * mean).max(0.0))
    }

    /// Population variance of the y column over the selection.
    pub fn variance_y(&self) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let n = self.count as f64;
        let mean = self.sum_y as f64 / n;
        Some((self.sum_yy as f64 / n - mean * mean).max(0.0))
    }

    /// Pearson correlation; `None` when either variance is zero or the
    /// selection is empty.
    pub fn correlation(&self) -> Option<f64> {
        let cov = self.covariance()?;
        let sx = self.variance_x()?.sqrt();
        let sy = self.variance_y()?.sqrt();
        if sx == 0.0 || sy == 0.0 {
            return None;
        }
        Some((cov / (sx * sy)).clamp(-1.0, 1.0))
    }
}

/// Runs the six-aggregate bivariate query: one pass of encrypted indices,
/// six homomorphic products, six decryptions.
///
/// # Errors
/// Configuration, crypto, and transport failures; any aggregate that
/// disagrees with the plaintext oracle.
pub fn private_paired_moments(
    db: &PairedDatabase,
    selection: &Selection,
    client: &SumClient,
    link: LinkProfile,
    rng: &mut dyn RngCore,
) -> Result<PairedReport, StatsError> {
    if selection.len() != db.len() {
        return Err(StatsError::Config(
            "selection/database length mismatch".into(),
        ));
    }
    if selection.max_weight() > 1 {
        return Err(StatsError::Config(
            "bivariate moments need a 0/1 selection".into(),
        ));
    }

    // The six value vectors the server folds against.
    let ones = Database::new(vec![1u64; db.len()])?;
    let xx = db.x.squared()?;
    let yy = db.y.squared()?;
    let xy = Database::new(
        db.x.values()
            .iter()
            .zip(db.y.values())
            .map(|(&a, &b)| a * b) // checked at construction
            .collect(),
    )?;
    let vectors: [(&'static str, &Database); 6] = [
        ("count", &ones),
        ("sum_x", &db.x),
        ("sum_y", &db.y),
        ("sum_xx", &xx),
        ("sum_yy", &yy),
        ("sum_xy", &xy),
    ];
    for (_, v) in &vectors {
        pps_protocol::check_message_space(v, selection, client.keypair().public.n())?;
    }

    let (mut cw, mut sw) = SimLink::pair(link);

    let mut source = pps_protocol::IndexSource::Fresh(rng);
    let send_stats = client.send_query(&mut cw, selection, selection.len(), &mut source)?;

    // Server captures the index frames once, replays per aggregate.
    let mut captured: Vec<Frame> = Vec::new();
    loop {
        match sw.recv() {
            Ok(f) => captured.push(f),
            Err(TransportError::Empty) => break,
            Err(e) => return Err(ProtocolError::from(e).into()),
        }
    }

    let mut server_compute = Duration::ZERO;
    let mut results = [0u128; 6];
    let mut decrypt = Duration::ZERO;
    for (slot, (name, database)) in vectors.iter().enumerate() {
        let mut session = ServerSession::new(database);
        let mut reply = None;
        for f in &captured {
            if let Some(r) = session.on_frame(f)? {
                reply = Some(r);
            }
        }
        server_compute += session.stats().compute;
        let frame = reply.ok_or_else(|| StatsError::Config("no product produced".into()))?;
        sw.send(frame)?;
        let frame = cw.recv().map_err(ProtocolError::from)?;
        let (value, d) = client.decrypt_product(&frame)?;
        decrypt += d;
        let v = value
            .to_u128()
            .ok_or_else(|| StatsError::Config("aggregate exceeds 128 bits".into()))?;
        let expected = database.oracle_sum(selection)?;
        if v != expected {
            return Err(StatsError::Mismatch {
                aggregate: name,
                got: v,
                expected,
            });
        }
        results[slot] = v;
    }

    let wire = cw.stats();
    Ok(PairedReport {
        count: results[0],
        sum_x: results[1],
        sum_y: results[2],
        sum_xx: results[3],
        sum_yy: results[4],
        sum_xy: results[5],
        timings: StatsTimings {
            client_encrypt: send_stats.encrypt,
            server_compute,
            comm: cw.virtual_elapsed(),
            client_decrypt: decrypt,
            bytes_to_server: wire.payload_bytes_sent,
            bytes_to_client: wire.payload_bytes_received,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn client() -> (SumClient, StdRng) {
        let mut rng = StdRng::seed_from_u64(1313);
        (SumClient::generate(192, &mut rng).unwrap(), rng)
    }

    #[test]
    fn construction_validation() {
        assert!(PairedDatabase::new(vec![1, 2], vec![1]).is_err());
        assert!(PairedDatabase::new(vec![], vec![]).is_err());
        assert!(
            PairedDatabase::new(vec![u64::MAX], vec![2]).is_err(),
            "product overflow"
        );
        let db = PairedDatabase::new(vec![1, 2], vec![3, 4]).unwrap();
        assert_eq!(db.len(), 2);
    }

    #[test]
    fn perfectly_correlated_columns() {
        // y = 2x → correlation exactly 1.
        let x = vec![1u64, 2, 3, 4, 5, 6];
        let y: Vec<u64> = x.iter().map(|&v| 2 * v).collect();
        let db = PairedDatabase::new(x, y).unwrap();
        let sel = Selection::from_bits(&[true; 6]);
        let (c, mut rng) = client();
        let r =
            private_paired_moments(&db, &sel, &c, LinkProfile::gigabit_lan(), &mut rng).unwrap();
        assert!((r.correlation().unwrap() - 1.0).abs() < 1e-9);
        assert!(r.covariance().unwrap() > 0.0);
    }

    #[test]
    fn covariance_matches_plaintext() {
        let x = vec![3u64, 7, 1, 9, 4];
        let y = vec![10u64, 2, 8, 5, 6];
        let db = PairedDatabase::new(x.clone(), y.clone()).unwrap();
        let sel = Selection::from_bits(&[true, false, true, true, false]);
        let (c, mut rng) = client();
        let r =
            private_paired_moments(&db, &sel, &c, LinkProfile::gigabit_lan(), &mut rng).unwrap();

        // Plaintext oracle over the selected rows {0, 2, 3}.
        let xs = [3.0f64, 1.0, 9.0];
        let ys = [10.0f64, 8.0, 5.0];
        let mx = xs.iter().sum::<f64>() / 3.0;
        let my = ys.iter().sum::<f64>() / 3.0;
        let cov = xs
            .iter()
            .zip(&ys)
            .map(|(a, b)| (a - mx) * (b - my))
            .sum::<f64>()
            / 3.0;
        assert!((r.covariance().unwrap() - cov).abs() < 1e-9);
        assert_eq!(r.count, 3);
    }

    #[test]
    fn constant_column_has_no_correlation() {
        let db = PairedDatabase::new(vec![5, 5, 5], vec![1, 2, 3]).unwrap();
        let sel = Selection::from_bits(&[true; 3]);
        let (c, mut rng) = client();
        let r =
            private_paired_moments(&db, &sel, &c, LinkProfile::gigabit_lan(), &mut rng).unwrap();
        assert_eq!(r.variance_x(), Some(0.0));
        assert!(r.correlation().is_none());
    }

    #[test]
    fn empty_selection() {
        let db = PairedDatabase::new(vec![1, 2], vec![3, 4]).unwrap();
        let sel = Selection::from_bits(&[false, false]);
        let (c, mut rng) = client();
        let r =
            private_paired_moments(&db, &sel, &c, LinkProfile::gigabit_lan(), &mut rng).unwrap();
        assert_eq!(r.count, 0);
        assert!(r.covariance().is_none());
        assert!(r.correlation().is_none());
    }

    #[test]
    fn weighted_selection_rejected() {
        let db = PairedDatabase::new(vec![1, 2], vec![3, 4]).unwrap();
        let sel = Selection::weighted(vec![2, 0]);
        let (c, mut rng) = client();
        assert!(
            private_paired_moments(&db, &sel, &c, LinkProfile::gigabit_lan(), &mut rng).is_err()
        );
    }

    #[test]
    fn one_upstream_pass_for_six_aggregates() {
        let db = PairedDatabase::new(vec![1, 2, 3, 4], vec![4, 3, 2, 1]).unwrap();
        let sel = Selection::from_bits(&[true; 4]);
        let (c, mut rng) = client();
        let r =
            private_paired_moments(&db, &sel, &c, LinkProfile::gigabit_lan(), &mut rng).unwrap();
        let w = c.keypair().public.ciphertext_bytes();
        // Upstream: hello + 4 ciphertexts (one pass). Downstream: 6 products.
        assert!(r.timings.bytes_to_server < 5 * w + 200);
        assert!(r.timings.bytes_to_client >= 6 * w);
    }
}
