//! Private statistics queries.
//!
//! The paper motivates private selected sums because they "immediately
//! yield private solutions for computing means, variances, and weighted
//! averages" (§1). This module realizes that: the client sends its
//! encrypted selection vector **once**, and the server folds the same
//! ciphertexts against several value vectors — the data `x`, its squares
//! `x²`, and the all-ones vector — returning one encrypted aggregate per
//! requested moment. From `Σ I_i`, `Σ I_i·x_i`, and `Σ I_i·x_i²` the
//! client derives count, sum, mean, variance, and standard deviation of
//! the selected rows; integer weights give weighted sums and means.
//!
//! Privacy: the server sees only semantically secure ciphertexts (client
//! privacy); the client learns exactly the requested aggregates and
//! nothing else about individual rows (database privacy) — though note
//! that, as in the paper, the *combination* of aggregates reveals what it
//! reveals (e.g. count + sum of a single row reveals that row; inference
//! control is out of scope here as there).

use std::time::{Duration, Instant};

use pps_protocol::{Database, ProtocolError, Selection, ServerSession, SumClient};
use pps_transport::{Frame, LinkProfile, SimLink, TransportError, Wire};
use rand::RngCore;

use crate::error::StatsError;
use crate::report::{StatsReport, StatsTimings};

/// Which aggregates a query requests.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Wants {
    /// `Σ I_i` — the selected-row count.
    pub count: bool,
    /// `Σ I_i·x_i` — the selected sum.
    pub sum: bool,
    /// `Σ I_i·x_i²` — the selected sum of squares (enables variance).
    pub sum_squares: bool,
}

impl Wants {
    /// Everything needed for mean/variance/std-dev.
    pub fn all() -> Self {
        Wants {
            count: true,
            sum: true,
            sum_squares: true,
        }
    }

    /// Just the sum (the paper's core experiment).
    pub fn sum_only() -> Self {
        Wants {
            count: false,
            sum: true,
            sum_squares: false,
        }
    }

    fn any(&self) -> bool {
        self.count || self.sum || self.sum_squares
    }
}

/// Executes one private statistics query over a simulated link.
///
/// Protocol: the client streams `Hello` + encrypted index batches exactly
/// as in the base protocol; the server replays the captured index frames
/// through one [`ServerSession`] per requested aggregate (reusing the
/// *same* received ciphertexts — no extra upstream communication) and
/// returns one `Product` per aggregate, in a fixed order (count, sum,
/// sum of squares).
///
/// # Errors
/// Configuration, crypto, and transport failures; any decrypted aggregate
/// that disagrees with the plaintext oracle.
pub fn run_stats_query(
    db: &Database,
    selection: &Selection,
    client: &SumClient,
    link: LinkProfile,
    wants: Wants,
    rng: &mut dyn RngCore,
) -> Result<StatsReport, StatsError> {
    if !wants.any() {
        return Err(StatsError::Config("query requests no aggregates".into()));
    }
    if selection.len() != db.len() {
        return Err(StatsError::Config(format!(
            "selection length {} != database length {}",
            selection.len(),
            db.len()
        )));
    }
    // Value vectors per aggregate.
    let ones = Database::new(vec![1u64; db.len()])?;
    let squared = if wants.sum_squares {
        Some(db.squared()?)
    } else {
        None
    };

    // Message-space guard for the largest vector in play.
    pps_protocol::check_message_space(db, selection, client.keypair().public.n())?;
    if let Some(sq) = &squared {
        pps_protocol::check_message_space(sq, selection, client.keypair().public.n())?;
    }

    let (mut cw, mut sw) = SimLink::pair(link.clone());

    // Client: one pass of encrypted indices.
    let mut source = pps_protocol::IndexSource::Fresh(rng);
    let send_stats = client.send_query(&mut cw, selection, selection.len(), &mut source)?;

    // Server: capture the frames, replay through one session per
    // aggregate. The replay consumes no additional client bandwidth.
    let mut captured: Vec<Frame> = Vec::new();
    loop {
        match sw.recv() {
            Ok(f) => captured.push(f),
            Err(TransportError::Empty) => break,
            Err(e) => return Err(ProtocolError::from(e).into()),
        }
    }

    let mut server_compute = Duration::ZERO;
    let mut run_session = |database: &Database| -> Result<Frame, StatsError> {
        let mut session = ServerSession::new(database);
        let mut reply = None;
        for f in &captured {
            if let Some(r) = session.on_frame(f)? {
                reply = Some(r);
            }
        }
        server_compute += session.stats().compute;
        reply.ok_or_else(|| StatsError::Config("session produced no product".into()))
    };

    let mut replies: Vec<(&'static str, Frame)> = Vec::new();
    if wants.count {
        replies.push(("count", run_session(&ones)?));
    }
    if wants.sum {
        replies.push(("sum", run_session(db)?));
    }
    if let Some(sq) = &squared {
        replies.push(("sum_squares", run_session(sq)?));
    }
    for (_, f) in &replies {
        sw.send(f.clone())?;
    }

    // Client: decrypt each aggregate.
    let mut decrypt = Duration::ZERO;
    let mut count = None;
    let mut sum = None;
    let mut sum_squares = None;
    for (name, _) in &replies {
        let frame = cw.recv().map_err(ProtocolError::from)?;
        let (value, d) = client.decrypt_product(&frame)?;
        decrypt += d;
        let v = value
            .to_u128()
            .ok_or_else(|| StatsError::Config("aggregate exceeds 128 bits".into()))?;
        match *name {
            "count" => count = Some(v),
            "sum" => sum = Some(v),
            "sum_squares" => sum_squares = Some(v),
            _ => unreachable!("fixed aggregate set"),
        }
    }

    // Oracle verification.
    let verify_start = Instant::now();
    if let Some(c) = count {
        let expect = selection.weights().iter().map(|&w| w as u128).sum::<u128>();
        if c != expect {
            return Err(StatsError::Mismatch {
                aggregate: "count",
                got: c,
                expected: expect,
            });
        }
    }
    if let Some(s) = sum {
        let expect = db.oracle_sum(selection)?;
        if s != expect {
            return Err(StatsError::Mismatch {
                aggregate: "sum",
                got: s,
                expected: expect,
            });
        }
    }
    if let Some(sq) = sum_squares {
        let expect = squared
            .as_ref()
            .expect("squared db exists when sum_squares requested")
            .oracle_sum(selection)?;
        if sq != expect {
            return Err(StatsError::Mismatch {
                aggregate: "sum_squares",
                got: sq,
                expected: expect,
            });
        }
    }
    let _ = verify_start.elapsed();

    let wire = cw.stats();
    Ok(StatsReport::new(
        count,
        sum,
        sum_squares,
        StatsTimings {
            client_encrypt: send_stats.encrypt,
            server_compute,
            comm: cw.virtual_elapsed(),
            client_decrypt: decrypt,
            bytes_to_server: wire.payload_bytes_sent,
            bytes_to_client: wire.payload_bytes_received,
        },
    ))
}

/// Convenience: full `Wants::all()` query returning mean/variance-capable
/// report.
///
/// # Errors
/// As [`run_stats_query`].
pub fn private_moments(
    db: &Database,
    selection: &Selection,
    client: &SumClient,
    link: LinkProfile,
    rng: &mut dyn RngCore,
) -> Result<StatsReport, StatsError> {
    run_stats_query(db, selection, client, link, Wants::all(), rng)
}

/// Private weighted mean `Σ w_i·x_i / Σ w_i` for integer weights: two
/// aggregates from one pass of encrypted weights.
///
/// # Errors
/// As [`run_stats_query`]; division by zero total weight.
pub fn private_weighted_mean(
    db: &Database,
    weights: &Selection,
    client: &SumClient,
    link: LinkProfile,
    rng: &mut dyn RngCore,
) -> Result<f64, StatsError> {
    let report = run_stats_query(
        db,
        weights,
        client,
        link,
        Wants {
            count: true,
            sum: true,
            sum_squares: false,
        },
        rng,
    )?;
    let total_weight = report.count.expect("count requested");
    if total_weight == 0 {
        return Err(StatsError::EmptySelection);
    }
    Ok(report.sum.expect("sum requested") as f64 / total_weight as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (Database, Selection, SumClient, StdRng) {
        let mut rng = StdRng::seed_from_u64(2004);
        let db = Database::new(vec![2, 4, 6, 8, 10, 12]).unwrap();
        let sel = Selection::from_bits(&[true, false, true, false, true, false]);
        let client = SumClient::generate(128, &mut rng).unwrap();
        (db, sel, client, rng)
    }

    #[test]
    fn moments_query() {
        let (db, sel, client, mut rng) = setup();
        let r = private_moments(&db, &sel, &client, LinkProfile::gigabit_lan(), &mut rng).unwrap();
        // Selected: 2, 6, 10.
        assert_eq!(r.count, Some(3));
        assert_eq!(r.sum, Some(18));
        assert_eq!(r.sum_squares, Some(4 + 36 + 100));
        assert_eq!(r.mean().unwrap(), 6.0);
        // Population variance of {2,6,10}: ((16+0+16)/3) = 32/3.
        let var = r.variance().unwrap();
        assert!((var - 32.0 / 3.0).abs() < 1e-9, "var={var}");
        assert!((r.std_dev().unwrap() - var.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn sum_only_query() {
        let (db, sel, client, mut rng) = setup();
        let r = run_stats_query(
            &db,
            &sel,
            &client,
            LinkProfile::gigabit_lan(),
            Wants::sum_only(),
            &mut rng,
        )
        .unwrap();
        assert_eq!(r.sum, Some(18));
        assert_eq!(r.count, None);
        assert!(r.mean().is_none(), "mean needs count");
    }

    #[test]
    fn single_upstream_pass_many_aggregates() {
        // The defining property: requesting 3 aggregates costs the same
        // upstream bytes as requesting 1 (indices sent once).
        let (db, sel, client, mut rng) = setup();
        let one = run_stats_query(
            &db,
            &sel,
            &client,
            LinkProfile::gigabit_lan(),
            Wants::sum_only(),
            &mut rng,
        )
        .unwrap();
        let three =
            private_moments(&db, &sel, &client, LinkProfile::gigabit_lan(), &mut rng).unwrap();
        assert_eq!(one.timings.bytes_to_server, three.timings.bytes_to_server);
        assert!(three.timings.bytes_to_client > one.timings.bytes_to_client);
    }

    #[test]
    fn weighted_mean() {
        let mut rng = StdRng::seed_from_u64(11);
        let db = Database::new(vec![10, 20, 30]).unwrap();
        let client = SumClient::generate(128, &mut rng).unwrap();
        let w = Selection::weighted(vec![1, 2, 1]);
        let m =
            private_weighted_mean(&db, &w, &client, LinkProfile::gigabit_lan(), &mut rng).unwrap();
        // (10 + 40 + 30) / 4 = 20.
        assert!((m - 20.0).abs() < 1e-12);
    }

    #[test]
    fn empty_selection_weighted_mean_fails() {
        let mut rng = StdRng::seed_from_u64(12);
        let db = Database::new(vec![10, 20]).unwrap();
        let client = SumClient::generate(128, &mut rng).unwrap();
        let w = Selection::weighted(vec![0, 0]);
        assert!(matches!(
            private_weighted_mean(&db, &w, &client, LinkProfile::gigabit_lan(), &mut rng),
            Err(StatsError::EmptySelection)
        ));
    }

    #[test]
    fn config_errors() {
        let (db, _, client, mut rng) = setup();
        let short = Selection::from_bits(&[true]);
        assert!(run_stats_query(
            &db,
            &short,
            &client,
            LinkProfile::gigabit_lan(),
            Wants::all(),
            &mut rng
        )
        .is_err());
        let sel = Selection::from_bits(&[true; 6]);
        let none = Wants {
            count: false,
            sum: false,
            sum_squares: false,
        };
        assert!(run_stats_query(
            &db,
            &sel,
            &client,
            LinkProfile::gigabit_lan(),
            none,
            &mut rng
        )
        .is_err());
    }

    #[test]
    fn full_selection_mean_matches_plain_mean() {
        let mut rng = StdRng::seed_from_u64(13);
        let db = Database::random(50, 1000, &mut rng).unwrap();
        let client = SumClient::generate(128, &mut rng).unwrap();
        let all = Selection::from_bits(&[true; 50]);
        let r = private_moments(&db, &all, &client, LinkProfile::gigabit_lan(), &mut rng).unwrap();
        let plain_mean = db.values().iter().map(|&v| v as f64).sum::<f64>() / db.len() as f64;
        assert!((r.mean().unwrap() - plain_mean).abs() < 1e-9);
    }
}
