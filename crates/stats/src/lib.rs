//! # pps-stats
//!
//! Private statistics over a remote database, built on the selected-sum
//! protocol of `pps-protocol`. The paper's §1 motivates private sums
//! exactly because they "immediately yield private solutions for
//! computing means, variances, and weighted averages"; this crate is that
//! statistics layer:
//!
//! * [`run_stats_query`] — one pass of encrypted indices, any subset of
//!   {count, sum, sum-of-squares} computed server-side against the same
//!   ciphertexts;
//! * [`private_moments`] — count + sum + sum² in one query, from which
//!   [`StatsReport::mean`], [`StatsReport::variance`], and
//!   [`StatsReport::std_dev`] derive;
//! * [`private_weighted_mean`] — integer-weighted averages.
//!
//! # Example
//!
//! ```
//! use pps_protocol::{Database, Selection, SumClient};
//! use pps_stats::private_moments;
//! use pps_transport::LinkProfile;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let db = Database::new(vec![170, 180, 160, 175]).unwrap();   // heights
//! let cohort = Selection::from_indices(4, &[0, 1, 3]).unwrap(); // private cohort
//! let client = SumClient::generate(128, &mut rng).unwrap();
//!
//! let r = private_moments(&db, &cohort, &client, LinkProfile::gigabit_lan(), &mut rng).unwrap();
//! assert_eq!(r.mean(), Some(175.0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod paired;
mod query;
mod report;

pub use error::StatsError;
pub use paired::{private_paired_moments, PairedDatabase, PairedReport};
pub use query::{private_moments, private_weighted_mean, run_stats_query, Wants};
pub use report::{StatsReport, StatsTimings};
