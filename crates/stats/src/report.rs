//! Statistics query results and derived moments.

use std::time::Duration;

/// Timing/traffic breakdown of a statistics query (same components as the
/// base protocol's report).
#[derive(Clone, Debug, Default)]
pub struct StatsTimings {
    /// Online client encryption time (one pass of index encryptions).
    pub client_encrypt: Duration,
    /// Total server compute across all requested aggregates.
    pub server_compute: Duration,
    /// Simulated communication time.
    pub comm: Duration,
    /// Total client decryption time (one decryption per aggregate).
    pub client_decrypt: Duration,
    /// Payload bytes client → server.
    pub bytes_to_server: usize,
    /// Payload bytes server → client.
    pub bytes_to_client: usize,
}

/// Decrypted aggregates and the statistics derived from them.
#[derive(Clone, Debug)]
pub struct StatsReport {
    /// `Σ I_i` — selected-row count (or total weight).
    pub count: Option<u128>,
    /// `Σ I_i·x_i` — selected (weighted) sum.
    pub sum: Option<u128>,
    /// `Σ I_i·x_i²` — selected sum of squares.
    pub sum_squares: Option<u128>,
    /// Execution breakdown.
    pub timings: StatsTimings,
}

impl StatsReport {
    /// Assembles a report.
    pub fn new(
        count: Option<u128>,
        sum: Option<u128>,
        sum_squares: Option<u128>,
        timings: StatsTimings,
    ) -> Self {
        StatsReport {
            count,
            sum,
            sum_squares,
            timings,
        }
    }

    /// Mean of the selected rows; `None` unless both count and sum were
    /// requested, or the selection is empty.
    pub fn mean(&self) -> Option<f64> {
        match (self.count, self.sum) {
            (Some(c), Some(s)) if c > 0 => Some(s as f64 / c as f64),
            _ => None,
        }
    }

    /// Population variance `E[x²] − E[x]²` of the selected rows; `None`
    /// unless all three aggregates were requested and count > 0.
    pub fn variance(&self) -> Option<f64> {
        let c = self.count? as f64;
        if c == 0.0 {
            return None;
        }
        let mean = self.mean()?;
        let mean_sq = self.sum_squares? as f64 / c;
        // Clamp tiny negative values from floating-point rounding.
        Some((mean_sq - mean * mean).max(0.0))
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> Option<f64> {
        self.variance().map(f64::sqrt)
    }

    /// Sample (Bessel-corrected) variance; `None` when count < 2.
    pub fn sample_variance(&self) -> Option<f64> {
        let c = self.count? as f64;
        if c < 2.0 {
            return None;
        }
        self.variance().map(|v| v * c / (c - 1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(count: u128, sum: u128, sq: u128) -> StatsReport {
        StatsReport::new(Some(count), Some(sum), Some(sq), StatsTimings::default())
    }

    #[test]
    fn moments_of_known_set() {
        // {1, 2, 3, 4}: mean 2.5, population variance 1.25.
        let r = report(4, 10, 1 + 4 + 9 + 16);
        assert_eq!(r.mean(), Some(2.5));
        assert!((r.variance().unwrap() - 1.25).abs() < 1e-12);
        assert!((r.sample_variance().unwrap() - 5.0 / 3.0).abs() < 1e-12);
        assert!((r.std_dev().unwrap() - 1.25f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn missing_aggregates_give_none() {
        let r = StatsReport::new(None, Some(10), None, StatsTimings::default());
        assert!(r.mean().is_none());
        assert!(r.variance().is_none());
        let r = StatsReport::new(Some(5), None, Some(10), StatsTimings::default());
        assert!(r.mean().is_none());
    }

    #[test]
    fn empty_selection_edge() {
        let r = report(0, 0, 0);
        assert!(r.mean().is_none());
        assert!(r.variance().is_none());
    }

    #[test]
    fn single_row_variance_zero_sample_none() {
        let r = report(1, 7, 49);
        assert_eq!(r.variance(), Some(0.0));
        assert!(r.sample_variance().is_none());
    }

    #[test]
    fn rounding_clamp() {
        // Constructed so mean_sq - mean² is a tiny negative float.
        let r = report(3, 3_000_000_001, 3_000_000_002_000_000_000);
        assert!(r.variance().unwrap() >= 0.0);
    }
}
