//! Property-based tests for the Paillier implementation: the homomorphic
//! identities the selected-sum protocol relies on, over random plaintexts.
//!
//! A single 128-bit keypair is generated once (key generation dominates
//! runtime) and shared across all cases.

use std::sync::OnceLock;

use pps_bignum::Uint;
use pps_crypto::PaillierKeypair;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn keypair() -> &'static PaillierKeypair {
    static KP: OnceLock<PaillierKeypair> = OnceLock::new();
    KP.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(0xdecaf);
        PaillierKeypair::generate(128, &mut rng).unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn round_trip(m in any::<u64>(), seed in any::<u64>()) {
        let kp = keypair();
        let mut rng = StdRng::seed_from_u64(seed);
        let ct = kp.public.encrypt_u64(m, &mut rng).unwrap();
        prop_assert_eq!(kp.secret.decrypt(&ct).unwrap(), Uint::from_u64(m));
    }

    #[test]
    fn additive_homomorphism(a in any::<u64>(), b in any::<u64>(), seed in any::<u64>()) {
        let kp = keypair();
        let mut rng = StdRng::seed_from_u64(seed);
        let ea = kp.public.encrypt_u64(a, &mut rng).unwrap();
        let eb = kp.public.encrypt_u64(b, &mut rng).unwrap();
        let sum = kp.public.add(&ea, &eb).unwrap();
        let expect = Uint::from_u128(a as u128 + b as u128);
        prop_assert_eq!(kp.secret.decrypt(&sum).unwrap(), expect);
    }

    #[test]
    fn scalar_homomorphism(a in any::<u32>(), k in any::<u32>(), seed in any::<u64>()) {
        let kp = keypair();
        let mut rng = StdRng::seed_from_u64(seed);
        let ea = kp.public.encrypt_u64(a as u64, &mut rng).unwrap();
        let prod = kp.public.mul_plain(&ea, &Uint::from_u64(k as u64)).unwrap();
        let expect = Uint::from_u128(a as u128 * k as u128);
        prop_assert_eq!(kp.secret.decrypt(&prod).unwrap(), expect);
    }

    #[test]
    fn add_plain_matches_add(a in any::<u64>(), k in any::<u64>(), seed in any::<u64>()) {
        let kp = keypair();
        let mut rng = StdRng::seed_from_u64(seed);
        let ea = kp.public.encrypt_u64(a, &mut rng).unwrap();
        let via_plain = kp.public.add_plain(&ea, &Uint::from_u64(k)).unwrap();
        let ek = kp.public.encrypt_u64(k, &mut rng).unwrap();
        let via_ct = kp.public.add(&ea, &ek).unwrap();
        prop_assert_eq!(
            kp.secret.decrypt(&via_plain).unwrap(),
            kp.secret.decrypt(&via_ct).unwrap()
        );
    }

    #[test]
    fn dot_product_identity(
        xs in prop::collection::vec(any::<u32>(), 1..12),
        sel in prop::collection::vec(any::<bool>(), 12),
        seed in any::<u64>(),
    ) {
        // Π E(I_i)^{x_i} = E(Σ I_i·x_i): the protocol's core identity.
        let kp = keypair();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut acc = kp.public.identity();
        let mut expect: u128 = 0;
        for (i, &x) in xs.iter().enumerate() {
            let bit = sel[i % sel.len()];
            let e_i = kp.public.encrypt_u64(bit as u64, &mut rng).unwrap();
            let term = kp.public.mul_plain(&e_i, &Uint::from_u64(x as u64)).unwrap();
            acc = kp.public.add(&acc, &term).unwrap();
            if bit {
                expect += x as u128;
            }
        }
        prop_assert_eq!(kp.secret.decrypt(&acc).unwrap(), Uint::from_u128(expect));
    }

    #[test]
    fn rerandomization_unlinkable_same_plaintext(m in any::<u64>(), seed in any::<u64>()) {
        let kp = keypair();
        let mut rng = StdRng::seed_from_u64(seed);
        let ct = kp.public.encrypt_u64(m, &mut rng).unwrap();
        let rr = kp.public.rerandomize(&ct, &mut rng).unwrap();
        prop_assert_ne!(&rr, &ct);
        prop_assert_eq!(kp.secret.decrypt(&rr).unwrap(), Uint::from_u64(m));
    }

    #[test]
    fn signed_decode_negation(m in 1u64..=u64::MAX, seed in any::<u64>()) {
        let kp = keypair();
        let mut rng = StdRng::seed_from_u64(seed);
        let ct = kp.public.encrypt_u64(m, &mut rng).unwrap();
        let neg = kp.public.neg(&ct).unwrap();
        prop_assert_eq!(kp.secret.decrypt_signed(&neg).unwrap(), -(m as i128));
    }

    #[test]
    fn ciphertext_codec_round_trip(m in any::<u64>(), seed in any::<u64>()) {
        let kp = keypair();
        let mut rng = StdRng::seed_from_u64(seed);
        let ct = kp.public.encrypt_u64(m, &mut rng).unwrap();
        let bytes = ct.to_bytes(&kp.public).unwrap();
        let back = pps_crypto::Ciphertext::from_bytes(&bytes, &kp.public).unwrap();
        prop_assert_eq!(kp.secret.decrypt(&back).unwrap(), Uint::from_u64(m));
    }
}
