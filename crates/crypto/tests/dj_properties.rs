//! Property tests for the Damgård–Jurik generalization: round trips and
//! homomorphic identities over the *extended* plaintext space `Z_{N^s}`,
//! which plain Paillier cannot represent.

use std::sync::OnceLock;

use pps_bignum::Uint;
use pps_crypto::DamgardJurik;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn keypair_s2() -> &'static DamgardJurik {
    static KP: OnceLock<DamgardJurik> = OnceLock::new();
    KP.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(0xd7);
        DamgardJurik::generate(128, 2, &mut rng).unwrap()
    })
}

fn keypair_s3() -> &'static DamgardJurik {
    static KP: OnceLock<DamgardJurik> = OnceLock::new();
    KP.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(0xd8);
        DamgardJurik::generate(128, 3, &mut rng).unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn round_trip_s2(m in any::<u128>(), seed in any::<u64>()) {
        let kp = keypair_s2();
        let mut rng = StdRng::seed_from_u64(seed);
        let m = Uint::from_u128(m).rem_of(kp.plaintext_modulus()).unwrap();
        let ct = kp.encrypt(&m, &mut rng).unwrap();
        prop_assert_eq!(kp.decrypt(&ct).unwrap(), m);
    }

    #[test]
    fn round_trip_wide_plaintexts_s3(seed in any::<u64>()) {
        // Sample plaintexts uniformly over the FULL Z_{N³} space.
        let kp = keypair_s3();
        let mut rng = StdRng::seed_from_u64(seed);
        let m = Uint::random_below(&mut rng, kp.plaintext_modulus()).unwrap();
        let ct = kp.encrypt(&m, &mut rng).unwrap();
        prop_assert_eq!(kp.decrypt(&ct).unwrap(), m);
    }

    #[test]
    fn additive_homomorphism_s2(a in any::<u128>(), b in any::<u128>(), seed in any::<u64>()) {
        let kp = keypair_s2();
        let mut rng = StdRng::seed_from_u64(seed);
        let (a, b) = (Uint::from_u128(a), Uint::from_u128(b));
        let ea = kp.encrypt(&a, &mut rng).unwrap();
        let eb = kp.encrypt(&b, &mut rng).unwrap();
        let sum = kp.add(&ea, &eb).unwrap();
        // 2·u128 always fits Z_{N²} for a 128-bit N.
        prop_assert_eq!(kp.decrypt(&sum).unwrap(), &a + &b);
    }

    #[test]
    fn scalar_homomorphism_s2(m in any::<u64>(), k in any::<u64>(), seed in any::<u64>()) {
        let kp = keypair_s2();
        let mut rng = StdRng::seed_from_u64(seed);
        let ct = kp.encrypt(&Uint::from_u64(m), &mut rng).unwrap();
        let prod = kp.mul_plain(&ct, &Uint::from_u64(k)).unwrap();
        prop_assert_eq!(
            kp.decrypt(&prod).unwrap(),
            Uint::from_u128(m as u128 * k as u128)
        );
    }

    #[test]
    fn randomized_ciphertexts_differ(m in any::<u64>(), seed in any::<u64>()) {
        let kp = keypair_s2();
        let mut rng = StdRng::seed_from_u64(seed);
        let m = Uint::from_u64(m);
        let c1 = kp.encrypt(&m, &mut rng).unwrap();
        let c2 = kp.encrypt(&m, &mut rng).unwrap();
        prop_assert_ne!(c1, c2);
    }
}
