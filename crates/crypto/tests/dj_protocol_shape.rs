//! Integration test: the selected-sum *computation* under Damgård–Jurik,
//! demonstrating the message-space headroom the extension buys.
//!
//! With base Paillier the protocol refuses any configuration whose
//! worst-case sum could reach `N` (the `SumOverflow` guard) — e.g. a few
//! very large weighted values under a small key. The same computation at
//! `s = 2` has a `N²`-sized plaintext space and goes through exactly.

use pps_bignum::Uint;
use pps_crypto::{DamgardJurik, PaillierKeypair};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The server fold `Π E(Iᵢ)^{xᵢ}` executed under both schemes on the
/// same plaintext data; DJ must agree wherever Paillier is in range.
#[test]
fn dj_selected_sum_matches_paillier_in_range() {
    let mut rng = StdRng::seed_from_u64(1);
    let p = Uint::generate_prime(&mut rng, 64).unwrap();
    let q = Uint::generate_prime(&mut rng, 64).unwrap();
    let paillier = PaillierKeypair::from_primes(p.clone(), q.clone()).unwrap();
    let dj = DamgardJurik::from_primes(p, q, 2).unwrap();

    let data = [100u64, 250, 4_000, 8, 77];
    let select = [1u64, 0, 1, 1, 0];

    // Paillier path.
    let mut acc_p = paillier.public.identity();
    for (x, i) in data.iter().zip(&select) {
        let e = paillier.public.encrypt_u64(*i, &mut rng).unwrap();
        let term = paillier.public.mul_plain(&e, &Uint::from_u64(*x)).unwrap();
        acc_p = paillier.public.add(&acc_p, &term).unwrap();
    }
    let sum_p = paillier.secret.decrypt(&acc_p).unwrap();

    // DJ path: same fold shape at s = 2.
    let mut acc_d = None;
    for (x, i) in data.iter().zip(&select) {
        let e = dj.encrypt(&Uint::from_u64(*i), &mut rng).unwrap();
        let term = dj.mul_plain(&e, &Uint::from_u64(*x)).unwrap();
        acc_d = Some(match acc_d {
            None => term,
            Some(a) => dj.add(&a, &term).unwrap(),
        });
    }
    let sum_d = dj.decrypt(&acc_d.unwrap()).unwrap();

    assert_eq!(sum_p, sum_d);
    assert_eq!(sum_p.to_u64(), Some(100 + 4_000 + 8));
}

/// The headroom case: a weighted sum that EXCEEDS the base modulus `N`
/// (Paillier would silently wrap; the protocol layer refuses it) is
/// exact under `s = 2`.
#[test]
fn dj_carries_sums_beyond_the_base_modulus() {
    let mut rng = StdRng::seed_from_u64(2);
    // Tiny 64-bit modulus so exceeding N is easy.
    let p = Uint::generate_prime(&mut rng, 32).unwrap();
    let q = Uint::generate_prime(&mut rng, 32).unwrap();
    let n = &p * &q;
    let dj = DamgardJurik::from_primes(p, q, 2).unwrap();

    // A "weighted value" bigger than N itself (as a plaintext), summed
    // three times: total ≈ 3(N + 5) > N, exact only in Z_{N²}.
    let big = n.add_u64(5);
    let mut acc = None;
    for _ in 0..3 {
        let e = dj.encrypt(&big, &mut rng).unwrap();
        acc = Some(match acc {
            None => e,
            Some(a) => dj.add(&a, &e).unwrap(),
        });
    }
    let total = dj.decrypt(&acc.unwrap()).unwrap();
    let expected = big.mul_u64(3);
    assert!(expected > n, "the point: the sum exceeds the base modulus");
    assert_eq!(total, expected);
}

/// Server-side public key reconstruction: a DJ server needs only (N, s)
/// from the wire, like the Paillier server needs only N.
#[test]
fn dj_public_key_from_modulus_interoperates() {
    use pps_crypto::DjPublicKey;
    let mut rng = StdRng::seed_from_u64(3);
    let dj = DamgardJurik::generate(128, 2, &mut rng).unwrap();
    let server_side = DjPublicKey::from_modulus(dj.n().clone(), 2).unwrap();

    // Server-side encryption (e.g. blinding) decrypts under the client key.
    let ct = server_side.encrypt(&Uint::from_u64(777), &mut rng).unwrap();
    assert_eq!(dj.decrypt(&ct).unwrap(), Uint::from_u64(777));

    // And server-side homomorphic ops on client ciphertexts work.
    let a = dj.encrypt(&Uint::from_u64(40), &mut rng).unwrap();
    let b = server_side.mul_plain(&a, &Uint::from_u64(10)).unwrap();
    assert_eq!(dj.decrypt(&b).unwrap(), Uint::from_u64(400));

    // Bad parameters rejected.
    assert!(DjPublicKey::from_modulus(Uint::from_u64(4), 2).is_err());
    assert!(DjPublicKey::from_modulus(dj.n().clone(), 0).is_err());
}
