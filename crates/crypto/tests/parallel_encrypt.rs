//! Parallel/sequential parity and determinism for the client-side
//! parallel encryption engine.
//!
//! The engine's contract has three load-bearing clauses:
//!
//! 1. **parity** — `encrypt_batch_parallel` decrypts to exactly the
//!    plaintexts a sequential loop would produce, for any batch size and
//!    thread count (including `threads = 1` and batches smaller than the
//!    thread count);
//! 2. **determinism** — per-worker CSPRNG streams are split off the
//!    caller's RNG, so a fixed `(seed, threads)` pair always yields the
//!    identical ciphertext vector, regardless of scheduling;
//! 3. **freshness** — every ciphertext in a batch carries independent
//!    randomness (no seed reuse across worker chunks).

use std::sync::OnceLock;

use pps_bignum::Uint;
use pps_crypto::{PaillierKeypair, ParallelEncryptor};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn keypair() -> &'static PaillierKeypair {
    static KP: OnceLock<PaillierKeypair> = OnceLock::new();
    KP.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(0xfeed);
        PaillierKeypair::generate(128, &mut rng).unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn parallel_decrypts_to_sequential_plaintexts(
        ms in prop::collection::vec(any::<u64>(), 0..40),
        threads in 1usize..10,
        seed in any::<u64>(),
    ) {
        let kp = keypair();
        let plain: Vec<Uint> = ms.iter().map(|&m| Uint::from_u64(m)).collect();
        let cts = kp
            .public
            .encrypt_batch_parallel(&plain, threads, &mut StdRng::seed_from_u64(seed))
            .unwrap();
        prop_assert_eq!(cts.len(), plain.len());
        // Order-preserving: element i decrypts to plaintext i, exactly
        // what the sequential loop guarantees.
        for (ct, m) in cts.iter().zip(&plain) {
            prop_assert_eq!(&kp.secret.decrypt(ct).unwrap(), m);
        }
    }

    #[test]
    fn deterministic_for_fixed_seed_and_threads(
        len in 0usize..30,
        threads in 1usize..8,
        seed in any::<u64>(),
    ) {
        let kp = keypair();
        let plain: Vec<Uint> = (0..len as u64).map(Uint::from_u64).collect();
        let a = kp
            .public
            .encrypt_batch_parallel(&plain, threads, &mut StdRng::seed_from_u64(seed))
            .unwrap();
        let b = kp
            .public
            .encrypt_batch_parallel(&plain, threads, &mut StdRng::seed_from_u64(seed))
            .unwrap();
        // Same seed + same thread count must reproduce ciphertexts.
        prop_assert_eq!(a, b);
    }

    #[test]
    fn randomizer_sampling_deterministic_and_usable(
        count in 0usize..25,
        threads in 1usize..8,
        seed in any::<u64>(),
    ) {
        let kp = keypair();
        let a = kp
            .public
            .sample_randomizers_parallel(count, threads, &mut StdRng::seed_from_u64(seed))
            .unwrap();
        let b = kp
            .public
            .sample_randomizers_parallel(count, threads, &mut StdRng::seed_from_u64(seed))
            .unwrap();
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.len(), count);
        for rn in &a {
            let ct = kp.public.encrypt_with_randomizer(&Uint::from_u64(9), rn).unwrap();
            prop_assert_eq!(kp.secret.decrypt(&ct).unwrap(), Uint::from_u64(9));
        }
    }
}

#[test]
fn batch_smaller_than_thread_count() {
    let kp = keypair();
    // 2 plaintexts, 16 threads: must clamp, not panic or drop elements.
    let plain = vec![Uint::from_u64(5), Uint::from_u64(6)];
    let cts = kp
        .public
        .encrypt_batch_parallel(&plain, 16, &mut StdRng::seed_from_u64(1))
        .unwrap();
    assert_eq!(cts.len(), 2);
    assert_eq!(kp.secret.decrypt(&cts[0]).unwrap(), Uint::from_u64(5));
    assert_eq!(kp.secret.decrypt(&cts[1]).unwrap(), Uint::from_u64(6));
    // Empty batch: no threads spawned, empty result.
    let none = kp
        .public
        .encrypt_batch_parallel(&[], 8, &mut StdRng::seed_from_u64(2))
        .unwrap();
    assert!(none.is_empty());
}

#[test]
fn every_ciphertext_in_a_batch_is_distinct() {
    // Semantic security across worker chunks: identical plaintexts must
    // still produce pairwise-distinct ciphertexts, which fails if two
    // workers were ever seeded with the same stream.
    let kp = keypair();
    let plain = vec![Uint::one(); 64];
    let cts = kp
        .public
        .encrypt_batch_parallel(&plain, 8, &mut StdRng::seed_from_u64(3))
        .unwrap();
    for i in 0..cts.len() {
        for j in (i + 1)..cts.len() {
            assert_ne!(cts[i], cts[j], "ciphertexts {i} and {j} collide");
        }
    }
}

#[test]
fn plaintext_out_of_range_surfaces_from_workers() {
    let kp = keypair();
    let mut plain: Vec<Uint> = (0..20u64).map(Uint::from_u64).collect();
    plain.push(kp.public.n().clone()); // m >= N: invalid
    let err = kp
        .public
        .encrypt_batch_parallel(&plain, 4, &mut StdRng::seed_from_u64(4))
        .unwrap_err();
    assert!(matches!(err, pps_crypto::CryptoError::PlaintextOutOfRange));
}

#[test]
fn wrapper_is_deterministic_too() {
    let kp = keypair();
    let enc = ParallelEncryptor::new(kp.public.clone(), 5);
    let weights: Vec<u64> = (0..23).collect();
    let a = enc
        .encrypt_weights(&weights, &mut StdRng::seed_from_u64(7))
        .unwrap();
    let b = enc
        .encrypt_weights(&weights, &mut StdRng::seed_from_u64(7))
        .unwrap();
    assert_eq!(a, b);
}
