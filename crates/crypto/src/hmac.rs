//! HMAC-SHA-256 (RFC 2104), verified against RFC 4231 test vectors.

use crate::sha256::{Sha256, BLOCK_LEN, DIGEST_LEN};

/// Computes `HMAC-SHA256(key, message)`.
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> [u8; DIGEST_LEN] {
    let mut k = [0u8; BLOCK_LEN];
    if key.len() > BLOCK_LEN {
        k[..DIGEST_LEN].copy_from_slice(&Sha256::digest(key));
    } else {
        k[..key.len()].copy_from_slice(key);
    }

    let mut ipad = [0u8; BLOCK_LEN];
    let mut opad = [0u8; BLOCK_LEN];
    for i in 0..BLOCK_LEN {
        ipad[i] = k[i] ^ 0x36;
        opad[i] = k[i] ^ 0x5c;
    }

    let mut inner = Sha256::new();
    inner.update(&ipad);
    inner.update(message);
    let inner_digest = inner.finalize();

    let mut outer = Sha256::new();
    outer.update(&opad);
    outer.update(&inner_digest);
    outer.finalize()
}

/// Constant-time equality check for MACs and digests.
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut acc = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        acc |= x ^ y;
    }
    acc == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(b: &[u8]) -> String {
        b.iter().map(|x| format!("{x:02x}")).collect()
    }

    #[test]
    fn rfc4231_case_1() {
        let key = [0x0bu8; 20];
        let mac = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            hex(&mac),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case_2() {
        let mac = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex(&mac),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case_3() {
        let key = [0xaau8; 20];
        let data = [0xddu8; 50];
        let mac = hmac_sha256(&key, &data);
        assert_eq!(
            hex(&mac),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_case_6_long_key() {
        // Key longer than the block size must be hashed first.
        let key = [0xaau8; 131];
        let mac = hmac_sha256(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            hex(&mac),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn key_sensitivity() {
        assert_ne!(hmac_sha256(b"k1", b"m"), hmac_sha256(b"k2", b"m"));
        assert_ne!(hmac_sha256(b"k", b"m1"), hmac_sha256(b"k", b"m2"));
    }

    #[test]
    fn constant_time_eq() {
        assert!(ct_eq(b"same", b"same"));
        assert!(!ct_eq(b"same", b"diff"));
        assert!(!ct_eq(b"short", b"longer"));
        assert!(ct_eq(b"", b""));
    }
}
