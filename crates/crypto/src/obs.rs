//! Crypto-layer observability: pool hit/miss counters and offline-fill /
//! parallel-chunk timings, registered under the canonical `pps_*` names.
//!
//! The paper's §3.3 argument is that pooling converts expensive online
//! encryptions into cheap table lookups — so the first thing a deployed
//! pool must expose is whether lookups actually hit ([`PoolMetrics`]),
//! and how long the offline fills that sustain the hit rate take. The
//! parallel engine's chunk histogram ([`EncryptMetrics`]) makes worker
//! imbalance visible: p99 chunk time far above p50 means a straggler
//! worker is gating the whole batch.

use std::sync::Arc;
use std::time::Duration;

use pps_obs::{names, Counter, Histogram, Registry};

/// Shared pool counters and fill-duration histogram. Clone to share;
/// clones update the same underlying atomics.
#[derive(Clone)]
pub struct PoolMetrics {
    /// Takes served from the pool.
    pub hits: Arc<Counter>,
    /// Takes that found the pool empty ([`CryptoError::PoolExhausted`]).
    ///
    /// [`CryptoError::PoolExhausted`]: crate::CryptoError::PoolExhausted
    pub misses: Arc<Counter>,
    /// Offline fill durations.
    pub fill_seconds: Arc<Histogram>,
}

impl PoolMetrics {
    /// Metrics registered under the canonical `pps_pool_*` names.
    pub fn from_registry(registry: &Registry) -> Self {
        PoolMetrics {
            hits: registry.counter(
                names::POOL_HITS_TOTAL,
                "pool takes served from precomputed ciphertexts",
            ),
            misses: registry.counter(
                names::POOL_MISSES_TOTAL,
                "pool takes that found the pool exhausted",
            ),
            fill_seconds: registry
                .histogram(names::POOL_FILL_SECONDS, "duration of offline pool fills"),
        }
    }

    pub(crate) fn on_take(&self, hit: bool) {
        if hit {
            self.hits.inc();
        } else {
            self.misses.inc();
        }
    }

    pub(crate) fn on_fill(&self, elapsed: Duration) {
        self.fill_seconds.record_duration(elapsed);
    }
}

/// Per-worker-chunk timing for the parallel encryption engine.
#[derive(Clone)]
pub struct EncryptMetrics {
    /// Duration of each worker's contiguous chunk inside one parallel
    /// batch encryption.
    pub chunk_seconds: Arc<Histogram>,
}

impl EncryptMetrics {
    /// Metrics registered under the canonical `pps_encrypt_*` names.
    pub fn from_registry(registry: &Registry) -> Self {
        EncryptMetrics {
            chunk_seconds: registry.histogram(
                names::ENCRYPT_CHUNK_SECONDS,
                "duration of one worker chunk inside a parallel encrypt",
            ),
        }
    }
}
