//! # pps-crypto
//!
//! Cryptographic primitives for the privacy-preserving statistics
//! workspace, built from scratch on [`pps_bignum`]:
//!
//! * **Paillier cryptosystem** ([`PaillierKeypair`], [`PaillierPublicKey`],
//!   [`PaillierSecretKey`], [`Ciphertext`]) — the additively homomorphic
//!   encryption scheme the paper's selected-sum protocol is built on,
//!   with `g = N+1` fast encryption and CRT-accelerated decryption;
//! * **precomputation pools** ([`BitEncryptionPool`], [`RandomizerPool`])
//!   — the paper's §3.3 offline-preprocessing optimization, with
//!   parallel fills and a non-blocking shared wrapper;
//! * **parallel client engine** ([`ParallelEncryptor`],
//!   [`PaillierPublicKey::encrypt_batch_parallel`]) — multi-core
//!   index-vector encryption with deterministic per-worker CSPRNG
//!   streams, attacking the client-side bottleneck the paper measures;
//! * **SHA-256 / HMAC / counter-mode PRG** ([`Sha256`], [`hmac_sha256`],
//!   [`CtrPrg`]) — support primitives for the garbled-circuit comparator
//!   and reproducible randomness, verified against FIPS/RFC vectors.
//!
//! # Example: the paper's homomorphic identity
//!
//! ```
//! use pps_bignum::Uint;
//! use pps_crypto::PaillierKeypair;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let kp = PaillierKeypair::generate(128, &mut rng).unwrap();
//!
//! // E(a) · E(b) = E(a + b)
//! let ea = kp.public.encrypt_u64(20, &mut rng).unwrap();
//! let eb = kp.public.encrypt_u64(22, &mut rng).unwrap();
//! let sum = kp.public.add(&ea, &eb).unwrap();
//! assert_eq!(kp.secret.decrypt(&sum).unwrap(), Uint::from_u64(42));
//!
//! // E(a)^c = E(a · c)
//! let prod = kp.public.mul_plain(&ea, &Uint::from_u64(3)).unwrap();
//! assert_eq!(kp.secret.decrypt(&prod).unwrap(), Uint::from_u64(60));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod damgard_jurik;
mod error;
mod general;
mod hmac;
mod keyio;
mod obs;
mod paillier;
mod parallel;
mod pool;
mod prg;
mod sha256;

pub use damgard_jurik::{DamgardJurik, DjCiphertext, DjPublicKey, MAX_S};
pub use error::CryptoError;
pub use general::GeneralPaillier;
pub use hmac::{ct_eq, hmac_sha256};
pub use obs::{EncryptMetrics, PoolMetrics};
pub use paillier::{
    Ciphertext, PaillierKeypair, PaillierPublicKey, PaillierSecretKey, DEFAULT_KEY_BITS,
    MIN_KEY_BITS,
};
pub use parallel::{host_parallelism, ParallelEncryptor};
pub use pool::{BitEncryptionPool, RandomizerPool, SharedBitPool};
pub use prg::CtrPrg;
pub use sha256::{Sha256, BLOCK_LEN, DIGEST_LEN};
