//! Key serialization: stable byte encodings for storing or transmitting
//! Paillier keys.
//!
//! Formats (all big-endian, length-prefixed):
//!
//! ```text
//! public : "PPK1" ‖ len(N) u16 ‖ N
//! secret : "PSK1" ‖ len(p) u16 ‖ p ‖ len(q) u16 ‖ q
//! ```
//!
//! The secret encoding stores only the primes — everything else (λ, μ,
//! CRT constants, Montgomery contexts) is deterministically recomputed on
//! import, which keeps the format minimal and forward-compatible.

use pps_bignum::Uint;

use crate::error::CryptoError;
use crate::paillier::{PaillierKeypair, PaillierPublicKey, PaillierSecretKey};

const PUBLIC_MAGIC: &[u8; 4] = b"PPK1";
const SECRET_MAGIC: &[u8; 4] = b"PSK1";

fn put_uint(out: &mut Vec<u8>, v: &Uint) {
    let b = v.to_bytes_be();
    out.extend_from_slice(&(b.len() as u16).to_be_bytes());
    out.extend_from_slice(&b);
}

fn get_uint(buf: &mut &[u8]) -> Result<Uint, CryptoError> {
    if buf.len() < 2 {
        return Err(CryptoError::Decode("truncated length"));
    }
    let len = u16::from_be_bytes([buf[0], buf[1]]) as usize;
    *buf = &buf[2..];
    if buf.len() < len {
        return Err(CryptoError::Decode("truncated value"));
    }
    let v = Uint::from_bytes_be(&buf[..len]);
    *buf = &buf[len..];
    Ok(v)
}

impl PaillierPublicKey {
    /// Serializes the public key.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(6 + self.n().limbs().len() * 8);
        out.extend_from_slice(PUBLIC_MAGIC);
        put_uint(&mut out, self.n());
        out
    }

    /// Deserializes a public key produced by
    /// [`PaillierPublicKey::to_bytes`].
    ///
    /// # Errors
    /// [`CryptoError::Decode`] on bad magic, truncation, trailing bytes,
    /// or an invalid modulus.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CryptoError> {
        let rest = bytes
            .strip_prefix(PUBLIC_MAGIC)
            .ok_or(CryptoError::Decode("bad public key magic"))?;
        let mut rest = rest;
        let n = get_uint(&mut rest)?;
        if !rest.is_empty() {
            return Err(CryptoError::Decode("trailing bytes in public key"));
        }
        Self::from_modulus(n)
    }
}

impl PaillierSecretKey {
    /// Serializes the secret key (the two primes; derived material is
    /// recomputed on import).
    pub fn to_bytes(&self) -> Vec<u8> {
        let (p, q) = self.primes();
        let mut out = Vec::new();
        out.extend_from_slice(SECRET_MAGIC);
        put_uint(&mut out, p);
        put_uint(&mut out, q);
        out
    }

    /// Deserializes a full keypair from bytes produced by
    /// [`PaillierSecretKey::to_bytes`].
    ///
    /// # Errors
    /// [`CryptoError::Decode`] on structural problems;
    /// [`CryptoError::KeyGeneration`] if the primes do not form a valid
    /// keypair.
    pub fn keypair_from_bytes(bytes: &[u8]) -> Result<PaillierKeypair, CryptoError> {
        let rest = bytes
            .strip_prefix(SECRET_MAGIC)
            .ok_or(CryptoError::Decode("bad secret key magic"))?;
        let mut rest = rest;
        let p = get_uint(&mut rest)?;
        let q = get_uint(&mut rest)?;
        if !rest.is_empty() {
            return Err(CryptoError::Decode("trailing bytes in secret key"));
        }
        PaillierKeypair::from_primes(p, q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn keypair() -> PaillierKeypair {
        let mut rng = StdRng::seed_from_u64(909);
        PaillierKeypair::generate(128, &mut rng).unwrap()
    }

    #[test]
    fn public_round_trip() {
        let kp = keypair();
        let bytes = kp.public.to_bytes();
        let back = PaillierPublicKey::from_bytes(&bytes).unwrap();
        assert_eq!(back, kp.public);
    }

    #[test]
    fn secret_round_trip_preserves_decryption() {
        let kp = keypair();
        let mut rng = StdRng::seed_from_u64(910);
        let ct = kp.public.encrypt_u64(31337, &mut rng).unwrap();

        let bytes = kp.secret.to_bytes();
        let restored = PaillierSecretKey::keypair_from_bytes(&bytes).unwrap();
        assert_eq!(restored.public, kp.public);
        assert_eq!(restored.secret.decrypt(&ct).unwrap(), Uint::from_u64(31337));
    }

    #[test]
    fn corrupt_encodings_rejected() {
        let kp = keypair();
        let mut pub_bytes = kp.public.to_bytes();
        pub_bytes[0] ^= 0xff;
        assert!(PaillierPublicKey::from_bytes(&pub_bytes).is_err());

        let sec = kp.secret.to_bytes();
        assert!(PaillierSecretKey::keypair_from_bytes(&sec[..sec.len() - 1]).is_err());
        assert!(PaillierPublicKey::from_bytes(b"PPK1").is_err());
        let mut trailing = kp.public.to_bytes();
        trailing.push(0);
        assert!(PaillierPublicKey::from_bytes(&trailing).is_err());
    }

    #[test]
    fn secret_bytes_do_not_leak_into_public() {
        let kp = keypair();
        assert_ne!(kp.public.to_bytes()[..4], kp.secret.to_bytes()[..4]);
    }
}
