//! Offline precomputation pools — the paper's §3.3 optimization.
//!
//! The client's bottleneck is the `r^N mod N²` exponentiation inside each
//! index encryption. §3.3 observes the client can do this *offline*: even
//! before knowing which indices will be 0 and which 1, it encrypts "a
//! large number of 0s and a large number of 1s to use later", then the
//! online phase is a table lookup. The paper measures an ≈82 % reduction
//! in online runtime over the short-distance link.
//!
//! Two pool flavors are provided:
//!
//! * [`BitEncryptionPool`] — precomputed `E(0)`/`E(1)` ciphertexts,
//!   exactly the paper's scheme;
//! * [`RandomizerPool`] — precomputed `r^N` factors, which can encrypt
//!   *any* plaintext online at the cost of one cheap multiplication
//!   (a generalization useful for weighted queries).
//!
//! Both have thread-safe wrappers so a background thread can keep filling
//! while the protocol drains.

use std::collections::VecDeque;

use parking_lot::Mutex;
use pps_bignum::Uint;
use rand::RngCore;

use crate::error::CryptoError;
use crate::obs::PoolMetrics;
use crate::paillier::{Ciphertext, PaillierPublicKey};

/// Pool of precomputed encryptions of the bits 0 and 1.
pub struct BitEncryptionPool {
    key: PaillierPublicKey,
    zeros: VecDeque<Ciphertext>,
    ones: VecDeque<Ciphertext>,
    metrics: Option<PoolMetrics>,
}

impl BitEncryptionPool {
    /// Creates an empty pool bound to `key`.
    pub fn new(key: PaillierPublicKey) -> Self {
        BitEncryptionPool {
            key,
            zeros: VecDeque::new(),
            ones: VecDeque::new(),
            metrics: None,
        }
    }

    /// Attaches shared [`PoolMetrics`]: every take counts a hit or a
    /// miss, every fill records its duration.
    pub fn set_metrics(&mut self, metrics: PoolMetrics) {
        self.metrics = Some(metrics);
    }

    /// Precomputes `n_zeros` encryptions of 0 and `n_ones` of 1 (the
    /// offline phase). Thin wrapper over
    /// [`BitEncryptionPool::fill_parallel`] with one worker.
    ///
    /// # Errors
    /// Propagates encryption errors.
    pub fn fill(
        &mut self,
        n_zeros: usize,
        n_ones: usize,
        rng: &mut dyn RngCore,
    ) -> Result<(), CryptoError> {
        self.fill_parallel(n_zeros, n_ones, 1, rng)
    }

    /// Parallel offline phase: the `E(0)` and `E(1)` batches are each
    /// encrypted across up to `threads` scoped worker threads (see
    /// [`PaillierPublicKey::encrypt_batch_parallel`]), then spliced in
    /// with one reserve + extend per queue.
    ///
    /// # Errors
    /// Propagates encryption errors.
    pub fn fill_parallel(
        &mut self,
        n_zeros: usize,
        n_ones: usize,
        threads: usize,
        rng: &mut dyn RngCore,
    ) -> Result<(), CryptoError> {
        let start = std::time::Instant::now();
        let (zeros, ones) = precompute_bits(&self.key, n_zeros, n_ones, threads, rng)?;
        self.append(zeros, ones);
        if let Some(metrics) = &self.metrics {
            metrics.on_fill(start.elapsed());
        }
        Ok(())
    }

    /// Splices already-encrypted ciphertexts into the pool — the cheap
    /// half of a fill, used by [`SharedBitPool::fill`] to keep the
    /// expensive half outside its lock.
    pub fn append(&mut self, zeros: Vec<Ciphertext>, ones: Vec<Ciphertext>) {
        self.zeros.reserve(zeros.len());
        self.zeros.extend(zeros);
        self.ones.reserve(ones.len());
        self.ones.extend(ones);
    }

    /// Takes a precomputed encryption of `bit` (the online phase).
    ///
    /// # Errors
    /// [`CryptoError::PoolExhausted`] when the respective pool is empty.
    pub fn take(&mut self, bit: bool) -> Result<Ciphertext, CryptoError> {
        let (queue, name) = if bit {
            (&mut self.ones, "one")
        } else {
            (&mut self.zeros, "zero")
        };
        let result = queue
            .pop_front()
            .ok_or(CryptoError::PoolExhausted { pool: name });
        if let Some(metrics) = &self.metrics {
            metrics.on_take(result.is_ok());
        }
        result
    }

    /// Remaining `(zeros, ones)` counts.
    pub fn remaining(&self) -> (usize, usize) {
        (self.zeros.len(), self.ones.len())
    }

    /// The key this pool encrypts under.
    pub fn key(&self) -> &PaillierPublicKey {
        &self.key
    }
}

/// Pool of precomputed `r^N mod N²` factors; each encrypts one arbitrary
/// plaintext online with a single modular multiplication.
pub struct RandomizerPool {
    key: PaillierPublicKey,
    randomizers: VecDeque<Uint>,
    metrics: Option<PoolMetrics>,
}

impl RandomizerPool {
    /// Creates an empty pool bound to `key`.
    pub fn new(key: PaillierPublicKey) -> Self {
        RandomizerPool {
            key,
            randomizers: VecDeque::new(),
            metrics: None,
        }
    }

    /// Attaches shared [`PoolMetrics`] — see
    /// [`BitEncryptionPool::set_metrics`].
    pub fn set_metrics(&mut self, metrics: PoolMetrics) {
        self.metrics = Some(metrics);
    }

    /// Precomputes `count` randomizer factors (the offline phase). Thin
    /// wrapper over [`RandomizerPool::fill_parallel`] with one worker —
    /// one `reserve` plus a bulk extend, never per-element `push_back`
    /// through the sequential sampler.
    ///
    /// # Errors
    /// Propagates sampling errors.
    pub fn fill(&mut self, count: usize, rng: &mut dyn RngCore) -> Result<(), CryptoError> {
        self.fill_parallel(count, 1, rng)
    }

    /// Parallel offline phase: `r^N` factors are computed across up to
    /// `threads` scoped worker threads (see
    /// [`PaillierPublicKey::sample_randomizers_parallel`]), then spliced
    /// in with one reserve + extend.
    ///
    /// # Errors
    /// Propagates sampling errors.
    pub fn fill_parallel(
        &mut self,
        count: usize,
        threads: usize,
        rng: &mut dyn RngCore,
    ) -> Result<(), CryptoError> {
        let start = std::time::Instant::now();
        let rns = self.key.sample_randomizers_parallel(count, threads, rng)?;
        self.randomizers.reserve(rns.len());
        self.randomizers.extend(rns);
        if let Some(metrics) = &self.metrics {
            metrics.on_fill(start.elapsed());
        }
        Ok(())
    }

    /// Encrypts `m` using one pooled randomizer (cheap online phase).
    ///
    /// # Errors
    /// [`CryptoError::PoolExhausted`] when empty;
    /// [`CryptoError::PlaintextOutOfRange`] when `m >= N`.
    pub fn encrypt(&mut self, m: &Uint) -> Result<Ciphertext, CryptoError> {
        let rn = self.randomizers.pop_front();
        if let Some(metrics) = &self.metrics {
            metrics.on_take(rn.is_some());
        }
        let rn = rn.ok_or(CryptoError::PoolExhausted { pool: "randomizer" })?;
        self.key.encrypt_with_randomizer(m, &rn)
    }

    /// Remaining randomizer count.
    pub fn remaining(&self) -> usize {
        self.randomizers.len()
    }
}

/// Encrypts `n_zeros` zeros and `n_ones` ones without touching any pool
/// state — the expensive, lock-free half of a bit-pool fill.
fn precompute_bits(
    key: &PaillierPublicKey,
    n_zeros: usize,
    n_ones: usize,
    threads: usize,
    rng: &mut dyn RngCore,
) -> Result<(Vec<Ciphertext>, Vec<Ciphertext>), CryptoError> {
    let zeros = key.encrypt_batch_parallel(&vec![Uint::zero(); n_zeros], threads, rng)?;
    let ones = key.encrypt_batch_parallel(&vec![Uint::one(); n_ones], threads, rng)?;
    Ok((zeros, ones))
}

/// Thread-safe wrapper over [`BitEncryptionPool`], for concurrent
/// fill/drain across threads (e.g. a producer thread topping the pool up
/// while the client streams batches).
///
/// Fills compute every ciphertext **outside** the mutex and lock only to
/// splice results in, so a large background fill never starves
/// concurrent [`SharedBitPool::take`] callers — holding the lock across
/// each `r^N` modpow would block the online phase for the whole offline
/// phase's duration.
pub struct SharedBitPool {
    /// Kept outside the mutex so fills can encrypt without locking.
    key: PaillierPublicKey,
    inner: Mutex<BitEncryptionPool>,
}

impl SharedBitPool {
    /// Wraps a pool for shared use.
    pub fn new(pool: BitEncryptionPool) -> Self {
        SharedBitPool {
            key: pool.key().clone(),
            inner: Mutex::new(pool),
        }
    }

    /// Thread-safe [`BitEncryptionPool::take`].
    ///
    /// # Errors
    /// As the wrapped method.
    pub fn take(&self, bit: bool) -> Result<Ciphertext, CryptoError> {
        self.inner.lock().take(bit)
    }

    /// Thread-safe fill: ciphertexts are computed with the mutex
    /// released, which only protects the final splice-in.
    ///
    /// # Errors
    /// Propagates encryption errors.
    pub fn fill(
        &self,
        n_zeros: usize,
        n_ones: usize,
        rng: &mut dyn RngCore,
    ) -> Result<(), CryptoError> {
        self.fill_parallel(n_zeros, n_ones, 1, rng)
    }

    /// Thread-safe parallel fill: as [`SharedBitPool::fill`], with the
    /// precomputation itself spread across up to `threads` workers.
    ///
    /// # Errors
    /// Propagates encryption errors.
    pub fn fill_parallel(
        &self,
        n_zeros: usize,
        n_ones: usize,
        threads: usize,
        rng: &mut dyn RngCore,
    ) -> Result<(), CryptoError> {
        let start = std::time::Instant::now();
        let (zeros, ones) = precompute_bits(&self.key, n_zeros, n_ones, threads, rng)?;
        let mut inner = self.inner.lock();
        inner.append(zeros, ones);
        if let Some(metrics) = &inner.metrics {
            metrics.on_fill(start.elapsed());
        }
        Ok(())
    }

    /// Thread-safe [`BitEncryptionPool::set_metrics`].
    pub fn set_metrics(&self, metrics: PoolMetrics) {
        self.inner.lock().set_metrics(metrics);
    }

    /// Thread-safe [`BitEncryptionPool::remaining`].
    pub fn remaining(&self) -> (usize, usize) {
        self.inner.lock().remaining()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paillier::PaillierKeypair;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    fn keypair() -> PaillierKeypair {
        let mut rng = StdRng::seed_from_u64(31);
        PaillierKeypair::generate(128, &mut rng).unwrap()
    }

    #[test]
    fn bit_pool_decrypts_correctly() {
        let kp = keypair();
        let mut rng = StdRng::seed_from_u64(32);
        let mut pool = BitEncryptionPool::new(kp.public.clone());
        pool.fill(3, 3, &mut rng).unwrap();
        assert_eq!(pool.remaining(), (3, 3));
        let z = pool.take(false).unwrap();
        let o = pool.take(true).unwrap();
        assert_eq!(kp.secret.decrypt(&z).unwrap(), Uint::zero());
        assert_eq!(kp.secret.decrypt(&o).unwrap(), Uint::one());
        assert_eq!(pool.remaining(), (2, 2));
    }

    #[test]
    fn bit_pool_exhaustion() {
        let kp = keypair();
        let mut rng = StdRng::seed_from_u64(33);
        let mut pool = BitEncryptionPool::new(kp.public.clone());
        pool.fill(1, 0, &mut rng).unwrap();
        assert!(pool.take(false).is_ok());
        assert!(matches!(
            pool.take(false),
            Err(CryptoError::PoolExhausted { pool: "zero" })
        ));
        assert!(matches!(
            pool.take(true),
            Err(CryptoError::PoolExhausted { pool: "one" })
        ));
    }

    #[test]
    fn pooled_ciphertexts_are_distinct() {
        // Each pooled E(1) must carry fresh randomness or the server
        // could link repeated selections.
        let kp = keypair();
        let mut rng = StdRng::seed_from_u64(34);
        let mut pool = BitEncryptionPool::new(kp.public.clone());
        pool.fill(0, 10, &mut rng).unwrap();
        let mut seen = Vec::new();
        for _ in 0..10 {
            let c = pool.take(true).unwrap();
            assert!(!seen.contains(&c));
            seen.push(c);
        }
    }

    #[test]
    fn randomizer_pool_encrypts_arbitrary_values() {
        let kp = keypair();
        let mut rng = StdRng::seed_from_u64(35);
        let mut pool = RandomizerPool::new(kp.public.clone());
        pool.fill(4, &mut rng).unwrap();
        for m in [0u64, 7, 123_456, u32::MAX as u64] {
            let ct = pool.encrypt(&Uint::from_u64(m)).unwrap();
            assert_eq!(kp.secret.decrypt(&ct).unwrap(), Uint::from_u64(m));
        }
        assert!(matches!(
            pool.encrypt(&Uint::zero()),
            Err(CryptoError::PoolExhausted { .. })
        ));
    }

    #[test]
    fn fill_parallel_decrypts_correctly_any_thread_count() {
        let kp = keypair();
        for threads in [1usize, 2, 3, 8] {
            let mut rng = StdRng::seed_from_u64(40 + threads as u64);
            let mut pool = BitEncryptionPool::new(kp.public.clone());
            pool.fill_parallel(5, 7, threads, &mut rng).unwrap();
            assert_eq!(pool.remaining(), (5, 7));
            for _ in 0..5 {
                let z = pool.take(false).unwrap();
                assert_eq!(kp.secret.decrypt(&z).unwrap(), Uint::zero());
            }
            for _ in 0..7 {
                let o = pool.take(true).unwrap();
                assert_eq!(kp.secret.decrypt(&o).unwrap(), Uint::one());
            }
        }
    }

    #[test]
    fn randomizer_fill_parallel_encrypts() {
        let kp = keypair();
        for threads in [1usize, 4] {
            let mut rng = StdRng::seed_from_u64(50 + threads as u64);
            let mut pool = RandomizerPool::new(kp.public.clone());
            pool.fill_parallel(6, threads, &mut rng).unwrap();
            assert_eq!(pool.remaining(), 6);
            for m in 0..6u64 {
                let ct = pool.encrypt(&Uint::from_u64(m)).unwrap();
                assert_eq!(kp.secret.decrypt(&ct).unwrap(), Uint::from_u64(m));
            }
        }
    }

    #[test]
    fn shared_fill_does_not_block_concurrent_take() {
        // A slow background fill (512-bit key, hundreds of modpows) must
        // not hold the mutex: a take() of an already-pooled ciphertext
        // has to complete while the fill is still computing.
        let mut rng = StdRng::seed_from_u64(60);
        let kp = PaillierKeypair::generate(512, &mut rng).unwrap();
        let mut pool = BitEncryptionPool::new(kp.public.clone());
        pool.fill(1, 1, &mut rng).unwrap();
        let shared = Arc::new(SharedBitPool::new(pool));

        let filler = Arc::clone(&shared);
        let started = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let started_flag = Arc::clone(&started);
        let handle = std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(61);
            started_flag.store(true, std::sync::atomic::Ordering::SeqCst);
            filler.fill(400, 400, &mut rng).unwrap();
        });
        while !started.load(std::sync::atomic::Ordering::SeqCst) {
            std::thread::yield_now();
        }
        // Give the fill a head start so it is genuinely mid-computation.
        std::thread::sleep(std::time::Duration::from_millis(5));
        let take_started = std::time::Instant::now();
        shared.take(true).expect("pre-filled ciphertext available");
        let take_latency = take_started.elapsed();
        let fill_was_still_running = !handle.is_finished();
        handle.join().unwrap();
        assert!(
            fill_was_still_running,
            "fill finished before take — grow the fill size so the test discriminates"
        );
        assert!(
            take_latency < std::time::Duration::from_millis(100),
            "take blocked for {take_latency:?} behind an in-flight fill"
        );
        let (z, o) = shared.remaining();
        assert_eq!((z, o), (401, 400), "fill spliced in after the take");
    }

    #[test]
    fn pool_metrics_count_hits_misses_and_fills() {
        use pps_obs::Registry;
        let kp = keypair();
        let mut rng = StdRng::seed_from_u64(70);
        let registry = Registry::new();
        let metrics = crate::obs::PoolMetrics::from_registry(&registry);

        let mut pool = BitEncryptionPool::new(kp.public.clone());
        pool.set_metrics(metrics.clone());
        pool.fill(2, 1, &mut rng).unwrap();
        assert!(pool.take(false).is_ok()); // hit
        assert!(pool.take(true).is_ok()); // hit
        assert!(pool.take(true).is_err()); // miss
        assert_eq!(metrics.hits.get(), 2);
        assert_eq!(metrics.misses.get(), 1);
        assert_eq!(metrics.fill_seconds.count(), 1);

        // The randomizer pool feeds the same shared counters.
        let mut rpool = RandomizerPool::new(kp.public.clone());
        rpool.set_metrics(metrics.clone());
        rpool.fill(1, &mut rng).unwrap();
        assert!(rpool.encrypt(&Uint::zero()).is_ok()); // hit
        assert!(rpool.encrypt(&Uint::zero()).is_err()); // miss
        assert_eq!(metrics.hits.get(), 3);
        assert_eq!(metrics.misses.get(), 2);
        assert_eq!(metrics.fill_seconds.count(), 2);

        // And the shared wrapper's out-of-lock fill still records.
        let mut inner = BitEncryptionPool::new(kp.public.clone());
        inner.set_metrics(metrics.clone());
        let shared = SharedBitPool::new(inner);
        shared.fill(1, 0, &mut rng).unwrap();
        assert!(shared.take(false).is_ok());
        assert_eq!(metrics.hits.get(), 4);
        assert_eq!(metrics.fill_seconds.count(), 3);

        let text = registry.render_prometheus();
        assert!(text.contains("pps_pool_hits_total 4"));
        assert!(text.contains("pps_pool_misses_total 2"));
        assert!(text.contains("pps_pool_fill_seconds_count 3"));
    }

    #[test]
    fn shared_pool_across_threads() {
        let kp = keypair();
        let mut rng = StdRng::seed_from_u64(36);
        let mut pool = BitEncryptionPool::new(kp.public.clone());
        pool.fill(50, 50, &mut rng).unwrap();
        let shared = Arc::new(SharedBitPool::new(pool));

        let handles: Vec<_> = (0..4)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || {
                    let mut got = 0;
                    for j in 0..25 {
                        if shared.take((i + j) % 2 == 0).is_ok() {
                            got += 1;
                        }
                    }
                    got
                })
            })
            .collect();
        let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        let (z, o) = shared.remaining();
        assert_eq!(total + z + o, 100, "every ciphertext taken exactly once");
    }
}
