//! Offline precomputation pools — the paper's §3.3 optimization.
//!
//! The client's bottleneck is the `r^N mod N²` exponentiation inside each
//! index encryption. §3.3 observes the client can do this *offline*: even
//! before knowing which indices will be 0 and which 1, it encrypts "a
//! large number of 0s and a large number of 1s to use later", then the
//! online phase is a table lookup. The paper measures an ≈82 % reduction
//! in online runtime over the short-distance link.
//!
//! Two pool flavors are provided:
//!
//! * [`BitEncryptionPool`] — precomputed `E(0)`/`E(1)` ciphertexts,
//!   exactly the paper's scheme;
//! * [`RandomizerPool`] — precomputed `r^N` factors, which can encrypt
//!   *any* plaintext online at the cost of one cheap multiplication
//!   (a generalization useful for weighted queries).
//!
//! Both have thread-safe wrappers so a background thread can keep filling
//! while the protocol drains.

use std::collections::VecDeque;

use parking_lot::Mutex;
use pps_bignum::Uint;
use rand::RngCore;

use crate::error::CryptoError;
use crate::paillier::{Ciphertext, PaillierPublicKey};

/// Pool of precomputed encryptions of the bits 0 and 1.
pub struct BitEncryptionPool {
    key: PaillierPublicKey,
    zeros: VecDeque<Ciphertext>,
    ones: VecDeque<Ciphertext>,
}

impl BitEncryptionPool {
    /// Creates an empty pool bound to `key`.
    pub fn new(key: PaillierPublicKey) -> Self {
        BitEncryptionPool {
            key,
            zeros: VecDeque::new(),
            ones: VecDeque::new(),
        }
    }

    /// Precomputes `n_zeros` encryptions of 0 and `n_ones` of 1 (the
    /// offline phase).
    ///
    /// # Errors
    /// Propagates encryption errors.
    pub fn fill(
        &mut self,
        n_zeros: usize,
        n_ones: usize,
        rng: &mut dyn RngCore,
    ) -> Result<(), CryptoError> {
        self.zeros.reserve(n_zeros);
        self.ones.reserve(n_ones);
        for _ in 0..n_zeros {
            self.zeros.push_back(self.key.encrypt(&Uint::zero(), rng)?);
        }
        for _ in 0..n_ones {
            self.ones.push_back(self.key.encrypt(&Uint::one(), rng)?);
        }
        Ok(())
    }

    /// Takes a precomputed encryption of `bit` (the online phase).
    ///
    /// # Errors
    /// [`CryptoError::PoolExhausted`] when the respective pool is empty.
    pub fn take(&mut self, bit: bool) -> Result<Ciphertext, CryptoError> {
        let (queue, name) = if bit {
            (&mut self.ones, "one")
        } else {
            (&mut self.zeros, "zero")
        };
        queue
            .pop_front()
            .ok_or(CryptoError::PoolExhausted { pool: name })
    }

    /// Remaining `(zeros, ones)` counts.
    pub fn remaining(&self) -> (usize, usize) {
        (self.zeros.len(), self.ones.len())
    }

    /// The key this pool encrypts under.
    pub fn key(&self) -> &PaillierPublicKey {
        &self.key
    }
}

/// Pool of precomputed `r^N mod N²` factors; each encrypts one arbitrary
/// plaintext online with a single modular multiplication.
pub struct RandomizerPool {
    key: PaillierPublicKey,
    randomizers: VecDeque<Uint>,
}

impl RandomizerPool {
    /// Creates an empty pool bound to `key`.
    pub fn new(key: PaillierPublicKey) -> Self {
        RandomizerPool {
            key,
            randomizers: VecDeque::new(),
        }
    }

    /// Precomputes `count` randomizer factors (the offline phase).
    ///
    /// # Errors
    /// Propagates sampling errors.
    pub fn fill(&mut self, count: usize, rng: &mut dyn RngCore) -> Result<(), CryptoError> {
        self.randomizers.reserve(count);
        for _ in 0..count {
            self.randomizers.push_back(self.key.sample_randomizer(rng)?);
        }
        Ok(())
    }

    /// Encrypts `m` using one pooled randomizer (cheap online phase).
    ///
    /// # Errors
    /// [`CryptoError::PoolExhausted`] when empty;
    /// [`CryptoError::PlaintextOutOfRange`] when `m >= N`.
    pub fn encrypt(&mut self, m: &Uint) -> Result<Ciphertext, CryptoError> {
        let rn = self
            .randomizers
            .pop_front()
            .ok_or(CryptoError::PoolExhausted { pool: "randomizer" })?;
        self.key.encrypt_with_randomizer(m, &rn)
    }

    /// Remaining randomizer count.
    pub fn remaining(&self) -> usize {
        self.randomizers.len()
    }
}

/// Thread-safe wrapper over [`BitEncryptionPool`], for concurrent
/// fill/drain across threads (e.g. a producer thread topping the pool up
/// while the client streams batches).
pub struct SharedBitPool {
    inner: Mutex<BitEncryptionPool>,
}

impl SharedBitPool {
    /// Wraps a pool for shared use.
    pub fn new(pool: BitEncryptionPool) -> Self {
        SharedBitPool {
            inner: Mutex::new(pool),
        }
    }

    /// Thread-safe [`BitEncryptionPool::take`].
    ///
    /// # Errors
    /// As the wrapped method.
    pub fn take(&self, bit: bool) -> Result<Ciphertext, CryptoError> {
        self.inner.lock().take(bit)
    }

    /// Thread-safe [`BitEncryptionPool::fill`].
    ///
    /// # Errors
    /// As the wrapped method.
    pub fn fill(
        &self,
        n_zeros: usize,
        n_ones: usize,
        rng: &mut dyn RngCore,
    ) -> Result<(), CryptoError> {
        self.inner.lock().fill(n_zeros, n_ones, rng)
    }

    /// Thread-safe [`BitEncryptionPool::remaining`].
    pub fn remaining(&self) -> (usize, usize) {
        self.inner.lock().remaining()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paillier::PaillierKeypair;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    fn keypair() -> PaillierKeypair {
        let mut rng = StdRng::seed_from_u64(31);
        PaillierKeypair::generate(128, &mut rng).unwrap()
    }

    #[test]
    fn bit_pool_decrypts_correctly() {
        let kp = keypair();
        let mut rng = StdRng::seed_from_u64(32);
        let mut pool = BitEncryptionPool::new(kp.public.clone());
        pool.fill(3, 3, &mut rng).unwrap();
        assert_eq!(pool.remaining(), (3, 3));
        let z = pool.take(false).unwrap();
        let o = pool.take(true).unwrap();
        assert_eq!(kp.secret.decrypt(&z).unwrap(), Uint::zero());
        assert_eq!(kp.secret.decrypt(&o).unwrap(), Uint::one());
        assert_eq!(pool.remaining(), (2, 2));
    }

    #[test]
    fn bit_pool_exhaustion() {
        let kp = keypair();
        let mut rng = StdRng::seed_from_u64(33);
        let mut pool = BitEncryptionPool::new(kp.public.clone());
        pool.fill(1, 0, &mut rng).unwrap();
        assert!(pool.take(false).is_ok());
        assert!(matches!(
            pool.take(false),
            Err(CryptoError::PoolExhausted { pool: "zero" })
        ));
        assert!(matches!(
            pool.take(true),
            Err(CryptoError::PoolExhausted { pool: "one" })
        ));
    }

    #[test]
    fn pooled_ciphertexts_are_distinct() {
        // Each pooled E(1) must carry fresh randomness or the server
        // could link repeated selections.
        let kp = keypair();
        let mut rng = StdRng::seed_from_u64(34);
        let mut pool = BitEncryptionPool::new(kp.public.clone());
        pool.fill(0, 10, &mut rng).unwrap();
        let mut seen = Vec::new();
        for _ in 0..10 {
            let c = pool.take(true).unwrap();
            assert!(!seen.contains(&c));
            seen.push(c);
        }
    }

    #[test]
    fn randomizer_pool_encrypts_arbitrary_values() {
        let kp = keypair();
        let mut rng = StdRng::seed_from_u64(35);
        let mut pool = RandomizerPool::new(kp.public.clone());
        pool.fill(4, &mut rng).unwrap();
        for m in [0u64, 7, 123_456, u32::MAX as u64] {
            let ct = pool.encrypt(&Uint::from_u64(m)).unwrap();
            assert_eq!(kp.secret.decrypt(&ct).unwrap(), Uint::from_u64(m));
        }
        assert!(matches!(
            pool.encrypt(&Uint::zero()),
            Err(CryptoError::PoolExhausted { .. })
        ));
    }

    #[test]
    fn shared_pool_across_threads() {
        let kp = keypair();
        let mut rng = StdRng::seed_from_u64(36);
        let mut pool = BitEncryptionPool::new(kp.public.clone());
        pool.fill(50, 50, &mut rng).unwrap();
        let shared = Arc::new(SharedBitPool::new(pool));

        let handles: Vec<_> = (0..4)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || {
                    let mut got = 0;
                    for j in 0..25 {
                        if shared.take((i + j) % 2 == 0).is_ok() {
                            got += 1;
                        }
                    }
                    got
                })
            })
            .collect();
        let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        let (z, o) = shared.remaining();
        assert_eq!(total + z + o, 100, "every ciphertext taken exactly once");
    }
}
