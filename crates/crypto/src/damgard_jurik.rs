//! The Damgård–Jurik generalization of Paillier (PKC 2001).
//!
//! Paillier works modulo `N²` with plaintext space `Z_N`; Damgård–Jurik
//! works modulo `N^{s+1}` with plaintext space `Z_{N^s}` for any `s ≥ 1`
//! (`s = 1` *is* Paillier). The same additive homomorphism holds, so the
//! selected-sum protocol's message-space ceiling — the `SumOverflow`
//! guard in `pps-protocol` — can be lifted arbitrarily without changing
//! the key: a 512-bit `N` at `s = 4` carries 2048-bit sums.
//!
//! * Encryption: `E(m; r) = (1+N)^m · r^{N^s} mod N^{s+1}`.
//! * Decryption: with `d ≡ 1 (mod N^s)`, `d ≡ 0 (mod λ)`, compute
//!   `c^d = (1+N)^m mod N^{s+1}` and extract `m` with Damgård–Jurik's
//!   recursive discrete-log algorithm for the `(1+N)` subgroup.
//!
//! The `(1+N)^m` power itself is computed by binomial expansion
//! (`Σ_{k≤s} C(m,k) N^k`), not exponentiation — the same trick that makes
//! `g = N+1` Paillier fast.

use std::sync::Arc;

use pps_bignum::{Montgomery, Uint};
use rand::RngCore;

use crate::error::CryptoError;

/// Maximum supported exponent `s` (each level multiplies ciphertext and
/// compute cost; beyond ~8 you want a bigger `N` instead).
pub const MAX_S: usize = 8;

/// The public half of a Damgård–Jurik key: everything derivable from
/// `(N, s)`. This is what travels to servers; it cannot decrypt.
pub struct DjPublicKey {
    inner: Arc<DjInner>,
}

/// A Damgård–Jurik keypair for a fixed `s`.
pub struct DamgardJurik {
    public: DjPublicKey,
    /// Decryption exponent `d = λ·(λ⁻¹ mod N^s)` — the secret.
    d: Uint,
}

struct DjInner {
    /// The RSA modulus `N = p·q`.
    n: Uint,
    /// The exponent `s`.
    s: usize,
    /// `N^s` — the plaintext modulus.
    n_s: Uint,
    /// `N^{s+1}` — the ciphertext modulus.
    n_s1: Uint,
    /// Montgomery context over `N^{s+1}`.
    mont: Montgomery,
    /// `N^k` for `k = 0..=s+1`, cached.
    n_pows: Vec<Uint>,
    /// `(k!)⁻¹ mod N^j` lookups are derived from `k!` cached here.
    factorials: Vec<Uint>,
}

impl DamgardJurik {
    /// Builds an instance from two distinct primes and the exponent `s`.
    ///
    /// # Errors
    /// [`CryptoError::KeyGeneration`] for invalid primes or `s`.
    pub fn from_primes(p: Uint, q: Uint, s: usize) -> Result<Self, CryptoError> {
        if s == 0 || s > MAX_S {
            return Err(CryptoError::KeyGeneration(format!(
                "s must be in 1..={MAX_S}"
            )));
        }
        if p == q {
            return Err(CryptoError::KeyGeneration("p == q".into()));
        }
        let n = &p * &q;
        let mut n_pows = vec![Uint::one()];
        for _ in 0..=s {
            let next = n_pows.last().expect("non-empty") * &n;
            n_pows.push(next);
        }
        let n_s = n_pows[s].clone();
        let n_s1 = n_pows[s + 1].clone();
        let mont =
            Montgomery::new(n_s1.clone()).map_err(|e| CryptoError::KeyGeneration(e.to_string()))?;

        let p1 = &p - &Uint::one();
        let q1 = &q - &Uint::one();
        let lambda = p1.lcm(&q1);
        let lambda_inv = lambda
            .mod_inverse(&n_s)
            .map_err(|_| CryptoError::KeyGeneration("gcd(λ, N) != 1".into()))?;
        let d = &lambda * &lambda_inv;

        let mut factorials = vec![Uint::one()];
        for k in 1..=s as u64 {
            let next = factorials.last().expect("non-empty").mul_u64(k);
            factorials.push(next);
        }

        let public = DjPublicKey {
            inner: Arc::new(DjInner {
                n,
                s,
                n_s,
                n_s1,
                mont,
                n_pows,
                factorials,
            }),
        };
        Ok(DamgardJurik { public, d })
    }

    /// Generates fresh primes for a modulus of `modulus_bits` and the
    /// exponent `s`.
    ///
    /// # Errors
    /// As [`DamgardJurik::from_primes`].
    pub fn generate(
        modulus_bits: usize,
        s: usize,
        rng: &mut dyn RngCore,
    ) -> Result<Self, CryptoError> {
        loop {
            let p = Uint::generate_prime(rng, modulus_bits / 2)
                .map_err(|e| CryptoError::KeyGeneration(e.to_string()))?;
            let q = Uint::generate_prime(rng, modulus_bits - modulus_bits / 2)
                .map_err(|e| CryptoError::KeyGeneration(e.to_string()))?;
            if p == q {
                continue;
            }
            match Self::from_primes(p, q, s) {
                Ok(kp) => return Ok(kp),
                Err(_) => continue,
            }
        }
    }

    /// The public half (safe to ship to servers).
    pub fn public(&self) -> &DjPublicKey {
        &self.public
    }

    /// The RSA modulus `N`.
    pub fn n(&self) -> &Uint {
        self.public.n()
    }

    /// The exponent `s`.
    pub fn s(&self) -> usize {
        self.public.s()
    }

    /// The plaintext modulus `N^s`.
    pub fn plaintext_modulus(&self) -> &Uint {
        self.public.plaintext_modulus()
    }

    /// Convenience delegator to [`DjPublicKey::encrypt`].
    ///
    /// # Errors
    /// As the public-key method.
    pub fn encrypt(&self, m: &Uint, rng: &mut dyn RngCore) -> Result<DjCiphertext, CryptoError> {
        self.public.encrypt(m, rng)
    }

    /// Convenience delegator to [`DjPublicKey::add`].
    ///
    /// # Errors
    /// As the public-key method.
    pub fn add(&self, a: &DjCiphertext, b: &DjCiphertext) -> Result<DjCiphertext, CryptoError> {
        self.public.add(a, b)
    }

    /// Convenience delegator to [`DjPublicKey::mul_plain`].
    ///
    /// # Errors
    /// As the public-key method.
    pub fn mul_plain(&self, a: &DjCiphertext, k: &Uint) -> Result<DjCiphertext, CryptoError> {
        self.public.mul_plain(a, k)
    }

    /// Ciphertext width in bytes (`N^{s+1}`).
    pub fn ciphertext_bytes(&self) -> usize {
        self.public.ciphertext_bytes()
    }

    /// Decrypts.
    ///
    /// # Errors
    /// [`CryptoError::InvalidCiphertext`] for values outside the group.
    pub fn decrypt(&self, c: &DjCiphertext) -> Result<Uint, CryptoError> {
        let inner = &self.public.inner;
        if c.0.is_zero() || !c.0.gcd(&inner.n).is_one() {
            return Err(CryptoError::InvalidCiphertext("not in Z*_{N^{s+1}}"));
        }
        // c^d = (1+N)^m mod N^{s+1}.
        let a = inner.mont.pow(&c.0, &self.d)?;
        self.public.dlog_one_plus_n(&a)
    }
}

impl DjPublicKey {
    /// Reconstructs a public key from `(N, s)` — how a server
    /// materializes it from the wire.
    ///
    /// # Errors
    /// [`CryptoError::Decode`] for invalid parameters.
    pub fn from_modulus(n: Uint, s: usize) -> Result<Self, CryptoError> {
        if s == 0 || s > MAX_S {
            return Err(CryptoError::Decode("s out of range"));
        }
        if n.is_even() || n.bit_len() < 16 {
            return Err(CryptoError::Decode("bad modulus"));
        }
        let mut n_pows = vec![Uint::one()];
        for _ in 0..=s {
            let next = n_pows.last().expect("non-empty") * &n;
            n_pows.push(next);
        }
        let n_s = n_pows[s].clone();
        let n_s1 = n_pows[s + 1].clone();
        let mont =
            Montgomery::new(n_s1.clone()).map_err(|_| CryptoError::Decode("modulus unusable"))?;
        let mut factorials = vec![Uint::one()];
        for k in 1..=s as u64 {
            let next = factorials.last().expect("non-empty").mul_u64(k);
            factorials.push(next);
        }
        Ok(DjPublicKey {
            inner: Arc::new(DjInner {
                n,
                s,
                n_s,
                n_s1,
                mont,
                n_pows,
                factorials,
            }),
        })
    }

    /// The RSA modulus `N`.
    pub fn n(&self) -> &Uint {
        &self.inner.n
    }

    /// The exponent `s`.
    pub fn s(&self) -> usize {
        self.inner.s
    }

    /// The plaintext modulus `N^s`.
    pub fn plaintext_modulus(&self) -> &Uint {
        &self.inner.n_s
    }

    /// `(1 + N)^m mod N^{s+1}` by binomial expansion:
    /// `Σ_{k=0}^{s} C(m, k)·N^k` (higher terms vanish mod `N^{s+1}`).
    fn one_plus_n_pow(&self, m: &Uint) -> Result<Uint, CryptoError> {
        let inner = &self.inner;
        let mut acc = Uint::one();
        // C(m, k) = m·(m−1)·…·(m−k+1) / k!, computed exactly then
        // reduced; we build the falling factorial mod N^{s+1} and divide
        // by k! via modular inverse (k! is coprime to N).
        let mut falling = Uint::one();
        for k in 1..=inner.s {
            // falling *= (m - (k-1)) mod N^{s+1}; m is reduced mod N^s so
            // the subtraction could underflow — do it modularly.
            let term = m.mod_sub(&Uint::from_u64((k - 1) as u64), &inner.n_s1)?;
            falling = falling.mod_mul(&term, &inner.n_s1)?;
            let k_fact_inv = inner.factorials[k]
                .mod_inverse(&inner.n_s1)
                .map_err(|_| CryptoError::KeyGeneration("k! not invertible".into()))?;
            let binom = falling.mod_mul(&k_fact_inv, &inner.n_s1)?;
            let contribution = binom.mod_mul(&inner.n_pows[k], &inner.n_s1)?;
            acc = acc.mod_add(&contribution, &inner.n_s1)?;
        }
        Ok(acc)
    }

    /// Encrypts `m ∈ [0, N^s)`.
    ///
    /// # Errors
    /// [`CryptoError::PlaintextOutOfRange`] beyond the plaintext space.
    pub fn encrypt(&self, m: &Uint, rng: &mut dyn RngCore) -> Result<DjCiphertext, CryptoError> {
        let inner = &self.inner;
        if m >= &inner.n_s {
            return Err(CryptoError::PlaintextOutOfRange);
        }
        let r = Uint::random_coprime(rng, &inner.n)?;
        let r_ns = inner.mont.pow(&r, &inner.n_s)?;
        let gm = self.one_plus_n_pow(m)?;
        Ok(DjCiphertext(gm.mod_mul(&r_ns, &inner.n_s1)?))
    }

    /// Damgård–Jurik's algorithm: given `a = (1+N)^m mod N^{s+1}`,
    /// recovers `m mod N^s`.
    fn dlog_one_plus_n(&self, a: &Uint) -> Result<Uint, CryptoError> {
        let inner = &self.inner;
        let mut m = Uint::zero();
        for j in 1..=inner.s {
            let n_j = &inner.n_pows[j];
            let n_j1 = &inner.n_pows[j + 1];
            // t1 = L(a mod N^{j+1}) = ((a mod N^{j+1}) − 1) / N.
            let a_red = a.rem_of(n_j1)?;
            let minus1 = a_red
                .checked_sub(&Uint::one())
                .map_err(|_| CryptoError::InvalidCiphertext("dlog input is zero"))?;
            let (mut t1, rem) = minus1.div_rem(&inner.n)?;
            if !rem.is_zero() {
                return Err(CryptoError::InvalidCiphertext("dlog input not ≡ 1 mod N"));
            }
            t1 = t1.rem_of(n_j)?;
            // Subtract the higher binomial contributions of the current
            // estimate: t1 −= C(m, k)·N^{k−1} for k = 2..=j.
            let mut t2 = m.clone();
            let mut i_run = m.clone();
            for k in 2..=j {
                // i_run = m − (k − 1); build falling factorial mod N^j.
                i_run = i_run.mod_sub(&Uint::one(), n_j)?;
                t2 = t2.mod_mul(&i_run, n_j)?;
                let k_fact_inv = inner.factorials[k]
                    .mod_inverse(n_j)
                    .map_err(|_| CryptoError::KeyGeneration("k! not invertible".into()))?;
                let binom = t2.mod_mul(&k_fact_inv, n_j)?;
                let sub = binom.mod_mul(&inner.n_pows[k - 1], n_j)?;
                t1 = t1.mod_sub(&sub, n_j)?;
                // Restore t2 to the raw falling factorial (undo the k!
                // division for the next round).
                t2 = binom.mod_mul(&inner.factorials[k], n_j)?;
            }
            m = t1;
        }
        Ok(m)
    }

    /// Homomorphic addition.
    ///
    /// # Errors
    /// Propagates bignum errors.
    pub fn add(&self, a: &DjCiphertext, b: &DjCiphertext) -> Result<DjCiphertext, CryptoError> {
        Ok(DjCiphertext(a.0.mod_mul(&b.0, &self.inner.n_s1)?))
    }

    /// Homomorphic scalar multiplication (`E(m)^k = E(m·k)`).
    ///
    /// # Errors
    /// Propagates bignum errors.
    pub fn mul_plain(&self, a: &DjCiphertext, k: &Uint) -> Result<DjCiphertext, CryptoError> {
        Ok(DjCiphertext(self.inner.mont.pow(&a.0, k)?))
    }

    /// Ciphertext width in bytes (`N^{s+1}`).
    pub fn ciphertext_bytes(&self) -> usize {
        self.inner.n_s1.bit_len().div_ceil(8)
    }
}

impl Clone for DamgardJurik {
    fn clone(&self) -> Self {
        DamgardJurik {
            public: self.public.clone(),
            d: self.d.clone(),
        }
    }
}

impl Clone for DjPublicKey {
    fn clone(&self) -> Self {
        DjPublicKey {
            inner: Arc::clone(&self.inner),
        }
    }
}

/// A Damgård–Jurik ciphertext (element of `Z*_{N^{s+1}}`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DjCiphertext(Uint);

impl DjCiphertext {
    /// The raw group element.
    pub fn raw(&self) -> &Uint {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn keypair(s: usize) -> DamgardJurik {
        let mut rng = StdRng::seed_from_u64(2001 + s as u64);
        DamgardJurik::generate(128, s, &mut rng).unwrap()
    }

    #[test]
    fn s1_round_trip() {
        let kp = keypair(1);
        let mut rng = StdRng::seed_from_u64(1);
        for m in [0u64, 1, 42, u64::MAX] {
            let ct = kp.encrypt(&Uint::from_u64(m), &mut rng).unwrap();
            assert_eq!(kp.decrypt(&ct).unwrap(), Uint::from_u64(m), "m={m}");
        }
    }

    #[test]
    fn s2_and_s3_round_trip() {
        let mut rng = StdRng::seed_from_u64(2);
        for s in [2usize, 3] {
            let kp = keypair(s);
            // Plaintexts wider than N (impossible for plain Paillier).
            let wide = Uint::random_below(&mut rng, kp.plaintext_modulus()).unwrap();
            let ct = kp.encrypt(&wide, &mut rng).unwrap();
            assert_eq!(kp.decrypt(&ct).unwrap(), wide, "s={s}");
        }
    }

    #[test]
    fn plaintext_space_is_n_to_the_s() {
        let kp = keypair(2);
        let mut rng = StdRng::seed_from_u64(3);
        // N ≤ m < N² must round-trip (beyond base Paillier).
        let beyond_n = kp.n() + &Uint::from_u64(12345);
        let ct = kp.encrypt(&beyond_n, &mut rng).unwrap();
        assert_eq!(kp.decrypt(&ct).unwrap(), beyond_n);
        // m ≥ N² is rejected.
        assert!(matches!(
            kp.encrypt(kp.plaintext_modulus(), &mut rng),
            Err(CryptoError::PlaintextOutOfRange)
        ));
    }

    #[test]
    fn additive_homomorphism_across_n_boundary() {
        // The whole point: sums that would wrap Z_N stay exact in Z_{N²}.
        let kp = keypair(2);
        let mut rng = StdRng::seed_from_u64(4);
        let a = kp.n() - &Uint::one(); // N − 1
        let b = kp.n().clone(); // N
        let ea = kp.encrypt(&a, &mut rng).unwrap();
        let eb = kp.encrypt(&b, &mut rng).unwrap();
        let sum = kp.add(&ea, &eb).unwrap();
        assert_eq!(kp.decrypt(&sum).unwrap(), &a + &b, "2N − 1 > N survives");
    }

    #[test]
    fn scalar_multiplication() {
        let kp = keypair(2);
        let mut rng = StdRng::seed_from_u64(5);
        let m = Uint::from_u64(1_000_000);
        let ct = kp.encrypt(&m, &mut rng).unwrap();
        let prod = kp.mul_plain(&ct, &Uint::from_u64(1_000_000_007)).unwrap();
        assert_eq!(
            kp.decrypt(&prod).unwrap(),
            Uint::from_u128(1_000_000u128 * 1_000_000_007)
        );
    }

    #[test]
    fn s1_interoperates_with_paillier() {
        // Same primes, s = 1: identical scheme.
        let mut rng = StdRng::seed_from_u64(6);
        let p = Uint::generate_prime(&mut rng, 64).unwrap();
        let q = Uint::generate_prime(&mut rng, 64).unwrap();
        let paillier = crate::paillier::PaillierKeypair::from_primes(p.clone(), q.clone()).unwrap();
        let dj = DamgardJurik::from_primes(p, q, 1).unwrap();

        let m = Uint::from_u64(31337);
        let dj_ct = dj.encrypt(&m, &mut rng).unwrap();
        // A DJ s=1 ciphertext is a valid Paillier ciphertext.
        let as_paillier = paillier.public.validate(dj_ct.raw()).unwrap();
        assert_eq!(paillier.secret.decrypt(&as_paillier).unwrap(), m);
    }

    #[test]
    fn ciphertext_width_scales_with_s() {
        let k1 = keypair(1);
        let k3 = keypair(3);
        assert!(k3.ciphertext_bytes() > k1.ciphertext_bytes());
        // Width ≈ (s+1)·|N|.
        let per_level = k3.ciphertext_bytes() as f64 / 4.0;
        assert!((per_level - 16.0).abs() < 2.0, "per level {per_level}");
    }

    #[test]
    fn invalid_inputs_rejected() {
        let mut rng = StdRng::seed_from_u64(7);
        let p = Uint::generate_prime(&mut rng, 64).unwrap();
        let q = Uint::generate_prime(&mut rng, 64).unwrap();
        assert!(DamgardJurik::from_primes(p.clone(), p.clone(), 2).is_err());
        assert!(DamgardJurik::from_primes(p.clone(), q.clone(), 0).is_err());
        assert!(DamgardJurik::from_primes(p, q, MAX_S + 1).is_err());
        let kp = keypair(2);
        assert!(kp.decrypt(&DjCiphertext(Uint::zero())).is_err());
        assert!(kp.decrypt(&DjCiphertext(kp.n().clone())).is_err());
    }

    #[test]
    fn many_random_round_trips() {
        let kp = keypair(3);
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..10 {
            let m = Uint::random_below(&mut rng, kp.plaintext_modulus()).unwrap();
            let ct = kp.encrypt(&m, &mut rng).unwrap();
            assert_eq!(kp.decrypt(&ct).unwrap(), m);
        }
    }
}
