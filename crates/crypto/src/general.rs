//! Textbook Paillier with an arbitrary generator `g` — the scheme exactly
//! as published (EUROCRYPT '99), kept alongside the optimized `g = N + 1`
//! implementation in [`crate::paillier`] for two reasons:
//!
//! 1. **Cross-validation**: both schemes share a key structure; tests
//!    check that a general-`g` instance with `g = N + 1` produces
//!    ciphertexts the optimized decoder decrypts identically, and that
//!    homomorphic identities hold for random valid `g`.
//! 2. **Ablation**: the `g = N + 1` simplification replaces a full-width
//!    `g^m mod N²` exponentiation with one multiplication. The ablation
//!    bench (`cargo bench -p pps-bench`) quantifies what the paper's
//!    implementation gained by it.

use pps_bignum::{Montgomery, Uint};
use rand::RngCore;

use crate::error::CryptoError;
use crate::paillier::Ciphertext;

/// A textbook Paillier keypair with explicit generator `g`.
pub struct GeneralPaillier {
    /// Modulus `N = p·q`.
    n: Uint,
    /// `N²`.
    n_squared: Uint,
    /// Montgomery context over `N²`.
    mont: Montgomery,
    /// The generator `g ∈ Z*_{N²}`.
    g: Uint,
    /// `λ = lcm(p−1, q−1)`.
    lambda: Uint,
    /// `μ = L(g^λ mod N²)⁻¹ mod N`.
    mu: Uint,
}

impl GeneralPaillier {
    /// Builds an instance from primes `p`, `q` and generator `g`.
    ///
    /// # Errors
    /// [`CryptoError::KeyGeneration`] when `g` is not a valid generator
    /// (i.e. `L(g^λ)` is not invertible mod `N`) or the primes are bad.
    pub fn from_primes_and_g(p: Uint, q: Uint, g: Uint) -> Result<Self, CryptoError> {
        if p == q {
            return Err(CryptoError::KeyGeneration("p == q".into()));
        }
        let n = &p * &q;
        let n_squared = n.square();
        if g.is_zero() || g >= n_squared || !g.gcd(&n_squared).is_one() {
            return Err(CryptoError::KeyGeneration("g not in Z*_{N²}".into()));
        }
        let mont = Montgomery::new(n_squared.clone())
            .map_err(|e| CryptoError::KeyGeneration(e.to_string()))?;
        let p1 = &p - &Uint::one();
        let q1 = &q - &Uint::one();
        let lambda = p1.lcm(&q1);
        let g_lambda = mont.pow(&g, &lambda)?;
        let l = l_function(&g_lambda, &n)?;
        let mu = l
            .mod_inverse(&n)
            .map_err(|_| CryptoError::KeyGeneration("g has wrong order".into()))?;
        Ok(GeneralPaillier {
            n,
            n_squared,
            mont,
            g,
            lambda,
            mu,
        })
    }

    /// Generates an instance with a *random* valid generator: draws
    /// `g ∈ Z*_{N²}` until `L(g^λ)` is invertible (almost always on the
    /// first try).
    ///
    /// # Errors
    /// [`CryptoError::KeyGeneration`] on repeated failures.
    pub fn generate(modulus_bits: usize, rng: &mut dyn RngCore) -> Result<Self, CryptoError> {
        let half = modulus_bits / 2;
        for _ in 0..16 {
            let p = Uint::generate_prime(rng, half)
                .map_err(|e| CryptoError::KeyGeneration(e.to_string()))?;
            let q = Uint::generate_prime(rng, modulus_bits - half)
                .map_err(|e| CryptoError::KeyGeneration(e.to_string()))?;
            if p == q {
                continue;
            }
            let n = &p * &q;
            let n_squared = n.square();
            let g = Uint::random_coprime(rng, &n_squared)?;
            match Self::from_primes_and_g(p, q, g) {
                Ok(kp) => return Ok(kp),
                Err(_) => continue,
            }
        }
        Err(CryptoError::KeyGeneration(
            "no valid (p, q, g) found".into(),
        ))
    }

    /// The modulus `N`.
    pub fn n(&self) -> &Uint {
        &self.n
    }

    /// The generator.
    pub fn g(&self) -> &Uint {
        &self.g
    }

    /// Textbook encryption: `c = g^m · r^N mod N²` — *two* full-width
    /// exponentiations (vs one for `g = N + 1`).
    ///
    /// # Errors
    /// [`CryptoError::PlaintextOutOfRange`] for `m >= N`.
    pub fn encrypt(&self, m: &Uint, rng: &mut dyn RngCore) -> Result<Ciphertext, CryptoError> {
        if m >= &self.n {
            return Err(CryptoError::PlaintextOutOfRange);
        }
        let r = Uint::random_coprime(rng, &self.n)?;
        let gm = self.mont.pow(&self.g, m)?;
        let rn = self.mont.pow(&r, &self.n)?;
        Ok(Ciphertext::from_raw_unchecked(
            gm.mod_mul(&rn, &self.n_squared)?,
        ))
    }

    /// Textbook decryption: `m = L(c^λ mod N²) · μ mod N`.
    ///
    /// # Errors
    /// [`CryptoError::InvalidCiphertext`] for values outside `Z*_{N²}`.
    pub fn decrypt(&self, c: &Ciphertext) -> Result<Uint, CryptoError> {
        let c_lambda = self.mont.pow(c.raw(), &self.lambda)?;
        let l = l_function(&c_lambda, &self.n)?;
        Ok(l.mod_mul(&self.mu, &self.n)?)
    }

    /// Homomorphic addition (same operation as the optimized scheme).
    ///
    /// # Errors
    /// Propagates bignum errors.
    pub fn add(&self, a: &Ciphertext, b: &Ciphertext) -> Result<Ciphertext, CryptoError> {
        Ok(Ciphertext::from_raw_unchecked(
            a.raw().mod_mul(b.raw(), &self.n_squared)?,
        ))
    }
}

/// `L(u) = (u − 1) / d` for `u ≡ 1 (mod d)`.
fn l_function(u: &Uint, d: &Uint) -> Result<Uint, CryptoError> {
    let minus1 = u
        .checked_sub(&Uint::one())
        .map_err(|_| CryptoError::InvalidCiphertext("L input is zero"))?;
    let (quot, rem) = minus1.div_rem(d)?;
    if !rem.is_zero() {
        return Err(CryptoError::InvalidCiphertext("L input not ≡ 1 mod d"));
    }
    Ok(quot)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paillier::PaillierKeypair;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(808)
    }

    #[test]
    fn random_g_round_trip() {
        let mut r = rng();
        let kp = GeneralPaillier::generate(128, &mut r).unwrap();
        for m in [0u64, 1, 424_242, u32::MAX as u64] {
            let ct = kp.encrypt(&Uint::from_u64(m), &mut r).unwrap();
            assert_eq!(kp.decrypt(&ct).unwrap(), Uint::from_u64(m), "m={m}");
        }
    }

    #[test]
    fn random_g_homomorphism() {
        let mut r = rng();
        let kp = GeneralPaillier::generate(128, &mut r).unwrap();
        let a = kp.encrypt(&Uint::from_u64(1000), &mut r).unwrap();
        let b = kp.encrypt(&Uint::from_u64(337), &mut r).unwrap();
        let s = kp.add(&a, &b).unwrap();
        assert_eq!(kp.decrypt(&s).unwrap(), Uint::from_u64(1337));
    }

    #[test]
    fn g_equals_n_plus_1_matches_optimized_scheme() {
        // Same primes, g = N + 1: the optimized secret key must decrypt
        // general-scheme ciphertexts and vice versa.
        let mut r = rng();
        let p = Uint::generate_prime(&mut r, 64).unwrap();
        let q = Uint::generate_prime(&mut r, 64).unwrap();
        let optimized = PaillierKeypair::from_primes(p.clone(), q.clone()).unwrap();
        let n = &p * &q;
        let general = GeneralPaillier::from_primes_and_g(p, q, n.add_u64(1)).unwrap();

        let m = Uint::from_u64(987_654_321);
        let ct_general = general.encrypt(&m, &mut r).unwrap();
        assert_eq!(optimized.secret.decrypt(&ct_general).unwrap(), m);

        let ct_optimized = optimized.public.encrypt(&m, &mut r).unwrap();
        assert_eq!(general.decrypt(&ct_optimized).unwrap(), m);
    }

    #[test]
    fn invalid_g_rejected() {
        let mut r = rng();
        let p = Uint::generate_prime(&mut r, 32).unwrap();
        let q = Uint::generate_prime(&mut r, 32).unwrap();
        assert!(GeneralPaillier::from_primes_and_g(p.clone(), q.clone(), Uint::zero()).is_err());
        // g = N shares a factor with N².
        let n = &p * &q;
        assert!(GeneralPaillier::from_primes_and_g(p.clone(), q.clone(), n).is_err());
        // g = 1 has order 1: L(1) = 0 is not invertible.
        assert!(GeneralPaillier::from_primes_and_g(p, q, Uint::one()).is_err());
    }

    #[test]
    fn cross_scheme_homomorphic_mix() {
        // Ciphertexts from both schemes (same key material, g = N+1 vs
        // optimized) can be multiplied together and still decrypt to the
        // sum — they are literally the same group.
        let mut r = rng();
        let p = Uint::generate_prime(&mut r, 64).unwrap();
        let q = Uint::generate_prime(&mut r, 64).unwrap();
        let optimized = PaillierKeypair::from_primes(p.clone(), q.clone()).unwrap();
        let n = &p * &q;
        let general = GeneralPaillier::from_primes_and_g(p, q, n.add_u64(1)).unwrap();

        let a = general.encrypt(&Uint::from_u64(40), &mut r).unwrap();
        let b = optimized.public.encrypt_u64(2, &mut r).unwrap();
        let s = optimized.public.add(&a, &b).unwrap();
        assert_eq!(optimized.secret.decrypt(&s).unwrap(), Uint::from_u64(42));
    }
}
