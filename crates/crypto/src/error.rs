//! Error type for cryptographic operations.

use std::fmt;

use pps_bignum::BignumError;

/// Errors surfaced by the Paillier cryptosystem and related primitives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CryptoError {
    /// Key generation failed (prime generation exhausted its budget or
    /// parameters were invalid).
    KeyGeneration(String),
    /// Requested key size is below the supported minimum.
    KeyTooSmall {
        /// Requested modulus size in bits.
        bits: usize,
        /// Smallest supported modulus size.
        min_bits: usize,
    },
    /// The plaintext is outside the message space `[0, N)`.
    PlaintextOutOfRange,
    /// The ciphertext is not a valid element of `Z*_{N²}`.
    InvalidCiphertext(&'static str),
    /// A ciphertext produced under a different public key was supplied.
    KeyMismatch,
    /// A precomputed-encryption pool ran dry.
    PoolExhausted {
        /// Which pool ("zero", "one", or "randomizer").
        pool: &'static str,
    },
    /// A signed decode's magnitude exceeds 128 bits (possible with large
    /// keys and large blinding values).
    SignedMagnitudeOverflow,
    /// An underlying bignum operation failed.
    Bignum(BignumError),
    /// Byte-level decoding of a key or ciphertext failed.
    Decode(&'static str),
}

impl fmt::Display for CryptoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::KeyGeneration(why) => write!(f, "key generation failed: {why}"),
            Self::KeyTooSmall { bits, min_bits } => {
                write!(f, "key size {bits} below minimum {min_bits} bits")
            }
            Self::PlaintextOutOfRange => write!(f, "plaintext outside message space [0, N)"),
            Self::InvalidCiphertext(why) => write!(f, "invalid ciphertext: {why}"),
            Self::KeyMismatch => write!(f, "ciphertext was produced under a different key"),
            Self::PoolExhausted { pool } => write!(f, "precomputed {pool} pool exhausted"),
            Self::SignedMagnitudeOverflow => {
                write!(f, "signed decode magnitude exceeds 128 bits")
            }
            Self::Bignum(e) => write!(f, "bignum error: {e}"),
            Self::Decode(why) => write!(f, "decode error: {why}"),
        }
    }
}

impl std::error::Error for CryptoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Bignum(e) => Some(e),
            _ => None,
        }
    }
}

impl From<BignumError> for CryptoError {
    fn from(e: BignumError) -> Self {
        Self::Bignum(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = CryptoError::from(BignumError::DivisionByZero);
        assert!(e.to_string().contains("division by zero"));
        assert!(std::error::Error::source(&e).is_some());
        assert!(std::error::Error::source(&CryptoError::KeyMismatch).is_none());
        assert!(CryptoError::PoolExhausted { pool: "zero" }
            .to_string()
            .contains("zero"));
    }
}
