//! The Paillier cryptosystem (Paillier, EUROCRYPT '99), as used by the
//! paper's private selected-sum protocol.
//!
//! We use the standard `g = N + 1` simplification, under which encryption
//! is `E(m; r) = (1 + mN) · r^N mod N²` — one full-width modular
//! exponentiation (`r^N`) per encryption, which is exactly the cost the
//! paper identifies as the client-side bottleneck.
//!
//! Homomorphic properties (all modulo `N²`):
//!
//! * `E(a) · E(b)     = E(a + b)`
//! * `E(a)^k          = E(a · k)`  for `k ∈ N`
//!
//! Decryption uses the CRT over `p²`/`q²`, roughly 4× faster than the
//! direct `L(c^λ mod N²)·μ mod N` form; both are implemented and tested
//! against each other.

use std::fmt;
use std::sync::Arc;

use pps_bignum::{Crt2, FixedExponentPlan, Montgomery, MultiExpPlan, Uint};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

use crate::error::CryptoError;

/// Below this many plaintexts per worker the thread-spawn overhead
/// outweighs the parallel win (one 512-bit encryption is ~10⁵ ns; a
/// thread spawn is ~10⁴ ns, so even small chunks amortize, but chunks
/// of 1–3 just shuffle cache lines around).
const MIN_ENCRYPTIONS_PER_THREAD: usize = 4;

/// Derives one independent CSPRNG per worker chunk from the caller's
/// RNG by *stream splitting*: a fresh 256-bit seed is drawn from the
/// caller for each chunk, in chunk order. Deterministic — the same
/// caller RNG state and chunk count always yield the same seeds — and
/// forward-secure as long as the caller's RNG is itself a CSPRNG
/// (the workspace's `StdRng` is ChaCha12).
fn split_rng_streams(rng: &mut dyn RngCore, chunks: usize) -> Vec<StdRng> {
    (0..chunks)
        .map(|_| {
            let mut seed = [0u8; 32];
            rng.fill_bytes(&mut seed);
            StdRng::from_seed(seed)
        })
        .collect()
}

/// Smallest supported modulus size. 512 matches the paper; anything below
/// 64 breaks the message-space assumptions of the protocol layer.
pub const MIN_KEY_BITS: usize = 64;

/// Default modulus size for non-reproduction use.
///
/// The paper's 512-bit keys are far below modern security margins; repro
/// harnesses pin 512 explicitly.
pub const DEFAULT_KEY_BITS: usize = 2048;

/// A Paillier public key: the modulus `N` plus precomputed contexts.
///
/// Cheap to clone (`Arc` internals); clones share the precomputed
/// Montgomery context for `N²`.
#[derive(Clone)]
pub struct PaillierPublicKey {
    inner: Arc<PublicInner>,
}

struct PublicInner {
    /// The modulus `N = p·q`.
    n: Uint,
    /// `N²`, the ciphertext modulus.
    n_squared: Uint,
    /// Montgomery context over `N²` for encryption and homomorphic ops.
    mont: Montgomery,
    /// `N/2`, cached for signed decoding.
    half_n: Uint,
    /// The window recoding of the fixed exponent `N`, paid once per key
    /// and reused by every `r^N` randomizer sampling (and so by every
    /// pool fill) instead of re-scanning `N`'s bits per call.
    n_plan: FixedExponentPlan,
}

/// A Paillier ciphertext: an element of `Z*_{N²}`.
///
/// The wrapped value is kept in ordinary (non-Montgomery) form so that
/// ciphertexts are directly serializable.
#[derive(Clone, PartialEq, Eq)]
pub struct Ciphertext(pub(crate) Uint);

/// A Paillier secret key, with CRT acceleration state.
pub struct PaillierSecretKey {
    /// Prime factor `p`.
    p: Uint,
    /// Prime factor `q`.
    q: Uint,
    /// `λ = lcm(p-1, q-1)` — kept for the reference (non-CRT) decryption.
    lambda: Uint,
    /// `μ = (L(g^λ mod N²))⁻¹ mod N` — reference decryption.
    mu: Uint,
    /// Montgomery context over `p²`.
    mont_p2: Montgomery,
    /// Montgomery context over `q²`.
    mont_q2: Montgomery,
    /// `hp = L_p(g^{p-1} mod p²)⁻¹ mod p`.
    hp: Uint,
    /// `hq = L_q(g^{q-1} mod q²)⁻¹ mod q`.
    hq: Uint,
    /// CRT recombination over (p, q).
    crt: Crt2,
    /// The matching public key.
    public: PaillierPublicKey,
}

/// A freshly generated Paillier keypair.
pub struct PaillierKeypair {
    /// The public (encryption) key.
    pub public: PaillierPublicKey,
    /// The secret (decryption) key.
    pub secret: PaillierSecretKey,
}

impl PaillierKeypair {
    /// Generates a keypair whose modulus `N` has `modulus_bits` bits.
    ///
    /// The paper's experiments use `modulus_bits = 512`.
    ///
    /// # Errors
    /// [`CryptoError::KeyTooSmall`] below [`MIN_KEY_BITS`];
    /// [`CryptoError::KeyGeneration`] if prime generation fails.
    pub fn generate(modulus_bits: usize, rng: &mut dyn RngCore) -> Result<Self, CryptoError> {
        if modulus_bits < MIN_KEY_BITS {
            return Err(CryptoError::KeyTooSmall {
                bits: modulus_bits,
                min_bits: MIN_KEY_BITS,
            });
        }
        let half = modulus_bits / 2;
        loop {
            let p = Uint::generate_prime(rng, half)
                .map_err(|e| CryptoError::KeyGeneration(e.to_string()))?;
            let q = Uint::generate_prime(rng, modulus_bits - half)
                .map_err(|e| CryptoError::KeyGeneration(e.to_string()))?;
            if p == q {
                continue;
            }
            let n = &p * &q;
            // Two k-bit primes give a (2k−1)- or 2k-bit product; retry
            // until N has exactly the requested width so "512-bit keys"
            // means 512 bits on the wire.
            if n.bit_len() != modulus_bits {
                continue;
            }
            // gcd(N, (p-1)(q-1)) == 1 is required for decryption; retry
            // on the (rare) violating pair.
            let p1 = &p - &Uint::one();
            let q1 = &q - &Uint::one();
            if !n.gcd(&(&p1 * &q1)).is_one() {
                continue;
            }
            return Self::from_primes(p, q);
        }
    }

    /// Builds a keypair from two distinct primes (used by tests with tiny
    /// fixed primes, and by `generate`).
    ///
    /// # Errors
    /// [`CryptoError::KeyGeneration`] when the primes are equal or violate
    /// the `gcd(N, λ) = 1` requirement.
    pub fn from_primes(p: Uint, q: Uint) -> Result<Self, CryptoError> {
        if p == q {
            return Err(CryptoError::KeyGeneration("p == q".into()));
        }
        let n = &p * &q;
        let n_squared = n.square();
        let mont = Montgomery::new(n_squared.clone())
            .map_err(|e| CryptoError::KeyGeneration(e.to_string()))?;
        let half_n = n.shr(1);
        let n_plan = FixedExponentPlan::new(&n);
        let public = PaillierPublicKey {
            inner: Arc::new(PublicInner {
                n: n.clone(),
                n_squared,
                mont,
                half_n,
                n_plan,
            }),
        };

        let p1 = &p - &Uint::one();
        let q1 = &q - &Uint::one();
        let lambda = p1.lcm(&q1);

        // Reference decryption constants: μ = L(g^λ mod N²)^-1 mod N.
        let g_lambda = public.pow_g(&lambda)?;
        let mu = l_function(&g_lambda, &n)?
            .mod_inverse(&n)
            .map_err(|_| CryptoError::KeyGeneration("gcd(N, λ) != 1".into()))?;

        // CRT decryption constants.
        let p2 = p.square();
        let q2 = q.square();
        let mont_p2 = Montgomery::new(p2).map_err(|e| CryptoError::KeyGeneration(e.to_string()))?;
        let mont_q2 = Montgomery::new(q2).map_err(|e| CryptoError::KeyGeneration(e.to_string()))?;
        let g = n.add_u64(1);
        let gp = mont_p2.pow(&g, &p1).map_err(CryptoError::from)?;
        let gq = mont_q2.pow(&g, &q1).map_err(CryptoError::from)?;
        let hp = l_function(&gp, &p)?
            .mod_inverse(&p)
            .map_err(|_| CryptoError::KeyGeneration("no hp inverse".into()))?;
        let hq = l_function(&gq, &q)?
            .mod_inverse(&q)
            .map_err(|_| CryptoError::KeyGeneration("no hq inverse".into()))?;
        let crt = Crt2::new(p.clone(), q.clone())
            .map_err(|e| CryptoError::KeyGeneration(e.to_string()))?;

        let secret = PaillierSecretKey {
            p,
            q,
            lambda,
            mu,
            mont_p2,
            mont_q2,
            hp,
            hq,
            crt,
            public: public.clone(),
        };
        Ok(PaillierKeypair { public, secret })
    }
}

/// `L(u) = (u - 1) / d`, defined when `u ≡ 1 (mod d)`.
fn l_function(u: &Uint, d: &Uint) -> Result<Uint, CryptoError> {
    let minus1 = u
        .checked_sub(&Uint::one())
        .map_err(|_| CryptoError::InvalidCiphertext("L-function input is zero"))?;
    let (quot, rem) = minus1.div_rem(d)?;
    if !rem.is_zero() {
        return Err(CryptoError::InvalidCiphertext(
            "L-function input not ≡ 1 mod d",
        ));
    }
    Ok(quot)
}

impl PaillierPublicKey {
    /// Reconstructs a public key from a received modulus `N` — how the
    /// server materializes the client's key from the wire.
    ///
    /// # Errors
    /// [`CryptoError::Decode`] for even or too-small moduli (a valid
    /// Paillier `N` is a product of two odd primes).
    pub fn from_modulus(n: Uint) -> Result<Self, CryptoError> {
        if n.bit_len() < MIN_KEY_BITS {
            return Err(CryptoError::Decode("modulus too small"));
        }
        if n.is_even() {
            return Err(CryptoError::Decode("modulus must be odd"));
        }
        let n_squared = n.square();
        let mont = Montgomery::new(n_squared.clone())
            .map_err(|_| CryptoError::Decode("modulus not usable"))?;
        let half_n = n.shr(1);
        let n_plan = FixedExponentPlan::new(&n);
        Ok(PaillierPublicKey {
            inner: Arc::new(PublicInner {
                n,
                n_squared,
                mont,
                half_n,
                n_plan,
            }),
        })
    }

    /// The modulus `N` (also the size of the message space).
    pub fn n(&self) -> &Uint {
        &self.inner.n
    }

    /// The ciphertext modulus `N²`.
    pub fn n_squared(&self) -> &Uint {
        &self.inner.n_squared
    }

    /// Modulus size in bits.
    pub fn key_bits(&self) -> usize {
        self.inner.n.bit_len()
    }

    /// Serialized size of one ciphertext in bytes (fixed-width `N²`).
    pub fn ciphertext_bytes(&self) -> usize {
        self.inner.n_squared.bit_len().div_ceil(8)
    }

    /// `g^m mod N²` for `g = N + 1`, via the binomial shortcut
    /// `(1 + N)^m = 1 + mN (mod N²)` — no exponentiation needed.
    fn pow_g(&self, m: &Uint) -> Result<Uint, CryptoError> {
        let m = m.rem_of(&self.inner.n)?;
        Ok((&m * &self.inner.n)
            .add_u64(1)
            .rem_of(&self.inner.n_squared)?)
    }

    /// Draws a fresh encryption randomizer `r ∈ Z*_N` and returns
    /// `r^N mod N²` — the expensive half of an encryption, reusable for
    /// offline precomputation. The fixed exponent `N` is recoded once
    /// per key ([`pps_bignum::FixedExponentPlan`]), so each call pays
    /// only the per-base work.
    pub fn sample_randomizer(&self, rng: &mut dyn RngCore) -> Result<Uint, CryptoError> {
        let r = Uint::random_coprime(rng, &self.inner.n)?;
        Ok(self.inner.n_plan.pow(&self.inner.mont, &r))
    }

    /// Encrypts `m ∈ [0, N)` with fresh randomness.
    ///
    /// # Errors
    /// [`CryptoError::PlaintextOutOfRange`] when `m >= N`.
    pub fn encrypt(&self, m: &Uint, rng: &mut dyn RngCore) -> Result<Ciphertext, CryptoError> {
        let rn = self.sample_randomizer(rng)?;
        self.encrypt_with_randomizer(m, &rn)
    }

    /// Encrypts `m` using a precomputed `r^N mod N²` (see
    /// [`PaillierPublicKey::sample_randomizer`]). This is the fast online
    /// path of the paper's §3.3 preprocessing optimization.
    ///
    /// # Errors
    /// [`CryptoError::PlaintextOutOfRange`] when `m >= N`.
    pub fn encrypt_with_randomizer(
        &self,
        m: &Uint,
        r_to_n: &Uint,
    ) -> Result<Ciphertext, CryptoError> {
        if m >= &self.inner.n {
            return Err(CryptoError::PlaintextOutOfRange);
        }
        let gm = self.pow_g(m)?;
        Ok(Ciphertext(gm.mod_mul(r_to_n, &self.inner.n_squared)?))
    }

    /// Encrypts a `u64` convenience value.
    ///
    /// # Errors
    /// As [`PaillierPublicKey::encrypt`].
    pub fn encrypt_u64(&self, m: u64, rng: &mut dyn RngCore) -> Result<Ciphertext, CryptoError> {
        self.encrypt(&Uint::from_u64(m), rng)
    }

    /// Encrypts a slice of plaintexts sequentially with fresh randomness,
    /// preserving order. The baseline against which
    /// [`PaillierPublicKey::encrypt_batch_parallel`] is measured.
    ///
    /// # Errors
    /// As [`PaillierPublicKey::encrypt`], on the first failing element.
    pub fn encrypt_batch(
        &self,
        ms: &[Uint],
        rng: &mut dyn RngCore,
    ) -> Result<Vec<Ciphertext>, CryptoError> {
        ms.iter().map(|m| self.encrypt(m, rng)).collect()
    }

    /// Encrypts a slice of plaintexts across up to `threads` scoped
    /// worker threads, preserving input order.
    ///
    /// The slice is split into contiguous chunks — the chunk layout and
    /// per-chunk CSPRNG streams are a pure function of `(ms.len(),
    /// threads)` and the caller's RNG state (see the module's
    /// stream-splitting helper), so for a fixed caller RNG state and
    /// thread count the output is reproducible **on any host**. Workers
    /// share this key's Montgomery context for `N²` read-only
    /// (`Montgomery` is `Sync`; see the compile-time audit in
    /// `pps_bignum::montgomery`).
    ///
    /// The number of OS threads actually spawned is additionally capped
    /// at [`crate::host_parallelism`] — requesting more threads than
    /// cores used to *lose* to the sequential path (oversubscribed
    /// workers fight for the same cores) — with surplus chunks handed to
    /// the existing workers in order. Because seeds are bound to chunks,
    /// not threads, this clamp never changes the ciphertext stream.
    ///
    /// `threads <= 1`, or batches too small to amortize thread spawn,
    /// fall back to the sequential path *using the same stream-split
    /// seeding*, so results for a given `threads` value are identical
    /// whether or not the fallback triggers.
    ///
    /// # Errors
    /// As [`PaillierPublicKey::encrypt`], on the first failing element.
    pub fn encrypt_batch_parallel(
        &self,
        ms: &[Uint],
        threads: usize,
        rng: &mut dyn RngCore,
    ) -> Result<Vec<Ciphertext>, CryptoError> {
        self.encrypt_batch_parallel_observed(ms, threads, rng, None)
    }

    /// [`PaillierPublicKey::encrypt_batch_parallel`] with an optional
    /// per-chunk observer: `on_chunk` is called once per worker chunk
    /// (including the sequential-fallback "chunk") with the wall time
    /// that chunk took. Ciphertext output is bit-identical with or
    /// without an observer — timing happens around, never inside, the
    /// deterministic encryption stream.
    ///
    /// # Errors
    /// As [`PaillierPublicKey::encrypt`], on the first failing element.
    pub fn encrypt_batch_parallel_observed(
        &self,
        ms: &[Uint],
        threads: usize,
        rng: &mut dyn RngCore,
        on_chunk: Option<&(dyn Fn(std::time::Duration) + Sync)>,
    ) -> Result<Vec<Ciphertext>, CryptoError> {
        let wanted = threads
            .max(1)
            .min(ms.len() / MIN_ENCRYPTIONS_PER_THREAD.max(1))
            .max(1);
        let chunk = ms.len().div_ceil(wanted).max(1);
        // Seeds are drawn per *chunk*, before any spawning, so the
        // ciphertext stream depends only on (rng state, threads), never
        // on scheduling or on how many OS threads actually run below.
        let mut streams = split_rng_streams(rng, ms.len().div_ceil(chunk));
        let timed_chunk = |mc: &[Uint], stream: &mut StdRng| {
            let start = std::time::Instant::now();
            let result = self.encrypt_batch(mc, stream);
            if let Some(observe) = on_chunk {
                observe(start.elapsed());
            }
            result
        };
        // Oversubscription clamp: spawn at most one worker per core;
        // surplus chunks run on the existing workers, in chunk order.
        let workers = streams.len().min(crate::parallel::host_parallelism());
        if workers <= 1 {
            let mut out = Vec::with_capacity(ms.len());
            for (mc, stream) in ms.chunks(chunk).zip(streams.iter_mut()) {
                out.extend(timed_chunk(mc, stream)?);
            }
            return Ok(out);
        }
        let timed_chunk = &timed_chunk;
        let chunk_slices: Vec<&[Uint]> = ms.chunks(chunk).collect();
        let per_worker = chunk_slices.len().div_ceil(workers);
        let group_results: Vec<Result<Vec<Vec<Ciphertext>>, CryptoError>> =
            std::thread::scope(|s| {
                let handles: Vec<_> = chunk_slices
                    .chunks(per_worker)
                    .zip(streams.chunks_mut(per_worker))
                    .map(|(group, group_streams)| {
                        s.spawn(move || {
                            group
                                .iter()
                                .zip(group_streams.iter_mut())
                                .map(|(mc, stream)| timed_chunk(mc, stream))
                                .collect()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("encryption worker panicked"))
                    .collect()
            });
        let mut out = Vec::with_capacity(ms.len());
        for group in group_results {
            for chunk_cts in group? {
                out.extend(chunk_cts);
            }
        }
        Ok(out)
    }

    /// Draws `count` precomputed `r^N mod N²` randomizer factors across
    /// up to `threads` scoped worker threads — the parallel offline
    /// phase behind [`crate::RandomizerPool::fill_parallel`]. Seeding
    /// and ordering follow the same deterministic stream-split rules as
    /// [`PaillierPublicKey::encrypt_batch_parallel`].
    ///
    /// # Errors
    /// As [`PaillierPublicKey::sample_randomizer`].
    pub fn sample_randomizers_parallel(
        &self,
        count: usize,
        threads: usize,
        rng: &mut dyn RngCore,
    ) -> Result<Vec<Uint>, CryptoError> {
        let wanted = threads
            .max(1)
            .min(count / MIN_ENCRYPTIONS_PER_THREAD.max(1))
            .max(1);
        let chunk = count.div_ceil(wanted).max(1);
        let mut streams = split_rng_streams(rng, count.div_ceil(chunk));
        let sample_chunk = |len: usize, stream: &mut StdRng| -> Result<Vec<Uint>, CryptoError> {
            (0..len).map(|_| self.sample_randomizer(stream)).collect()
        };
        let mut lens = vec![chunk; count / chunk];
        if !count.is_multiple_of(chunk) {
            lens.push(count % chunk);
        }
        // Same oversubscription clamp as `encrypt_batch_parallel`: the
        // chunk/seed layout above is already fixed, so capping spawned
        // threads never changes the randomizer stream.
        let workers = streams.len().min(crate::parallel::host_parallelism());
        if workers <= 1 {
            let mut out = Vec::with_capacity(count);
            for (&len, stream) in lens.iter().zip(streams.iter_mut()) {
                out.extend(sample_chunk(len, stream)?);
            }
            return Ok(out);
        }
        let sample_chunk = &sample_chunk;
        let per_worker = lens.len().div_ceil(workers);
        let group_results: Vec<Result<Vec<Vec<Uint>>, CryptoError>> = std::thread::scope(|s| {
            let handles: Vec<_> = lens
                .chunks(per_worker)
                .zip(streams.chunks_mut(per_worker))
                .map(|(group, group_streams)| {
                    s.spawn(move || {
                        group
                            .iter()
                            .zip(group_streams.iter_mut())
                            .map(|(&len, stream)| sample_chunk(len, stream))
                            .collect()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("randomizer worker panicked"))
                .collect()
        });
        let mut out = Vec::with_capacity(count);
        for group in group_results {
            for chunk_rs in group? {
                out.extend(chunk_rs);
            }
        }
        Ok(out)
    }

    /// Homomorphic addition: `E(a) ⊞ E(b) = E(a + b mod N)`.
    ///
    /// # Errors
    /// Propagates bignum errors (none for valid ciphertexts).
    pub fn add(&self, a: &Ciphertext, b: &Ciphertext) -> Result<Ciphertext, CryptoError> {
        Ok(Ciphertext(a.0.mod_mul(&b.0, &self.inner.n_squared)?))
    }

    /// Homomorphic addition of a plaintext constant:
    /// `E(a) ⊞ k = E(a + k mod N)` via `E(a)·g^k`.
    ///
    /// # Errors
    /// Propagates bignum errors.
    pub fn add_plain(&self, a: &Ciphertext, k: &Uint) -> Result<Ciphertext, CryptoError> {
        let gk = self.pow_g(k)?;
        Ok(Ciphertext(a.0.mod_mul(&gk, &self.inner.n_squared)?))
    }

    /// Homomorphic scalar multiplication: `E(a) ⊠ k = E(a·k mod N)` via
    /// `E(a)^k mod N²`. This is the server's per-element operation in the
    /// selected-sum protocol (`E(I_i)^{x_i}`).
    ///
    /// # Errors
    /// Propagates bignum errors.
    pub fn mul_plain(&self, a: &Ciphertext, k: &Uint) -> Result<Ciphertext, CryptoError> {
        Ok(Ciphertext(self.inner.mont.pow(&a.0, k)?))
    }

    /// The server's whole-batch fold in one call:
    /// `Π ctsᵢ^{weightsᵢ} = E(Σ weightsᵢ·mᵢ)`, computed with a shared
    /// squaring chain (Straus interleaving) — roughly 2–3× faster than
    /// folding element by element for the protocol's short exponents.
    ///
    /// # Errors
    /// Propagates bignum errors; never fails for valid ciphertexts.
    ///
    /// # Panics
    /// Panics when the slice lengths differ (caller bug).
    pub fn fold_product(
        &self,
        cts: &[Ciphertext],
        weights: &[Uint],
    ) -> Result<Ciphertext, CryptoError> {
        assert_eq!(
            cts.len(),
            weights.len(),
            "ciphertext/weight length mismatch"
        );
        let bases: Vec<Uint> = cts.iter().map(|c| c.0.clone()).collect();
        Ok(Ciphertext(self.inner.mont.multi_pow(&bases, weights)))
    }

    /// Parallel variant of [`PaillierPublicKey::fold_product`]: the batch
    /// is split into up to `threads` chunks folded concurrently, and the
    /// per-chunk partial products are combined with one homomorphic
    /// addition (ciphertext multiplication) each —
    /// `Π(partials) = E(Σ partial sums)`. Decrypts to the identical
    /// selected sum as the sequential strategies.
    ///
    /// # Errors
    /// Propagates bignum errors; never fails for valid ciphertexts.
    ///
    /// # Panics
    /// Panics when the slice lengths differ (caller bug).
    pub fn fold_product_parallel(
        &self,
        cts: &[Ciphertext],
        weights: &[Uint],
        threads: usize,
    ) -> Result<Ciphertext, CryptoError> {
        assert_eq!(
            cts.len(),
            weights.len(),
            "ciphertext/weight length mismatch"
        );
        let bases: Vec<Uint> = cts.iter().map(|c| c.0.clone()).collect();
        Ok(Ciphertext(
            self.inner.mont.multi_pow_parallel(&bases, weights, threads),
        ))
    }

    /// The server's batch fold against a precomputed per-database
    /// [`MultiExpPlan`]: `Π ctsᵢ^{x_{start+i}}` where the plan holds the
    /// window recoding and Pippenger bucket assignment of every fixed
    /// database exponent, built once and shared across queries. Decrypts
    /// to the identical selected sum as
    /// [`PaillierPublicKey::fold_product`].
    ///
    /// # Errors
    /// Propagates bignum errors — notably when
    /// `start + cts.len()` exceeds the plan's rows (plan built for a
    /// different database).
    pub fn fold_product_planned(
        &self,
        cts: &[Ciphertext],
        plan: &MultiExpPlan,
        start: usize,
    ) -> Result<Ciphertext, CryptoError> {
        let bases: Vec<Uint> = cts.iter().map(|c| c.0.clone()).collect();
        Ok(Ciphertext(plan.fold_range(
            &self.inner.mont,
            &bases,
            start,
        )?))
    }

    /// [`PaillierPublicKey::fold_product_planned`] with a caller-forced
    /// effective window width instead of the plan's cost-model choice —
    /// the `fold_precompute` bench uses this for its window sweep.
    ///
    /// # Errors
    /// As [`PaillierPublicKey::fold_product_planned`]; additionally when
    /// `window_bits` is not a positive multiple of 4 up to 16.
    pub fn fold_product_planned_with_window(
        &self,
        cts: &[Ciphertext],
        plan: &MultiExpPlan,
        start: usize,
        window_bits: usize,
    ) -> Result<Ciphertext, CryptoError> {
        let ctx = &self.inner.mont;
        let bases: Vec<_> = cts.iter().map(|c| ctx.to_mont(&c.0)).collect();
        let folded = plan.fold_range_mont_with_window(ctx, &bases, start, window_bits)?;
        Ok(Ciphertext(ctx.from_mont(&folded)))
    }

    /// Homomorphic negation: `E(a) ↦ E(N - a) = E(-a mod N)`.
    ///
    /// # Errors
    /// [`CryptoError::InvalidCiphertext`] when the ciphertext is not
    /// invertible modulo `N²`.
    pub fn neg(&self, a: &Ciphertext) -> Result<Ciphertext, CryptoError> {
        let inv =
            a.0.mod_inverse(&self.inner.n_squared)
                .map_err(|_| CryptoError::InvalidCiphertext("not invertible mod N²"))?;
        Ok(Ciphertext(inv))
    }

    /// Re-randomizes a ciphertext: multiplies by a fresh `E(0)`, producing
    /// an unlinkable encryption of the same plaintext.
    ///
    /// # Errors
    /// Propagates bignum errors.
    pub fn rerandomize(
        &self,
        a: &Ciphertext,
        rng: &mut dyn RngCore,
    ) -> Result<Ciphertext, CryptoError> {
        let rn = self.sample_randomizer(rng)?;
        Ok(Ciphertext(a.0.mod_mul(&rn, &self.inner.n_squared)?))
    }

    /// The trivially valid encryption of zero with unit randomness
    /// (`E(0; 1) = 1`). Useful as a product accumulator seed.
    pub fn identity(&self) -> Ciphertext {
        Ciphertext(Uint::one())
    }

    /// Validates that a received value lies in `Z*_{N²}` — the check a
    /// careful implementation performs on every wire ciphertext.
    ///
    /// # Errors
    /// [`CryptoError::InvalidCiphertext`] for 0, values `>= N²`, or values
    /// sharing a factor with `N`.
    pub fn validate(&self, raw: &Uint) -> Result<Ciphertext, CryptoError> {
        if raw.is_zero() {
            return Err(CryptoError::InvalidCiphertext("zero"));
        }
        if raw >= &self.inner.n_squared {
            return Err(CryptoError::InvalidCiphertext("value >= N²"));
        }
        if !raw.gcd(&self.inner.n).is_one() {
            return Err(CryptoError::InvalidCiphertext("shares a factor with N"));
        }
        Ok(Ciphertext(raw.clone()))
    }

    /// Interprets a decrypted value in `[0, N)` as signed, mapping the
    /// upper half of the message space to negative numbers. Needed when
    /// blinded values may wrap around `N`.
    ///
    /// # Errors
    /// [`CryptoError::SignedMagnitudeOverflow`] when the magnitude does
    /// not fit in `i128` — reachable with ≥ 2048-bit keys and plaintexts
    /// (e.g. large blinding values) more than 128 bits from either end of
    /// the message space.
    pub fn decode_signed(&self, m: &Uint) -> Result<i128, CryptoError> {
        if m > &self.inner.half_n {
            let mag = &self.inner.n - m;
            let mag = mag.to_u128().ok_or(CryptoError::SignedMagnitudeOverflow)?;
            if mag > i128::MAX as u128 + 1 {
                return Err(CryptoError::SignedMagnitudeOverflow);
            }
            Ok((mag as i128).wrapping_neg())
        } else {
            let mag = m.to_u128().ok_or(CryptoError::SignedMagnitudeOverflow)?;
            i128::try_from(mag).map_err(|_| CryptoError::SignedMagnitudeOverflow)
        }
    }
}

impl fmt::Debug for PaillierPublicKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PaillierPublicKey({} bits)", self.key_bits())
    }
}

impl PartialEq for PaillierPublicKey {
    fn eq(&self, other: &Self) -> bool {
        self.inner.n == other.inner.n
    }
}

impl Eq for PaillierPublicKey {}

impl Ciphertext {
    /// The raw group element in `[0, N²)`.
    pub fn raw(&self) -> &Uint {
        &self.0
    }

    /// Wraps a raw group element without validation — for sibling modules
    /// that construct ciphertexts from already-reduced arithmetic.
    pub(crate) fn from_raw_unchecked(v: Uint) -> Self {
        Ciphertext(v)
    }

    /// Serializes as fixed-width big-endian bytes for the given key.
    ///
    /// # Errors
    /// [`CryptoError::Decode`] if the value somehow exceeds the key's
    /// ciphertext width (cannot happen for ciphertexts made by this key).
    pub fn to_bytes(&self, key: &PaillierPublicKey) -> Result<Vec<u8>, CryptoError> {
        self.0
            .to_bytes_be_padded(key.ciphertext_bytes())
            .map_err(|_| CryptoError::Decode("ciphertext wider than key"))
    }

    /// Parses and validates fixed-width bytes produced by
    /// [`Ciphertext::to_bytes`].
    ///
    /// # Errors
    /// [`CryptoError::Decode`] on wrong length;
    /// [`CryptoError::InvalidCiphertext`] if the value is not in `Z*_{N²}`.
    pub fn from_bytes(bytes: &[u8], key: &PaillierPublicKey) -> Result<Self, CryptoError> {
        if bytes.len() != key.ciphertext_bytes() {
            return Err(CryptoError::Decode("wrong ciphertext length"));
        }
        key.validate(&Uint::from_bytes_be(bytes))
    }
}

impl fmt::Debug for Ciphertext {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let hex = self.0.to_hex();
        let head = &hex[..hex.len().min(16)];
        write!(f, "Ciphertext(0x{head}…)")
    }
}

impl PaillierSecretKey {
    /// The matching public key.
    pub fn public(&self) -> &PaillierPublicKey {
        &self.public
    }

    /// The prime factors `(p, q)` — used by the key-serialization module.
    pub(crate) fn primes(&self) -> (&Uint, &Uint) {
        (&self.p, &self.q)
    }

    /// Decrypts via the CRT over `p²`/`q²` (the fast path).
    ///
    /// # Errors
    /// [`CryptoError::InvalidCiphertext`] for values outside `Z*_{N²}`.
    pub fn decrypt(&self, c: &Ciphertext) -> Result<Uint, CryptoError> {
        let p1 = &self.p - &Uint::one();
        let q1 = &self.q - &Uint::one();
        let cp = self.mont_p2.pow(&c.0, &p1)?;
        let cq = self.mont_q2.pow(&c.0, &q1)?;
        let mp = l_function(&cp, &self.p)?.mod_mul(&self.hp, &self.p)?;
        let mq = l_function(&cq, &self.q)?.mod_mul(&self.hq, &self.q)?;
        Ok(self.crt.combine(&mp, &mq)?)
    }

    /// Reference decryption `m = L(c^λ mod N²)·μ mod N`; used in tests to
    /// cross-check the CRT path.
    ///
    /// # Errors
    /// As [`PaillierSecretKey::decrypt`].
    pub fn decrypt_reference(&self, c: &Ciphertext) -> Result<Uint, CryptoError> {
        let n = self.public.n();
        let c_lambda = self.public.inner.mont.pow(&c.0, &self.lambda)?;
        Ok(l_function(&c_lambda, n)?.mod_mul(&self.mu, n)?)
    }

    /// Decrypts and decodes as a signed value (upper half of the message
    /// space maps to negatives).
    ///
    /// # Errors
    /// As [`PaillierSecretKey::decrypt`], plus
    /// [`CryptoError::SignedMagnitudeOverflow`] when the decoded
    /// magnitude does not fit in `i128`.
    pub fn decrypt_signed(&self, c: &Ciphertext) -> Result<i128, CryptoError> {
        self.public.decode_signed(&self.decrypt(c)?)
    }
}

impl fmt::Debug for PaillierSecretKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PaillierSecretKey({} bits)", self.public.key_bits())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    /// A small (128-bit) keypair for fast tests.
    fn small_keypair() -> PaillierKeypair {
        PaillierKeypair::generate(128, &mut rng()).unwrap()
    }

    #[test]
    fn round_trip_small_values() {
        let kp = small_keypair();
        let mut r = rng();
        for m in [0u64, 1, 2, 42, u32::MAX as u64, u64::MAX] {
            let ct = kp.public.encrypt_u64(m, &mut r).unwrap();
            assert_eq!(kp.secret.decrypt(&ct).unwrap(), Uint::from_u64(m), "m={m}");
        }
    }

    #[test]
    fn crt_matches_reference_decryption() {
        let kp = small_keypair();
        let mut r = rng();
        for m in [0u64, 1, 12345, u64::MAX] {
            let ct = kp.public.encrypt_u64(m, &mut r).unwrap();
            assert_eq!(
                kp.secret.decrypt(&ct).unwrap(),
                kp.secret.decrypt_reference(&ct).unwrap()
            );
        }
    }

    #[test]
    fn encryption_is_randomized() {
        let kp = small_keypair();
        let mut r = rng();
        let c1 = kp.public.encrypt_u64(7, &mut r).unwrap();
        let c2 = kp.public.encrypt_u64(7, &mut r).unwrap();
        assert_ne!(c1, c2, "semantic security requires randomized encryption");
        assert_eq!(
            kp.secret.decrypt(&c1).unwrap(),
            kp.secret.decrypt(&c2).unwrap()
        );
    }

    #[test]
    fn plaintext_bounds_enforced() {
        let kp = small_keypair();
        let mut r = rng();
        let n = kp.public.n().clone();
        assert!(matches!(
            kp.public.encrypt(&n, &mut r),
            Err(CryptoError::PlaintextOutOfRange)
        ));
        let just_below = &n - &Uint::one();
        let ct = kp.public.encrypt(&just_below, &mut r).unwrap();
        assert_eq!(kp.secret.decrypt(&ct).unwrap(), just_below);
    }

    #[test]
    fn homomorphic_addition() {
        let kp = small_keypair();
        let mut r = rng();
        let a = kp.public.encrypt_u64(1000, &mut r).unwrap();
        let b = kp.public.encrypt_u64(337, &mut r).unwrap();
        let sum = kp.public.add(&a, &b).unwrap();
        assert_eq!(kp.secret.decrypt(&sum).unwrap(), Uint::from_u64(1337));
    }

    #[test]
    fn homomorphic_add_plain() {
        let kp = small_keypair();
        let mut r = rng();
        let a = kp.public.encrypt_u64(1000, &mut r).unwrap();
        let sum = kp.public.add_plain(&a, &Uint::from_u64(337)).unwrap();
        assert_eq!(kp.secret.decrypt(&sum).unwrap(), Uint::from_u64(1337));
    }

    #[test]
    fn homomorphic_scalar_mul() {
        let kp = small_keypair();
        let mut r = rng();
        let a = kp.public.encrypt_u64(7, &mut r).unwrap();
        let prod = kp.public.mul_plain(&a, &Uint::from_u64(600)).unwrap();
        assert_eq!(kp.secret.decrypt(&prod).unwrap(), Uint::from_u64(4200));
        // k = 0 gives E(0).
        let zero = kp.public.mul_plain(&a, &Uint::zero()).unwrap();
        assert_eq!(kp.secret.decrypt(&zero).unwrap(), Uint::zero());
    }

    #[test]
    fn selected_sum_shape() {
        // The exact server computation of the paper, in miniature:
        // Π E(I_i)^{x_i} = E(Σ I_i·x_i).
        let kp = small_keypair();
        let mut r = rng();
        let data = [10u64, 20, 30, 40, 50];
        let select = [1u64, 0, 1, 0, 1];
        let mut acc = kp.public.identity();
        for (x, i) in data.iter().zip(select.iter()) {
            let e_i = kp.public.encrypt_u64(*i, &mut r).unwrap();
            let term = kp.public.mul_plain(&e_i, &Uint::from_u64(*x)).unwrap();
            acc = kp.public.add(&acc, &term).unwrap();
        }
        assert_eq!(kp.secret.decrypt(&acc).unwrap(), Uint::from_u64(90));
    }

    #[test]
    fn negation_and_signed_decode() {
        let kp = small_keypair();
        let mut r = rng();
        let a = kp.public.encrypt_u64(25, &mut r).unwrap();
        let neg = kp.public.neg(&a).unwrap();
        assert_eq!(kp.secret.decrypt_signed(&neg).unwrap(), -25);
        // a + (-a) = 0.
        let z = kp.public.add(&a, &neg).unwrap();
        assert_eq!(kp.secret.decrypt(&z).unwrap(), Uint::zero());
    }

    #[test]
    fn signed_decode_overflow_is_an_error_not_a_panic() {
        // With a 128-bit key N² gives plaintexts up to 128 bits, but any
        // key has mid-space values whose signed magnitude exceeds i128
        // once the modulus is wide enough; emulate with a plaintext right
        // in the middle of the message space of a wider key.
        let mut r = StdRng::seed_from_u64(11);
        let kp = PaillierKeypair::generate(320, &mut r).unwrap();
        // m = floor(N/2) is on the positive side but ~319 bits.
        let mid = kp.public.n().shr(1);
        assert!(matches!(
            kp.public.decode_signed(&mid),
            Err(CryptoError::SignedMagnitudeOverflow)
        ));
        // A value just above half-N has a huge negative magnitude.
        let above = &mid + &Uint::from_u64(2);
        assert!(matches!(
            kp.public.decode_signed(&above),
            Err(CryptoError::SignedMagnitudeOverflow)
        ));
        // Small magnitudes still decode on both sides.
        assert_eq!(kp.public.decode_signed(&Uint::from_u64(40)).unwrap(), 40);
        let minus_3 = kp.public.n() - &Uint::from_u64(3);
        assert_eq!(kp.public.decode_signed(&minus_3).unwrap(), -3);
    }

    #[test]
    fn rerandomize_preserves_plaintext_changes_ciphertext() {
        let kp = small_keypair();
        let mut r = rng();
        let a = kp.public.encrypt_u64(99, &mut r).unwrap();
        let b = kp.public.rerandomize(&a, &mut r).unwrap();
        assert_ne!(a, b);
        assert_eq!(kp.secret.decrypt(&b).unwrap(), Uint::from_u64(99));
    }

    #[test]
    fn precomputed_randomizer_encryption() {
        let kp = small_keypair();
        let mut r = rng();
        let rn = kp.public.sample_randomizer(&mut r).unwrap();
        let ct = kp
            .public
            .encrypt_with_randomizer(&Uint::from_u64(5), &rn)
            .unwrap();
        assert_eq!(kp.secret.decrypt(&ct).unwrap(), Uint::from_u64(5));
    }

    #[test]
    fn ciphertext_byte_round_trip() {
        let kp = small_keypair();
        let mut r = rng();
        let ct = kp.public.encrypt_u64(123_456, &mut r).unwrap();
        let bytes = ct.to_bytes(&kp.public).unwrap();
        assert_eq!(bytes.len(), kp.public.ciphertext_bytes());
        let back = Ciphertext::from_bytes(&bytes, &kp.public).unwrap();
        assert_eq!(back, ct);
    }

    #[test]
    fn validation_rejects_garbage() {
        let kp = small_keypair();
        assert!(kp.public.validate(&Uint::zero()).is_err());
        assert!(kp.public.validate(kp.public.n_squared()).is_err());
        // A multiple of N shares a factor with N.
        assert!(kp.public.validate(kp.public.n()).is_err());
        assert!(kp.public.validate(&Uint::one()).is_ok());
        let short = vec![0u8; 3];
        assert!(Ciphertext::from_bytes(&short, &kp.public).is_err());
    }

    #[test]
    fn key_too_small_rejected() {
        assert!(matches!(
            PaillierKeypair::generate(32, &mut rng()),
            Err(CryptoError::KeyTooSmall { .. })
        ));
    }

    #[test]
    fn from_primes_rejects_equal() {
        let p = Uint::from_u64(65_537);
        assert!(PaillierKeypair::from_primes(p.clone(), p).is_err());
    }

    #[test]
    fn tiny_fixed_primes_work() {
        // p = 65537, q = 65539 (both prime), N ≈ 2^32.
        let kp =
            PaillierKeypair::from_primes(Uint::from_u64(65_537), Uint::from_u64(65_539)).unwrap();
        let mut r = rng();
        let ct = kp.public.encrypt_u64(1_000_000, &mut r).unwrap();
        assert_eq!(kp.secret.decrypt(&ct).unwrap(), Uint::from_u64(1_000_000));
    }

    #[test]
    fn paper_key_size_round_trip() {
        // 512-bit keys exactly as the paper's experiments.
        let mut r = rng();
        let kp = PaillierKeypair::generate(512, &mut r).unwrap();
        assert_eq!(kp.public.key_bits(), 512);
        assert_eq!(kp.public.ciphertext_bytes(), 128);
        let ct = kp.public.encrypt_u64(0xdead_beef, &mut r).unwrap();
        assert_eq!(kp.secret.decrypt(&ct).unwrap(), Uint::from_u64(0xdead_beef));
    }

    #[test]
    fn from_modulus_matches_original_key() {
        let kp = small_keypair();
        let mut r = rng();
        let reconstructed = PaillierPublicKey::from_modulus(kp.public.n().clone()).unwrap();
        assert_eq!(reconstructed, kp.public);
        // Encryptions under the reconstructed key decrypt with the
        // original secret key (the server-side flow).
        let ct = reconstructed.encrypt_u64(777, &mut r).unwrap();
        assert_eq!(kp.secret.decrypt(&ct).unwrap(), Uint::from_u64(777));
    }

    #[test]
    fn from_modulus_rejects_bad_values() {
        assert!(PaillierPublicKey::from_modulus(Uint::from_u64(15)).is_err()); // too small
        let even = Uint::one().shl(128);
        assert!(PaillierPublicKey::from_modulus(even).is_err());
    }

    #[test]
    fn fold_product_planned_matches_straus() {
        let kp = small_keypair();
        let mut r = rng();
        let exps: Vec<u64> = (0..23).map(|i| (i * 37 + 5) % 997).collect();
        let cts: Vec<Ciphertext> = (0..23)
            .map(|i| kp.public.encrypt_u64(i % 2, &mut r).unwrap())
            .collect();
        let weights: Vec<Uint> = exps.iter().map(|&x| Uint::from_u64(x)).collect();
        let plan = MultiExpPlan::build(&exps);
        let want = kp.public.fold_product(&cts, &weights).unwrap();
        let got = kp.public.fold_product_planned(&cts, &plan, 0).unwrap();
        assert_eq!(
            kp.secret.decrypt(&got).unwrap(),
            kp.secret.decrypt(&want).unwrap()
        );
        // Mid-stream ranges fold the matching exponent rows.
        let part = kp
            .public
            .fold_product_planned(&cts[5..9], &plan, 5)
            .unwrap();
        let part_want = kp.public.fold_product(&cts[5..9], &weights[5..9]).unwrap();
        assert_eq!(
            kp.secret.decrypt(&part).unwrap(),
            kp.secret.decrypt(&part_want).unwrap()
        );
        // A range beyond the plan is a caller bug, reported not folded.
        assert!(kp.public.fold_product_planned(&cts, &plan, 1).is_err());
    }

    #[test]
    fn oversubscribed_threads_preserve_the_ciphertext_stream() {
        // The documented invariant: the ciphertext stream is a pure
        // function of (rng state, threads, batch len). Reconstruct the
        // expected stream by hand from the same chunk/seed layout and
        // check the parallel path reproduces it for thread counts far
        // beyond any host's core count.
        let kp = small_keypair();
        let ms: Vec<Uint> = (0..48).map(Uint::from_u64).collect();
        for threads in [1usize, 2, 7, 64, 1024] {
            let wanted = threads.max(1).min(ms.len() / 4).max(1);
            let chunk = ms.len().div_ceil(wanted).max(1);
            let mut seed_rng = StdRng::seed_from_u64(99);
            let mut expected = Vec::new();
            for mc in ms.chunks(chunk) {
                let mut seed = [0u8; 32];
                seed_rng.fill_bytes(&mut seed);
                let mut stream = StdRng::from_seed(seed);
                expected.extend(kp.public.encrypt_batch(mc, &mut stream).unwrap());
            }
            let mut r = StdRng::seed_from_u64(99);
            let got = kp
                .public
                .encrypt_batch_parallel(&ms, threads, &mut r)
                .unwrap();
            assert_eq!(got, expected, "threads={threads}");
        }
    }

    #[test]
    fn oversubscribed_threads_spawn_at_most_host_parallelism_workers() {
        use std::collections::HashSet;
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Mutex;
        let kp = small_keypair();
        let ms: Vec<Uint> = (0..96).map(Uint::from_u64).collect();
        let ids: Mutex<HashSet<std::thread::ThreadId>> = Mutex::new(HashSet::new());
        let chunks = AtomicUsize::new(0);
        let observer = |_d: std::time::Duration| {
            ids.lock().unwrap().insert(std::thread::current().id());
            chunks.fetch_add(1, Ordering::SeqCst);
        };
        let mut r = rng();
        kp.public
            .encrypt_batch_parallel_observed(&ms, 1024, &mut r, Some(&observer))
            .unwrap();
        // 1024 requested threads clamp to 24 chunks (96 / 4): the chunk
        // layout — and so the seeded stream — survives the worker clamp.
        assert_eq!(chunks.load(Ordering::SeqCst), 24);
        let distinct = ids.lock().unwrap().len();
        assert!(
            distinct <= crate::parallel::host_parallelism().max(1),
            "spawned {distinct} workers on a {}-way host",
            crate::parallel::host_parallelism()
        );
    }

    #[test]
    fn oversubscribed_parallel_not_slower_than_sequential_beyond_noise() {
        // The satellite bug: requesting threads > host_parallelism used
        // to spawn one OS thread per chunk, all fighting for the same
        // cores, and lost to the plain sequential path
        // (BENCH_client_encrypt.json recorded 0.845× at n=100k on one
        // core). With the clamp the oversubscribed call does the same
        // work on at most `host_parallelism` threads; allow a generous
        // noise factor so the assertion stays robust on busy CI hosts.
        let kp = small_keypair();
        let ms: Vec<Uint> = (0..64).map(Uint::from_u64).collect();
        let best =
            |f: &dyn Fn() -> std::time::Duration| (0..3).map(|_| f()).min().expect("three runs");
        let sequential = best(&|| {
            let mut r = rng();
            let start = std::time::Instant::now();
            kp.public.encrypt_batch(&ms, &mut r).unwrap();
            start.elapsed()
        });
        let oversubscribed = best(&|| {
            let mut r = rng();
            let start = std::time::Instant::now();
            kp.public.encrypt_batch_parallel(&ms, 1024, &mut r).unwrap();
            start.elapsed()
        });
        assert!(
            oversubscribed <= sequential * 2,
            "oversubscribed parallel path took {oversubscribed:?} vs sequential {sequential:?}"
        );
    }

    #[test]
    fn wraparound_addition_mod_n() {
        // Adding past N wraps modulo N — documents the message-space edge.
        let kp =
            PaillierKeypair::from_primes(Uint::from_u64(65_537), Uint::from_u64(65_539)).unwrap();
        let mut r = rng();
        let n = kp.public.n().clone();
        let almost = &n - &Uint::one();
        let a = kp.public.encrypt(&almost, &mut r).unwrap();
        let b = kp.public.encrypt_u64(2, &mut r).unwrap();
        let sum = kp.public.add(&a, &b).unwrap();
        assert_eq!(kp.secret.decrypt(&sum).unwrap(), Uint::one());
    }
}
