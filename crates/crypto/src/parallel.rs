//! The client-side parallel encryption engine.
//!
//! The paper's headline measurement is that client encryption dominates
//! end-to-end runtime — even over a 56 Kbps modem — and its §3.3 answer
//! (offline pools) only *moves* that cost. On a multi-core host the cost
//! can also be *divided*: index-vector encryption is embarrassingly
//! parallel (each `E(m; r)` is independent), so this module mirrors the
//! server-side fold design ([`FoldStrategy::ParallelMultiExp`] in
//! `pps-protocol`) on the client's side of the wire.
//!
//! [`ParallelEncryptor`] is a thin policy wrapper over
//! [`PaillierPublicKey::encrypt_batch_parallel`]: it pins a thread
//! count once so protocol layers can carry a single value around
//! instead of threading a knob through every call site. Determinism is
//! preserved — per-worker CSPRNG streams are seeded by drawing from the
//! caller's RNG in chunk order, so a fixed `(seed, threads)` pair
//! always produces the same ciphertext vector.
//!
//! [`FoldStrategy::ParallelMultiExp`]: ../pps_protocol/enum.FoldStrategy.html

use pps_bignum::Uint;
use rand::RngCore;

use crate::error::CryptoError;
use crate::obs::EncryptMetrics;
use crate::paillier::{Ciphertext, PaillierPublicKey};

/// A public key bundled with a client-side thread-count policy.
///
/// Cheap to clone (the key is `Arc`-backed).
#[derive(Clone)]
pub struct ParallelEncryptor {
    key: PaillierPublicKey,
    threads: usize,
    metrics: Option<EncryptMetrics>,
}

impl std::fmt::Debug for ParallelEncryptor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ParallelEncryptor")
            .field("key", &self.key)
            .field("threads", &self.threads)
            .field("metrics", &self.metrics.is_some())
            .finish()
    }
}

impl ParallelEncryptor {
    /// Wraps `key` with an explicit worker-thread count. `threads = 1`
    /// is the sequential engine (used by paper-fidelity figure runs).
    pub fn new(key: PaillierPublicKey, threads: usize) -> Self {
        ParallelEncryptor {
            key,
            threads: threads.max(1),
            metrics: None,
        }
    }

    /// Attaches [`EncryptMetrics`]: each worker chunk of every parallel
    /// batch records its wall time into the chunk histogram. Ciphertext
    /// output is unchanged.
    #[must_use]
    pub fn with_metrics(mut self, metrics: EncryptMetrics) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// Wraps `key` with one worker per available hardware core.
    pub fn with_host_parallelism(key: PaillierPublicKey) -> Self {
        Self::new(key, host_parallelism())
    }

    /// The worker-thread count this encryptor uses.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The key this encryptor encrypts under.
    pub fn key(&self) -> &PaillierPublicKey {
        &self.key
    }

    /// Encrypts a plaintext slice, preserving order. See
    /// [`PaillierPublicKey::encrypt_batch_parallel`].
    ///
    /// # Errors
    /// As [`PaillierPublicKey::encrypt`], on the first failing element.
    pub fn encrypt_batch(
        &self,
        ms: &[Uint],
        rng: &mut dyn RngCore,
    ) -> Result<Vec<Ciphertext>, CryptoError> {
        match &self.metrics {
            Some(metrics) => {
                let chunks = metrics.chunk_seconds.clone();
                let observe = move |elapsed: std::time::Duration| {
                    chunks.record_duration(elapsed);
                };
                self.key
                    .encrypt_batch_parallel_observed(ms, self.threads, rng, Some(&observe))
            }
            None => self.key.encrypt_batch_parallel(ms, self.threads, rng),
        }
    }

    /// Encrypts a `u64` weight slice — the protocol's index-vector
    /// shape — preserving order.
    ///
    /// # Errors
    /// As [`ParallelEncryptor::encrypt_batch`].
    pub fn encrypt_weights(
        &self,
        weights: &[u64],
        rng: &mut dyn RngCore,
    ) -> Result<Vec<Ciphertext>, CryptoError> {
        let ms: Vec<Uint> = weights.iter().map(|&w| Uint::from_u64(w)).collect();
        self.encrypt_batch(&ms, rng)
    }

    /// Draws `count` precomputed `r^N mod N²` factors. See
    /// [`PaillierPublicKey::sample_randomizers_parallel`].
    ///
    /// # Errors
    /// As [`PaillierPublicKey::sample_randomizer`].
    pub fn sample_randomizers(
        &self,
        count: usize,
        rng: &mut dyn RngCore,
    ) -> Result<Vec<Uint>, CryptoError> {
        self.key
            .sample_randomizers_parallel(count, self.threads, rng)
    }
}

/// Worker threads available on this host (`1` when the query fails).
pub fn host_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paillier::PaillierKeypair;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn keypair() -> PaillierKeypair {
        let mut rng = StdRng::seed_from_u64(41);
        PaillierKeypair::generate(128, &mut rng).unwrap()
    }

    #[test]
    fn wrapper_matches_direct_call() {
        let kp = keypair();
        let enc = ParallelEncryptor::new(kp.public.clone(), 3);
        assert_eq!(enc.threads(), 3);
        let ms: Vec<Uint> = (0..20).map(Uint::from_u64).collect();
        let a = enc
            .encrypt_batch(&ms, &mut StdRng::seed_from_u64(5))
            .unwrap();
        let b = kp
            .public
            .encrypt_batch_parallel(&ms, 3, &mut StdRng::seed_from_u64(5))
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn weights_round_trip_in_order() {
        let kp = keypair();
        let enc = ParallelEncryptor::with_host_parallelism(kp.public.clone());
        assert!(enc.threads() >= 1);
        let weights: Vec<u64> = (0..33).map(|i| i * 7).collect();
        let cts = enc
            .encrypt_weights(&weights, &mut StdRng::seed_from_u64(6))
            .unwrap();
        for (ct, &w) in cts.iter().zip(&weights) {
            assert_eq!(kp.secret.decrypt(ct).unwrap(), Uint::from_u64(w));
        }
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let kp = keypair();
        let enc = ParallelEncryptor::new(kp.public.clone(), 0);
        assert_eq!(enc.threads(), 1);
    }

    #[test]
    fn chunk_metrics_record_without_changing_output() {
        use pps_obs::Registry;
        let kp = keypair();
        let registry = Registry::new();
        let metrics = crate::obs::EncryptMetrics::from_registry(&registry);
        let plain = ParallelEncryptor::new(kp.public.clone(), 2);
        let observed = ParallelEncryptor::new(kp.public.clone(), 2).with_metrics(metrics.clone());
        let ms: Vec<Uint> = (0..24).map(Uint::from_u64).collect();
        let a = plain
            .encrypt_batch(&ms, &mut StdRng::seed_from_u64(9))
            .unwrap();
        let b = observed
            .encrypt_batch(&ms, &mut StdRng::seed_from_u64(9))
            .unwrap();
        assert_eq!(a, b, "observer must not perturb the ciphertext stream");
        assert!(
            metrics.chunk_seconds.count() >= 1,
            "at least one chunk timing recorded"
        );
    }

    #[test]
    fn pooled_randomizers_encrypt() {
        let kp = keypair();
        let enc = ParallelEncryptor::new(kp.public.clone(), 2);
        let rns = enc
            .sample_randomizers(9, &mut StdRng::seed_from_u64(7))
            .unwrap();
        assert_eq!(rns.len(), 9);
        for (i, rn) in rns.iter().enumerate() {
            let ct = kp
                .public
                .encrypt_with_randomizer(&Uint::from_u64(i as u64), rn)
                .unwrap();
            assert_eq!(kp.secret.decrypt(&ct).unwrap(), Uint::from_u64(i as u64));
        }
    }
}
