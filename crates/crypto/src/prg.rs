//! A deterministic pseudorandom generator in SHA-256 counter mode.
//!
//! `block_i = SHA256(seed ‖ i)`. Deterministic expansion from a seed is
//! what the garbled-circuit engine needs for label derivation, and a
//! seeded `RngCore` adapter makes whole protocol runs reproducible in
//! tests and benchmarks.

use rand::RngCore;

use crate::sha256::{Sha256, DIGEST_LEN};

/// Counter-mode PRG over SHA-256.
pub struct CtrPrg {
    seed: Vec<u8>,
    counter: u64,
    /// Unconsumed bytes from the current block.
    buf: [u8; DIGEST_LEN],
    buf_pos: usize,
}

impl CtrPrg {
    /// Creates a PRG from an arbitrary-length seed.
    pub fn new(seed: &[u8]) -> Self {
        CtrPrg {
            seed: seed.to_vec(),
            counter: 0,
            buf: [0; DIGEST_LEN],
            buf_pos: DIGEST_LEN,
        }
    }

    /// Fills `out` with pseudorandom bytes.
    pub fn fill(&mut self, out: &mut [u8]) {
        for byte in out.iter_mut() {
            if self.buf_pos == DIGEST_LEN {
                self.refill();
            }
            *byte = self.buf[self.buf_pos];
            self.buf_pos += 1;
        }
    }

    /// Returns the next `n` pseudorandom bytes.
    pub fn next_bytes(&mut self, n: usize) -> Vec<u8> {
        let mut v = vec![0u8; n];
        self.fill(&mut v);
        v
    }

    fn refill(&mut self) {
        let mut h = Sha256::new();
        h.update(&self.seed);
        h.update(&self.counter.to_be_bytes());
        self.buf = h.finalize();
        self.counter += 1;
        self.buf_pos = 0;
    }
}

impl RngCore for CtrPrg {
    fn next_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.fill(&mut b);
        u32::from_be_bytes(b)
    }

    fn next_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.fill(&mut b);
        u64::from_be_bytes(b)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.fill(dest);
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.fill(dest);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let a = CtrPrg::new(b"seed").next_bytes(100);
        let b = CtrPrg::new(b"seed").next_bytes(100);
        assert_eq!(a, b);
    }

    #[test]
    fn seed_sensitivity() {
        let a = CtrPrg::new(b"seed-a").next_bytes(32);
        let b = CtrPrg::new(b"seed-b").next_bytes(32);
        assert_ne!(a, b);
    }

    #[test]
    fn chunking_irrelevant() {
        let mut one = CtrPrg::new(b"x");
        let whole = one.next_bytes(100);
        let mut two = CtrPrg::new(b"x");
        let mut pieces = two.next_bytes(33);
        pieces.extend(two.next_bytes(67));
        assert_eq!(whole, pieces);
    }

    #[test]
    fn output_is_balanced() {
        // Crude sanity check: bit frequency near 50% over 64 KiB.
        let bytes = CtrPrg::new(b"balance").next_bytes(65_536);
        let ones: u64 = bytes.iter().map(|b| b.count_ones() as u64).sum();
        let total = 65_536 * 8;
        let ratio = ones as f64 / total as f64;
        assert!((0.49..0.51).contains(&ratio), "ratio={ratio}");
    }

    #[test]
    fn rng_core_adapter() {
        let mut prg = CtrPrg::new(b"rng");
        let a = prg.next_u64();
        let b = prg.next_u64();
        assert_ne!(a, b);
        let mut dest = [0u8; 16];
        prg.fill_bytes(&mut dest);
        assert_ne!(dest, [0u8; 16]);
    }
}
