//! Two-level recursive PIR with `O(n^(1/3))` communication — the
//! classic application of the Damgård–Jurik generalization.
//!
//! Recursion needs to encrypt *ciphertexts*: a level-1 Paillier
//! ciphertext lives in `Z_{N²}`, so the level-2 scheme must have a
//! plaintext space of at least `N²` — exactly what Damgård–Jurik with
//! `s = 2` (ciphertexts mod `N³`) provides, under the *same* modulus `N`.
//!
//! Layout: the `n` items form a `d × d × d` cube, `d ≈ n^(1/3)`.
//!
//! 1. The client sends `d` Paillier (`s = 1`) encryptions selecting the
//!    target *plane* and `d` Damgård–Jurik (`s = 2`) encryptions
//!    selecting the target *row*.
//! 2. The server folds dimension 1: for each of the `d²` cells `(j, k)`,
//!    `c_{jk} = Π_i E₁(aᵢ)^{x_{ijk}} mod N²` — an encryption of the
//!    selected plane.
//! 3. The server folds dimension 2, treating each `c_{jk}` (a value
//!    `< N²`) as a level-2 *plaintext*:
//!    `r_k = Π_j E₂(bⱼ)^{c_{jk}} mod N³` — `d` ciphertexts.
//! 4. The client decrypts twice: the outer `s = 2` decryption of `r_col`
//!    yields the inner ciphertext `c_{row,col}`, whose `s = 1`
//!    decryption yields the item.
//!
//! Wire cost: `d·|N²| + d·|N³|` up, `d·|N³|` down = `O(n^(1/3))`
//! ciphertexts, vs the one-level scheme's `O(√n)`.

use std::time::{Duration, Instant};

use pps_bignum::Uint;
use pps_crypto::{Ciphertext, DamgardJurik, DjCiphertext, DjPublicKey, PaillierKeypair};
use rand::RngCore;

use crate::PirError;

/// Cube geometry for recursive PIR.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CubeShape {
    /// Items before padding.
    pub n: usize,
    /// Cube side (`≈ n^(1/3)`).
    pub side: usize,
}

impl CubeShape {
    /// Near-cubic geometry for `n` items.
    ///
    /// # Errors
    /// [`PirError::Config`] for `n == 0`.
    pub fn for_items(n: usize) -> Result<Self, PirError> {
        if n == 0 {
            return Err(PirError::Config("database must not be empty".into()));
        }
        let mut side = (n as f64).cbrt().ceil() as usize;
        while side * side * side < n {
            side += 1;
        }
        Ok(CubeShape { n, side })
    }

    /// `(plane, row, col)` of item `index`.
    ///
    /// # Errors
    /// [`PirError::IndexOutOfRange`] beyond `n`.
    pub fn locate(&self, index: usize) -> Result<(usize, usize, usize), PirError> {
        if index >= self.n {
            return Err(PirError::IndexOutOfRange { index, n: self.n });
        }
        let plane = index / (self.side * self.side);
        let rem = index % (self.side * self.side);
        Ok((plane, rem / self.side, rem % self.side))
    }
}

/// The recursive-PIR server.
pub struct RecursivePirServer {
    shape: CubeShape,
    /// Cube in `plane`-major, then `row`, then `col` order, zero-padded.
    cube: Vec<u64>,
}

impl RecursivePirServer {
    /// Builds a server over `values`.
    ///
    /// # Errors
    /// [`PirError::Config`] for an empty database.
    pub fn new(values: Vec<u64>) -> Result<Self, PirError> {
        let shape = CubeShape::for_items(values.len())?;
        let mut cube = values;
        cube.resize(shape.side.pow(3), 0);
        Ok(RecursivePirServer { shape, cube })
    }

    /// Cube geometry.
    pub fn shape(&self) -> CubeShape {
        self.shape
    }

    /// Answers a recursive query.
    ///
    /// # Errors
    /// [`PirError::ShapeMismatch`] on selector-count mismatch; crypto
    /// errors otherwise.
    pub fn answer(&self, query: &RecursivePirQuery) -> Result<RecursivePirReply, PirError> {
        let d = self.shape.side;
        if query.plane_selectors.len() != d || query.row_selectors.len() != d {
            return Err(PirError::ShapeMismatch);
        }
        let start = Instant::now();

        // Dimension 1 (Paillier, s = 1): fold planes into a d × d sheet
        // of level-1 ciphertexts.
        let key1 = &query.key1;
        let mut sheet: Vec<Ciphertext> = Vec::with_capacity(d * d);
        for j in 0..d {
            for k in 0..d {
                let weights: Vec<Uint> = (0..d)
                    .map(|i| Uint::from_u64(self.cube[i * d * d + j * d + k]))
                    .collect();
                sheet.push(key1.fold_product(&query.plane_selectors, &weights)?);
            }
        }

        // Dimension 2 (Damgård–Jurik, s = 2): fold rows of the sheet,
        // treating each level-1 ciphertext as a level-2 plaintext.
        let key2 = &query.key2;
        let mut columns: Vec<DjCiphertext> = Vec::with_capacity(d);
        for k in 0..d {
            let mut acc: Option<DjCiphertext> = None;
            for (j, sel) in query.row_selectors.iter().enumerate() {
                let inner = sheet[j * d + k].raw().clone();
                let term = key2.mul_plain(sel, &inner)?;
                acc = Some(match acc {
                    None => term,
                    Some(a) => key2.add(&a, &term)?,
                });
            }
            columns.push(acc.expect("side >= 1"));
        }
        Ok(RecursivePirReply {
            columns,
            server_time: start.elapsed(),
        })
    }
}

/// A recursive query: level-1 plane selectors + level-2 row selectors.
pub struct RecursivePirQuery {
    /// `E₁(aᵢ)`: Paillier encryptions of the plane indicator.
    pub plane_selectors: Vec<Ciphertext>,
    /// `E₂(bⱼ)`: Damgård–Jurik (s = 2) encryptions of the row indicator.
    pub row_selectors: Vec<DjCiphertext>,
    /// The level-1 public key.
    pub key1: pps_crypto::PaillierPublicKey,
    /// The level-2 public key (cannot decrypt).
    pub key2: DjPublicKey,
    /// The column the client wants (kept local).
    col: usize,
    /// Client encryption time.
    pub encrypt_time: Duration,
}

impl RecursivePirQuery {
    /// Serialized size in bytes.
    pub fn wire_bytes(&self) -> usize {
        self.plane_selectors.len() * self.key1.ciphertext_bytes()
            + self.row_selectors.len() * self.key2.ciphertext_bytes()
            + self.key1.n().to_bytes_be().len()
    }
}

/// A recursive reply: `d` level-2 ciphertexts.
pub struct RecursivePirReply {
    /// One DJ ciphertext per column.
    pub columns: Vec<DjCiphertext>,
    /// Server fold time.
    pub server_time: Duration,
}

impl RecursivePirReply {
    /// Serialized size in bytes.
    pub fn wire_bytes(&self, key2: &DjPublicKey) -> usize {
        self.columns.len() * key2.ciphertext_bytes()
    }
}

/// The recursive-PIR client: a Paillier keypair plus the matching DJ
/// (`s = 2`) keypair over the same modulus.
pub struct RecursivePirClient<'k> {
    keypair: &'k PaillierKeypair,
    dj: DamgardJurik,
}

impl<'k> RecursivePirClient<'k> {
    /// Builds the client; derives the `s = 2` scheme from the same
    /// primes.
    ///
    /// # Errors
    /// Crypto errors from the DJ construction.
    pub fn new(keypair: &'k PaillierKeypair) -> Result<Self, PirError> {
        // Reconstruct the DJ keypair from the stored primes via the
        // serialization path (primes are not otherwise exposed).
        let bytes = keypair.secret.to_bytes();
        let dj = dj_from_secret_bytes(&bytes)?;
        Ok(RecursivePirClient { keypair, dj })
    }

    /// Builds a query for item `index`.
    ///
    /// # Errors
    /// Range and crypto errors.
    pub fn query(
        &self,
        shape: CubeShape,
        index: usize,
        rng: &mut dyn RngCore,
    ) -> Result<RecursivePirQuery, PirError> {
        let (plane, row, col) = shape.locate(index)?;
        let start = Instant::now();
        let mut plane_selectors = Vec::with_capacity(shape.side);
        let mut row_selectors = Vec::with_capacity(shape.side);
        for i in 0..shape.side {
            plane_selectors.push(
                self.keypair
                    .public
                    .encrypt(&Uint::from_u64((i == plane) as u64), rng)?,
            );
            row_selectors.push(self.dj.encrypt(&Uint::from_u64((i == row) as u64), rng)?);
        }
        Ok(RecursivePirQuery {
            plane_selectors,
            row_selectors,
            key1: self.keypair.public.clone(),
            key2: self.dj.public().clone(),
            col,
            encrypt_time: start.elapsed(),
        })
    }

    /// Double decryption: outer `s = 2`, then inner `s = 1`.
    ///
    /// # Errors
    /// Shape and crypto errors.
    pub fn extract(
        &self,
        query: &RecursivePirQuery,
        reply: &RecursivePirReply,
    ) -> Result<u64, PirError> {
        let outer = reply
            .columns
            .get(query.col)
            .ok_or(PirError::ShapeMismatch)?;
        // Outer decryption yields the level-1 ciphertext as an integer.
        let inner_raw = self.dj.decrypt(outer)?;
        let inner = self.keypair.public.validate(&inner_raw)?;
        let v = self.keypair.secret.decrypt(&inner)?;
        v.to_u64()
            .ok_or_else(|| PirError::Config("retrieved value exceeds u64".into()))
    }
}

/// Rebuilds a DJ (`s = 2`) instance from serialized secret-key bytes
/// (the `PSK1` format of `pps-crypto`), reusing the same primes.
fn dj_from_secret_bytes(bytes: &[u8]) -> Result<DamgardJurik, PirError> {
    // PSK1 ‖ len(p) u16 ‖ p ‖ len(q) u16 ‖ q
    let rest = bytes
        .strip_prefix(b"PSK1")
        .ok_or_else(|| PirError::Config("bad secret key format".into()))?;
    let take = |rest: &mut &[u8]| -> Result<Uint, PirError> {
        if rest.len() < 2 {
            return Err(PirError::Config("truncated key".into()));
        }
        let len = u16::from_be_bytes([rest[0], rest[1]]) as usize;
        *rest = &rest[2..];
        if rest.len() < len {
            return Err(PirError::Config("truncated key".into()));
        }
        let v = Uint::from_bytes_be(&rest[..len]);
        *rest = &rest[len..];
        Ok(v)
    };
    let mut rest = rest;
    let p = take(&mut rest)?;
    let q = take(&mut rest)?;
    Ok(DamgardJurik::from_primes(p, q, 2)?)
}

/// End-to-end recursive retrieval with accounting.
#[derive(Clone, Debug)]
pub struct RecursivePirReport {
    /// Database size.
    pub n: usize,
    /// Cube side.
    pub side: usize,
    /// Retrieved value.
    pub value: u64,
    /// Upstream bytes.
    pub bytes_up: usize,
    /// Downstream bytes.
    pub bytes_down: usize,
    /// Client encryption time.
    pub encrypt_time: Duration,
    /// Server fold time.
    pub server_time: Duration,
}

/// Retrieves `values[index]` with the two-level scheme and verifies
/// against the plaintext.
///
/// # Errors
/// Any construction/query/extract failure, or an oracle mismatch.
pub fn run_recursive_pir(
    values: &[u64],
    index: usize,
    keypair: &PaillierKeypair,
    rng: &mut dyn RngCore,
) -> Result<RecursivePirReport, PirError> {
    let expected = *values.get(index).ok_or(PirError::IndexOutOfRange {
        index,
        n: values.len(),
    })?;
    let server = RecursivePirServer::new(values.to_vec())?;
    let client = RecursivePirClient::new(keypair)?;
    let query = client.query(server.shape(), index, rng)?;
    let reply = server.answer(&query)?;
    let value = client.extract(&query, &reply)?;
    if value != expected {
        return Err(PirError::Config(format!(
            "retrieved {value}, expected {expected}"
        )));
    }
    Ok(RecursivePirReport {
        n: values.len(),
        side: server.shape().side,
        value,
        bytes_up: query.wire_bytes(),
        bytes_down: reply.wire_bytes(&query.key2),
        encrypt_time: query.encrypt_time,
        server_time: reply.server_time,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn keypair(rng: &mut StdRng) -> PaillierKeypair {
        PaillierKeypair::generate(128, rng).unwrap()
    }

    #[test]
    fn cube_geometry() {
        let s = CubeShape::for_items(27).unwrap();
        assert_eq!(s.side, 3);
        let s = CubeShape::for_items(28).unwrap();
        assert_eq!(s.side, 4);
        let s = CubeShape::for_items(1).unwrap();
        assert_eq!(s.side, 1);
        assert!(CubeShape::for_items(0).is_err());
    }

    #[test]
    fn locate_round_trips() {
        let s = CubeShape::for_items(27).unwrap();
        for i in 0..27 {
            let (p, r, c) = s.locate(i).unwrap();
            assert_eq!(p * 9 + r * 3 + c, i);
        }
        assert!(s.locate(27).is_err());
    }

    #[test]
    fn retrieves_every_position_in_a_cube() {
        let mut rng = StdRng::seed_from_u64(11);
        let kp = keypair(&mut rng);
        let values: Vec<u64> = (0..27).map(|i| 100 + i).collect();
        let server = RecursivePirServer::new(values.clone()).unwrap();
        let client = RecursivePirClient::new(&kp).unwrap();
        for (i, &expected) in values.iter().enumerate() {
            let q = client.query(server.shape(), i, &mut rng).unwrap();
            let reply = server.answer(&q).unwrap();
            assert_eq!(client.extract(&q, &reply).unwrap(), expected, "i={i}");
        }
    }

    #[test]
    fn non_cube_sizes_padded() {
        let mut rng = StdRng::seed_from_u64(12);
        let kp = keypair(&mut rng);
        for n in [1usize, 2, 5, 10, 30] {
            let values: Vec<u64> = (0..n as u64).map(|v| v * 7 + 1).collect();
            let idx = (n - 1) / 2;
            let r = run_recursive_pir(&values, idx, &kp, &mut rng).unwrap();
            assert_eq!(r.value, values[idx], "n={n}");
        }
    }

    #[test]
    fn cube_root_communication() {
        // 8x the items → 2x the traffic (n^(1/3) scaling).
        let mut rng = StdRng::seed_from_u64(13);
        let kp = keypair(&mut rng);
        let small: Vec<u64> = (0..64).collect();
        let large: Vec<u64> = (0..512).collect();
        let rs = run_recursive_pir(&small, 10, &kp, &mut rng).unwrap();
        let rl = run_recursive_pir(&large, 10, &kp, &mut rng).unwrap();
        let ratio = (rl.bytes_up + rl.bytes_down) as f64 / (rs.bytes_up + rs.bytes_down) as f64;
        assert!(
            (1.7..2.3).contains(&ratio),
            "cube-root scaling violated: {ratio}"
        );
    }

    #[test]
    fn beats_single_level_at_scale() {
        // At n = 512 the two-level scheme's ciphertext count (3·8) beats
        // the one-level scheme's (2·23) even with the wider N³ replies.
        let mut rng = StdRng::seed_from_u64(14);
        let kp = keypair(&mut rng);
        let values: Vec<u64> = (0..512).collect();
        let one = crate::run_pir(&values, 100, &kp, &mut rng).unwrap();
        let two = run_recursive_pir(&values, 100, &kp, &mut rng).unwrap();
        assert!(
            two.bytes_up + two.bytes_down < one.bytes_up + one.bytes_down,
            "two-level {} vs one-level {}",
            two.bytes_up + two.bytes_down,
            one.bytes_up + one.bytes_down
        );
    }

    #[test]
    fn random_instances() {
        let mut rng = StdRng::seed_from_u64(15);
        let kp = keypair(&mut rng);
        for _ in 0..3 {
            let n = rng.gen_range(1..40);
            let values: Vec<u64> = (0..n).map(|_| rng.gen::<u32>() as u64).collect();
            let idx = rng.gen_range(0..n);
            let r = run_recursive_pir(&values, idx, &kp, &mut rng).unwrap();
            assert_eq!(r.value, values[idx]);
        }
    }

    #[test]
    fn shape_mismatch_rejected() {
        let mut rng = StdRng::seed_from_u64(16);
        let kp = keypair(&mut rng);
        let server = RecursivePirServer::new((0..27).collect()).unwrap();
        let other = RecursivePirServer::new((0..125).collect()).unwrap();
        let client = RecursivePirClient::new(&kp).unwrap();
        let q = client.query(other.shape(), 3, &mut rng).unwrap();
        assert!(matches!(server.answer(&q), Err(PirError::ShapeMismatch)));
    }
}
