//! # pps-pir
//!
//! Single-server **computational private information retrieval** from the
//! Paillier cryptosystem — the communication-sublinear building block
//! behind the "sublinear-communication solutions" for selective private
//! function evaluation that the paper's §2 attributes to Canetti et al.
//! (The paper implements and measures the *linear*-communication
//! protocol; this crate supplies the other branch of that design space so
//! the trade-off is reproducible.)
//!
//! Construction (Kushilevitz–Ostrovsky shape, one level of recursion):
//! the database of `n` values is arranged as an `r × c` matrix with
//! `r ≈ c ≈ √n`. To fetch item `(row, col)` the client sends `r`
//! Paillier encryptions `E(b₁)…E(b_r)` of the row indicator; the server
//! returns, for every column `j`, `Π_i E(bᵢ)^{x_{i,j}} = E(x_{row,j})` —
//! `c` ciphertexts. Total traffic is `O(√n)` ciphertexts instead of the
//! linear protocol's `O(n)` upstream or the trivial download's `O(n)`
//! downstream.
//!
//! Privacy: the server sees only semantically secure ciphertexts (it
//! learns neither row nor column — the client receives the whole
//! encrypted row and keeps its column choice local). The client learns
//! the `√n` values of one matrix row, not just one item — the standard
//! leakage of this construction, inherited by the SPFE protocols built
//! on it, and documented here rather than hidden.
//!
//! # Example
//!
//! ```
//! use pps_crypto::PaillierKeypair;
//! use pps_pir::{PirClient, PirServer};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(4);
//! let values: Vec<u64> = (0..100).map(|i| i * i).collect();
//! let server = PirServer::new(values).unwrap();
//!
//! let kp = PaillierKeypair::generate(128, &mut rng).unwrap();
//! let client = PirClient::new(&kp);
//! let query = client.query(server.shape(), 37, &mut rng).unwrap();
//! let reply = server.answer(&query).unwrap();
//! assert_eq!(client.extract(&query, &reply).unwrap(), 37 * 37);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod recursive;

pub use recursive::{
    run_recursive_pir, CubeShape, RecursivePirClient, RecursivePirQuery, RecursivePirReply,
    RecursivePirReport, RecursivePirServer,
};

use std::fmt;
use std::time::{Duration, Instant};

use pps_bignum::Uint;
use pps_crypto::{Ciphertext, CryptoError, PaillierKeypair, PaillierPublicKey};
use rand::RngCore;

/// Errors surfaced by PIR operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PirError {
    /// Empty database or impossible geometry.
    Config(String),
    /// Requested index out of range.
    IndexOutOfRange {
        /// Requested item index.
        index: usize,
        /// Database size.
        n: usize,
    },
    /// Underlying cryptographic failure.
    Crypto(CryptoError),
    /// The reply did not match the query geometry.
    ShapeMismatch,
}

impl fmt::Display for PirError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Config(why) => write!(f, "invalid PIR configuration: {why}"),
            Self::IndexOutOfRange { index, n } => {
                write!(f, "index {index} out of range for {n} items")
            }
            Self::Crypto(e) => write!(f, "crypto error: {e}"),
            Self::ShapeMismatch => write!(f, "reply shape does not match query"),
        }
    }
}

impl std::error::Error for PirError {}

impl From<CryptoError> for PirError {
    fn from(e: CryptoError) -> Self {
        Self::Crypto(e)
    }
}

/// Matrix geometry of a PIR database.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PirShape {
    /// Total items (before padding).
    pub n: usize,
    /// Matrix rows (`≈ √n`).
    pub rows: usize,
    /// Matrix columns (`≈ √n`).
    pub cols: usize,
}

impl PirShape {
    /// Near-square geometry for `n` items.
    ///
    /// # Errors
    /// [`PirError::Config`] for `n == 0`.
    pub fn for_items(n: usize) -> Result<Self, PirError> {
        if n == 0 {
            return Err(PirError::Config("database must not be empty".into()));
        }
        let cols = (n as f64).sqrt().ceil() as usize;
        let rows = n.div_ceil(cols);
        Ok(PirShape { n, rows, cols })
    }

    /// `(row, col)` of item `index`, row-major.
    ///
    /// # Errors
    /// [`PirError::IndexOutOfRange`] beyond `n`.
    pub fn locate(&self, index: usize) -> Result<(usize, usize), PirError> {
        if index >= self.n {
            return Err(PirError::IndexOutOfRange { index, n: self.n });
        }
        Ok((index / self.cols, index % self.cols))
    }
}

/// The PIR server: the database in matrix layout.
pub struct PirServer {
    shape: PirShape,
    /// Row-major matrix, zero-padded to `rows × cols`.
    matrix: Vec<u64>,
}

impl PirServer {
    /// Builds a server over `values`.
    ///
    /// # Errors
    /// [`PirError::Config`] for an empty database.
    pub fn new(values: Vec<u64>) -> Result<Self, PirError> {
        let shape = PirShape::for_items(values.len())?;
        let mut matrix = values;
        matrix.resize(shape.rows * shape.cols, 0);
        Ok(PirServer { shape, matrix })
    }

    /// The matrix geometry (public parameter the client needs).
    pub fn shape(&self) -> PirShape {
        self.shape
    }

    /// Answers a query: for each column `j`, `Π_i E(bᵢ)^{x_{i,j}}`.
    ///
    /// # Errors
    /// [`PirError::ShapeMismatch`] when the query has the wrong number of
    /// row selectors; crypto errors otherwise.
    pub fn answer(&self, query: &PirQuery) -> Result<PirReply, PirError> {
        if query.row_selectors.len() != self.shape.rows {
            return Err(PirError::ShapeMismatch);
        }
        let start = Instant::now();
        let mut columns = Vec::with_capacity(self.shape.cols);
        for j in 0..self.shape.cols {
            let weights: Vec<Uint> = (0..self.shape.rows)
                .map(|i| Uint::from_u64(self.matrix[i * self.shape.cols + j]))
                .collect();
            columns.push(query.key.fold_product(&query.row_selectors, &weights)?);
        }
        Ok(PirReply {
            columns,
            server_time: start.elapsed(),
        })
    }
}

/// A PIR query: encrypted row indicator plus the public key.
pub struct PirQuery {
    /// `E(b₁)…E(b_rows)`, `bᵢ = [i == row]`.
    pub row_selectors: Vec<Ciphertext>,
    /// The client's public key (travels with the query).
    pub key: PaillierPublicKey,
    /// The column the client privately wants (never sent; used by
    /// [`PirClient::extract`]).
    col: usize,
    /// Client-side encryption time for reporting.
    pub encrypt_time: Duration,
}

impl PirQuery {
    /// Serialized size in bytes: one fixed-width ciphertext per row plus
    /// the modulus.
    pub fn wire_bytes(&self) -> usize {
        self.row_selectors.len() * self.key.ciphertext_bytes() + self.key.n().to_bytes_be().len()
    }
}

/// A PIR reply: one encrypted value per column.
pub struct PirReply {
    /// `E(x_{row,j})` for every column `j`.
    pub columns: Vec<Ciphertext>,
    /// Server compute time for reporting.
    pub server_time: Duration,
}

impl PirReply {
    /// Serialized size in bytes under `key`.
    pub fn wire_bytes(&self, key: &PaillierPublicKey) -> usize {
        self.columns.len() * key.ciphertext_bytes()
    }
}

/// The PIR client (borrows the querying party's keypair).
pub struct PirClient<'k> {
    keypair: &'k PaillierKeypair,
}

impl<'k> PirClient<'k> {
    /// Wraps a keypair.
    pub fn new(keypair: &'k PaillierKeypair) -> Self {
        PirClient { keypair }
    }

    /// Builds a query for item `index` of a database with `shape`.
    ///
    /// # Errors
    /// [`PirError::IndexOutOfRange`] beyond the shape; crypto errors.
    pub fn query(
        &self,
        shape: PirShape,
        index: usize,
        rng: &mut dyn RngCore,
    ) -> Result<PirQuery, PirError> {
        let (row, col) = shape.locate(index)?;
        let start = Instant::now();
        let mut row_selectors = Vec::with_capacity(shape.rows);
        for i in 0..shape.rows {
            let bit = Uint::from_u64((i == row) as u64);
            row_selectors.push(self.keypair.public.encrypt(&bit, rng)?);
        }
        Ok(PirQuery {
            row_selectors,
            key: self.keypair.public.clone(),
            col,
            encrypt_time: start.elapsed(),
        })
    }

    /// Decrypts the privately selected item from a reply.
    ///
    /// # Errors
    /// [`PirError::ShapeMismatch`] when the reply lacks the queried
    /// column; crypto errors.
    pub fn extract(&self, query: &PirQuery, reply: &PirReply) -> Result<u64, PirError> {
        let ct = reply
            .columns
            .get(query.col)
            .ok_or(PirError::ShapeMismatch)?;
        let v = self.keypair.secret.decrypt(ct)?;
        v.to_u64().ok_or_else(|| {
            PirError::Config("retrieved value exceeds u64 (database stored wider values?)".into())
        })
    }

    /// Decrypts the entire fetched row — the construction's actual
    /// leakage surface, exposed honestly.
    ///
    /// # Errors
    /// Crypto errors.
    pub fn extract_row(&self, reply: &PirReply) -> Result<Vec<u64>, PirError> {
        reply
            .columns
            .iter()
            .map(|ct| {
                self.keypair
                    .secret
                    .decrypt(ct)?
                    .to_u64()
                    .ok_or_else(|| PirError::Config("retrieved value exceeds u64".into()))
            })
            .collect()
    }
}

/// End-to-end convenience run with full accounting.
#[derive(Clone, Debug)]
pub struct PirReport {
    /// Database size.
    pub n: usize,
    /// Matrix geometry used.
    pub shape: PirShape,
    /// The retrieved value.
    pub value: u64,
    /// Upstream bytes (query).
    pub bytes_up: usize,
    /// Downstream bytes (reply).
    pub bytes_down: usize,
    /// Client encryption time.
    pub encrypt_time: Duration,
    /// Server fold time.
    pub server_time: Duration,
}

/// Retrieves `values[index]` privately and reports costs.
///
/// # Errors
/// Any query/answer/extract failure; a mismatch against the plaintext
/// value is also an error (correctness oracle).
pub fn run_pir(
    values: &[u64],
    index: usize,
    keypair: &PaillierKeypair,
    rng: &mut dyn RngCore,
) -> Result<PirReport, PirError> {
    let expected = *values.get(index).ok_or(PirError::IndexOutOfRange {
        index,
        n: values.len(),
    })?;
    let server = PirServer::new(values.to_vec())?;
    let client = PirClient::new(keypair);
    let query = client.query(server.shape(), index, rng)?;
    let reply = server.answer(&query)?;
    let value = client.extract(&query, &reply)?;
    if value != expected {
        return Err(PirError::Config(format!(
            "retrieved {value} but database holds {expected}"
        )));
    }
    Ok(PirReport {
        n: values.len(),
        shape: server.shape(),
        value,
        bytes_up: query.wire_bytes(),
        bytes_down: reply.wire_bytes(&keypair.public),
        encrypt_time: query.encrypt_time,
        server_time: reply.server_time,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn keypair(rng: &mut StdRng) -> PaillierKeypair {
        PaillierKeypair::generate(128, rng).unwrap()
    }

    #[test]
    fn shape_geometry() {
        let s = PirShape::for_items(100).unwrap();
        assert_eq!((s.rows, s.cols), (10, 10));
        let s = PirShape::for_items(10).unwrap();
        assert!(s.rows * s.cols >= 10);
        let s = PirShape::for_items(1).unwrap();
        assert_eq!((s.rows, s.cols), (1, 1));
        assert!(PirShape::for_items(0).is_err());
    }

    #[test]
    fn locate_round_trips() {
        let s = PirShape::for_items(37).unwrap();
        for i in 0..37 {
            let (r, c) = s.locate(i).unwrap();
            assert_eq!(r * s.cols + c, i);
            assert!(r < s.rows && c < s.cols);
        }
        assert!(s.locate(37).is_err());
    }

    #[test]
    fn retrieves_every_position() {
        let mut rng = StdRng::seed_from_u64(1);
        let kp = keypair(&mut rng);
        let values: Vec<u64> = (0..23).map(|i| 1000 + i).collect();
        let server = PirServer::new(values.clone()).unwrap();
        let client = PirClient::new(&kp);
        for (i, &expected) in values.iter().enumerate() {
            let q = client.query(server.shape(), i, &mut rng).unwrap();
            let reply = server.answer(&q).unwrap();
            assert_eq!(client.extract(&q, &reply).unwrap(), expected, "index {i}");
        }
    }

    #[test]
    fn row_leakage_is_exactly_one_row() {
        let mut rng = StdRng::seed_from_u64(2);
        let kp = keypair(&mut rng);
        let values: Vec<u64> = (0..16).collect();
        let server = PirServer::new(values).unwrap();
        let client = PirClient::new(&kp);
        // Item 6 is row 1 (cols = 4): the fetched row is [4, 5, 6, 7].
        let q = client.query(server.shape(), 6, &mut rng).unwrap();
        let reply = server.answer(&q).unwrap();
        assert_eq!(client.extract_row(&reply).unwrap(), vec![4, 5, 6, 7]);
    }

    #[test]
    fn queries_are_semantically_hidden() {
        // Two queries for different rows are indistinguishable in shape
        // and (with overwhelming probability) in every ciphertext.
        let mut rng = StdRng::seed_from_u64(3);
        let kp = keypair(&mut rng);
        let server = PirServer::new((0..25).collect()).unwrap();
        let client = PirClient::new(&kp);
        let q1 = client.query(server.shape(), 0, &mut rng).unwrap();
        let q2 = client.query(server.shape(), 24, &mut rng).unwrap();
        assert_eq!(q1.row_selectors.len(), q2.row_selectors.len());
        for (a, b) in q1.row_selectors.iter().zip(&q2.row_selectors) {
            assert_ne!(a, b);
        }
    }

    #[test]
    fn sublinear_communication() {
        // Traffic must grow like √n: quadrupling n doubles the bytes.
        let mut rng = StdRng::seed_from_u64(4);
        let kp = keypair(&mut rng);
        let small: Vec<u64> = (0..64).collect();
        let large: Vec<u64> = (0..256).collect();
        let rs = run_pir(&small, 10, &kp, &mut rng).unwrap();
        let rl = run_pir(&large, 10, &kp, &mut rng).unwrap();
        let total_s = rs.bytes_up + rs.bytes_down;
        let total_l = rl.bytes_up + rl.bytes_down;
        let ratio = total_l as f64 / total_s as f64;
        assert!((1.6..2.4).contains(&ratio), "√n scaling violated: {ratio}");
        // And far below a full dump of 256 × 8 B? At tiny n ciphertext
        // width dominates; the asymptotic win is the ratio above.
        assert!(total_l < 256 * kp.public.ciphertext_bytes());
    }

    #[test]
    fn padded_tail_reads_zero() {
        // 7 items in a 3×3 matrix: the padding cells decrypt to 0 and do
        // not disturb real retrievals.
        let mut rng = StdRng::seed_from_u64(5);
        let kp = keypair(&mut rng);
        let values = vec![9u64, 8, 7, 6, 5, 4, 3];
        let r = run_pir(&values, 6, &kp, &mut rng).unwrap();
        assert_eq!(r.value, 3);
    }

    #[test]
    fn wrong_shape_rejected() {
        let mut rng = StdRng::seed_from_u64(6);
        let kp = keypair(&mut rng);
        let server = PirServer::new((0..25).collect()).unwrap();
        let other = PirServer::new((0..100).collect()).unwrap();
        let client = PirClient::new(&kp);
        // Query built for the 100-item shape has 10 selectors; the
        // 25-item server expects 5.
        let q = client.query(other.shape(), 3, &mut rng).unwrap();
        assert!(matches!(server.answer(&q), Err(PirError::ShapeMismatch)));
    }

    #[test]
    fn out_of_range_rejected() {
        let mut rng = StdRng::seed_from_u64(7);
        let kp = keypair(&mut rng);
        assert!(matches!(
            run_pir(&[1, 2, 3], 3, &kp, &mut rng),
            Err(PirError::IndexOutOfRange { .. })
        ));
    }

    #[test]
    fn random_databases_random_indices() {
        let mut rng = StdRng::seed_from_u64(8);
        let kp = keypair(&mut rng);
        for _ in 0..5 {
            let n = rng.gen_range(1..80);
            let values: Vec<u64> = (0..n).map(|_| rng.gen::<u32>() as u64).collect();
            let idx = rng.gen_range(0..n);
            let r = run_pir(&values, idx, &kp, &mut rng).unwrap();
            assert_eq!(r.value, values[idx]);
        }
    }
}
