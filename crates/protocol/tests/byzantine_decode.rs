//! Byzantine wire-mutation property tests: take *well-formed* encoded
//! frames (`Hello`, `ShardHello`, `Resume`, `IndexBatch`) and mutate
//! their wire image the way the simulator's byzantine actors do —
//! truncation, length-field inflation, magic flips, trailer garbage,
//! payload corruption. Every mutation must surface as a typed
//! [`TransportError::Malformed`] / [`TransportError::FrameTooLarge`] /
//! [`ProtocolError::InvalidInput`]-class error or an honest
//! "need more bytes"; a panic anywhere in the decode path is the bug.

use bytes::{BufMut, Bytes, BytesMut};
use pps_protocol::messages::{Hello, IndexBatch, Resume, ShardHello};
use pps_protocol::SumClient;
use pps_transport::{Frame, TransportError};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn client() -> &'static SumClient {
    use std::sync::OnceLock;
    static CLIENT: OnceLock<SumClient> = OnceLock::new();
    CLIENT.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(0xb1_7e5);
        SumClient::generate(128, &mut rng).unwrap()
    })
}

/// One wire image per message family under test, pre-encoded once.
fn corpus() -> Vec<Bytes> {
    let client = client();
    let key = &client.keypair().public;
    let mut rng = StdRng::seed_from_u64(0xc0_4b5);
    let hello = Hello {
        modulus: key.n().clone(),
        total: 12,
        batch_size: 4,
        trace: None,
    };
    let batch = IndexBatch {
        seq: 0,
        ciphertexts: vec![
            key.encrypt_u64(1, &mut rng).unwrap(),
            key.encrypt_u64(0, &mut rng).unwrap(),
        ],
    };
    let resume = Resume {
        session_id: 0xDEAD_BEEF,
        next_seq: 3,
        trace: None,
    };
    let shard = ShardHello {
        shard_index: 1,
        shard_count: 3,
        m_bits: 126,
        seeds_add: vec![vec![7u8; 32]],
        seeds_sub: vec![vec![9u8; 32]],
        trace: None,
    };
    vec![
        hello.encode().unwrap().encode(),
        batch.encode(key).unwrap().encode(),
        resume.encode().unwrap().encode(),
        shard.encode().unwrap().encode(),
    ]
}

/// Feeds `wire` to the incremental frame decoder and, for every frame
/// that reassembles, runs all four message decoders over it. Returns
/// how many complete frames came out. Panics = failure; typed errors
/// and partial reads are all acceptable outcomes.
fn drive_decoders(wire: &[u8]) -> usize {
    let key = &client().keypair().public;
    let mut buf = BytesMut::from(wire);
    let mut frames = 0;
    loop {
        match Frame::decode(&mut buf) {
            Ok(Some(frame)) => {
                frames += 1;
                let _ = Hello::decode(&frame);
                let _ = ShardHello::decode(&frame);
                let _ = Resume::decode(&frame);
                let _ = IndexBatch::decode(&frame, key);
            }
            Ok(None) => return frames,
            Err(_) => return frames,
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Truncation at any point never yields a frame and never panics —
    /// the decoder must ask for more bytes or reject, not read past the
    /// buffer.
    #[test]
    fn truncation_never_yields_a_frame(which in 0usize..4, frac in 0.0f64..1.0) {
        let wire = &corpus()[which];
        let cut = ((wire.len() - 1) as f64 * frac) as usize;
        prop_assert_eq!(drive_decoders(&wire[..cut]), 0);
    }

    /// Inflating the length field either reports `FrameTooLarge`
    /// (inflated past the cap) or honestly waits for bytes that will
    /// never come; it must not hand the payload-layer decoders a frame
    /// with a lying length.
    #[test]
    fn length_inflation_is_contained(which in 0usize..4, len in 0u32..=u32::MAX) {
        let mut wire = corpus()[which].to_vec();
        wire[3..7].copy_from_slice(&len.to_be_bytes());
        let mut buf = BytesMut::from(&wire[..]);
        match Frame::decode(&mut buf) {
            Err(TransportError::FrameTooLarge { .. }) | Err(TransportError::Malformed(_)) => {}
            Ok(None) => prop_assert!(len as usize > wire.len() - 7,
                "decoder stalled on a length it already has"),
            Ok(Some(frame)) => prop_assert_eq!(frame.payload.len(), len as usize),
            Err(e) => prop_assert!(false, "unexpected error class: {e:?}"),
        }
    }

    /// Any corruption of the 2-byte magic is rejected as `Malformed`
    /// before a single payload byte is trusted.
    #[test]
    fn magic_flip_is_malformed(which in 0usize..4, byte in 0usize..2, mask in 1u8..=255) {
        let mut wire = corpus()[which].to_vec();
        wire[byte] ^= mask;
        let mut buf = BytesMut::from(&wire[..]);
        prop_assert!(matches!(
            Frame::decode(&mut buf),
            Err(TransportError::Malformed(_))
        ));
    }

    /// Trailer garbage after a valid frame never corrupts that frame:
    /// it reassembles intact, and the garbage is handled on the *next*
    /// decode call (error, partial, or a new frame — never a panic).
    #[test]
    fn trailer_garbage_does_not_corrupt_the_frame(
        which in 0usize..4,
        trailer in prop::collection::vec(any::<u8>(), 1..64),
    ) {
        let wire = &corpus()[which];
        let mut buf = BytesMut::with_capacity(wire.len() + trailer.len());
        buf.put_slice(wire);
        buf.put_slice(&trailer);
        let first = Frame::decode(&mut buf).unwrap().unwrap();
        let mut clean = BytesMut::from(&wire[..]);
        let reference = Frame::decode(&mut clean).unwrap().unwrap();
        prop_assert_eq!(first.msg_type, reference.msg_type);
        prop_assert_eq!(&first.payload, &reference.payload);
        let _ = Frame::decode(&mut buf); // garbage: any Result, no panic
    }

    /// Arbitrary single-byte payload corruption of a well-formed frame
    /// flows through every message decoder without panicking.
    #[test]
    fn payload_corruption_never_panics(
        which in 0usize..4,
        offset in any::<usize>(),
        mask in 1u8..=255,
    ) {
        let mut wire = corpus()[which].to_vec();
        let i = 7 + offset % (wire.len() - 7);
        wire[i] ^= mask;
        drive_decoders(&wire);
    }
}

/// `ShardHello::encode` deliberately does not enforce geometry (the
/// simulator's malformed-shard actor depends on that), so decode must:
/// every geometry violation is a typed decode error, not a panic and
/// not a silent acceptance.
#[test]
fn shard_hello_geometry_violations_are_rejected_on_decode() {
    let bad = [
        // index >= count
        ShardHello {
            shard_index: 7,
            shard_count: 3,
            m_bits: 64,
            seeds_add: vec![],
            seeds_sub: vec![],
            trace: None,
        },
        // zero m_bits
        ShardHello {
            shard_index: 0,
            shard_count: 2,
            m_bits: 0,
            seeds_add: vec![vec![1; 16]],
            seeds_sub: vec![],
            trace: None,
        },
        // wrong seeds_add arity for (index, count)
        ShardHello {
            shard_index: 0,
            shard_count: 3,
            m_bits: 64,
            seeds_add: vec![vec![1; 16]],
            seeds_sub: vec![],
            trace: None,
        },
        // wrong seeds_sub arity
        ShardHello {
            shard_index: 2,
            shard_count: 3,
            m_bits: 64,
            seeds_add: vec![],
            seeds_sub: vec![vec![1; 16]],
            trace: None,
        },
    ];
    for (i, msg) in bad.iter().enumerate() {
        let frame = msg.encode().unwrap();
        assert!(
            ShardHello::decode(&frame).is_err(),
            "geometry violation {i} decoded successfully"
        );
    }
}
