//! Adversarial-input property tests for the protocol message decoders:
//! every decoder must return a clean error (never panic, never
//! mis-decode) on arbitrary byte soup — this is the surface a malicious
//! peer controls.

use pps_bignum::Uint;
use pps_protocol::messages::{
    Dump, Hello, IndexBatch, PlainIndices, PlainSum, Product, RingPartial, RingTotal, SizeReply,
    SizeRequest,
};
use pps_protocol::ServerSession;
use pps_transport::Frame;
use proptest::prelude::*;

fn key() -> &'static pps_crypto::PaillierPublicKey {
    use std::sync::OnceLock;
    static KEY: OnceLock<pps_crypto::PaillierPublicKey> = OnceLock::new();
    KEY.get_or_init(|| {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xfa22);
        pps_crypto::PaillierKeypair::generate(128, &mut rng)
            .unwrap()
            .public
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn decoders_never_panic(
        msg_type in any::<u8>(),
        payload in prop::collection::vec(any::<u8>(), 0..512),
    ) {
        let frame = Frame::new(msg_type, payload).unwrap();
        // Any Result is acceptable; a panic is the bug.
        let _ = Hello::decode(&frame);
        let _ = IndexBatch::decode(&frame, key());
        let _ = Product::decode(&frame, key());
        let _ = PlainIndices::decode(&frame);
        let _ = PlainSum::decode(&frame);
        let _ = Dump::decode(&frame);
        let _ = RingPartial::decode(&frame);
        let _ = RingTotal::decode(&frame);
        let _ = SizeRequest::decode(&frame);
        let _ = SizeReply::decode(&frame);
    }

    #[test]
    fn server_session_never_panics_on_garbage(
        frames in prop::collection::vec(
            (any::<u8>(), prop::collection::vec(any::<u8>(), 0..128)),
            1..8,
        ),
    ) {
        let db = pps_protocol::Database::new(vec![1, 2, 3, 4]).unwrap();
        let mut session = ServerSession::new(&db);
        for (t, p) in frames {
            let frame = Frame::new(t, p).unwrap();
            // Errors are fine and expected; panics are not. Stop at the
            // first error, as a real server would hang up.
            if session.on_frame(&frame).is_err() {
                break;
            }
        }
    }

    #[test]
    fn hello_decode_encode_fixpoint(
        modulus_bytes in prop::collection::vec(any::<u8>(), 1..64),
        total in any::<u64>(),
        batch in any::<u32>(),
    ) {
        let modulus = Uint::from_bytes_be(&modulus_bytes);
        prop_assume!(!modulus.is_zero());
        let h = Hello { modulus, total, batch_size: batch, trace: None };
        let f = h.encode().unwrap();
        prop_assert_eq!(Hello::decode(&f).unwrap(), h);
    }

    #[test]
    fn truncated_hello_rejected(
        total in any::<u64>(),
        cut in 0usize..20,
    ) {
        let h = Hello { modulus: Uint::from_u64(12345), total, batch_size: 1, trace: None };
        let f = h.encode().unwrap();
        prop_assume!(cut < f.payload.len());
        let bad = Frame::new(f.msg_type, f.payload.slice(..cut)).unwrap();
        prop_assert!(Hello::decode(&bad).is_err());
    }

    #[test]
    fn plain_indices_round_trip(indices in prop::collection::vec(any::<u64>(), 0..64)) {
        let m = PlainIndices { indices };
        let f = m.encode().unwrap();
        prop_assert_eq!(PlainIndices::decode(&f).unwrap(), m);
    }

    #[test]
    fn ring_values_round_trip(bytes in prop::collection::vec(any::<u8>(), 0..48)) {
        let v = Uint::from_bytes_be(&bytes);
        let p = RingPartial { running: v.clone() };
        prop_assert_eq!(RingPartial::decode(&p.encode().unwrap()).unwrap().running, v.clone());
        let t = RingTotal { total: v.clone() };
        prop_assert_eq!(RingTotal::decode(&t.encode().unwrap()).unwrap().total, v);
    }
}
