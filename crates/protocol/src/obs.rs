//! Protocol-layer observability: server/client metric bundles and the
//! span→[`RunReport`] bridge.
//!
//! The paper's figures decompose every run into four components —
//! client encryption, communication, server computation, client
//! decryption. In-process runs record that decomposition directly into
//! a [`RunReport`]; a *networked* deployment cannot, because the two
//! halves live in different processes. This module closes the gap:
//!
//! * [`ServerObs`] — everything the [`TcpServer`](crate::TcpServer)
//!   runtime records: session lifecycle counters (accepted, completed,
//!   failed, refused, evicted, accept errors), an active-session gauge,
//!   session/fold duration histograms, the `server_compute` phase
//!   histogram, and shared wire counters.
//! * [`QueryObs`] — the client mirror: retry counters, the
//!   `client_encrypt`/`comm`/`client_decrypt` phase histograms, wire
//!   counters, and a span collector.
//! * [`PhaseTotals`] — folds a bag of phase-tagged spans back into the
//!   paper's four components, so a networked query reconstructs a
//!   [`RunReport`] from its spans ([`PhaseTotals::apply`]).
//!
//! When client and server run in one process over loopback and share a
//! collector, the merged spans carry **all four** phases and the bridge
//! yields a complete report. Over a real network the client's report has
//! `server_compute = 0` and its `comm` necessarily *includes* the
//! server's compute (the client cannot see across the wire); the server
//! publishes the true `server_compute` through its own registry.

use std::sync::Arc;
use std::time::Duration;

use pps_obs::{names, Collector, Counter, Gauge, Histogram, Phase, Registry, SpanRecord, Tracer};
use pps_transport::WireMetrics;

use crate::report::RunReport;

/// Metric handles for the fold-plan cache: build/hit counters, the
/// build-duration histogram, and a gauge tracking the bytes held by
/// cached digit tables. Cheap to clone; clones share every atomic.
#[derive(Clone)]
pub struct FoldPlanObs {
    pub(crate) builds: Arc<Counter>,
    pub(crate) hits: Arc<Counter>,
    pub(crate) build_seconds: Arc<Histogram>,
    pub(crate) bytes: Arc<Gauge>,
}

impl FoldPlanObs {
    /// Registers the four `pps_fold_plan_*` families in `registry`.
    pub fn new(registry: &Registry) -> Self {
        FoldPlanObs {
            builds: registry.counter(
                names::FOLD_PLAN_BUILDS_TOTAL,
                "multi-exponentiation fold plans built from database exponents",
            ),
            hits: registry.counter(
                names::FOLD_PLAN_HITS_TOTAL,
                "plan-cache lookups served by an already-built fold plan",
            ),
            build_seconds: registry.histogram(
                names::FOLD_PLAN_BUILD_SECONDS,
                "duration of fold-plan builds",
            ),
            bytes: registry.gauge(
                names::FOLD_PLAN_BYTES,
                "bytes currently held by cached fold-plan digit tables",
            ),
        }
    }
}

/// Metric handles the server runtime updates while serving sessions.
/// Cheap to clone; clones share every underlying atomic.
#[derive(Clone)]
pub struct ServerObs {
    registry: Arc<Registry>,
    tracer: Tracer,
    pub(crate) wire: WireMetrics,
    pub(crate) fold_plan: FoldPlanObs,
    pub(crate) accepted: Arc<Counter>,
    pub(crate) completed: Arc<Counter>,
    pub(crate) failed: Arc<Counter>,
    pub(crate) refused: Arc<Counter>,
    pub(crate) evicted: Arc<Counter>,
    pub(crate) accept_errors: Arc<Counter>,
    pub(crate) resumed: Arc<Counter>,
    pub(crate) panicked: Arc<Counter>,
    pub(crate) checkpoints_evicted: Arc<Counter>,
    pub(crate) active: Arc<Gauge>,
    pub(crate) queued: Arc<Gauge>,
    pub(crate) workers_busy: Arc<Gauge>,
    pub(crate) session_seconds: Arc<Histogram>,
    pub(crate) queue_wait_seconds: Arc<Histogram>,
    pub(crate) fold_seconds: Arc<Histogram>,
    pub(crate) server_compute: Arc<Histogram>,
    pub(crate) slow_queries: Arc<Counter>,
}

impl ServerObs {
    /// Registers the server metric families in `registry`, with spans
    /// discarded. Use [`ServerObs::with_tracer`] to also collect spans.
    pub fn new(registry: Arc<Registry>) -> Self {
        Self::with_tracer(registry, Tracer::disabled())
    }

    /// Registers the server metric families in `registry` and emits
    /// session spans/events through `tracer`.
    pub fn with_tracer(registry: Arc<Registry>, tracer: Tracer) -> Self {
        let wire = WireMetrics::from_registry(&registry);
        // Info-style gauge: always 1, labels identify the build, so a
        // scrape (and /healthz) can correlate metric changes with
        // deploys and wire-compatibility with the frame magic.
        let magic = format!("{:#06x}", pps_transport::FRAME_MAGIC);
        registry
            .gauge_with_labels(
                names::BUILD_INFO,
                "build identity: crate version and protocol frame magic",
                &[("version", env!("CARGO_PKG_VERSION")), ("magic", &magic)],
            )
            .set(1);
        ServerObs {
            wire,
            fold_plan: FoldPlanObs::new(&registry),
            accepted: registry.counter(
                names::SESSIONS_ACCEPTED_TOTAL,
                "sessions admitted by the server",
            ),
            completed: registry.counter(
                names::SESSIONS_COMPLETED_TOTAL,
                "sessions that ran the protocol to completion",
            ),
            failed: registry.counter(
                names::SESSIONS_FAILED_TOTAL,
                "sessions that ended in a non-eviction error",
            ),
            refused: registry.counter(
                names::SESSIONS_REFUSED_TOTAL,
                "connections refused by admission control",
            ),
            evicted: registry.counter(
                names::SESSIONS_EVICTED_TOTAL,
                "sessions evicted for exceeding their deadline",
            ),
            accept_errors: registry.counter(
                names::ACCEPT_ERRORS_TOTAL,
                "accept() failures (no session existed yet)",
            ),
            resumed: registry.counter(
                names::SESSIONS_RESUMED_TOTAL,
                "sessions continued from a stored checkpoint",
            ),
            panicked: registry.counter(
                names::SESSIONS_PANICKED_TOTAL,
                "sessions whose thread panicked (contained by catch_unwind)",
            ),
            checkpoints_evicted: registry.counter(
                names::CHECKPOINTS_EVICTED_TOTAL,
                "fold checkpoints dropped by capacity pressure or TTL expiry",
            ),
            active: registry.gauge(names::SESSIONS_ACTIVE, "sessions currently being served"),
            queued: registry.gauge(
                names::SESSIONS_QUEUED,
                "connections parked in the bounded admission queue",
            ),
            workers_busy: registry.gauge(
                names::WORKERS_BUSY,
                "event-engine workers currently executing a protocol step",
            ),
            session_seconds: registry.histogram(
                names::SESSION_SECONDS,
                "end-to-end duration of completed sessions",
            ),
            queue_wait_seconds: registry.histogram(
                names::QUEUE_WAIT_SECONDS,
                "time spent in the admission queue before admission or eviction",
            ),
            fold_seconds: registry.histogram(
                names::FOLD_SECONDS,
                "server-side homomorphic fold time per batch",
            ),
            server_compute: registry.phase_histogram(Phase::ServerCompute),
            slow_queries: registry.counter(
                names::SLOW_QUERIES_TOTAL,
                "sessions whose wall time crossed the slow-query threshold",
            ),
            registry,
            tracer,
        }
    }

    /// The registry every handle was registered in.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// The tracer session spans are emitted through.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The fold-plan cache handles registered alongside this bundle.
    pub fn fold_plan(&self) -> &FoldPlanObs {
        &self.fold_plan
    }
}

/// Metric handles the TCP query client updates, plus the span collector
/// a traced query records its phases into.
#[derive(Clone)]
pub struct QueryObs {
    registry: Arc<Registry>,
    collector: Arc<dyn Collector>,
    pub(crate) wire: WireMetrics,
    pub(crate) retry_attempts: Arc<Counter>,
    pub(crate) retry_failures: Arc<Counter>,
    pub(crate) client_encrypt: Arc<Histogram>,
    pub(crate) comm: Arc<Histogram>,
    pub(crate) client_decrypt: Arc<Histogram>,
}

impl QueryObs {
    /// Registers the client metric families in `registry`, with spans
    /// discarded.
    pub fn new(registry: Arc<Registry>) -> Self {
        Self::with_collector(registry, Arc::new(pps_obs::NullCollector))
    }

    /// Registers the client metric families in `registry` and forwards
    /// every span a traced query records to `collector` (in addition to
    /// the query's internal ring, which feeds the report bridge).
    pub fn with_collector(registry: Arc<Registry>, collector: Arc<dyn Collector>) -> Self {
        QueryObs {
            wire: WireMetrics::from_registry(&registry),
            retry_attempts: registry.counter(
                names::RETRY_ATTEMPTS_TOTAL,
                "query attempts, including each first try",
            ),
            retry_failures: registry.counter(
                names::RETRY_FAILURES_TOTAL,
                "query attempts that failed with a retryable transport error",
            ),
            client_encrypt: registry.phase_histogram(Phase::ClientEncrypt),
            comm: registry.phase_histogram(Phase::Comm),
            client_decrypt: registry.phase_histogram(Phase::ClientDecrypt),
            registry,
            collector,
        }
    }

    /// The registry every handle was registered in.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// The collector traced-query spans are forwarded to.
    pub fn collector(&self) -> &Arc<dyn Collector> {
        &self.collector
    }
}

/// Metric handles the sharded fan-out engine updates: a counter per
/// launched shard leg, a counter per resumed leg attempt, and the
/// tracer per-leg `shard_leg` spans are emitted through.
#[derive(Clone)]
pub struct ShardObs {
    registry: Arc<Registry>,
    tracer: Tracer,
    pub(crate) legs: Arc<Counter>,
    pub(crate) resumes: Arc<Counter>,
}

impl ShardObs {
    /// Registers the shard metric families in `registry`, with spans
    /// discarded. Use [`ShardObs::with_tracer`] to also collect spans.
    pub fn new(registry: Arc<Registry>) -> Self {
        Self::with_tracer(registry, Tracer::disabled())
    }

    /// Registers the shard metric families in `registry` and emits one
    /// `shard_leg` span per leg through `tracer` (tagged with the leg
    /// index as its session id).
    pub fn with_tracer(registry: Arc<Registry>, tracer: Tracer) -> Self {
        ShardObs {
            legs: registry.counter(
                names::SHARD_LEGS_TOTAL,
                "shard legs launched by the fan-out engine",
            ),
            resumes: registry.counter(
                names::SHARD_RESUMES_TOTAL,
                "shard-leg attempts resumed from a server checkpoint",
            ),
            registry,
            tracer,
        }
    }

    /// The registry every handle was registered in.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// The tracer per-leg spans are emitted through.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }
}

/// The paper's four-component decomposition, summed from phase-tagged
/// spans — the bridge from a span trace back to a [`RunReport`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseTotals {
    /// Σ spans tagged [`Phase::ClientEncrypt`].
    pub client_encrypt: Duration,
    /// Σ spans tagged [`Phase::Comm`].
    pub comm: Duration,
    /// Σ spans tagged [`Phase::ServerCompute`].
    pub server_compute: Duration,
    /// Σ spans tagged [`Phase::ClientDecrypt`].
    pub client_decrypt: Duration,
    /// Σ spans tagged [`Phase::Offline`].
    pub offline: Duration,
}

impl PhaseTotals {
    /// Sums span durations per phase; untagged spans are ignored.
    pub fn from_spans<'a>(spans: impl IntoIterator<Item = &'a SpanRecord>) -> Self {
        let mut totals = PhaseTotals::default();
        for span in spans {
            let slot = match span.phase {
                Some(Phase::ClientEncrypt) => &mut totals.client_encrypt,
                Some(Phase::Comm) => &mut totals.comm,
                Some(Phase::ServerCompute) => &mut totals.server_compute,
                Some(Phase::ClientDecrypt) => &mut totals.client_decrypt,
                Some(Phase::Offline) => &mut totals.offline,
                None => continue,
            };
            *slot += span.duration();
        }
        totals
    }

    /// Writes the four online components (and the offline one) into
    /// `report`, leaving every non-timing field untouched.
    pub fn apply(&self, report: &mut RunReport) {
        report.client_encrypt = self.client_encrypt;
        report.comm = self.comm;
        report.server_compute = self.server_compute;
        report.client_decrypt = self.client_decrypt;
        report.client_offline = self.offline;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Variant;
    use pps_obs::RingCollector;

    fn span(phase: Phase, ns: u64) -> SpanRecord {
        SpanRecord {
            name: "s".into(),
            phase: Some(phase),
            session: None,
            batch: None,
            start_ns: 0,
            end_ns: ns,
            trace: None,
        }
    }

    #[test]
    fn phase_totals_sum_by_phase_and_apply() {
        let spans = vec![
            span(Phase::ClientEncrypt, 100),
            span(Phase::ClientEncrypt, 50),
            span(Phase::Comm, 30),
            span(Phase::ServerCompute, 20),
            span(Phase::ClientDecrypt, 5),
            span(Phase::Offline, 1000),
            SpanRecord {
                phase: None,
                ..span(Phase::Comm, 7)
            },
        ];
        let totals = PhaseTotals::from_spans(&spans);
        assert_eq!(totals.client_encrypt, Duration::from_nanos(150));
        assert_eq!(totals.comm, Duration::from_nanos(30));
        assert_eq!(totals.server_compute, Duration::from_nanos(20));
        assert_eq!(totals.client_decrypt, Duration::from_nanos(5));
        assert_eq!(totals.offline, Duration::from_nanos(1000));

        let mut report = RunReport {
            variant: Variant::Batched,
            n: 4,
            selected: 2,
            key_bits: 128,
            link: "test".into(),
            client_offline: Duration::ZERO,
            client_encrypt: Duration::ZERO,
            server_compute: Duration::ZERO,
            comm: Duration::ZERO,
            client_decrypt: Duration::ZERO,
            pipelined_total: None,
            bytes_to_server: 1,
            bytes_to_client: 2,
            messages: 3,
            result: 9,
        };
        totals.apply(&mut report);
        assert_eq!(report.client_encrypt, Duration::from_nanos(150));
        assert_eq!(report.total_sequential(), Duration::from_nanos(205));
        assert_eq!(report.client_offline, Duration::from_nanos(1000));
        assert_eq!(report.result, 9, "non-timing fields untouched");
    }

    #[test]
    fn obs_bundles_register_expected_families() {
        let registry = Arc::new(Registry::new());
        let server = ServerObs::new(Arc::clone(&registry));
        let client = QueryObs::new(Arc::clone(&registry));
        server.accepted.inc();
        client.retry_attempts.inc();
        client
            .client_encrypt
            .record_duration(Duration::from_millis(1));
        let text = registry.render_prometheus();
        assert!(text.contains("pps_sessions_accepted_total 1"));
        assert!(text.contains("pps_retry_attempts_total 1"));
        // The fold-plan families register eagerly (zero readings) so a
        // scrape shows them before the first Precomputed session.
        assert!(text.contains("pps_fold_plan_builds_total 0"));
        assert!(text.contains("pps_fold_plan_hits_total 0"));
        assert!(text.contains("pps_fold_plan_bytes 0"));
        assert!(text.contains(r#"pps_phase_duration_seconds_bucket{phase="client_encrypt""#));
        // Both bundles share the one wire-counter family.
        server.wire.frames_sent.inc();
        client.wire.frames_sent.inc();
        assert_eq!(server.wire.frames_sent.get(), 2);
    }

    #[test]
    fn query_obs_forwards_to_collector() {
        let registry = Arc::new(Registry::new());
        let ring = Arc::new(RingCollector::new(8));
        let obs = QueryObs::with_collector(registry, ring.clone());
        let tracer = Tracer::new(Arc::clone(obs.collector()));
        tracer.span("x").phase(Phase::Comm).start().finish();
        assert_eq!(ring.spans().len(), 1);
    }
}
