//! Error type for protocol execution.

use std::fmt;

use pps_crypto::CryptoError;
use pps_transport::TransportError;

/// Errors surfaced while running a protocol variant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// Underlying cryptographic failure.
    Crypto(CryptoError),
    /// Underlying transport failure.
    Transport(TransportError),
    /// Configuration rejected before execution (empty database, batch
    /// size zero, selection length mismatch, ...).
    Config(String),
    /// The plaintext sum could overflow the Paillier message space for
    /// this combination of database bound, weights, and key size.
    SumOverflow {
        /// Bits needed for the worst-case sum.
        needed_bits: usize,
        /// Bits available in the message space.
        available_bits: usize,
    },
    /// A peer violated the protocol state machine.
    UnexpectedMessage(&'static str),
    /// A peer supplied input that fails validation bounds: zero-length
    /// or oversized batches, batch sizes that cannot fit a frame,
    /// out-of-order sequence numbers. Distinct from
    /// [`ProtocolError::UnexpectedMessage`] (wrong message for the
    /// current state) and never retried — replaying invalid input can
    /// only fail again.
    InvalidInput(&'static str),
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Crypto(e) => write!(f, "crypto error: {e}"),
            Self::Transport(e) => write!(f, "transport error: {e}"),
            Self::Config(why) => write!(f, "invalid configuration: {why}"),
            Self::SumOverflow {
                needed_bits,
                available_bits,
            } => write!(
                f,
                "worst-case sum needs {needed_bits} bits but message space has {available_bits}"
            ),
            Self::UnexpectedMessage(why) => write!(f, "protocol violation: {why}"),
            Self::InvalidInput(why) => write!(f, "invalid input: {why}"),
        }
    }
}

impl std::error::Error for ProtocolError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Crypto(e) => Some(e),
            Self::Transport(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CryptoError> for ProtocolError {
    fn from(e: CryptoError) -> Self {
        Self::Crypto(e)
    }
}

impl From<TransportError> for ProtocolError {
    fn from(e: TransportError) -> Self {
        Self::Transport(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversion() {
        let e: ProtocolError = TransportError::Disconnected.into();
        assert!(e.to_string().contains("disconnected"));
        let e: ProtocolError = CryptoError::KeyMismatch.into();
        assert!(e.to_string().contains("different key"));
        assert!(ProtocolError::SumOverflow {
            needed_bits: 600,
            available_bits: 512
        }
        .to_string()
        .contains("600"));
    }
}
