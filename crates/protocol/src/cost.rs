//! Hardware/language cost calibration.
//!
//! The paper's absolute numbers come from 2004 hardware (2 GHz Pentium
//! III, 500 MHz UltraSparc) and two language stacks (C++/OpenSSL, and a
//! Java version "around five times slower", §3). Our measurements come
//! from one modern machine, so a [`CostModel`] rescales *compute*
//! components to the paper's era while leaving the (already simulated)
//! communication component untouched. This is what lets the harness
//! reproduce the computation-vs-communication crossovers of Figs. 3 and 6
//! at the paper's operating point.
//!
//! Calibration anchor: Fig. 2 reports ≈20 minutes for n = 100,000
//! unoptimized over a fast LAN, almost all of it client encryption —
//! ≈12 ms per 512-bit Paillier encryption on the 2 GHz P-III.

use std::time::{Duration, Instant};

use pps_bignum::Uint;
use pps_crypto::PaillierPublicKey;
use rand::RngCore;

use crate::report::RunReport;

/// Per-encryption time implied by the paper's Fig. 2 (2 GHz P-III,
/// C++/OpenSSL, 512-bit keys): 20 min / 100,000 ≈ 12 ms.
pub const PAPER_ENCRYPT_SECS: f64 = 0.012;

/// The paper's observed Java/C++ performance ratio (§3).
pub const JAVA_SLOWDOWN: f64 = 5.0;

/// Multiplicative rescaling of compute components.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostModel {
    /// Factor applied to all compute components (1.0 = this machine).
    pub cpu_slowdown: f64,
    /// Additional language factor (1.0 = C++/Rust, 5.0 = the paper's
    /// Java implementation).
    pub language_factor: f64,
}

impl CostModel {
    /// No rescaling: report times as measured on this machine.
    pub fn modern() -> Self {
        CostModel {
            cpu_slowdown: 1.0,
            language_factor: 1.0,
        }
    }

    /// Rescales to the paper's 2 GHz Pentium-III / C++ testbed by
    /// measuring this machine's Paillier encryption throughput against
    /// the paper's implied 12 ms/encryption.
    pub fn paper_cpp(key: &PaillierPublicKey, rng: &mut dyn RngCore) -> Self {
        let measured = measure_encrypt_secs(key, rng);
        CostModel {
            cpu_slowdown: PAPER_ENCRYPT_SECS / measured,
            language_factor: 1.0,
        }
    }

    /// As [`CostModel::paper_cpp`] plus the paper's Java factor (used for
    /// Fig. 9, whose numbers come from the Java implementation).
    pub fn paper_java(key: &PaillierPublicKey, rng: &mut dyn RngCore) -> Self {
        let mut m = Self::paper_cpp(key, rng);
        m.language_factor = JAVA_SLOWDOWN;
        m
    }

    /// Combined compute scale factor.
    pub fn factor(&self) -> f64 {
        self.cpu_slowdown * self.language_factor
    }

    /// Scales one compute duration.
    pub fn scale(&self, d: Duration) -> Duration {
        Duration::from_secs_f64(d.as_secs_f64() * self.factor())
    }

    /// Rescales the compute components of a report; communication time
    /// (already simulated at the target link speed) is left unchanged.
    pub fn apply(&self, r: &RunReport) -> RunReport {
        let mut out = r.clone();
        out.client_offline = self.scale(r.client_offline);
        out.client_encrypt = self.scale(r.client_encrypt);
        out.server_compute = self.scale(r.server_compute);
        out.client_decrypt = self.scale(r.client_decrypt);
        out.pipelined_total = None; // stale after rescaling; recompute if needed
        out
    }
}

/// Measures the per-encryption wall time for `key` (median-of-runs over a
/// small sample; key generation excluded).
pub fn measure_encrypt_secs(key: &PaillierPublicKey, rng: &mut dyn RngCore) -> f64 {
    let m = Uint::one();
    // Warm up.
    for _ in 0..3 {
        let _ = key.encrypt(&m, rng).expect("encryption works");
    }
    let samples = 11;
    let mut times = Vec::with_capacity(samples);
    for _ in 0..samples {
        let start = Instant::now();
        let _ = key.encrypt(&m, rng).expect("encryption works");
        times.push(start.elapsed().as_secs_f64());
    }
    times.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    times[samples / 2]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Variant;
    use pps_crypto::PaillierKeypair;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn modern_is_identity() {
        let m = CostModel::modern();
        assert_eq!(m.factor(), 1.0);
        assert_eq!(m.scale(Duration::from_secs(3)), Duration::from_secs(3));
    }

    #[test]
    fn scaling_math() {
        let m = CostModel {
            cpu_slowdown: 10.0,
            language_factor: 5.0,
        };
        assert_eq!(m.factor(), 50.0);
        assert_eq!(
            m.scale(Duration::from_millis(2)),
            Duration::from_millis(100)
        );
    }

    #[test]
    fn calibration_is_positive_and_sane() {
        let mut rng = StdRng::seed_from_u64(8);
        let kp = PaillierKeypair::generate(256, &mut rng).unwrap();
        let measured = measure_encrypt_secs(&kp.public, &mut rng);
        assert!(measured > 0.0 && measured < 1.0, "measured = {measured}");
        let model = CostModel::paper_cpp(&kp.public, &mut rng);
        assert!(model.cpu_slowdown > 0.0);
    }

    #[test]
    fn apply_rescales_compute_not_comm() {
        let r = RunReport {
            variant: Variant::Basic,
            n: 10,
            selected: 5,
            key_bits: 128,
            link: "t".into(),
            client_offline: Duration::from_secs(1),
            client_encrypt: Duration::from_secs(1),
            server_compute: Duration::from_secs(1),
            comm: Duration::from_secs(1),
            client_decrypt: Duration::from_secs(1),
            pipelined_total: Some(Duration::from_secs(9)),
            bytes_to_server: 0,
            bytes_to_client: 0,
            messages: 0,
            result: 0,
        };
        let m = CostModel {
            cpu_slowdown: 2.0,
            language_factor: 1.0,
        };
        let s = m.apply(&r);
        assert_eq!(s.client_encrypt, Duration::from_secs(2));
        assert_eq!(s.server_compute, Duration::from_secs(2));
        assert_eq!(s.client_decrypt, Duration::from_secs(2));
        assert_eq!(s.client_offline, Duration::from_secs(2));
        assert_eq!(s.comm, Duration::from_secs(1), "comm untouched");
        assert_eq!(s.pipelined_total, None, "stale pipeline total dropped");
    }
}
