//! The server's session-resumption table: bounded, TTL-evicted storage
//! for mid-stream fold checkpoints.
//!
//! The resumable TCP runtime snapshots every session's
//! [`FoldCheckpoint`] after each acknowledged batch. When a client
//! reconnects with `Resume { session_id, .. }`, the checkpoint is
//! *taken* (removed) from the table — two connections can never fold
//! forward from the same snapshot concurrently — and re-stored as the
//! resumed stream makes progress.
//!
//! The table is deliberately hostile-input-safe:
//!
//! * **Bounded**: at capacity, the entry closest to expiry is evicted,
//!   so a flood of abandoned sessions cannot grow memory without limit.
//! * **TTL-evicted**: entries expire after [`ResumptionConfig::ttl`];
//!   expired entries are pruned on every touch.
//! * **Unguessable IDs**: session IDs come from the process CSPRNG
//!   (ChaCha12), never sequentially, so a stranger cannot hijack a
//!   checkpoint by counting.
//! * **Poison-recovering**: the interior lock recovers from poison — a
//!   panicked session thread can never wedge resumption for everyone
//!   else.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};

use pps_obs::{real_clock, SharedClock};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

use crate::server::FoldCheckpoint;

/// Tuning for the [`SessionTable`].
#[derive(Clone, Copy, Debug)]
pub struct ResumptionConfig {
    /// Maximum simultaneously-stored checkpoints. At capacity the entry
    /// closest to expiry is evicted to make room.
    pub capacity: usize,
    /// How long a checkpoint survives without the client touching it.
    pub ttl: Duration,
}

impl Default for ResumptionConfig {
    fn default() -> Self {
        ResumptionConfig {
            capacity: 1024,
            ttl: Duration::from_secs(120),
        }
    }
}

struct Entry {
    checkpoint: FoldCheckpoint,
    expires: Instant,
}

struct Inner {
    map: HashMap<u64, Entry>,
    rng: StdRng,
}

/// Bounded, TTL-evicted map from session ID to [`FoldCheckpoint`].
pub struct SessionTable {
    inner: Mutex<Inner>,
    config: ResumptionConfig,
    evicted: AtomicU64,
    clock: SharedClock,
}

impl SessionTable {
    /// Creates a table with the given bounds, seeding its ID generator
    /// from OS entropy.
    pub fn new(config: ResumptionConfig) -> Self {
        Self::with_parts(config, StdRng::from_entropy(), real_clock())
    }

    /// Creates a table whose session IDs come from `seed` and whose TTL
    /// clock is `clock`. **Simulation/test only**: seeded IDs are
    /// guessable, which defeats the hijack resistance `new` provides —
    /// but they make a whole campaign bit-reproducible, and a virtual
    /// clock lets TTL expiry be driven instead of waited out.
    pub fn deterministic(config: ResumptionConfig, seed: u64, clock: SharedClock) -> Self {
        Self::with_parts(config, StdRng::seed_from_u64(seed), clock)
    }

    fn with_parts(config: ResumptionConfig, rng: StdRng, clock: SharedClock) -> Self {
        SessionTable {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                rng,
            }),
            config,
            evicted: AtomicU64::new(0),
            clock,
        }
    }

    /// Number of checkpoints evicted so far (capacity pressure plus TTL
    /// expiry) — clean completions are not evictions.
    pub fn evicted(&self) -> u64 {
        self.evicted.load(Ordering::Relaxed)
    }

    /// Live checkpoint count (after pruning expired entries).
    pub fn len(&self) -> usize {
        let mut inner = self.lock();
        let evicted = Self::prune(&mut inner, self.clock.now());
        self.evicted.fetch_add(evicted, Ordering::Relaxed);
        inner.map.len()
    }

    /// True when no checkpoint is currently stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Draws a fresh, unguessable, nonzero session ID that is not
    /// currently in use.
    pub fn allocate(&self) -> u64 {
        let mut inner = self.lock();
        loop {
            let id = inner.rng.next_u64();
            if id != 0 && !inner.map.contains_key(&id) {
                return id;
            }
        }
    }

    /// Stores (or refreshes) the checkpoint for `id`, restarting its
    /// TTL. At capacity, the entry closest to expiry is evicted first.
    pub fn store(&self, id: u64, checkpoint: FoldCheckpoint) {
        let now = self.clock.now();
        let mut inner = self.lock();
        let mut evicted = Self::prune(&mut inner, now);
        while inner.map.len() >= self.config.capacity && !inner.map.contains_key(&id) {
            let Some(oldest) = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.expires)
                .map(|(&id, _)| id)
            else {
                break;
            };
            inner.map.remove(&oldest);
            evicted += 1;
        }
        inner.map.insert(
            id,
            Entry {
                checkpoint,
                expires: now + self.config.ttl,
            },
        );
        drop(inner);
        self.evicted.fetch_add(evicted, Ordering::Relaxed);
    }

    /// Takes (removes and returns) the checkpoint for `id`. Removal is
    /// what makes a grant exclusive: a second `Resume` for the same ID
    /// finds nothing until the first connection checkpoints again.
    pub fn take(&self, id: u64) -> Option<FoldCheckpoint> {
        let mut inner = self.lock();
        let evicted = Self::prune(&mut inner, self.clock.now());
        let hit = inner.map.remove(&id).map(|e| e.checkpoint);
        drop(inner);
        self.evicted.fetch_add(evicted, Ordering::Relaxed);
        hit
    }

    /// Drops the checkpoint for `id` after a clean completion (not
    /// counted as an eviction).
    pub fn remove(&self, id: u64) {
        self.lock().map.remove(&id);
    }

    /// Removes expired entries; returns how many were dropped.
    fn prune(inner: &mut Inner, now: Instant) -> u64 {
        let before = inner.map.len();
        inner.map.retain(|_, e| e.expires > now);
        (before - inner.map.len()) as u64
    }

    /// Locks the table, recovering from poison: the map and RNG are
    /// valid at every await-free point, so a panicked holder leaves
    /// nothing half-written worth dying over.
    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }
}

impl Default for SessionTable {
    fn default() -> Self {
        Self::new(ResumptionConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::Database;
    use crate::messages::{Hello, IndexBatch};
    use crate::ServerSession;
    use pps_crypto::PaillierKeypair;
    use rand::rngs::StdRng as TestRng;
    use rand::SeedableRng;

    fn checkpoint() -> FoldCheckpoint {
        let mut rng = TestRng::seed_from_u64(5150);
        let kp = PaillierKeypair::generate(128, &mut rng).unwrap();
        let db = Database::new(vec![1, 2, 3, 4]).unwrap();
        let mut s = ServerSession::new(&db);
        s.on_frame(
            &Hello {
                modulus: kp.public.n().clone(),
                total: 4,
                batch_size: 2,
                trace: None,
            }
            .encode()
            .unwrap(),
        )
        .unwrap();
        let cts = (0..2)
            .map(|i| kp.public.encrypt_u64(i % 2, &mut rng).unwrap())
            .collect();
        s.on_frame(
            &IndexBatch {
                seq: 0,
                ciphertexts: cts,
            }
            .encode(&kp.public)
            .unwrap(),
        )
        .unwrap();
        s.checkpoint().unwrap()
    }

    #[test]
    fn ids_are_nonzero_and_distinct() {
        let table = SessionTable::default();
        let ids: Vec<u64> = (0..64).map(|_| table.allocate()).collect();
        assert!(ids.iter().all(|&id| id != 0));
        let unique: std::collections::HashSet<_> = ids.iter().collect();
        assert_eq!(unique.len(), ids.len());
    }

    #[test]
    fn take_is_exclusive() {
        let table = SessionTable::default();
        let cp = checkpoint();
        let id = table.allocate();
        table.store(id, cp);
        assert_eq!(table.len(), 1);
        assert!(table.take(id).is_some());
        assert!(table.take(id).is_none(), "second take finds nothing");
        assert_eq!(table.evicted(), 0, "takes are not evictions");
    }

    #[test]
    fn ttl_expires_checkpoints() {
        let table = SessionTable::new(ResumptionConfig {
            capacity: 8,
            ttl: Duration::from_millis(25),
        });
        let id = table.allocate();
        table.store(id, checkpoint());
        std::thread::sleep(Duration::from_millis(60));
        assert!(table.take(id).is_none(), "expired checkpoint is gone");
        assert_eq!(table.evicted(), 1);
    }

    #[test]
    fn capacity_evicts_the_entry_closest_to_expiry() {
        let table = SessionTable::new(ResumptionConfig {
            capacity: 2,
            ttl: Duration::from_secs(60),
        });
        let cp = checkpoint();
        let (a, b, c) = (table.allocate(), table.allocate(), table.allocate());
        table.store(a, cp.clone());
        std::thread::sleep(Duration::from_millis(5));
        table.store(b, cp.clone());
        std::thread::sleep(Duration::from_millis(5));
        table.store(c, cp);
        assert_eq!(table.len(), 2);
        assert_eq!(table.evicted(), 1);
        assert!(table.take(a).is_none(), "oldest was evicted");
        assert!(table.take(b).is_some());
        assert!(table.take(c).is_some());
    }

    #[test]
    fn restore_refreshes_instead_of_evicting() {
        let table = SessionTable::new(ResumptionConfig {
            capacity: 1,
            ttl: Duration::from_secs(60),
        });
        let cp = checkpoint();
        let id = table.allocate();
        table.store(id, cp.clone());
        // Re-storing the same session at capacity must not evict it.
        table.store(id, cp);
        assert_eq!(table.len(), 1);
        assert_eq!(table.evicted(), 0);
        assert!(table.take(id).is_some());
    }

    #[test]
    fn deterministic_table_replays_ids_and_expires_virtually() {
        use pps_obs::VirtualClock;
        use std::sync::Arc;

        let config = ResumptionConfig {
            capacity: 8,
            ttl: Duration::from_secs(120),
        };
        let a = SessionTable::deterministic(config, 7, Arc::new(VirtualClock::new()));
        let b = SessionTable::deterministic(config, 7, Arc::new(VirtualClock::new()));
        let ids_a: Vec<u64> = (0..16).map(|_| a.allocate()).collect();
        let ids_b: Vec<u64> = (0..16).map(|_| b.allocate()).collect();
        assert_eq!(ids_a, ids_b, "same seed, same ID sequence");

        // TTL expiry driven by the virtual clock — no wall waiting.
        let clock = Arc::new(VirtualClock::new());
        let table = SessionTable::deterministic(config, 9, clock.clone());
        let id = table.allocate();
        table.store(id, checkpoint());
        clock.advance(Duration::from_secs(119));
        assert_eq!(table.len(), 1, "one second short of the TTL");
        clock.advance(Duration::from_secs(2));
        assert!(table.take(id).is_none(), "expired in virtual time");
        assert_eq!(table.evicted(), 1);
    }

    #[test]
    fn clean_removal_is_not_an_eviction() {
        let table = SessionTable::default();
        let id = table.allocate();
        table.store(id, checkpoint());
        table.remove(id);
        assert!(table.is_empty());
        assert_eq!(table.evicted(), 0);
    }
}
