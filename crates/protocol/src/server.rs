//! The database server's side of the selected-sum protocol.
//!
//! The server is message-driven: [`ServerSession::on_frame`] consumes one
//! frame and optionally produces a reply frame. This single state machine
//! serves both orchestration styles — the sequential virtual-clock driver
//! and real concurrent threads over a blocking wire — and records
//! per-batch compute times for the pipeline analysis of §3.2.

use std::sync::Arc;
use std::time::{Duration, Instant};

use pps_bignum::MultiExpPlan;
use pps_crypto::{Ciphertext, PaillierPublicKey};
use pps_transport::{Frame, MAX_PAYLOAD};

use crate::data::Database;
use crate::error::ProtocolError;
use crate::messages::{Dump, Hello, IndexBatch, MsgType, PlainIndices, PlainSum, Product};

/// Per-session server statistics.
#[derive(Clone, Debug, Default)]
pub struct ServerStats {
    /// Total time spent folding batches into the product (excludes wire
    /// waits).
    pub compute: Duration,
    /// Per-batch compute times, aligned with arrival order.
    pub per_batch_compute: Vec<Duration>,
    /// Number of index ciphertexts folded so far.
    pub folded: usize,
}

/// State of one private-sum session.
enum State {
    /// Waiting for the client's `Hello`.
    AwaitHello,
    /// Streaming batches.
    Receiving {
        key: PaillierPublicKey,
        expected: u64,
        /// Announced batch size: an upper bound on any one batch.
        batch_size: u32,
        /// Running homomorphic product `Π E(I_i)^{x_i}`.
        accumulator: Ciphertext,
        /// Next database row to consume.
        cursor: usize,
        /// Next-expected batch sequence number (strictly monotone).
        next_seq: u64,
    },
    /// Product sent; session complete.
    Done,
}

/// A point-in-time snapshot of a mid-stream session: the partial
/// homomorphic accumulator plus the next-expected batch sequence number.
///
/// The resumable TCP runtime stores one of these in its session table
/// after every acknowledged [`IndexBatch`]; a client that lost its
/// connection resumes via [`ServerSession::resume`] and continues from
/// the last acked chunk instead of re-sending the whole index vector.
#[derive(Clone, Debug)]
pub struct FoldCheckpoint {
    /// The client's Paillier public key.
    pub key: PaillierPublicKey,
    /// Announced total number of index weights.
    pub expected: u64,
    /// Announced batch size (upper bound on any one batch).
    pub batch_size: u32,
    /// Running homomorphic product `Π E(I_i)^{x_i}` so far.
    pub accumulator: Ciphertext,
    /// Next database row to consume.
    pub cursor: usize,
    /// Next-expected batch sequence number.
    pub next_seq: u64,
    /// Statistics accumulated so far, carried across the resume so the
    /// final report covers the whole logical session.
    pub stats: ServerStats,
    /// §3.5 blinding installed on the session, if any. Carried in the
    /// checkpoint so a *resumed* shard leg still blinds its product —
    /// dropping it here would hand the reconnecting client an unblinded
    /// partial sum.
    pub blinding: Option<pps_bignum::Uint>,
}

/// How the server folds a batch of `E(I_i)` into its running product.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum FoldStrategy {
    /// Element by element: `acc ← acc · E(I_i)^{x_i}` — the paper's loop.
    #[default]
    Incremental,
    /// Whole-batch Straus multi-exponentiation with a shared squaring
    /// chain — 2–3× faster for the protocol's 32-bit exponents.
    MultiExp,
    /// [`FoldStrategy::MultiExp`] split across all available cores: the
    /// batch is chunked, each chunk folded on its own thread, and the
    /// per-chunk partials combined with one homomorphic add each
    /// (`Π(partials) = E(Σ partial sums)`). Decrypts identically to the
    /// sequential strategies.
    ParallelMultiExp,
    /// Fold against a per-database [`MultiExpPlan`]: the window recoding
    /// and Pippenger bucket assignment of every fixed exponent `x_i` is
    /// precomputed **once per database** and shared (`Arc`) across all
    /// sessions, shard workers, and resumed checkpoints, so each batch
    /// pays ≈ one modular multiplication per base per window plus a
    /// shared bucket-reduction chain. Decrypts identically to the other
    /// strategies.
    Precomputed,
}

impl FoldStrategy {
    /// Worker threads the strategy will use for one batch.
    pub fn threads(self) -> usize {
        match self {
            FoldStrategy::Incremental | FoldStrategy::MultiExp | FoldStrategy::Precomputed => 1,
            FoldStrategy::ParallelMultiExp => std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
        }
    }
}

/// The server side of one protocol session over a fixed database.
pub struct ServerSession<'db> {
    db: &'db Database,
    state: State,
    stats: ServerStats,
    /// Batch folding strategy.
    fold: FoldStrategy,
    /// The shared per-database plan; `Some` iff `fold` is
    /// [`FoldStrategy::Precomputed`] (enforced by every constructor).
    plan: Option<Arc<MultiExpPlan>>,
    /// Optional blinding added to the product before replying (the
    /// multi-client protocol, §3.5): `E(R_i)` is multiplied in.
    blinding: Option<pps_bignum::Uint>,
}

impl<'db> ServerSession<'db> {
    /// Creates a session over `db`.
    pub fn new(db: &'db Database) -> Self {
        ServerSession {
            db,
            state: State::AwaitHello,
            stats: ServerStats::default(),
            fold: FoldStrategy::default(),
            plan: None,
            blinding: None,
        }
    }

    /// Creates a session using the given fold strategy.
    ///
    /// A [`FoldStrategy::Precomputed`] session built this way recodes
    /// its own private plan from `db` — convenient for one-shot,
    /// in-process use. Concurrent runtimes should build the plan once
    /// and share it via [`ServerSession::with_fold_plan`].
    pub fn with_fold(db: &'db Database, fold: FoldStrategy) -> Self {
        let mut s = Self::new(db);
        s.fold = fold;
        if fold == FoldStrategy::Precomputed {
            s.plan = Some(Arc::new(MultiExpPlan::build(db.values())));
        }
        s
    }

    /// Creates a [`FoldStrategy::Precomputed`] session that folds
    /// against an already-built shared plan — the concurrent runtime's
    /// path, where one plan serves every session over the database.
    ///
    /// # Errors
    /// [`ProtocolError::Config`] when the plan's row count does not
    /// match `db` (a plan built for a different database would silently
    /// weight rows wrong).
    pub fn with_fold_plan(
        db: &'db Database,
        plan: Arc<MultiExpPlan>,
    ) -> Result<Self, ProtocolError> {
        Self::check_plan(db, &plan)?;
        let mut s = Self::new(db);
        s.fold = FoldStrategy::Precomputed;
        s.plan = Some(plan);
        Ok(s)
    }

    /// Rejects plans built for a different database.
    fn check_plan(db: &Database, plan: &MultiExpPlan) -> Result<(), ProtocolError> {
        if plan.rows() != db.len() {
            return Err(ProtocolError::Config(format!(
                "fold plan covers {} rows for a database of {}",
                plan.rows(),
                db.len()
            )));
        }
        Ok(())
    }

    /// Creates a session that blinds its product by adding the plaintext
    /// `r` homomorphically (multi-client phase 1).
    pub fn with_blinding(db: &'db Database, r: pps_bignum::Uint) -> Self {
        let mut s = Self::new(db);
        s.blinding = Some(r);
        s
    }

    /// Statistics so far.
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    /// The shared per-database plan this session folds with, when the
    /// strategy is [`FoldStrategy::Precomputed`].
    pub fn fold_plan(&self) -> Option<&Arc<MultiExpPlan>> {
        self.plan.as_ref()
    }

    /// True once the product has been produced.
    pub fn is_done(&self) -> bool {
        matches!(self.state, State::Done)
    }

    /// True while the session is pristine: no `Hello` consumed yet.
    pub fn is_awaiting_hello(&self) -> bool {
        matches!(self.state, State::AwaitHello)
    }

    /// The next-expected batch sequence number, when mid-stream.
    pub fn next_seq(&self) -> Option<u64> {
        match &self.state {
            State::Receiving { next_seq, .. } => Some(*next_seq),
            _ => None,
        }
    }

    /// Snapshots the fold state for the session table. `Some` only while
    /// mid-stream: a pristine or completed session has nothing worth
    /// resuming.
    pub fn checkpoint(&self) -> Option<FoldCheckpoint> {
        match &self.state {
            State::Receiving {
                key,
                expected,
                batch_size,
                accumulator,
                cursor,
                next_seq,
            } => Some(FoldCheckpoint {
                key: key.clone(),
                expected: *expected,
                batch_size: *batch_size,
                accumulator: accumulator.clone(),
                cursor: *cursor,
                next_seq: *next_seq,
                stats: self.stats.clone(),
                blinding: self.blinding.clone(),
            }),
            _ => None,
        }
    }

    /// Rebuilds a mid-stream session from a checkpoint taken against the
    /// same database. The checkpoint is validated — a snapshot from a
    /// different database (or a forged one) is rejected rather than
    /// folded forward.
    ///
    /// # Errors
    /// [`ProtocolError::Config`] when the checkpoint's announced total
    /// does not match `db`; [`ProtocolError::InvalidInput`] when its
    /// cursor or batch size is out of bounds.
    pub fn resume(
        db: &'db Database,
        fold: FoldStrategy,
        cp: FoldCheckpoint,
    ) -> Result<Self, ProtocolError> {
        let plan =
            (fold == FoldStrategy::Precomputed).then(|| Arc::new(MultiExpPlan::build(db.values())));
        Self::resume_inner(db, fold, plan, cp)
    }

    /// As [`ServerSession::resume`] under [`FoldStrategy::Precomputed`],
    /// reusing an already-built shared plan instead of recoding one —
    /// so a resumed checkpoint folds with the **same** cached plan as
    /// every live session over the database.
    ///
    /// # Errors
    /// As [`ServerSession::resume`], plus [`ProtocolError::Config`]
    /// when the plan does not cover `db`.
    ///
    /// The checkpoint itself is strategy-agnostic (it snapshots only
    /// the homomorphic accumulator and stream position), so resuming a
    /// checkpoint taken under any other strategy here is sound, and
    /// vice versa.
    pub fn resume_with_plan(
        db: &'db Database,
        plan: Arc<MultiExpPlan>,
        cp: FoldCheckpoint,
    ) -> Result<Self, ProtocolError> {
        Self::check_plan(db, &plan)?;
        Self::resume_inner(db, FoldStrategy::Precomputed, Some(plan), cp)
    }

    fn resume_inner(
        db: &'db Database,
        fold: FoldStrategy,
        plan: Option<Arc<MultiExpPlan>>,
        cp: FoldCheckpoint,
    ) -> Result<Self, ProtocolError> {
        if cp.expected as usize != db.len() {
            return Err(ProtocolError::Config(format!(
                "checkpoint expects {} indices for a database of {}",
                cp.expected,
                db.len()
            )));
        }
        if cp.batch_size == 0 {
            return Err(ProtocolError::InvalidInput("checkpoint batch size zero"));
        }
        if cp.cursor >= cp.expected as usize {
            return Err(ProtocolError::InvalidInput(
                "checkpoint cursor out of bounds",
            ));
        }
        Ok(ServerSession {
            db,
            state: State::Receiving {
                key: cp.key,
                expected: cp.expected,
                batch_size: cp.batch_size,
                accumulator: cp.accumulator,
                cursor: cp.cursor,
                next_seq: cp.next_seq,
            },
            stats: cp.stats,
            fold,
            plan,
            blinding: cp.blinding,
        })
    }

    /// Installs a §3.5 blinding value on a pristine session — the
    /// networked shard handshake arrives before `Hello`, after which the
    /// blinding travels with every checkpoint.
    ///
    /// # Errors
    /// [`ProtocolError::UnexpectedMessage`] once the session has started
    /// or when a blinding is already installed: re-keying the blinding
    /// mid-stream would break the telescoping cancellation.
    pub fn set_blinding(&mut self, r: pps_bignum::Uint) -> Result<(), ProtocolError> {
        if !matches!(self.state, State::AwaitHello) {
            return Err(ProtocolError::UnexpectedMessage(
                "shard handshake mid-session",
            ));
        }
        if self.blinding.is_some() {
            return Err(ProtocolError::UnexpectedMessage(
                "duplicate shard handshake",
            ));
        }
        self.blinding = Some(r);
        Ok(())
    }

    /// Whether a §3.5 blinding value is installed.
    pub fn has_blinding(&self) -> bool {
        self.blinding.is_some()
    }

    /// Consumes one frame; returns a reply frame when the protocol calls
    /// for one.
    ///
    /// # Errors
    /// Protocol violations, malformed messages, and invalid ciphertexts
    /// are all rejected.
    pub fn on_frame(&mut self, frame: &Frame) -> Result<Option<Frame>, ProtocolError> {
        match frame.msg_type {
            t if t == MsgType::Hello as u8 => self.on_hello(frame),
            t if t == MsgType::IndexBatch as u8 => self.on_batch(frame),
            t if t == MsgType::PlainIndices as u8 => self.on_plain(frame),
            t if t == MsgType::SizeRequest as u8 => {
                crate::messages::SizeRequest::decode(frame)?;
                if !matches!(self.state, State::AwaitHello) {
                    return Err(ProtocolError::UnexpectedMessage("size request mid-session"));
                }
                Ok(Some(
                    crate::messages::SizeReply {
                        n: self.db.len() as u64,
                    }
                    .encode()?,
                ))
            }
            _ => Err(ProtocolError::UnexpectedMessage(
                "server cannot handle this message",
            )),
        }
    }

    fn on_hello(&mut self, frame: &Frame) -> Result<Option<Frame>, ProtocolError> {
        if !matches!(self.state, State::AwaitHello) {
            return Err(ProtocolError::UnexpectedMessage("duplicate hello"));
        }
        let hello = Hello::decode(frame)?;
        if hello.total as usize != self.db.len() {
            return Err(ProtocolError::Config(format!(
                "client announced {} indices for a database of {}",
                hello.total,
                self.db.len()
            )));
        }
        if hello.batch_size == 0 {
            return Err(ProtocolError::Config("batch size must be positive".into()));
        }
        let key = PaillierPublicKey::from_modulus(hello.modulus)?;
        // An announced batch size whose encoded batch cannot fit in one
        // frame is unservable: every full batch would be rejected by the
        // frame cap, so refuse the session up front.
        let encoded_batch = (hello.batch_size as usize)
            .checked_mul(key.ciphertext_bytes())
            .and_then(|b| b.checked_add(12));
        if encoded_batch.is_none_or(|b| b > MAX_PAYLOAD) {
            return Err(ProtocolError::InvalidInput(
                "batch size exceeds frame capacity",
            ));
        }
        if hello.total == 0 {
            // Empty database: there is nothing to receive, and no batch
            // will ever arrive to trigger the finalize check — reply with
            // the identity product (the selected sum over zero rows)
            // immediately.
            let product = key.identity();
            return Ok(Some(self.finalize(&key, product)?));
        }
        self.state = State::Receiving {
            accumulator: key.identity(),
            key,
            expected: hello.total,
            batch_size: hello.batch_size,
            cursor: 0,
            next_seq: 0,
        };
        Ok(None)
    }

    /// Applies the optional blinding, encodes the product reply, and
    /// moves the session to `Done`.
    fn finalize(
        &mut self,
        key: &PaillierPublicKey,
        mut product: Ciphertext,
    ) -> Result<Frame, ProtocolError> {
        if let Some(r) = &self.blinding {
            let start = Instant::now();
            product = key.add_plain(&product, r)?;
            self.stats.compute += start.elapsed();
        }
        let reply = Product {
            ciphertext: product,
        }
        .encode(key)?;
        self.state = State::Done;
        Ok(reply)
    }

    fn on_batch(&mut self, frame: &Frame) -> Result<Option<Frame>, ProtocolError> {
        let State::Receiving {
            key,
            expected,
            batch_size,
            accumulator,
            cursor,
            next_seq,
        } = &mut self.state
        else {
            return Err(ProtocolError::UnexpectedMessage(
                "batch before hello or after done",
            ));
        };
        // Decode validates every ciphertext (range + invertibility) and
        // rejects zero-length batches before anything touches the fold.
        let batch = IndexBatch::decode(frame, key)?;
        if batch.seq != *next_seq {
            // Strict monotonicity: a duplicate would double-fold a chunk
            // into the accumulator, a gap would misalign weights with
            // database rows. Both are unrecoverable for this stream.
            return Err(ProtocolError::InvalidInput(
                "batch sequence number out of order",
            ));
        }
        if batch.ciphertexts.len() > *batch_size as usize {
            return Err(ProtocolError::InvalidInput(
                "batch larger than announced batch size",
            ));
        }
        if *cursor + batch.ciphertexts.len() > *expected as usize {
            return Err(ProtocolError::InvalidInput("more indices than announced"));
        }
        *next_seq += 1;

        let start = Instant::now();
        match self.fold {
            FoldStrategy::Incremental => {
                // The paper's server inner loop: for each received E(I_i),
                // raise to the database value x_i and fold into the
                // running product.
                for ct in &batch.ciphertexts {
                    let x = pps_bignum::Uint::from_u64(self.db.values()[*cursor]);
                    let term = key.mul_plain(ct, &x)?;
                    *accumulator = key.add(accumulator, &term)?;
                    *cursor += 1;
                }
            }
            FoldStrategy::MultiExp | FoldStrategy::ParallelMultiExp => {
                // Whole-batch interleaved multi-exponentiation, chunked
                // across cores for the parallel strategy.
                let weights: Vec<pps_bignum::Uint> = self.db.values()
                    [*cursor..*cursor + batch.ciphertexts.len()]
                    .iter()
                    .map(|&x| pps_bignum::Uint::from_u64(x))
                    .collect();
                let threads = self.fold.threads();
                let folded = if threads > 1 {
                    key.fold_product_parallel(&batch.ciphertexts, &weights, threads)?
                } else {
                    key.fold_product(&batch.ciphertexts, &weights)?
                };
                *accumulator = key.add(accumulator, &folded)?;
                *cursor += batch.ciphertexts.len();
            }
            FoldStrategy::Precomputed => {
                // Bucket fold against the shared per-database plan: the
                // exponent recoding was paid once at plan build, so the
                // batch costs ≈ one multiplication per base per window
                // plus the shared bucket reduction.
                let plan = self
                    .plan
                    .as_ref()
                    .expect("Precomputed sessions always hold a plan");
                let folded = key.fold_product_planned(&batch.ciphertexts, plan, *cursor)?;
                *accumulator = key.add(accumulator, &folded)?;
                *cursor += batch.ciphertexts.len();
            }
        }
        let elapsed = start.elapsed();
        self.stats.compute += elapsed;
        self.stats.per_batch_compute.push(elapsed);
        self.stats.folded += batch.ciphertexts.len();

        if *cursor == *expected as usize {
            // Apply multi-client blinding, if configured, then reply.
            let key = key.clone();
            let product = accumulator.clone();
            return Ok(Some(self.finalize(&key, product)?));
        }
        Ok(None)
    }

    /// The trivial non-private baseline: plaintext indices in, plaintext
    /// sum out. (Violates client privacy; implemented as the comparison
    /// point of §2.)
    fn on_plain(&mut self, frame: &Frame) -> Result<Option<Frame>, ProtocolError> {
        let req = PlainIndices::decode(frame)?;
        let start = Instant::now();
        let mut sum: u128 = 0;
        for &i in &req.indices {
            let v = self
                .db
                .values()
                .get(i as usize)
                .ok_or(ProtocolError::UnexpectedMessage("plain index out of range"))?;
            sum += *v as u128;
        }
        self.stats.compute += start.elapsed();
        self.state = State::Done;
        Ok(Some(PlainSum { sum }.encode()?))
    }

    /// The other trivial baseline: dump the whole database (violates
    /// database privacy).
    pub fn dump(&mut self) -> Result<Frame, ProtocolError> {
        self.state = State::Done;
        Ok(Dump {
            values: self.db.values().to_vec(),
        }
        .encode()?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::Selection;
    use pps_crypto::PaillierKeypair;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (PaillierKeypair, Database, StdRng) {
        let mut rng = StdRng::seed_from_u64(55);
        let kp = PaillierKeypair::generate(128, &mut rng).unwrap();
        let db = Database::new(vec![10, 20, 30, 40, 50]).unwrap();
        (kp, db, rng)
    }

    fn hello(kp: &PaillierKeypair, total: u64, batch: u32) -> Frame {
        Hello {
            modulus: kp.public.n().clone(),
            total,
            batch_size: batch,
            trace: None,
        }
        .encode()
        .unwrap()
    }

    fn batch_frame(kp: &PaillierKeypair, seq: u64, bits: &[u64], rng: &mut StdRng) -> Frame {
        let cts = bits
            .iter()
            .map(|&b| kp.public.encrypt_u64(b, rng).unwrap())
            .collect();
        IndexBatch {
            seq,
            ciphertexts: cts,
        }
        .encode(&kp.public)
        .unwrap()
    }

    #[test]
    fn full_session_computes_selected_sum() {
        let (kp, db, mut rng) = setup();
        let mut s = ServerSession::new(&db);
        assert!(s.on_frame(&hello(&kp, 5, 5)).unwrap().is_none());
        let reply = s
            .on_frame(&batch_frame(&kp, 0, &[1, 0, 1, 0, 1], &mut rng))
            .unwrap()
            .expect("final batch yields product");
        let product = Product::decode(&reply, &kp.public).unwrap();
        let sum = kp.secret.decrypt(&product.ciphertext).unwrap();
        assert_eq!(sum.to_u64(), Some(90));
        assert!(s.is_done());
        assert_eq!(s.stats().folded, 5);
    }

    #[test]
    fn batched_session() {
        let (kp, db, mut rng) = setup();
        let mut s = ServerSession::new(&db);
        s.on_frame(&hello(&kp, 5, 2)).unwrap();
        assert!(s
            .on_frame(&batch_frame(&kp, 0, &[1, 1], &mut rng))
            .unwrap()
            .is_none());
        assert!(s
            .on_frame(&batch_frame(&kp, 1, &[0, 0], &mut rng))
            .unwrap()
            .is_none());
        let reply = s
            .on_frame(&batch_frame(&kp, 2, &[1], &mut rng))
            .unwrap()
            .unwrap();
        let product = Product::decode(&reply, &kp.public).unwrap();
        assert_eq!(
            kp.secret.decrypt(&product.ciphertext).unwrap().to_u64(),
            Some(80)
        );
        assert_eq!(s.stats().per_batch_compute.len(), 3);
    }

    #[test]
    fn weighted_selection() {
        let (kp, db, mut rng) = setup();
        let sel = Selection::weighted(vec![1, 2, 3, 0, 0]);
        let mut s = ServerSession::new(&db);
        s.on_frame(&hello(&kp, 5, 5)).unwrap();
        let reply = s
            .on_frame(&batch_frame(&kp, 0, sel.weights(), &mut rng))
            .unwrap()
            .unwrap();
        let product = Product::decode(&reply, &kp.public).unwrap();
        // 1·10 + 2·20 + 3·30 = 140.
        assert_eq!(
            kp.secret.decrypt(&product.ciphertext).unwrap().to_u64(),
            Some(140)
        );
    }

    #[test]
    fn rejects_protocol_violations() {
        let (kp, db, mut rng) = setup();
        let mut s = ServerSession::new(&db);
        // Batch before hello.
        assert!(s.on_frame(&batch_frame(&kp, 2, &[1], &mut rng)).is_err());
        s.on_frame(&hello(&kp, 5, 5)).unwrap();
        // Duplicate hello.
        assert!(s.on_frame(&hello(&kp, 5, 5)).is_err());
        // Too many indices.
        assert!(s.on_frame(&batch_frame(&kp, 0, &[1; 6], &mut rng)).is_err());
    }

    #[test]
    fn rejects_count_mismatch_and_zero_batch() {
        let (kp, db, _) = setup();
        let mut s = ServerSession::new(&db);
        assert!(s.on_frame(&hello(&kp, 99, 5)).is_err());
        let mut s2 = ServerSession::new(&db);
        assert!(s2.on_frame(&hello(&kp, 5, 0)).is_err());
    }

    #[test]
    fn plain_baseline() {
        let (_, db, _) = setup();
        let mut s = ServerSession::new(&db);
        let req = PlainIndices {
            indices: vec![0, 2, 4],
        }
        .encode()
        .unwrap();
        let reply = s.on_frame(&req).unwrap().unwrap();
        assert_eq!(PlainSum::decode(&reply).unwrap().sum, 90);
        // Out-of-range index rejected.
        let mut s2 = ServerSession::new(&db);
        let bad = PlainIndices { indices: vec![99] }.encode().unwrap();
        assert!(s2.on_frame(&bad).is_err());
    }

    #[test]
    fn size_discovery() {
        use crate::messages::{SizeReply, SizeRequest};
        let (kp, db, _) = setup();
        let mut s = ServerSession::new(&db);
        let reply = s.on_frame(&SizeRequest.encode().unwrap()).unwrap().unwrap();
        assert_eq!(SizeReply::decode(&reply).unwrap().n, 5);
        // Still answerable before hello, and the session proceeds normally.
        s.on_frame(&hello(&kp, 5, 5)).unwrap();
        // But not mid-session.
        assert!(s.on_frame(&SizeRequest.encode().unwrap()).is_err());
    }

    #[test]
    fn dump_baseline() {
        let (_, db, _) = setup();
        let mut s = ServerSession::new(&db);
        let f = s.dump().unwrap();
        assert_eq!(Dump::decode(&f).unwrap().values, db.values());
    }

    #[test]
    fn multiexp_fold_matches_incremental() {
        let (kp, db, mut rng) = setup();
        let bits = [1u64, 0, 1, 1, 0];

        let mut inc = ServerSession::new(&db);
        inc.on_frame(&hello(&kp, 5, 5)).unwrap();
        let r1 = inc
            .on_frame(&batch_frame(&kp, 0, &bits, &mut rng))
            .unwrap()
            .unwrap();
        let s1 = kp
            .secret
            .decrypt(&Product::decode(&r1, &kp.public).unwrap().ciphertext)
            .unwrap();

        let mut mx = ServerSession::with_fold(&db, FoldStrategy::MultiExp);
        mx.on_frame(&hello(&kp, 5, 5)).unwrap();
        let r2 = mx
            .on_frame(&batch_frame(&kp, 0, &bits, &mut rng))
            .unwrap()
            .unwrap();
        let s2 = kp
            .secret
            .decrypt(&Product::decode(&r2, &kp.public).unwrap().ciphertext)
            .unwrap();

        assert_eq!(s1, s2);
        assert_eq!(s1.to_u64(), Some(80));
    }

    #[test]
    fn multiexp_fold_batched_session() {
        let (kp, db, mut rng) = setup();
        let mut s = ServerSession::with_fold(&db, FoldStrategy::MultiExp);
        s.on_frame(&hello(&kp, 5, 2)).unwrap();
        s.on_frame(&batch_frame(&kp, 0, &[1, 0], &mut rng)).unwrap();
        s.on_frame(&batch_frame(&kp, 1, &[0, 1], &mut rng)).unwrap();
        let reply = s
            .on_frame(&batch_frame(&kp, 2, &[1], &mut rng))
            .unwrap()
            .unwrap();
        let product = Product::decode(&reply, &kp.public).unwrap();
        // rows 0, 3, 4 → 10 + 40 + 50.
        assert_eq!(
            kp.secret.decrypt(&product.ciphertext).unwrap().to_u64(),
            Some(100)
        );
    }

    #[test]
    fn rejects_empty_batch() {
        let (kp, db, mut rng) = setup();
        let mut s = ServerSession::new(&db);
        s.on_frame(&hello(&kp, 5, 5)).unwrap();
        // A zero-length batch must be rejected, not silently accepted —
        // it would never advance the cursor.
        let empty = batch_frame(&kp, 0, &[], &mut rng);
        assert!(matches!(
            s.on_frame(&empty),
            Err(ProtocolError::InvalidInput("empty index batch"))
        ));
        // The session stays usable: a real batch still completes it.
        let reply = s
            .on_frame(&batch_frame(&kp, 0, &[1, 0, 1, 0, 1], &mut rng))
            .unwrap()
            .unwrap();
        let product = Product::decode(&reply, &kp.public).unwrap();
        assert_eq!(
            kp.secret.decrypt(&product.ciphertext).unwrap().to_u64(),
            Some(90)
        );
    }

    #[test]
    fn hello_for_empty_database_finalizes_immediately() {
        let (kp, _, _) = setup();
        let db = Database::empty();
        let mut s = ServerSession::new(&db);
        // total == 0 matches the empty database; the server must reply
        // with the identity product at once instead of waiting for
        // batches that will never come.
        let reply = s
            .on_frame(&hello(&kp, 0, 5))
            .unwrap()
            .expect("empty-database hello must produce an immediate product");
        assert!(s.is_done());
        let product = Product::decode(&reply, &kp.public).unwrap();
        assert_eq!(
            kp.secret.decrypt(&product.ciphertext).unwrap().to_u64(),
            Some(0)
        );
        // Blinding still applies to the empty sum.
        let mut blinded = ServerSession::with_blinding(&db, pps_bignum::Uint::from_u64(77));
        let reply = blinded.on_frame(&hello(&kp, 0, 5)).unwrap().unwrap();
        let product = Product::decode(&reply, &kp.public).unwrap();
        assert_eq!(
            kp.secret.decrypt(&product.ciphertext).unwrap().to_u64(),
            Some(77)
        );
    }

    #[test]
    fn parallel_fold_matches_incremental() {
        let (kp, _, mut rng) = setup();
        let values: Vec<u64> = (1..=64).map(|i| i * 3).collect();
        let bits: Vec<u64> = (0..64).map(|i| u64::from(i % 3 == 0)).collect();
        let db = Database::new(values).unwrap();
        let expected = db.oracle_sum(&Selection::weighted(bits.clone())).unwrap();

        let mut inc = ServerSession::new(&db);
        inc.on_frame(&hello(&kp, 64, 64)).unwrap();
        let r1 = inc
            .on_frame(&batch_frame(&kp, 0, &bits, &mut rng))
            .unwrap()
            .unwrap();
        let s1 = kp
            .secret
            .decrypt(&Product::decode(&r1, &kp.public).unwrap().ciphertext)
            .unwrap();

        let mut par = ServerSession::with_fold(&db, FoldStrategy::ParallelMultiExp);
        par.on_frame(&hello(&kp, 64, 64)).unwrap();
        let r2 = par
            .on_frame(&batch_frame(&kp, 0, &bits, &mut rng))
            .unwrap()
            .unwrap();
        let s2 = kp
            .secret
            .decrypt(&Product::decode(&r2, &kp.public).unwrap().ciphertext)
            .unwrap();

        assert_eq!(s1, s2);
        assert_eq!(s2, pps_bignum::Uint::from_u128(expected));
        assert_eq!(par.stats().folded, 64);
    }

    #[test]
    fn blinded_session() {
        let (kp, db, mut rng) = setup();
        let r = pps_bignum::Uint::from_u64(1_000_000);
        let mut s = ServerSession::with_blinding(&db, r);
        s.on_frame(&hello(&kp, 5, 5)).unwrap();
        let reply = s
            .on_frame(&batch_frame(&kp, 0, &[1, 0, 1, 0, 1], &mut rng))
            .unwrap()
            .unwrap();
        let product = Product::decode(&reply, &kp.public).unwrap();
        // Decrypted value is the blinded partial sum.
        assert_eq!(
            kp.secret.decrypt(&product.ciphertext).unwrap().to_u64(),
            Some(1_000_090)
        );
    }

    #[test]
    fn rejects_non_monotone_sequence_numbers() {
        let (kp, db, mut rng) = setup();
        // A replayed (duplicate) sequence number would double-fold.
        let mut s = ServerSession::new(&db);
        s.on_frame(&hello(&kp, 5, 2)).unwrap();
        s.on_frame(&batch_frame(&kp, 0, &[1, 0], &mut rng)).unwrap();
        assert!(matches!(
            s.on_frame(&batch_frame(&kp, 0, &[0, 1], &mut rng)),
            Err(ProtocolError::InvalidInput(
                "batch sequence number out of order"
            ))
        ));
        // A gap would misalign weights with database rows.
        let mut s = ServerSession::new(&db);
        s.on_frame(&hello(&kp, 5, 2)).unwrap();
        assert!(matches!(
            s.on_frame(&batch_frame(&kp, 1, &[1, 0], &mut rng)),
            Err(ProtocolError::InvalidInput(
                "batch sequence number out of order"
            ))
        ));
    }

    #[test]
    fn rejects_batch_larger_than_announced_batch_size() {
        let (kp, db, mut rng) = setup();
        let mut s = ServerSession::new(&db);
        s.on_frame(&hello(&kp, 5, 2)).unwrap();
        assert!(matches!(
            s.on_frame(&batch_frame(&kp, 0, &[1, 0, 1], &mut rng)),
            Err(ProtocolError::InvalidInput(
                "batch larger than announced batch size"
            ))
        ));
    }

    #[test]
    fn rejects_batch_size_beyond_frame_capacity() {
        let (kp, db, _) = setup();
        let mut s = ServerSession::new(&db);
        // At 128-bit keys a ciphertext is 32 bytes, so u32::MAX per batch
        // could never be framed under MAX_PAYLOAD (64 MiB).
        assert!(matches!(
            s.on_frame(&hello(&kp, 5, u32::MAX)),
            Err(ProtocolError::InvalidInput(
                "batch size exceeds frame capacity"
            ))
        ));
    }

    #[test]
    fn checkpoint_resume_round_trip_preserves_the_fold() {
        let (kp, db, mut rng) = setup();
        let mut s = ServerSession::new(&db);
        s.on_frame(&hello(&kp, 5, 2)).unwrap();
        assert!(s.checkpoint().is_some(), "mid-stream sessions checkpoint");
        s.on_frame(&batch_frame(&kp, 0, &[1, 1], &mut rng)).unwrap();
        let cp = s.checkpoint().expect("checkpoint after first batch");
        assert_eq!(cp.cursor, 2);
        assert_eq!(cp.next_seq, 1);
        drop(s); // the original connection died here

        let mut resumed = ServerSession::resume(&db, FoldStrategy::MultiExp, cp).unwrap();
        assert_eq!(resumed.next_seq(), Some(1));
        assert!(resumed
            .on_frame(&batch_frame(&kp, 1, &[0, 0], &mut rng))
            .unwrap()
            .is_none());
        let reply = resumed
            .on_frame(&batch_frame(&kp, 2, &[1], &mut rng))
            .unwrap()
            .unwrap();
        let product = Product::decode(&reply, &kp.public).unwrap();
        // Rows 0, 1, 4 → 10 + 20 + 50: the pre-disconnect fold survived.
        assert_eq!(
            kp.secret.decrypt(&product.ciphertext).unwrap().to_u64(),
            Some(80)
        );
        // Stats carried across the resume cover the whole session.
        assert_eq!(resumed.stats().folded, 5);
        assert_eq!(resumed.stats().per_batch_compute.len(), 3);
    }

    #[test]
    fn checkpoint_carries_blinding_across_resume() {
        // A resumed shard leg must stay blinded: the checkpoint carries
        // R and the rebuilt session applies it at finalize. (Resume used
        // to hardcode `blinding: None`, silently unblinding the leg.)
        let (kp, db, mut rng) = setup();
        let r = pps_bignum::Uint::from_u64(7_000);
        let mut s = ServerSession::with_blinding(&db, r);
        s.on_frame(&hello(&kp, 5, 2)).unwrap();
        s.on_frame(&batch_frame(&kp, 0, &[1, 1], &mut rng)).unwrap();
        let cp = s.checkpoint().unwrap();
        assert!(cp.blinding.is_some(), "checkpoint snapshots the blinding");
        drop(s);

        let mut resumed = ServerSession::resume(&db, FoldStrategy::Incremental, cp).unwrap();
        assert!(resumed.has_blinding());
        resumed
            .on_frame(&batch_frame(&kp, 1, &[0, 0], &mut rng))
            .unwrap();
        let reply = resumed
            .on_frame(&batch_frame(&kp, 2, &[1], &mut rng))
            .unwrap()
            .unwrap();
        let product = Product::decode(&reply, &kp.public).unwrap();
        // Rows 0, 1, 4 → 10 + 20 + 50, plus the blinding 7000.
        assert_eq!(
            kp.secret.decrypt(&product.ciphertext).unwrap().to_u64(),
            Some(7_080)
        );
    }

    #[test]
    fn set_blinding_only_on_pristine_sessions() {
        let (kp, db, mut rng) = setup();
        let mut s = ServerSession::new(&db);
        s.set_blinding(pps_bignum::Uint::from_u64(1)).unwrap();
        assert!(s.has_blinding());
        assert!(matches!(
            s.set_blinding(pps_bignum::Uint::from_u64(2)),
            Err(ProtocolError::UnexpectedMessage(
                "duplicate shard handshake"
            ))
        ));
        s.on_frame(&hello(&kp, 5, 2)).unwrap();
        s.on_frame(&batch_frame(&kp, 0, &[1, 1], &mut rng)).unwrap();
        let mut started = ServerSession::new(&db);
        started.on_frame(&hello(&kp, 5, 2)).unwrap();
        assert!(matches!(
            started.set_blinding(pps_bignum::Uint::from_u64(3)),
            Err(ProtocolError::UnexpectedMessage(
                "shard handshake mid-session"
            ))
        ));
    }

    #[test]
    fn pristine_and_done_sessions_do_not_checkpoint() {
        let (kp, db, mut rng) = setup();
        let mut s = ServerSession::new(&db);
        assert!(s.checkpoint().is_none(), "nothing to resume before hello");
        s.on_frame(&hello(&kp, 5, 5)).unwrap();
        s.on_frame(&batch_frame(&kp, 0, &[1, 0, 1, 0, 1], &mut rng))
            .unwrap()
            .unwrap();
        assert!(s.is_done());
        assert!(s.checkpoint().is_none(), "done sessions have no remainder");
    }

    #[test]
    fn precomputed_fold_matches_incremental() {
        let (kp, db, mut rng) = setup();
        let bits = [1u64, 0, 1, 1, 0];

        let mut inc = ServerSession::new(&db);
        inc.on_frame(&hello(&kp, 5, 5)).unwrap();
        let r1 = inc
            .on_frame(&batch_frame(&kp, 0, &bits, &mut rng))
            .unwrap()
            .unwrap();
        let s1 = kp
            .secret
            .decrypt(&Product::decode(&r1, &kp.public).unwrap().ciphertext)
            .unwrap();

        let mut pre = ServerSession::with_fold(&db, FoldStrategy::Precomputed);
        assert!(
            pre.fold_plan().is_some(),
            "Precomputed sessions hold a plan"
        );
        pre.on_frame(&hello(&kp, 5, 5)).unwrap();
        let r2 = pre
            .on_frame(&batch_frame(&kp, 0, &bits, &mut rng))
            .unwrap()
            .unwrap();
        let s2 = kp
            .secret
            .decrypt(&Product::decode(&r2, &kp.public).unwrap().ciphertext)
            .unwrap();

        assert_eq!(s1, s2);
        assert_eq!(s1.to_u64(), Some(80));
    }

    #[test]
    fn precomputed_fold_with_shared_plan_batched_session() {
        let (kp, db, mut rng) = setup();
        let plan = Arc::new(MultiExpPlan::build(db.values()));
        let mut s = ServerSession::with_fold_plan(&db, Arc::clone(&plan)).unwrap();
        assert!(
            Arc::ptr_eq(s.fold_plan().unwrap(), &plan),
            "the session folds with the caller's shared plan, not a copy"
        );
        s.on_frame(&hello(&kp, 5, 2)).unwrap();
        s.on_frame(&batch_frame(&kp, 0, &[1, 0], &mut rng)).unwrap();
        s.on_frame(&batch_frame(&kp, 1, &[0, 1], &mut rng)).unwrap();
        let reply = s
            .on_frame(&batch_frame(&kp, 2, &[1], &mut rng))
            .unwrap()
            .unwrap();
        let product = Product::decode(&reply, &kp.public).unwrap();
        // Rows 0, 3, 4 → 10 + 40 + 50.
        assert_eq!(
            kp.secret.decrypt(&product.ciphertext).unwrap().to_u64(),
            Some(100)
        );
    }

    #[test]
    fn with_fold_plan_rejects_mismatched_plan() {
        let (_, db, _) = setup();
        let other = MultiExpPlan::build(&[1, 2, 3]);
        assert!(matches!(
            ServerSession::with_fold_plan(&db, Arc::new(other)),
            Err(ProtocolError::Config(_))
        ));
    }

    #[test]
    fn precomputed_checkpoint_resumes_with_the_shared_plan() {
        let (kp, db, mut rng) = setup();
        let plan = Arc::new(MultiExpPlan::build(db.values()));
        let mut s = ServerSession::with_fold_plan(&db, Arc::clone(&plan)).unwrap();
        s.on_frame(&hello(&kp, 5, 2)).unwrap();
        s.on_frame(&batch_frame(&kp, 0, &[1, 1], &mut rng)).unwrap();
        let cp = s.checkpoint().expect("mid-stream checkpoint");
        drop(s); // the original connection died here

        let mut resumed = ServerSession::resume_with_plan(&db, Arc::clone(&plan), cp).unwrap();
        assert!(
            Arc::ptr_eq(resumed.fold_plan().unwrap(), &plan),
            "resume selects the same cached plan as the live sessions"
        );
        resumed
            .on_frame(&batch_frame(&kp, 1, &[0, 0], &mut rng))
            .unwrap();
        let reply = resumed
            .on_frame(&batch_frame(&kp, 2, &[1], &mut rng))
            .unwrap()
            .unwrap();
        let product = Product::decode(&reply, &kp.public).unwrap();
        // Rows 0, 1, 4 → 10 + 20 + 50: the pre-disconnect fold survived.
        assert_eq!(
            kp.secret.decrypt(&product.ciphertext).unwrap().to_u64(),
            Some(80)
        );

        // The plan must actually cover the resumed database.
        let other = Database::new(vec![1, 2, 3]).unwrap();
        let mut s = ServerSession::with_fold_plan(&db, Arc::clone(&plan)).unwrap();
        s.on_frame(&hello(&kp, 5, 2)).unwrap();
        s.on_frame(&batch_frame(&kp, 0, &[1, 1], &mut rng)).unwrap();
        let cp = s.checkpoint().unwrap();
        assert!(ServerSession::resume_with_plan(&other, plan, cp).is_err());
    }

    #[test]
    fn cross_strategy_resume_is_correct() {
        // A checkpoint snapshots only the homomorphic accumulator and
        // stream position — nothing strategy-specific — so a session
        // may checkpoint under one strategy and resume under another.
        let (kp, db, mut rng) = setup();
        for (first, second) in [
            (FoldStrategy::Precomputed, FoldStrategy::MultiExp),
            (FoldStrategy::MultiExp, FoldStrategy::Precomputed),
            (FoldStrategy::Incremental, FoldStrategy::Precomputed),
        ] {
            let mut s = ServerSession::with_fold(&db, first);
            s.on_frame(&hello(&kp, 5, 2)).unwrap();
            s.on_frame(&batch_frame(&kp, 0, &[1, 1], &mut rng)).unwrap();
            let cp = s.checkpoint().unwrap();
            drop(s);

            let mut resumed = ServerSession::resume(&db, second, cp).unwrap();
            resumed
                .on_frame(&batch_frame(&kp, 1, &[0, 0], &mut rng))
                .unwrap();
            let reply = resumed
                .on_frame(&batch_frame(&kp, 2, &[1], &mut rng))
                .unwrap()
                .unwrap();
            let product = Product::decode(&reply, &kp.public).unwrap();
            assert_eq!(
                kp.secret.decrypt(&product.ciphertext).unwrap().to_u64(),
                Some(80),
                "checkpoint under {first:?} resumed under {second:?}"
            );
        }
    }

    #[test]
    fn resume_validates_the_checkpoint_against_the_database() {
        let (kp, db, mut rng) = setup();
        let mut s = ServerSession::new(&db);
        s.on_frame(&hello(&kp, 5, 2)).unwrap();
        s.on_frame(&batch_frame(&kp, 0, &[1, 1], &mut rng)).unwrap();
        let cp = s.checkpoint().unwrap();

        // Wrong database size.
        let other = Database::new(vec![1, 2, 3]).unwrap();
        assert!(matches!(
            ServerSession::resume(&other, FoldStrategy::Incremental, cp.clone()),
            Err(ProtocolError::Config(_))
        ));
        // Forged cursor beyond the announced total.
        let mut forged = cp.clone();
        forged.cursor = 99;
        assert!(matches!(
            ServerSession::resume(&db, FoldStrategy::Incremental, forged),
            Err(ProtocolError::InvalidInput(_))
        ));
        // Forged zero batch size.
        let mut forged = cp;
        forged.batch_size = 0;
        assert!(matches!(
            ServerSession::resume(&db, FoldStrategy::Incremental, forged),
            Err(ProtocolError::InvalidInput(_))
        ));
    }
}
