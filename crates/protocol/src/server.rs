//! The database server's side of the selected-sum protocol.
//!
//! The server is message-driven: [`ServerSession::on_frame`] consumes one
//! frame and optionally produces a reply frame. This single state machine
//! serves both orchestration styles — the sequential virtual-clock driver
//! and real concurrent threads over a blocking wire — and records
//! per-batch compute times for the pipeline analysis of §3.2.

use std::time::{Duration, Instant};

use pps_crypto::{Ciphertext, PaillierPublicKey};
use pps_transport::Frame;

use crate::data::Database;
use crate::error::ProtocolError;
use crate::messages::{Dump, Hello, IndexBatch, MsgType, PlainIndices, PlainSum, Product};

/// Per-session server statistics.
#[derive(Clone, Debug, Default)]
pub struct ServerStats {
    /// Total time spent folding batches into the product (excludes wire
    /// waits).
    pub compute: Duration,
    /// Per-batch compute times, aligned with arrival order.
    pub per_batch_compute: Vec<Duration>,
    /// Number of index ciphertexts folded so far.
    pub folded: usize,
}

/// State of one private-sum session.
enum State {
    /// Waiting for the client's `Hello`.
    AwaitHello,
    /// Streaming batches.
    Receiving {
        key: PaillierPublicKey,
        expected: u64,
        /// Running homomorphic product `Π E(I_i)^{x_i}`.
        accumulator: Ciphertext,
        /// Next database row to consume.
        cursor: usize,
    },
    /// Product sent; session complete.
    Done,
}

/// How the server folds a batch of `E(I_i)` into its running product.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum FoldStrategy {
    /// Element by element: `acc ← acc · E(I_i)^{x_i}` — the paper's loop.
    #[default]
    Incremental,
    /// Whole-batch Straus multi-exponentiation with a shared squaring
    /// chain — 2–3× faster for the protocol's 32-bit exponents.
    MultiExp,
    /// [`FoldStrategy::MultiExp`] split across all available cores: the
    /// batch is chunked, each chunk folded on its own thread, and the
    /// per-chunk partials combined with one homomorphic add each
    /// (`Π(partials) = E(Σ partial sums)`). Decrypts identically to the
    /// sequential strategies.
    ParallelMultiExp,
}

impl FoldStrategy {
    /// Worker threads the strategy will use for one batch.
    pub fn threads(self) -> usize {
        match self {
            FoldStrategy::Incremental | FoldStrategy::MultiExp => 1,
            FoldStrategy::ParallelMultiExp => std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
        }
    }
}

/// The server side of one protocol session over a fixed database.
pub struct ServerSession<'db> {
    db: &'db Database,
    state: State,
    stats: ServerStats,
    /// Batch folding strategy.
    fold: FoldStrategy,
    /// Optional blinding added to the product before replying (the
    /// multi-client protocol, §3.5): `E(R_i)` is multiplied in.
    blinding: Option<pps_bignum::Uint>,
}

impl<'db> ServerSession<'db> {
    /// Creates a session over `db`.
    pub fn new(db: &'db Database) -> Self {
        ServerSession {
            db,
            state: State::AwaitHello,
            stats: ServerStats::default(),
            fold: FoldStrategy::default(),
            blinding: None,
        }
    }

    /// Creates a session using the given fold strategy.
    pub fn with_fold(db: &'db Database, fold: FoldStrategy) -> Self {
        let mut s = Self::new(db);
        s.fold = fold;
        s
    }

    /// Creates a session that blinds its product by adding the plaintext
    /// `r` homomorphically (multi-client phase 1).
    pub fn with_blinding(db: &'db Database, r: pps_bignum::Uint) -> Self {
        let mut s = Self::new(db);
        s.blinding = Some(r);
        s
    }

    /// Statistics so far.
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    /// True once the product has been produced.
    pub fn is_done(&self) -> bool {
        matches!(self.state, State::Done)
    }

    /// Consumes one frame; returns a reply frame when the protocol calls
    /// for one.
    ///
    /// # Errors
    /// Protocol violations, malformed messages, and invalid ciphertexts
    /// are all rejected.
    pub fn on_frame(&mut self, frame: &Frame) -> Result<Option<Frame>, ProtocolError> {
        match frame.msg_type {
            t if t == MsgType::Hello as u8 => self.on_hello(frame),
            t if t == MsgType::IndexBatch as u8 => self.on_batch(frame),
            t if t == MsgType::PlainIndices as u8 => self.on_plain(frame),
            t if t == MsgType::SizeRequest as u8 => {
                crate::messages::SizeRequest::decode(frame)?;
                if !matches!(self.state, State::AwaitHello) {
                    return Err(ProtocolError::UnexpectedMessage("size request mid-session"));
                }
                Ok(Some(
                    crate::messages::SizeReply {
                        n: self.db.len() as u64,
                    }
                    .encode()?,
                ))
            }
            _ => Err(ProtocolError::UnexpectedMessage(
                "server cannot handle this message",
            )),
        }
    }

    fn on_hello(&mut self, frame: &Frame) -> Result<Option<Frame>, ProtocolError> {
        if !matches!(self.state, State::AwaitHello) {
            return Err(ProtocolError::UnexpectedMessage("duplicate hello"));
        }
        let hello = Hello::decode(frame)?;
        if hello.total as usize != self.db.len() {
            return Err(ProtocolError::Config(format!(
                "client announced {} indices for a database of {}",
                hello.total,
                self.db.len()
            )));
        }
        if hello.batch_size == 0 {
            return Err(ProtocolError::Config("batch size must be positive".into()));
        }
        let key = PaillierPublicKey::from_modulus(hello.modulus)?;
        if hello.total == 0 {
            // Empty database: there is nothing to receive, and no batch
            // will ever arrive to trigger the finalize check — reply with
            // the identity product (the selected sum over zero rows)
            // immediately.
            let product = key.identity();
            return Ok(Some(self.finalize(&key, product)?));
        }
        self.state = State::Receiving {
            accumulator: key.identity(),
            key,
            expected: hello.total,
            cursor: 0,
        };
        Ok(None)
    }

    /// Applies the optional blinding, encodes the product reply, and
    /// moves the session to `Done`.
    fn finalize(
        &mut self,
        key: &PaillierPublicKey,
        mut product: Ciphertext,
    ) -> Result<Frame, ProtocolError> {
        if let Some(r) = &self.blinding {
            let start = Instant::now();
            product = key.add_plain(&product, r)?;
            self.stats.compute += start.elapsed();
        }
        let reply = Product {
            ciphertext: product,
        }
        .encode(key)?;
        self.state = State::Done;
        Ok(reply)
    }

    fn on_batch(&mut self, frame: &Frame) -> Result<Option<Frame>, ProtocolError> {
        let State::Receiving {
            key,
            expected,
            accumulator,
            cursor,
        } = &mut self.state
        else {
            return Err(ProtocolError::UnexpectedMessage(
                "batch before hello or after done",
            ));
        };
        let batch = IndexBatch::decode(frame, key)?;
        if batch.ciphertexts.is_empty() {
            // An empty batch never advances the cursor, so accepting it
            // would let a client spin the session forever.
            return Err(ProtocolError::UnexpectedMessage("empty index batch"));
        }
        if *cursor + batch.ciphertexts.len() > *expected as usize {
            return Err(ProtocolError::UnexpectedMessage(
                "more indices than announced",
            ));
        }

        let start = Instant::now();
        match self.fold {
            FoldStrategy::Incremental => {
                // The paper's server inner loop: for each received E(I_i),
                // raise to the database value x_i and fold into the
                // running product.
                for ct in &batch.ciphertexts {
                    let x = pps_bignum::Uint::from_u64(self.db.values()[*cursor]);
                    let term = key.mul_plain(ct, &x)?;
                    *accumulator = key.add(accumulator, &term)?;
                    *cursor += 1;
                }
            }
            FoldStrategy::MultiExp | FoldStrategy::ParallelMultiExp => {
                // Whole-batch interleaved multi-exponentiation, chunked
                // across cores for the parallel strategy.
                let weights: Vec<pps_bignum::Uint> = self.db.values()
                    [*cursor..*cursor + batch.ciphertexts.len()]
                    .iter()
                    .map(|&x| pps_bignum::Uint::from_u64(x))
                    .collect();
                let threads = self.fold.threads();
                let folded = if threads > 1 {
                    key.fold_product_parallel(&batch.ciphertexts, &weights, threads)?
                } else {
                    key.fold_product(&batch.ciphertexts, &weights)?
                };
                *accumulator = key.add(accumulator, &folded)?;
                *cursor += batch.ciphertexts.len();
            }
        }
        let elapsed = start.elapsed();
        self.stats.compute += elapsed;
        self.stats.per_batch_compute.push(elapsed);
        self.stats.folded += batch.ciphertexts.len();

        if *cursor == *expected as usize {
            // Apply multi-client blinding, if configured, then reply.
            let key = key.clone();
            let product = accumulator.clone();
            return Ok(Some(self.finalize(&key, product)?));
        }
        Ok(None)
    }

    /// The trivial non-private baseline: plaintext indices in, plaintext
    /// sum out. (Violates client privacy; implemented as the comparison
    /// point of §2.)
    fn on_plain(&mut self, frame: &Frame) -> Result<Option<Frame>, ProtocolError> {
        let req = PlainIndices::decode(frame)?;
        let start = Instant::now();
        let mut sum: u128 = 0;
        for &i in &req.indices {
            let v = self
                .db
                .values()
                .get(i as usize)
                .ok_or(ProtocolError::UnexpectedMessage("plain index out of range"))?;
            sum += *v as u128;
        }
        self.stats.compute += start.elapsed();
        self.state = State::Done;
        Ok(Some(PlainSum { sum }.encode()?))
    }

    /// The other trivial baseline: dump the whole database (violates
    /// database privacy).
    pub fn dump(&mut self) -> Result<Frame, ProtocolError> {
        self.state = State::Done;
        Ok(Dump {
            values: self.db.values().to_vec(),
        }
        .encode()?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::Selection;
    use pps_crypto::PaillierKeypair;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (PaillierKeypair, Database, StdRng) {
        let mut rng = StdRng::seed_from_u64(55);
        let kp = PaillierKeypair::generate(128, &mut rng).unwrap();
        let db = Database::new(vec![10, 20, 30, 40, 50]).unwrap();
        (kp, db, rng)
    }

    fn hello(kp: &PaillierKeypair, total: u64, batch: u32) -> Frame {
        Hello {
            modulus: kp.public.n().clone(),
            total,
            batch_size: batch,
        }
        .encode()
        .unwrap()
    }

    fn batch_frame(kp: &PaillierKeypair, bits: &[u64], rng: &mut StdRng) -> Frame {
        let cts = bits
            .iter()
            .map(|&b| kp.public.encrypt_u64(b, rng).unwrap())
            .collect();
        IndexBatch { ciphertexts: cts }.encode(&kp.public).unwrap()
    }

    #[test]
    fn full_session_computes_selected_sum() {
        let (kp, db, mut rng) = setup();
        let mut s = ServerSession::new(&db);
        assert!(s.on_frame(&hello(&kp, 5, 5)).unwrap().is_none());
        let reply = s
            .on_frame(&batch_frame(&kp, &[1, 0, 1, 0, 1], &mut rng))
            .unwrap()
            .expect("final batch yields product");
        let product = Product::decode(&reply, &kp.public).unwrap();
        let sum = kp.secret.decrypt(&product.ciphertext).unwrap();
        assert_eq!(sum.to_u64(), Some(90));
        assert!(s.is_done());
        assert_eq!(s.stats().folded, 5);
    }

    #[test]
    fn batched_session() {
        let (kp, db, mut rng) = setup();
        let mut s = ServerSession::new(&db);
        s.on_frame(&hello(&kp, 5, 2)).unwrap();
        assert!(s
            .on_frame(&batch_frame(&kp, &[1, 1], &mut rng))
            .unwrap()
            .is_none());
        assert!(s
            .on_frame(&batch_frame(&kp, &[0, 0], &mut rng))
            .unwrap()
            .is_none());
        let reply = s
            .on_frame(&batch_frame(&kp, &[1], &mut rng))
            .unwrap()
            .unwrap();
        let product = Product::decode(&reply, &kp.public).unwrap();
        assert_eq!(
            kp.secret.decrypt(&product.ciphertext).unwrap().to_u64(),
            Some(80)
        );
        assert_eq!(s.stats().per_batch_compute.len(), 3);
    }

    #[test]
    fn weighted_selection() {
        let (kp, db, mut rng) = setup();
        let sel = Selection::weighted(vec![1, 2, 3, 0, 0]);
        let mut s = ServerSession::new(&db);
        s.on_frame(&hello(&kp, 5, 5)).unwrap();
        let reply = s
            .on_frame(&batch_frame(&kp, sel.weights(), &mut rng))
            .unwrap()
            .unwrap();
        let product = Product::decode(&reply, &kp.public).unwrap();
        // 1·10 + 2·20 + 3·30 = 140.
        assert_eq!(
            kp.secret.decrypt(&product.ciphertext).unwrap().to_u64(),
            Some(140)
        );
    }

    #[test]
    fn rejects_protocol_violations() {
        let (kp, db, mut rng) = setup();
        let mut s = ServerSession::new(&db);
        // Batch before hello.
        assert!(s.on_frame(&batch_frame(&kp, &[1], &mut rng)).is_err());
        s.on_frame(&hello(&kp, 5, 5)).unwrap();
        // Duplicate hello.
        assert!(s.on_frame(&hello(&kp, 5, 5)).is_err());
        // Too many indices.
        assert!(s.on_frame(&batch_frame(&kp, &[1; 6], &mut rng)).is_err());
    }

    #[test]
    fn rejects_count_mismatch_and_zero_batch() {
        let (kp, db, _) = setup();
        let mut s = ServerSession::new(&db);
        assert!(s.on_frame(&hello(&kp, 99, 5)).is_err());
        let mut s2 = ServerSession::new(&db);
        assert!(s2.on_frame(&hello(&kp, 5, 0)).is_err());
    }

    #[test]
    fn plain_baseline() {
        let (_, db, _) = setup();
        let mut s = ServerSession::new(&db);
        let req = PlainIndices {
            indices: vec![0, 2, 4],
        }
        .encode()
        .unwrap();
        let reply = s.on_frame(&req).unwrap().unwrap();
        assert_eq!(PlainSum::decode(&reply).unwrap().sum, 90);
        // Out-of-range index rejected.
        let mut s2 = ServerSession::new(&db);
        let bad = PlainIndices { indices: vec![99] }.encode().unwrap();
        assert!(s2.on_frame(&bad).is_err());
    }

    #[test]
    fn size_discovery() {
        use crate::messages::{SizeReply, SizeRequest};
        let (kp, db, _) = setup();
        let mut s = ServerSession::new(&db);
        let reply = s.on_frame(&SizeRequest.encode().unwrap()).unwrap().unwrap();
        assert_eq!(SizeReply::decode(&reply).unwrap().n, 5);
        // Still answerable before hello, and the session proceeds normally.
        s.on_frame(&hello(&kp, 5, 5)).unwrap();
        // But not mid-session.
        assert!(s.on_frame(&SizeRequest.encode().unwrap()).is_err());
    }

    #[test]
    fn dump_baseline() {
        let (_, db, _) = setup();
        let mut s = ServerSession::new(&db);
        let f = s.dump().unwrap();
        assert_eq!(Dump::decode(&f).unwrap().values, db.values());
    }

    #[test]
    fn multiexp_fold_matches_incremental() {
        let (kp, db, mut rng) = setup();
        let bits = [1u64, 0, 1, 1, 0];

        let mut inc = ServerSession::new(&db);
        inc.on_frame(&hello(&kp, 5, 5)).unwrap();
        let r1 = inc
            .on_frame(&batch_frame(&kp, &bits, &mut rng))
            .unwrap()
            .unwrap();
        let s1 = kp
            .secret
            .decrypt(&Product::decode(&r1, &kp.public).unwrap().ciphertext)
            .unwrap();

        let mut mx = ServerSession::with_fold(&db, FoldStrategy::MultiExp);
        mx.on_frame(&hello(&kp, 5, 5)).unwrap();
        let r2 = mx
            .on_frame(&batch_frame(&kp, &bits, &mut rng))
            .unwrap()
            .unwrap();
        let s2 = kp
            .secret
            .decrypt(&Product::decode(&r2, &kp.public).unwrap().ciphertext)
            .unwrap();

        assert_eq!(s1, s2);
        assert_eq!(s1.to_u64(), Some(80));
    }

    #[test]
    fn multiexp_fold_batched_session() {
        let (kp, db, mut rng) = setup();
        let mut s = ServerSession::with_fold(&db, FoldStrategy::MultiExp);
        s.on_frame(&hello(&kp, 5, 2)).unwrap();
        s.on_frame(&batch_frame(&kp, &[1, 0], &mut rng)).unwrap();
        s.on_frame(&batch_frame(&kp, &[0, 1], &mut rng)).unwrap();
        let reply = s
            .on_frame(&batch_frame(&kp, &[1], &mut rng))
            .unwrap()
            .unwrap();
        let product = Product::decode(&reply, &kp.public).unwrap();
        // rows 0, 3, 4 → 10 + 40 + 50.
        assert_eq!(
            kp.secret.decrypt(&product.ciphertext).unwrap().to_u64(),
            Some(100)
        );
    }

    #[test]
    fn rejects_empty_batch() {
        let (kp, db, mut rng) = setup();
        let mut s = ServerSession::new(&db);
        s.on_frame(&hello(&kp, 5, 5)).unwrap();
        // A zero-length batch must be rejected, not silently accepted —
        // it would never advance the cursor.
        let empty = batch_frame(&kp, &[], &mut rng);
        assert!(matches!(
            s.on_frame(&empty),
            Err(ProtocolError::UnexpectedMessage("empty index batch"))
        ));
        // The session stays usable: a real batch still completes it.
        let reply = s
            .on_frame(&batch_frame(&kp, &[1, 0, 1, 0, 1], &mut rng))
            .unwrap()
            .unwrap();
        let product = Product::decode(&reply, &kp.public).unwrap();
        assert_eq!(
            kp.secret.decrypt(&product.ciphertext).unwrap().to_u64(),
            Some(90)
        );
    }

    #[test]
    fn hello_for_empty_database_finalizes_immediately() {
        let (kp, _, _) = setup();
        let db = Database::empty();
        let mut s = ServerSession::new(&db);
        // total == 0 matches the empty database; the server must reply
        // with the identity product at once instead of waiting for
        // batches that will never come.
        let reply = s
            .on_frame(&hello(&kp, 0, 5))
            .unwrap()
            .expect("empty-database hello must produce an immediate product");
        assert!(s.is_done());
        let product = Product::decode(&reply, &kp.public).unwrap();
        assert_eq!(
            kp.secret.decrypt(&product.ciphertext).unwrap().to_u64(),
            Some(0)
        );
        // Blinding still applies to the empty sum.
        let mut blinded = ServerSession::with_blinding(&db, pps_bignum::Uint::from_u64(77));
        let reply = blinded.on_frame(&hello(&kp, 0, 5)).unwrap().unwrap();
        let product = Product::decode(&reply, &kp.public).unwrap();
        assert_eq!(
            kp.secret.decrypt(&product.ciphertext).unwrap().to_u64(),
            Some(77)
        );
    }

    #[test]
    fn parallel_fold_matches_incremental() {
        let (kp, _, mut rng) = setup();
        let values: Vec<u64> = (1..=64).map(|i| i * 3).collect();
        let bits: Vec<u64> = (0..64).map(|i| u64::from(i % 3 == 0)).collect();
        let db = Database::new(values).unwrap();
        let expected = db.oracle_sum(&Selection::weighted(bits.clone())).unwrap();

        let mut inc = ServerSession::new(&db);
        inc.on_frame(&hello(&kp, 64, 64)).unwrap();
        let r1 = inc
            .on_frame(&batch_frame(&kp, &bits, &mut rng))
            .unwrap()
            .unwrap();
        let s1 = kp
            .secret
            .decrypt(&Product::decode(&r1, &kp.public).unwrap().ciphertext)
            .unwrap();

        let mut par = ServerSession::with_fold(&db, FoldStrategy::ParallelMultiExp);
        par.on_frame(&hello(&kp, 64, 64)).unwrap();
        let r2 = par
            .on_frame(&batch_frame(&kp, &bits, &mut rng))
            .unwrap()
            .unwrap();
        let s2 = kp
            .secret
            .decrypt(&Product::decode(&r2, &kp.public).unwrap().ciphertext)
            .unwrap();

        assert_eq!(s1, s2);
        assert_eq!(s2, pps_bignum::Uint::from_u128(expected));
        assert_eq!(par.stats().folded, 64);
    }

    #[test]
    fn blinded_session() {
        let (kp, db, mut rng) = setup();
        let r = pps_bignum::Uint::from_u64(1_000_000);
        let mut s = ServerSession::with_blinding(&db, r);
        s.on_frame(&hello(&kp, 5, 5)).unwrap();
        let reply = s
            .on_frame(&batch_frame(&kp, &[1, 0, 1, 0, 1], &mut rng))
            .unwrap()
            .unwrap();
        let product = Product::decode(&reply, &kp.public).unwrap();
        // Decrypted value is the blinded partial sum.
        assert_eq!(
            kp.secret.decrypt(&product.ciphertext).unwrap().to_u64(),
            Some(1_000_090)
        );
    }
}
