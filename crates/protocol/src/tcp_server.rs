//! Concurrent multi-session server runtime over real TCP.
//!
//! [`ServerSession`] is a message-driven state machine with no opinion
//! about scheduling; this module supplies the deployment shape the paper
//! assumes for its multi-client experiments (§3.5): one listening socket,
//! one thread per accepted connection, all sessions sharing a single
//! immutable [`Database`] behind an [`Arc`]. Each connection drives its
//! own session to completion over the blocking
//! [`TcpWire`](pps_transport::TcpWire), so a slow client never stalls the
//! others, and per-session statistics are aggregated into an
//! [`AggregateStats`] reported when the accept loop ends.
//!
//! # Fault tolerance
//!
//! The paper's own long-distance runs (§3.1, a 56 Kbps Chicago↔Hoboken
//! modem link) are exactly the regime where real deployments stall and
//! half-close, so the runtime defends itself:
//!
//! * **Wire deadlines** — every session runs under [`SessionLimits`]:
//!   per-read and per-write socket timeouts plus a whole-session
//!   [`SessionDeadline`]. A slow-loris client that trickles bytes to
//!   defeat the per-read timeout still hits the session deadline; either
//!   way the session thread exits with
//!   [`TransportError::TimedOut`] instead of being pinned forever.
//! * **Admission control** — [`TcpServer::with_admission`] caps
//!   concurrent sessions; excess connections are either queued until a
//!   slot frees or refused with a clean close (counted in
//!   [`AggregateStats::refused`]).
//! * **Graceful shutdown** — a [`ShutdownHandle`] stops a
//!   `serve(None)` loop from another thread: it raises a flag and
//!   unblocks the accept call with a throwaway self-connection, then
//!   the runtime drains in-flight sessions before returning.
//! * **Accept backoff** — a persistently erroring listener backs off
//!   exponentially (50 ms doubling to ~1 s) and gives up after
//!   [`MAX_CONSECUTIVE_ACCEPT_ERRORS`] failures in a row.
//! * **Session resumption** — every `Hello` is answered with a
//!   `HelloAck { session_id }`, and the session's fold state is
//!   checkpointed into a bounded, TTL-evicted
//!   [`SessionTable`](crate::resume::SessionTable) after each
//!   acknowledged batch. A client that lost its connection sends
//!   `Resume { session_id, .. }` on a fresh connection and continues
//!   from the last acked chunk instead of re-streaming the whole index
//!   vector (PROTOCOL.md §10).
//! * **Panic isolation** — each session thread runs inside
//!   `catch_unwind`, and every stats/gate lock recovers from poison. A
//!   bug (or deliberately hostile input) that panics one session is
//!   counted as [`SessionEvent::Panicked`] while concurrent sessions,
//!   admission, and the final aggregate all stay intact.
//!
//! The figures harness deliberately does **not** use this runtime — the
//! simulated link is the measurement vehicle there — but the CLI's
//! `serve` subcommand and the concurrent end-to-end tests run on it.

use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, SocketAddr, TcpListener, TcpStream};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use pps_bignum::MultiExpPlan;
use pps_transport::{TcpWire, TransportError, Wire, WireMetrics};

use crate::data::Database;
use crate::error::ProtocolError;
use crate::messages::{HelloAck, MsgType, Resume, ResumeAck, ShardHello};
use crate::multidb::leg_blinding;
use crate::obs::ServerObs;
use crate::plan::FoldPlanCache;
use crate::resume::{ResumptionConfig, SessionTable};
use crate::server::{FoldStrategy, ServerSession, ServerStats};

/// Locks a mutex, recovering from poison. Every value guarded in this
/// module (aggregate counters, the admission gate count) is valid at
/// every point a panic can unwind through, so inheriting the data is
/// always safe — and refusing would let one panicked session wedge
/// admission and final stats for the whole server (the exact failure
/// the crash-containment layer exists to prevent).
fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

/// Statistics aggregated across every session the runtime served.
///
/// Sessions that did not complete are split by cause — refused by
/// admission control, evicted on a deadline, or failed with any other
/// error — so a throughput report can distinguish an overloaded server
/// (refusals), a hostile or wedged client population (evictions), and
/// genuine protocol faults (failures).
#[derive(Clone, Debug, Default)]
pub struct AggregateStats {
    /// Sessions that ran to a clean protocol completion.
    pub sessions: usize,
    /// Sessions that ended in a transport or protocol error *other*
    /// than a deadline eviction (those are counted in `evicted`).
    pub failed: usize,
    /// Connections refused by admission control before a session
    /// started.
    pub refused: usize,
    /// Sessions evicted for exceeding a read timeout or the
    /// whole-session deadline ([`TransportError::TimedOut`]).
    pub evicted: usize,
    /// Sessions whose thread panicked. The panic was contained
    /// (`catch_unwind` + poison-recovering locks); every other counter
    /// in this struct is still exact.
    pub panicked: usize,
    /// Sessions that continued from a stored checkpoint after the
    /// client reconnected with `Resume`.
    pub resumed: usize,
    /// Fold checkpoints dropped by the session table under capacity
    /// pressure or TTL expiry (clean completions are not counted).
    pub checkpoints_evicted: u64,
    /// `accept()` failures (no session was ever assigned).
    pub accept_errors: usize,
    /// Index ciphertexts folded across all completed sessions.
    pub folded: usize,
    /// Server compute time summed across completed sessions (exceeds
    /// wall time when sessions overlap on separate cores).
    pub compute: Duration,
    /// Wall-clock time the accept loop ran.
    pub wall: Duration,
}

impl AggregateStats {
    /// Folding throughput in index ciphertexts per second of server
    /// compute time. Zero when nothing was folded.
    pub fn throughput(&self) -> f64 {
        if self.compute.is_zero() {
            0.0
        } else {
            self.folded as f64 / self.compute.as_secs_f64()
        }
    }

    /// Connections that did not complete a session, by any cause:
    /// `failed + refused + evicted + panicked`.
    pub fn unserved(&self) -> usize {
        self.failed + self.refused + self.evicted + self.panicked
    }
}

/// Whether a session error is a deadline eviction (the runtime timed
/// the peer out) rather than a fault of the peer's own making.
fn is_eviction(error: &ProtocolError) -> bool {
    matches!(error, ProtocolError::Transport(TransportError::TimedOut))
}

/// Per-session I/O limits enforced by the connection driver.
///
/// `None` disables the corresponding deadline (the pre-hardening
/// behavior); the defaults are deliberately generous so healthy clients
/// on slow links never trip them, while a wedged peer cannot pin a
/// server thread forever.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SessionLimits {
    /// Longest a single `recv` may wait for bytes before the session
    /// fails with [`TransportError::TimedOut`].
    pub read_timeout: Option<Duration>,
    /// Longest a single `send` may block on a full socket buffer.
    pub write_timeout: Option<Duration>,
    /// Wall-clock budget for the whole session, evicting slow-loris
    /// clients that trickle bytes to defeat the per-read timeout.
    pub session_deadline: Option<Duration>,
}

impl Default for SessionLimits {
    /// 30 s per read, 30 s per write, 5 min per session.
    fn default() -> Self {
        SessionLimits {
            read_timeout: Some(Duration::from_secs(30)),
            write_timeout: Some(Duration::from_secs(30)),
            session_deadline: Some(Duration::from_secs(300)),
        }
    }
}

impl SessionLimits {
    /// No deadlines at all (tests that deliberately stall need this).
    pub fn unlimited() -> Self {
        SessionLimits {
            read_timeout: None,
            write_timeout: None,
            session_deadline: None,
        }
    }
}

/// Tracks one session's wall-clock budget and derives the read timeout
/// to arm before each `recv`: the per-read limit, shortened to whatever
/// remains of the session deadline.
#[derive(Debug)]
pub struct SessionDeadline {
    expires: Option<Instant>,
    read_timeout: Option<Duration>,
}

impl SessionDeadline {
    /// Starts the clock on a session governed by `limits`.
    pub fn new(limits: &SessionLimits) -> Self {
        SessionDeadline {
            expires: limits.session_deadline.map(|d| Instant::now() + d),
            read_timeout: limits.read_timeout,
        }
    }

    /// The absolute instant the session expires, if it has one — armed
    /// on the wire as a mid-frame receive deadline so a byte-trickling
    /// peer cannot reset the clock.
    pub fn expires_at(&self) -> Option<Instant> {
        self.expires
    }

    /// The timeout to arm before the next read.
    ///
    /// # Errors
    /// [`TransportError::TimedOut`] once the session deadline has
    /// passed — the caller must abandon the session, not read again.
    pub fn next_read_timeout(&self) -> Result<Option<Duration>, TransportError> {
        match self.expires {
            None => Ok(self.read_timeout),
            Some(deadline) => {
                let remaining = deadline.saturating_duration_since(Instant::now());
                if remaining.is_zero() {
                    return Err(TransportError::TimedOut);
                }
                Ok(Some(
                    self.read_timeout.map_or(remaining, |t| t.min(remaining)),
                ))
            }
        }
    }
}

/// What to do with a new connection when every concurrency slot is
/// taken (see [`TcpServer::with_admission`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Admission {
    /// Close the connection immediately; the client observes a clean
    /// disconnect and may retry with backoff.
    Refuse,
    /// Hold the connection unserviced until a running session finishes.
    Queue,
}

/// Lifecycle notifications delivered to [`TcpServer::serve_with`]
/// observers. Events for different sessions arrive from different
/// threads, hence the `Sync` bound on the callback.
#[derive(Debug)]
pub enum SessionEvent<'a> {
    /// A connection was accepted and assigned a 1-based session id.
    Accepted {
        /// Session id (accept order).
        session: usize,
        /// Peer address, when the socket can report one.
        peer: Option<SocketAddr>,
    },
    /// The session ran to completion.
    Finished {
        /// Session id (accept order).
        session: usize,
        /// Final per-session statistics.
        stats: &'a ServerStats,
    },
    /// The session died with a non-eviction error (the server keeps
    /// accepting).
    Failed {
        /// Session id (accept order).
        session: usize,
        /// What went wrong.
        error: &'a ProtocolError,
    },
    /// The session was evicted for exceeding a read timeout or the
    /// whole-session deadline.
    Evicted {
        /// Session id (accept order).
        session: usize,
        /// The timeout error that evicted it.
        error: &'a ProtocolError,
    },
    /// The session's thread panicked; the panic was contained and the
    /// server keeps accepting.
    Panicked {
        /// Session id (accept order).
        session: usize,
    },
    /// The session continued from a stored checkpoint (the client
    /// reconnected with `Resume`). Fires before the session's terminal
    /// event; the same session id later finishes, fails, or is evicted.
    Resumed {
        /// Session id (accept order) of the *new* connection.
        session: usize,
    },
    /// Admission control turned the connection away before a session
    /// started (no session id is assigned).
    Refused {
        /// Peer address, when the socket can report one.
        peer: Option<SocketAddr>,
    },
    /// `accept()` itself failed. The server backs off (exponentially,
    /// 50 ms doubling to ~1 s) and keeps listening, but gives up after
    /// [`MAX_CONSECUTIVE_ACCEPT_ERRORS`] failures in a row (a listener
    /// stuck in a persistent error state would otherwise busy-loop).
    AcceptError {
        /// The accept error.
        error: &'a ProtocolError,
    },
}

/// Consecutive `accept()` failures after which the accept loop stops
/// instead of retrying; a healthy listener resets the count on every
/// successful accept.
pub const MAX_CONSECUTIVE_ACCEPT_ERRORS: usize = 8;

/// First backoff after a failed `accept()`; doubles per consecutive
/// failure up to [`ACCEPT_ERROR_BACKOFF_MAX`].
const ACCEPT_ERROR_BACKOFF_BASE: Duration = Duration::from_millis(50);

/// Backoff ceiling for persistent accept errors.
const ACCEPT_ERROR_BACKOFF_MAX: Duration = Duration::from_secs(1);

/// Exponential accept-error backoff: 50 ms after the first failure,
/// doubling per consecutive failure, capped at ~1 s.
fn accept_backoff(consecutive_errors: usize) -> Duration {
    let doublings = consecutive_errors.saturating_sub(1).min(5) as u32;
    ACCEPT_ERROR_BACKOFF_BASE
        .saturating_mul(1u32 << doublings)
        .min(ACCEPT_ERROR_BACKOFF_MAX)
}

/// Stops a running [`TcpServer`] accept loop from another thread.
///
/// Cloneable and cheap; raising shutdown is idempotent. The handle
/// unblocks a pending blocking `accept()` with a throwaway loopback
/// connection, so `serve(None)` returns promptly instead of waiting for
/// the next real client.
#[derive(Clone, Debug)]
pub struct ShutdownHandle {
    flag: Arc<AtomicBool>,
    addr: SocketAddr,
}

impl ShutdownHandle {
    /// Raises the shutdown flag and pokes the listener awake. The
    /// server finishes draining in-flight sessions before its
    /// `serve`/`serve_with` call returns.
    pub fn shutdown(&self) {
        if self.flag.swap(true, Ordering::SeqCst) {
            return; // already raised; one wake-up is enough
        }
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(250));
    }

    /// Whether shutdown has been requested.
    pub fn is_shutdown(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }
}

/// A concurrent selected-sum server: accept loop plus thread-per-session
/// dispatch over a shared database, with per-session deadlines,
/// admission control, and graceful shutdown.
pub struct TcpServer {
    listener: TcpListener,
    db: Arc<Database>,
    fold: FoldStrategy,
    limits: SessionLimits,
    max_concurrent: Option<usize>,
    admission: Admission,
    shutdown: Arc<AtomicBool>,
    obs: Option<ServerObs>,
    resumption: SessionTable,
    fault_hook: Option<Arc<dyn Fn(usize) + Send + Sync>>,
    require_shard: bool,
    plan_cache: Option<Arc<FoldPlanCache>>,
}

impl TcpServer {
    /// Binds a listening socket for `db` with default [`SessionLimits`]
    /// and no concurrency cap. Use `"127.0.0.1:0"` to let the OS pick an
    /// ephemeral port (see [`TcpServer::local_addr`]).
    ///
    /// # Errors
    /// [`ProtocolError::Transport`] when the bind fails.
    pub fn bind(db: Arc<Database>, addr: &str, fold: FoldStrategy) -> Result<Self, ProtocolError> {
        let listener = TcpListener::bind(addr)
            .map_err(|e| ProtocolError::Transport(TransportError::Io(e.to_string())))?;
        Ok(TcpServer {
            listener,
            db,
            fold,
            limits: SessionLimits::default(),
            max_concurrent: None,
            admission: Admission::Refuse,
            shutdown: Arc::new(AtomicBool::new(false)),
            obs: None,
            resumption: SessionTable::default(),
            fault_hook: None,
            require_shard: false,
            plan_cache: None,
        })
    }

    /// Replaces the fold-plan cache consulted when the strategy is
    /// [`FoldStrategy::Precomputed`]. By default the process-wide
    /// [`FoldPlanCache::global`] is used, so every server (and shard
    /// worker) sharing an `Arc<Database>` also shares one digit table;
    /// pass a private cache to isolate a server's plan lifetime.
    #[must_use]
    pub fn with_fold_plan_cache(mut self, cache: Arc<FoldPlanCache>) -> Self {
        self.plan_cache = Some(cache);
        self
    }

    /// Marks this server as a shard worker: until a `ShardHello`
    /// handshake (or a granted `Resume`, whose checkpoint carries its
    /// own blinding) installs a blinding, only the handshake, resume,
    /// and size-discovery frames are accepted — and `PlainIndices` is
    /// refused outright, blinded or not — so the worker never answers a
    /// query with an *unblinded* partial sum. (Any server — shard
    /// worker or not — accepts the handshake when offered; this flag
    /// makes it mandatory.)
    #[must_use]
    pub fn require_shard_handshake(mut self) -> Self {
        self.require_shard = true;
        self
    }

    /// Attaches a [`ServerObs`] bundle: session lifecycle counters, the
    /// active-session gauge, session/fold/`server_compute` histograms,
    /// wire byte counters, and per-session spans through its tracer.
    /// The registry behind the bundle can be scraped live (see
    /// `MetricsServer` in `pps-obs`) while the accept loop runs.
    #[must_use]
    pub fn with_observability(mut self, obs: ServerObs) -> Self {
        self.obs = Some(obs);
        self
    }

    /// Replaces the per-session I/O limits.
    #[must_use]
    pub fn with_limits(mut self, limits: SessionLimits) -> Self {
        self.limits = limits;
        self
    }

    /// Caps concurrent sessions at `max` and sets the policy for
    /// over-limit connections.
    #[must_use]
    pub fn with_admission(mut self, max: usize, policy: Admission) -> Self {
        self.max_concurrent = Some(max.max(1));
        self.admission = policy;
        self
    }

    /// Replaces the session-resumption bounds (checkpoint capacity and
    /// TTL). Resumption is always on; this only tunes how long and how
    /// many checkpoints survive.
    #[must_use]
    pub fn with_resumption(mut self, config: ResumptionConfig) -> Self {
        self.resumption = SessionTable::new(config);
        self
    }

    /// Installs a chaos hook called with the session id at the start of
    /// every session thread, *inside* the panic-isolation boundary. A
    /// hook that panics simulates a server-side bug for a chosen
    /// session; the crash-containment tests use this to prove a panic
    /// is contained to one session.
    #[must_use]
    pub fn with_session_fault_hook(mut self, hook: impl Fn(usize) + Send + Sync + 'static) -> Self {
        self.fault_hook = Some(Arc::new(hook));
        self
    }

    /// The live resumption table (exposed for tests and diagnostics).
    pub fn session_table(&self) -> &SessionTable {
        &self.resumption
    }

    /// The bound address (the actual port, when bound to port 0).
    ///
    /// # Errors
    /// [`ProtocolError::Transport`] when the OS cannot report it.
    pub fn local_addr(&self) -> Result<SocketAddr, ProtocolError> {
        self.listener
            .local_addr()
            .map_err(|e| ProtocolError::Transport(TransportError::Io(e.to_string())))
    }

    /// A handle that stops this server's accept loop from any thread.
    ///
    /// # Errors
    /// [`ProtocolError::Transport`] when the bound address cannot be
    /// determined (needed for the accept wake-up).
    pub fn shutdown_handle(&self) -> Result<ShutdownHandle, ProtocolError> {
        let mut addr = self.local_addr()?;
        // The wake-up self-connection must target a routable address
        // even when bound to the wildcard.
        if addr.ip().is_unspecified() {
            addr.set_ip(match addr.ip() {
                IpAddr::V4(_) => IpAddr::V4(Ipv4Addr::LOCALHOST),
                IpAddr::V6(_) => IpAddr::V6(Ipv6Addr::LOCALHOST),
            });
        }
        Ok(ShutdownHandle {
            flag: Arc::clone(&self.shutdown),
            addr,
        })
    }

    /// Serves sessions without observing their lifecycle. See
    /// [`TcpServer::serve_with`].
    pub fn serve(&self, max_sessions: Option<usize>) -> AggregateStats {
        self.serve_with(max_sessions, &|_| {})
    }

    /// Accepts connections until `max_sessions` have been accepted
    /// (`None` = forever, or until [`ShutdownHandle::shutdown`]),
    /// driving each on its own thread against the shared database, then
    /// waits for every in-flight session to finish and returns the
    /// aggregate. `on_event` fires from session threads as connections
    /// arrive and complete.
    ///
    /// A failed session (malformed frames, disconnect, expired
    /// deadline) is counted and reported, never fatal to the server.
    /// Connections over the concurrency cap are queued or refused per
    /// the [`Admission`] policy. A failed `accept()` is reported as
    /// [`SessionEvent::AcceptError`] and retried after an exponential
    /// backoff; [`MAX_CONSECUTIVE_ACCEPT_ERRORS`] failures in a row end
    /// the loop (returning whatever was aggregated) rather than
    /// spinning on a persistently broken listener.
    pub fn serve_with(
        &self,
        max_sessions: Option<usize>,
        on_event: &(dyn Fn(SessionEvent<'_>) + Sync),
    ) -> AggregateStats {
        let start = Instant::now();
        let checkpoints_evicted_before = self.resumption.evicted();
        // One shared plan for every session this loop admits (fresh or
        // resumed): built at most once per database process-wide, via
        // the configured cache or the global one.
        let plan = (self.fold == FoldStrategy::Precomputed).then(|| {
            let cache: &FoldPlanCache = match &self.plan_cache {
                Some(cache) => cache,
                None => FoldPlanCache::global(),
            };
            cache.get_or_build(&self.db, self.obs.as_ref().map(|o| o.fold_plan()))
        });
        let agg = Mutex::new(AggregateStats::default());
        // Active-session gate for admission control: count + wakeup.
        let gate = (Mutex::new(0usize), Condvar::new());
        std::thread::scope(|scope| {
            let mut accepted = 0usize;
            let mut accept_errors = 0usize;
            for stream in self.listener.incoming() {
                let stream = match stream {
                    Ok(s) => {
                        accept_errors = 0;
                        s
                    }
                    Err(e) => {
                        accept_errors += 1;
                        lock_recover(&agg).accept_errors += 1;
                        if let Some(obs) = &self.obs {
                            obs.accept_errors.inc();
                        }
                        let error = ProtocolError::Transport(TransportError::Io(e.to_string()));
                        on_event(SessionEvent::AcceptError { error: &error });
                        if accept_errors >= MAX_CONSECUTIVE_ACCEPT_ERRORS {
                            break;
                        }
                        std::thread::sleep(accept_backoff(accept_errors));
                        continue;
                    }
                };
                // A shutdown request may arrive as the wake-up
                // connection itself; either way, stop before admitting.
                if self.shutdown.load(Ordering::SeqCst) {
                    drop(stream);
                    break;
                }
                if let Some(max) = self.max_concurrent {
                    let mut active = lock_recover(&gate.0);
                    if *active >= max {
                        match self.admission {
                            Admission::Refuse => {
                                let peer = stream.peer_addr().ok();
                                drop(active);
                                drop(stream); // clean close (FIN)
                                lock_recover(&agg).refused += 1;
                                if let Some(obs) = &self.obs {
                                    obs.refused.inc();
                                }
                                on_event(SessionEvent::Refused { peer });
                                continue;
                            }
                            Admission::Queue => {
                                // Hold the connection; poll the gate so a
                                // shutdown request still gets through.
                                while *active >= max && !self.shutdown.load(Ordering::SeqCst) {
                                    let (g, _timeout) = gate
                                        .1
                                        .wait_timeout(active, Duration::from_millis(50))
                                        .unwrap_or_else(|p| p.into_inner());
                                    active = g;
                                }
                                if self.shutdown.load(Ordering::SeqCst) {
                                    drop(stream);
                                    break;
                                }
                            }
                        }
                    }
                    *active += 1;
                }
                accepted += 1;
                let id = accepted;
                let agg = &agg;
                let gate = &gate;
                let db = &*self.db;
                let fold = self.fold;
                let plan = plan.as_ref();
                let limits = &self.limits;
                let table = &self.resumption;
                let require_shard = self.require_shard;
                let gated = self.max_concurrent.is_some();
                let obs = self.obs.as_ref();
                let fault_hook = self.fault_hook.clone();
                if let Some(obs) = obs {
                    obs.accepted.inc();
                    obs.active.add(1);
                }
                scope.spawn(move || {
                    on_event(SessionEvent::Accepted {
                        session: id,
                        peer: stream.peer_addr().ok(),
                    });
                    let session_start = Instant::now();
                    // Everything the session does — including the chaos
                    // hook and the span guard — runs inside the panic
                    // boundary, so an unwinding session can only reach
                    // the (poison-recovering) accounting below.
                    let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
                        // Records on drop, so evicted/failed sessions
                        // get a span too.
                        let _span =
                            obs.map(|o| o.tracer().span("session").session(id as u64).start());
                        if let Some(hook) = &fault_hook {
                            hook(id);
                        }
                        let wire_metrics = obs.map(|o| o.wire.clone());
                        drive_connection(
                            db,
                            fold,
                            plan,
                            stream,
                            limits,
                            wire_metrics,
                            table,
                            require_shard,
                        )
                    }));
                    match outcome {
                        Ok(out) => {
                            if out.resumed {
                                lock_recover(agg).resumed += 1;
                                if let Some(obs) = obs {
                                    obs.resumed.inc();
                                }
                                on_event(SessionEvent::Resumed { session: id });
                            }
                            match out.result {
                                Ok(()) => {
                                    let stats = &out.stats;
                                    let mut a = lock_recover(agg);
                                    a.sessions += 1;
                                    a.folded += stats.folded;
                                    a.compute += stats.compute;
                                    drop(a);
                                    if let Some(obs) = obs {
                                        obs.completed.inc();
                                        obs.session_seconds
                                            .record_duration(session_start.elapsed());
                                        for batch in &stats.per_batch_compute {
                                            obs.fold_seconds.record_duration(*batch);
                                        }
                                        // The phase histogram and the span
                                        // bridge see the same Duration, so a
                                        // scrape and a reconstructed
                                        // RunReport agree exactly.
                                        obs.server_compute.record_duration(stats.compute);
                                        obs.tracer().record_phase_total(
                                            "server_compute",
                                            pps_obs::Phase::ServerCompute,
                                            Some(id as u64),
                                            stats.compute,
                                        );
                                    }
                                    on_event(SessionEvent::Finished { session: id, stats });
                                }
                                Err(e) if is_eviction(&e) => {
                                    lock_recover(agg).evicted += 1;
                                    if let Some(obs) = obs {
                                        obs.evicted.inc();
                                    }
                                    on_event(SessionEvent::Evicted {
                                        session: id,
                                        error: &e,
                                    });
                                }
                                Err(e) => {
                                    lock_recover(agg).failed += 1;
                                    if let Some(obs) = obs {
                                        obs.failed.inc();
                                    }
                                    on_event(SessionEvent::Failed {
                                        session: id,
                                        error: &e,
                                    });
                                }
                            }
                        }
                        Err(_panic) => {
                            lock_recover(agg).panicked += 1;
                            if let Some(obs) = obs {
                                obs.panicked.inc();
                            }
                            on_event(SessionEvent::Panicked { session: id });
                        }
                    }
                    if let Some(obs) = obs {
                        obs.active.sub(1);
                    }
                    if gated {
                        *lock_recover(&gate.0) -= 1;
                        gate.1.notify_all();
                    }
                });
                if max_sessions.is_some_and(|m| accepted >= m) {
                    break;
                }
            }
        });
        let mut stats = agg.into_inner().unwrap_or_else(|p| p.into_inner());
        stats.wall = start.elapsed();
        stats.checkpoints_evicted = self.resumption.evicted() - checkpoints_evicted_before;
        if let Some(obs) = &self.obs {
            obs.checkpoints_evicted.add(stats.checkpoints_evicted);
        }
        stats
    }
}

/// What one connection's drive produced: whether it continued from a
/// checkpoint, the session's final statistics, and how it ended.
struct DriveOutcome {
    resumed: bool,
    stats: ServerStats,
    result: Result<(), ProtocolError>,
}

/// Pumps frames between the wire and the session until the product has
/// been sent, under the deadlines of `limits`, speaking the resumable
/// dialect: `Hello` is acknowledged with a session ID, the fold state is
/// checkpointed into `table` after every acknowledged batch, and a
/// `Resume` as the first protocol message restores a stored checkpoint.
/// A `ShardHello` before the session starts installs a §3.5 blinding on
/// the accumulator (PROTOCOL.md §11); with `require_shard` set, only
/// `ShardHello`, `Resume` (whose checkpoint carries its own blinding),
/// and `SizeRequest` are accepted until a blinding is installed, and
/// `PlainIndices` is refused outright — that baseline path never folds
/// the blinding in — so the worker can never reply unblinded.
#[allow(clippy::too_many_arguments)]
fn drive_connection(
    db: &Database,
    fold: FoldStrategy,
    plan: Option<&Arc<MultiExpPlan>>,
    stream: TcpStream,
    limits: &SessionLimits,
    metrics: Option<WireMetrics>,
    table: &SessionTable,
    require_shard: bool,
) -> DriveOutcome {
    // `plan` is Some exactly when `fold` is Precomputed; it was built
    // from this very database by the serve loop, so attaching it cannot
    // fail. Sharing it here (instead of letting `with_fold` build one)
    // is the whole point: one digit table serves every session.
    let mut session = match plan {
        Some(plan) => ServerSession::with_fold_plan(db, Arc::clone(plan))
            .expect("plan was built from this database"),
        None => ServerSession::with_fold(db, fold),
    };
    let mut resumed = false;
    let mut ticket: Option<u64> = None;
    let result = (|| {
        let mut wire = TcpWire::new(stream);
        if let Some(metrics) = metrics {
            wire.set_metrics(metrics);
        }
        wire.set_write_timeout(limits.write_timeout)?;
        let deadline = SessionDeadline::new(limits);
        // Two-tier eviction: the per-read socket timeout (re-armed below)
        // catches silent stalls, while the absolute mid-frame deadline
        // catches tricklers that feed a byte per interval to reset it.
        wire.set_recv_deadline(deadline.expires_at());
        while !session.is_done() {
            wire.set_read_timeout(deadline.next_read_timeout()?)?;
            let frame = wire.recv()?;
            if frame.msg_type == MsgType::ShardHello as u8 {
                // Shard handshake: derive this worker's correlated
                // blinding from the pairwise seeds and install it before
                // the session starts. No reply — the client pipelines
                // its next message immediately. On a *resume*, the
                // restored checkpoint's own blinding (the same value —
                // seeds are per-query) supersedes this fresh session.
                let sh = ShardHello::decode(&frame)?;
                let m = pps_bignum::Uint::one().shl(sh.m_bits as usize);
                let r = leg_blinding(&sh.seeds_add, &sh.seeds_sub, &m)?;
                session.set_blinding(r)?;
                continue;
            }
            if require_shard {
                let allowed = match frame.msg_type {
                    // Always acceptable: the handshake itself, a resume
                    // (its checkpoint carries the session's blinding),
                    // and size discovery (reveals only the row count).
                    t if t == MsgType::ShardHello as u8 => true,
                    t if t == MsgType::Resume as u8 => true,
                    t if t == MsgType::SizeRequest as u8 => true,
                    // Never acceptable: the plaintext baseline replies
                    // with the raw partition sum and the blinding never
                    // touches that path — per-index probes would read
                    // the whole partition out unblinded.
                    t if t == MsgType::PlainIndices as u8 => false,
                    // Everything else only once a blinding is installed.
                    _ => session.has_blinding(),
                };
                if !allowed {
                    return Err(ProtocolError::UnexpectedMessage(
                        "shard worker accepts only blinded queries",
                    ));
                }
            }
            if frame.msg_type == MsgType::Resume as u8 {
                if !session.is_awaiting_hello() {
                    return Err(ProtocolError::UnexpectedMessage("resume mid-session"));
                }
                let req = Resume::decode(&frame)?;
                // `take` makes the grant exclusive; a checkpoint that
                // fails validation against this database is discarded,
                // not granted.
                let restored = table.take(req.session_id).and_then(|cp| match plan {
                    Some(plan) => ServerSession::resume_with_plan(db, Arc::clone(plan), cp).ok(),
                    None => ServerSession::resume(db, fold, cp).ok(),
                });
                match restored {
                    Some(restored) => {
                        session = restored;
                        resumed = true;
                        ticket = Some(req.session_id);
                        let next_seq = session.next_seq().unwrap_or(0);
                        // Re-store at once: a disconnect between the
                        // grant and the next batch must not lose the
                        // checkpointed work.
                        if let Some(cp) = session.checkpoint() {
                            table.store(req.session_id, cp);
                        }
                        wire.send(
                            ResumeAck {
                                granted: true,
                                next_seq,
                            }
                            .encode()?,
                        )?;
                    }
                    None => {
                        // Stale / evicted / unknown: the client falls
                        // back to a fresh Hello on this connection.
                        wire.send(
                            ResumeAck {
                                granted: false,
                                next_seq: 0,
                            }
                            .encode()?,
                        )?;
                    }
                }
                continue;
            }
            let fresh_hello = frame.msg_type == MsgType::Hello as u8 && session.is_awaiting_hello();
            let reply = session.on_frame(&frame)?;
            if fresh_hello {
                let id = table.allocate();
                ticket = Some(id);
                wire.send(HelloAck { session_id: id }.encode()?)?;
            }
            if let (Some(id), Some(cp)) = (ticket, session.checkpoint()) {
                table.store(id, cp);
            }
            if let Some(reply) = reply {
                wire.send(reply)?;
            }
        }
        // Clean completion: the checkpoint is spent, not evicted.
        if let Some(id) = ticket {
            table.remove(id);
        }
        Ok(())
    })();
    DriveOutcome {
        resumed,
        stats: session.stats().clone(),
        result,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{IndexSource, SumClient};
    use crate::data::Selection;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn query(addr: SocketAddr, selection: &Selection, seed: u64) -> u128 {
        let mut rng = StdRng::seed_from_u64(seed);
        let client = SumClient::generate(128, &mut rng).unwrap();
        let mut wire = TcpWire::connect(&addr.to_string()).unwrap();
        let mut source = IndexSource::Fresh(&mut rng);
        client
            .send_query(&mut wire, selection, 16, &mut source)
            .unwrap();
        let (sum, _) = client.receive_result(&mut wire).unwrap();
        sum.to_u128().unwrap()
    }

    #[test]
    fn serves_sequential_sessions_and_aggregates() {
        let db = Arc::new(Database::new(vec![10, 20, 30, 40, 50]).unwrap());
        let server =
            TcpServer::bind(Arc::clone(&db), "127.0.0.1:0", FoldStrategy::MultiExp).unwrap();
        let addr = server.local_addr().unwrap();

        let clients = std::thread::spawn(move || {
            let a = query(addr, &Selection::from_indices(5, &[0, 2]).unwrap(), 1);
            let b = query(addr, &Selection::from_indices(5, &[4]).unwrap(), 2);
            (a, b)
        });
        let stats = server.serve(Some(2));
        let (a, b) = clients.join().unwrap();
        assert_eq!(a, 40);
        assert_eq!(b, 50);
        assert_eq!(stats.sessions, 2);
        assert_eq!(stats.failed, 0);
        assert_eq!(stats.refused, 0);
        assert_eq!(stats.folded, 10, "both sessions stream all 5 indices");
        assert!(stats.throughput() > 0.0);
    }

    #[test]
    fn failed_session_is_counted_not_fatal() {
        let db = Arc::new(Database::new(vec![1, 2, 3]).unwrap());
        let server =
            TcpServer::bind(Arc::clone(&db), "127.0.0.1:0", FoldStrategy::default()).unwrap();
        let addr = server.local_addr().unwrap();

        let events = Mutex::new(Vec::new());
        let clients = std::thread::spawn(move || {
            // A rude client: connects and hangs up without a Hello.
            drop(TcpWire::connect(&addr.to_string()).unwrap());
            query(addr, &Selection::from_indices(3, &[1, 2]).unwrap(), 3)
        });
        let stats = server.serve_with(Some(2), &|e| {
            let tag = match e {
                SessionEvent::Accepted { .. } => "accepted",
                SessionEvent::Finished { .. } => "finished",
                SessionEvent::Failed { .. } => "failed",
                SessionEvent::Evicted { .. } => "evicted",
                SessionEvent::Panicked { .. } => "panicked",
                SessionEvent::Resumed { .. } => "resumed",
                SessionEvent::Refused { .. } => "refused",
                SessionEvent::AcceptError { .. } => "accept_error",
            };
            events.lock().unwrap().push(tag);
        });
        assert_eq!(clients.join().unwrap(), 5);
        assert_eq!(stats.sessions, 1);
        assert_eq!(stats.failed, 1);
        assert_eq!(stats.folded, 3);
        let events = events.into_inner().unwrap();
        assert_eq!(events.iter().filter(|t| **t == "accepted").count(), 2);
        assert_eq!(events.iter().filter(|t| **t == "finished").count(), 1);
        assert_eq!(events.iter().filter(|t| **t == "failed").count(), 1);
    }

    #[test]
    fn accept_backoff_is_exponential_and_capped() {
        assert_eq!(accept_backoff(1), Duration::from_millis(50));
        assert_eq!(accept_backoff(2), Duration::from_millis(100));
        assert_eq!(accept_backoff(3), Duration::from_millis(200));
        assert_eq!(accept_backoff(4), Duration::from_millis(400));
        assert_eq!(accept_backoff(5), Duration::from_millis(800));
        assert_eq!(accept_backoff(6), Duration::from_secs(1), "capped");
        assert_eq!(accept_backoff(100), Duration::from_secs(1));
        // Eight consecutive failures now wait > 3.5 s in total, versus
        // 400 ms with the old fixed 50 ms pause.
        let total: Duration = (1..MAX_CONSECUTIVE_ACCEPT_ERRORS).map(accept_backoff).sum();
        assert!(total > Duration::from_secs(3));
    }

    #[test]
    fn session_deadline_shrinks_read_timeout_then_expires() {
        let limits = SessionLimits {
            read_timeout: Some(Duration::from_secs(30)),
            write_timeout: None,
            session_deadline: Some(Duration::from_millis(80)),
        };
        let deadline = SessionDeadline::new(&limits);
        let first = deadline.next_read_timeout().unwrap().unwrap();
        assert!(first <= Duration::from_millis(80), "clamped to remaining");
        std::thread::sleep(Duration::from_millis(100));
        assert_eq!(deadline.next_read_timeout(), Err(TransportError::TimedOut));
    }

    #[test]
    fn no_deadline_passes_read_timeout_through() {
        let deadline = SessionDeadline::new(&SessionLimits::unlimited());
        assert_eq!(deadline.next_read_timeout(), Ok(None));
        let limits = SessionLimits {
            read_timeout: Some(Duration::from_secs(7)),
            write_timeout: None,
            session_deadline: None,
        };
        assert_eq!(
            SessionDeadline::new(&limits).next_read_timeout(),
            Ok(Some(Duration::from_secs(7)))
        );
    }

    #[test]
    fn shutdown_stops_an_unbounded_serve() {
        let db = Arc::new(Database::new(vec![4, 5, 6]).unwrap());
        let server =
            TcpServer::bind(Arc::clone(&db), "127.0.0.1:0", FoldStrategy::default()).unwrap();
        let addr = server.local_addr().unwrap();
        let handle = server.shutdown_handle().unwrap();
        assert!(!handle.is_shutdown());

        let server_thread = std::thread::spawn(move || server.serve(None));
        // A real session completes while the server runs unbounded.
        let sum = query(addr, &Selection::from_indices(3, &[0, 2]).unwrap(), 9);
        assert_eq!(sum, 10);

        handle.shutdown();
        let stats = server_thread.join().unwrap();
        assert_eq!(stats.sessions, 1);
        assert_eq!(stats.failed, 0);
        assert!(handle.is_shutdown());
        // Idempotent: a second call is a no-op, not a hang.
        handle.shutdown();
    }

    #[test]
    fn shutdown_before_serve_returns_immediately() {
        let db = Arc::new(Database::new(vec![1]).unwrap());
        let server =
            TcpServer::bind(Arc::clone(&db), "127.0.0.1:0", FoldStrategy::default()).unwrap();
        let handle = server.shutdown_handle().unwrap();
        handle.shutdown();
        let stats = server.serve(None);
        assert_eq!(stats.sessions, 0);
    }

    #[test]
    fn observed_server_records_counters_and_compute_histogram() {
        use crate::obs::ServerObs;
        use pps_obs::{Registry, RingCollector, Tracer};

        let registry = Arc::new(Registry::new());
        let ring = Arc::new(RingCollector::new(64));
        let obs = ServerObs::with_tracer(
            Arc::clone(&registry),
            Tracer::new(ring.clone() as Arc<dyn pps_obs::Collector>),
        );
        let db = Arc::new(Database::new(vec![10, 20, 30]).unwrap());
        let server = TcpServer::bind(Arc::clone(&db), "127.0.0.1:0", FoldStrategy::default())
            .unwrap()
            .with_observability(obs.clone());
        let addr = server.local_addr().unwrap();

        let clients = std::thread::spawn(move || {
            query(addr, &Selection::from_indices(3, &[0, 2]).unwrap(), 11)
        });
        let stats = server.serve(Some(1));
        assert_eq!(clients.join().unwrap(), 40);
        assert_eq!(stats.sessions, 1);

        assert_eq!(obs.accepted.get(), 1);
        assert_eq!(obs.completed.get(), 1);
        assert_eq!(obs.active.get(), 0, "gauge returns to zero");
        assert_eq!(obs.session_seconds.count(), 1);
        assert_eq!(
            obs.server_compute.sum(),
            stats.compute,
            "phase histogram carries the exact compute duration"
        );
        assert!(obs.wire.bytes_received.get() > 0);
        assert!(obs.wire.bytes_sent.get() > 0);

        // One session span plus one synthesized server_compute span.
        let spans = ring.spans();
        assert_eq!(spans.len(), 2);
        assert!(spans.iter().any(|s| s.name == "session"));
        let compute_span = spans.iter().find(|s| s.name == "server_compute").unwrap();
        assert_eq!(compute_span.duration(), stats.compute);

        let text = registry.render_prometheus();
        assert!(text.contains("pps_sessions_completed_total 1"));
        assert!(text.contains(r#"pps_phase_duration_seconds_count{phase="server_compute"} 1"#));
    }

    #[test]
    fn precomputed_server_builds_one_plan_and_reuses_it() {
        use crate::obs::ServerObs;
        use pps_obs::Registry;

        let registry = Arc::new(Registry::new());
        let obs = ServerObs::new(Arc::clone(&registry));
        let db = Arc::new(Database::new(vec![10, 20, 30, 40]).unwrap());
        let cache = Arc::new(FoldPlanCache::new(2));
        let server = TcpServer::bind(Arc::clone(&db), "127.0.0.1:0", FoldStrategy::Precomputed)
            .unwrap()
            .with_fold_plan_cache(Arc::clone(&cache))
            .with_observability(obs.clone());
        let addr = server.local_addr().unwrap();

        // Two separate serve loops: the first builds the plan, the
        // second finds it in the cache.
        for (round, seed) in [(0u64, 31u64), (1, 32)] {
            let clients = std::thread::spawn(move || {
                query(addr, &Selection::from_indices(4, &[1, 3]).unwrap(), seed)
            });
            let stats = server.serve(Some(1));
            assert_eq!(clients.join().unwrap(), 60);
            assert_eq!(stats.sessions, 1, "round {round}");
        }

        assert_eq!(obs.fold_plan.builds.get(), 1, "built once, then cached");
        assert_eq!(obs.fold_plan.hits.get(), 1);
        assert!(obs.fold_plan.bytes.get() > 0);
        assert_eq!(obs.fold_plan.build_seconds.count(), 1);

        let text = registry.render_prometheus();
        assert!(text.contains("pps_fold_plan_builds_total 1"));
        assert!(text.contains("pps_fold_plan_hits_total 1"));
    }

    #[test]
    fn queue_admission_serves_everyone_eventually() {
        let db = Arc::new(Database::new(vec![7, 8, 9]).unwrap());
        let server = TcpServer::bind(Arc::clone(&db), "127.0.0.1:0", FoldStrategy::default())
            .unwrap()
            .with_admission(1, Admission::Queue);
        let addr = server.local_addr().unwrap();
        let sel = Selection::from_indices(3, &[0, 1, 2]).unwrap();

        let clients = std::thread::spawn(move || {
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..3)
                    .map(|i| {
                        let sel = &sel;
                        scope.spawn(move || query(addr, sel, 20 + i))
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().unwrap())
                    .collect::<Vec<_>>()
            })
        });
        let stats = server.serve(Some(3));
        assert_eq!(clients.join().unwrap(), vec![24, 24, 24]);
        assert_eq!(stats.sessions, 3);
        assert_eq!(stats.refused, 0);
    }
}
