//! Concurrent multi-session server runtime over real TCP.
//!
//! [`ServerSession`] is a message-driven state machine with no opinion
//! about scheduling; this module supplies the deployment shape the paper
//! assumes for its multi-client experiments (§3.5): one listening socket,
//! one thread per accepted connection, all sessions sharing a single
//! immutable [`Database`] behind an [`Arc`]. Each connection drives its
//! own session to completion over the blocking
//! [`TcpWire`](pps_transport::TcpWire), so a slow client never stalls the
//! others, and per-session statistics are aggregated into an
//! [`AggregateStats`] reported when the accept loop ends.
//!
//! The figures harness deliberately does **not** use this runtime — the
//! simulated link is the measurement vehicle there — but the CLI's
//! `serve` subcommand and the concurrent end-to-end tests run on it.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use pps_transport::{TcpWire, TransportError, Wire};

use crate::data::Database;
use crate::error::ProtocolError;
use crate::server::{FoldStrategy, ServerSession, ServerStats};

/// Statistics aggregated across every session the runtime served.
#[derive(Clone, Debug, Default)]
pub struct AggregateStats {
    /// Sessions that ran to a clean protocol completion.
    pub sessions: usize,
    /// Sessions that ended in a transport or protocol error.
    pub failed: usize,
    /// Index ciphertexts folded across all completed sessions.
    pub folded: usize,
    /// Server compute time summed across completed sessions (exceeds
    /// wall time when sessions overlap on separate cores).
    pub compute: Duration,
    /// Wall-clock time the accept loop ran.
    pub wall: Duration,
}

impl AggregateStats {
    /// Folding throughput in index ciphertexts per second of server
    /// compute time. Zero when nothing was folded.
    pub fn throughput(&self) -> f64 {
        if self.compute.is_zero() {
            0.0
        } else {
            self.folded as f64 / self.compute.as_secs_f64()
        }
    }
}

/// Lifecycle notifications delivered to [`TcpServer::serve_with`]
/// observers. Events for different sessions arrive from different
/// threads, hence the `Sync` bound on the callback.
#[derive(Debug)]
pub enum SessionEvent<'a> {
    /// A connection was accepted and assigned a 1-based session id.
    Accepted {
        /// Session id (accept order).
        session: usize,
        /// Peer address, when the socket can report one.
        peer: Option<SocketAddr>,
    },
    /// The session ran to completion.
    Finished {
        /// Session id (accept order).
        session: usize,
        /// Final per-session statistics.
        stats: &'a ServerStats,
    },
    /// The session died with an error (the server keeps accepting).
    Failed {
        /// Session id (accept order).
        session: usize,
        /// What went wrong.
        error: &'a ProtocolError,
    },
    /// `accept()` itself failed. The server backs off briefly and keeps
    /// listening, but gives up after
    /// [`MAX_CONSECUTIVE_ACCEPT_ERRORS`] failures in a row (a listener
    /// stuck in a persistent error state would otherwise busy-loop).
    AcceptError {
        /// The accept error.
        error: &'a ProtocolError,
    },
}

/// Consecutive `accept()` failures after which the accept loop stops
/// instead of retrying; a healthy listener resets the count on every
/// successful accept.
pub const MAX_CONSECUTIVE_ACCEPT_ERRORS: usize = 8;

/// Pause between retries after a failed `accept()`, so transient error
/// states (e.g. EMFILE until a session releases its socket) don't spin
/// a core.
const ACCEPT_ERROR_BACKOFF: Duration = Duration::from_millis(50);

/// A concurrent selected-sum server: accept loop plus thread-per-session
/// dispatch over a shared database.
pub struct TcpServer {
    listener: TcpListener,
    db: Arc<Database>,
    fold: FoldStrategy,
}

impl TcpServer {
    /// Binds a listening socket for `db`. Use `"127.0.0.1:0"` to let the
    /// OS pick an ephemeral port (see [`TcpServer::local_addr`]).
    ///
    /// # Errors
    /// [`ProtocolError::Transport`] when the bind fails.
    pub fn bind(db: Arc<Database>, addr: &str, fold: FoldStrategy) -> Result<Self, ProtocolError> {
        let listener = TcpListener::bind(addr)
            .map_err(|e| ProtocolError::Transport(TransportError::Io(e.to_string())))?;
        Ok(TcpServer { listener, db, fold })
    }

    /// The bound address (the actual port, when bound to port 0).
    ///
    /// # Errors
    /// [`ProtocolError::Transport`] when the OS cannot report it.
    pub fn local_addr(&self) -> Result<SocketAddr, ProtocolError> {
        self.listener
            .local_addr()
            .map_err(|e| ProtocolError::Transport(TransportError::Io(e.to_string())))
    }

    /// Serves sessions without observing their lifecycle. See
    /// [`TcpServer::serve_with`].
    pub fn serve(&self, max_sessions: Option<usize>) -> AggregateStats {
        self.serve_with(max_sessions, &|_| {})
    }

    /// Accepts connections until `max_sessions` have been accepted
    /// (`None` = forever), driving each on its own thread against the
    /// shared database, then waits for every in-flight session to finish
    /// and returns the aggregate. `on_event` fires from session threads
    /// as connections arrive and complete.
    ///
    /// A failed session (malformed frames, disconnect) is counted and
    /// reported, never fatal to the server. A failed `accept()` is
    /// reported as [`SessionEvent::AcceptError`] and retried after a
    /// short backoff; [`MAX_CONSECUTIVE_ACCEPT_ERRORS`] failures in a
    /// row end the loop (returning whatever was aggregated) rather than
    /// spinning on a persistently broken listener.
    pub fn serve_with(
        &self,
        max_sessions: Option<usize>,
        on_event: &(dyn Fn(SessionEvent<'_>) + Sync),
    ) -> AggregateStats {
        let start = Instant::now();
        let agg = Mutex::new(AggregateStats::default());
        std::thread::scope(|scope| {
            let mut accepted = 0usize;
            let mut accept_errors = 0usize;
            for stream in self.listener.incoming() {
                let stream = match stream {
                    Ok(s) => {
                        accept_errors = 0;
                        s
                    }
                    Err(e) => {
                        accept_errors += 1;
                        let error = ProtocolError::Transport(TransportError::Io(e.to_string()));
                        on_event(SessionEvent::AcceptError { error: &error });
                        if accept_errors >= MAX_CONSECUTIVE_ACCEPT_ERRORS {
                            break;
                        }
                        std::thread::sleep(ACCEPT_ERROR_BACKOFF);
                        continue;
                    }
                };
                accepted += 1;
                let id = accepted;
                let agg = &agg;
                let db = &*self.db;
                let fold = self.fold;
                scope.spawn(move || {
                    on_event(SessionEvent::Accepted {
                        session: id,
                        peer: stream.peer_addr().ok(),
                    });
                    let mut session = ServerSession::with_fold(db, fold);
                    match drive(&mut session, stream) {
                        Ok(()) => {
                            let stats = session.stats();
                            let mut a = agg.lock().expect("stats lock");
                            a.sessions += 1;
                            a.folded += stats.folded;
                            a.compute += stats.compute;
                            drop(a);
                            on_event(SessionEvent::Finished { session: id, stats });
                        }
                        Err(e) => {
                            agg.lock().expect("stats lock").failed += 1;
                            on_event(SessionEvent::Failed {
                                session: id,
                                error: &e,
                            });
                        }
                    }
                });
                if max_sessions.is_some_and(|m| accepted >= m) {
                    break;
                }
            }
        });
        let mut stats = agg.into_inner().expect("stats lock");
        stats.wall = start.elapsed();
        stats
    }
}

/// Pumps frames between the wire and the session until the product has
/// been sent.
fn drive(session: &mut ServerSession<'_>, stream: TcpStream) -> Result<(), ProtocolError> {
    let mut wire = TcpWire::new(stream);
    while !session.is_done() {
        let frame = wire.recv()?;
        if let Some(reply) = session.on_frame(&frame)? {
            wire.send(reply)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{IndexSource, SumClient};
    use crate::data::Selection;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn query(addr: SocketAddr, selection: &Selection, seed: u64) -> u128 {
        let mut rng = StdRng::seed_from_u64(seed);
        let client = SumClient::generate(128, &mut rng).unwrap();
        let mut wire = TcpWire::connect(&addr.to_string()).unwrap();
        let mut source = IndexSource::Fresh(&mut rng);
        client
            .send_query(&mut wire, selection, 16, &mut source)
            .unwrap();
        let (sum, _) = client.receive_result(&mut wire).unwrap();
        sum.to_u128().unwrap()
    }

    #[test]
    fn serves_sequential_sessions_and_aggregates() {
        let db = Arc::new(Database::new(vec![10, 20, 30, 40, 50]).unwrap());
        let server =
            TcpServer::bind(Arc::clone(&db), "127.0.0.1:0", FoldStrategy::MultiExp).unwrap();
        let addr = server.local_addr().unwrap();

        let clients = std::thread::spawn(move || {
            let a = query(addr, &Selection::from_indices(5, &[0, 2]).unwrap(), 1);
            let b = query(addr, &Selection::from_indices(5, &[4]).unwrap(), 2);
            (a, b)
        });
        let stats = server.serve(Some(2));
        let (a, b) = clients.join().unwrap();
        assert_eq!(a, 40);
        assert_eq!(b, 50);
        assert_eq!(stats.sessions, 2);
        assert_eq!(stats.failed, 0);
        assert_eq!(stats.folded, 10, "both sessions stream all 5 indices");
        assert!(stats.throughput() > 0.0);
    }

    #[test]
    fn failed_session_is_counted_not_fatal() {
        let db = Arc::new(Database::new(vec![1, 2, 3]).unwrap());
        let server =
            TcpServer::bind(Arc::clone(&db), "127.0.0.1:0", FoldStrategy::default()).unwrap();
        let addr = server.local_addr().unwrap();

        let events = Mutex::new(Vec::new());
        let clients = std::thread::spawn(move || {
            // A rude client: connects and hangs up without a Hello.
            drop(TcpWire::connect(&addr.to_string()).unwrap());
            query(addr, &Selection::from_indices(3, &[1, 2]).unwrap(), 3)
        });
        let stats = server.serve_with(Some(2), &|e| {
            let tag = match e {
                SessionEvent::Accepted { .. } => "accepted",
                SessionEvent::Finished { .. } => "finished",
                SessionEvent::Failed { .. } => "failed",
                SessionEvent::AcceptError { .. } => "accept_error",
            };
            events.lock().unwrap().push(tag);
        });
        assert_eq!(clients.join().unwrap(), 5);
        assert_eq!(stats.sessions, 1);
        assert_eq!(stats.failed, 1);
        assert_eq!(stats.folded, 3);
        let events = events.into_inner().unwrap();
        assert_eq!(events.iter().filter(|t| **t == "accepted").count(), 2);
        assert_eq!(events.iter().filter(|t| **t == "finished").count(), 1);
        assert_eq!(events.iter().filter(|t| **t == "failed").count(), 1);
    }
}
