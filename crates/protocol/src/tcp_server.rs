//! Concurrent multi-session server runtime over real TCP.
//!
//! [`ServerSession`] is a message-driven state machine with no opinion
//! about scheduling; this module supplies the deployment shape the paper
//! assumes for its multi-client experiments (§3.5): one listening socket,
//! one thread per accepted connection, all sessions sharing a single
//! immutable [`Database`] behind an [`Arc`]. Each connection drives its
//! own session to completion over the blocking
//! [`TcpWire`](pps_transport::TcpWire), so a slow client never stalls the
//! others, and per-session statistics are aggregated into an
//! [`AggregateStats`] reported when the accept loop ends.
//!
//! # Fault tolerance
//!
//! The paper's own long-distance runs (§3.1, a 56 Kbps Chicago↔Hoboken
//! modem link) are exactly the regime where real deployments stall and
//! half-close, so the runtime defends itself:
//!
//! * **Wire deadlines** — every session runs under [`SessionLimits`]:
//!   per-read and per-write socket timeouts plus a whole-session
//!   [`SessionDeadline`]. A slow-loris client that trickles bytes to
//!   defeat the per-read timeout still hits the session deadline; either
//!   way the session thread exits with
//!   [`TransportError::TimedOut`] instead of being pinned forever.
//! * **Admission control** — [`TcpServer::with_admission`] caps
//!   concurrent sessions; excess connections are either queued until a
//!   slot frees or refused with a clean close (counted in
//!   [`AggregateStats::refused`]).
//! * **Graceful shutdown** — a [`ShutdownHandle`] stops a
//!   `serve(None)` loop from another thread: it raises a flag and
//!   unblocks the accept call with a throwaway self-connection, then
//!   the runtime drains in-flight sessions before returning.
//! * **Accept backoff** — a persistently erroring listener backs off
//!   exponentially (50 ms doubling to ~1 s) and gives up after
//!   [`MAX_CONSECUTIVE_ACCEPT_ERRORS`] failures in a row.
//! * **Session resumption** — every `Hello` is answered with a
//!   `HelloAck { session_id }`, and the session's fold state is
//!   checkpointed into a bounded, TTL-evicted
//!   [`SessionTable`](crate::resume::SessionTable) after each
//!   acknowledged batch. A client that lost its connection sends
//!   `Resume { session_id, .. }` on a fresh connection and continues
//!   from the last acked chunk instead of re-streaming the whole index
//!   vector (PROTOCOL.md §10).
//! * **Panic isolation** — each session thread runs inside
//!   `catch_unwind`, and every stats/gate lock recovers from poison. A
//!   bug (or deliberately hostile input) that panics one session is
//!   counted as [`SessionEvent::Panicked`] while concurrent sessions,
//!   admission, and the final aggregate all stay intact.
//!
//! The figures harness deliberately does **not** use this runtime — the
//! simulated link is the measurement vehicle there — but the CLI's
//! `serve` subcommand and the concurrent end-to-end tests run on it.

use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, SocketAddr, TcpListener, TcpStream};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use pps_bignum::MultiExpPlan;
use pps_transport::{TcpWire, TransportError, Wire, WireMetrics};

use crate::data::Database;
use crate::error::ProtocolError;
use crate::flow::SessionFlow;
use crate::obs::ServerObs;
use crate::plan::FoldPlanCache;
use crate::resume::{ResumptionConfig, SessionTable};
use crate::server::{FoldStrategy, ServerStats};

/// Locks a mutex, recovering from poison. Every value guarded in this
/// module (aggregate counters, the admission gate count) is valid at
/// every point a panic can unwind through, so inheriting the data is
/// always safe — and refusing would let one panicked session wedge
/// admission and final stats for the whole server (the exact failure
/// the crash-containment layer exists to prevent).
pub(crate) fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

/// Statistics aggregated across every session the runtime served.
///
/// Sessions that did not complete are split by cause — refused by
/// admission control, evicted on a deadline, or failed with any other
/// error — so a throughput report can distinguish an overloaded server
/// (refusals), a hostile or wedged client population (evictions), and
/// genuine protocol faults (failures).
#[derive(Clone, Debug, Default)]
pub struct AggregateStats {
    /// Sessions that ran to a clean protocol completion.
    pub sessions: usize,
    /// Sessions that ended in a transport or protocol error *other*
    /// than a deadline eviction (those are counted in `evicted`).
    pub failed: usize,
    /// Connections refused by admission control before a session
    /// started.
    pub refused: usize,
    /// Sessions evicted for exceeding a read timeout or the
    /// whole-session deadline ([`TransportError::TimedOut`]).
    pub evicted: usize,
    /// Sessions whose thread panicked. The panic was contained
    /// (`catch_unwind` + poison-recovering locks); every other counter
    /// in this struct is still exact.
    pub panicked: usize,
    /// Sessions that continued from a stored checkpoint after the
    /// client reconnected with `Resume`.
    pub resumed: usize,
    /// Fold checkpoints dropped by the session table under capacity
    /// pressure or TTL expiry (clean completions are not counted).
    pub checkpoints_evicted: u64,
    /// `accept()` failures (no session was ever assigned).
    pub accept_errors: usize,
    /// Connections that entered the bounded admission queue (whether
    /// they were later admitted, evicted while waiting, or dropped by
    /// shutdown).
    pub queued: usize,
    /// Highest number of simultaneously admitted sessions observed.
    pub peak_active: usize,
    /// Index ciphertexts folded across all completed sessions.
    pub folded: usize,
    /// Server compute time summed across completed sessions (exceeds
    /// wall time when sessions overlap on separate cores).
    pub compute: Duration,
    /// Wall-clock time the accept loop ran.
    pub wall: Duration,
}

impl AggregateStats {
    /// Folding throughput in index ciphertexts per second of server
    /// compute time. Zero when nothing was folded.
    pub fn throughput(&self) -> f64 {
        if self.compute.is_zero() {
            0.0
        } else {
            self.folded as f64 / self.compute.as_secs_f64()
        }
    }

    /// Connections that did not complete a session, by any cause:
    /// `failed + refused + evicted + panicked`.
    pub fn unserved(&self) -> usize {
        self.failed + self.refused + self.evicted + self.panicked
    }
}

/// Whether a session error is a deadline eviction (the runtime timed
/// the peer out) rather than a fault of the peer's own making.
pub(crate) fn is_eviction(error: &ProtocolError) -> bool {
    matches!(error, ProtocolError::Transport(TransportError::TimedOut))
}

/// The per-phase breakdown attached to a `slow_query` event: wall time,
/// fold compute, the remainder (wire wait + framing), and work volume.
pub(crate) fn slow_query_detail(wall: Duration, stats: &crate::server::ServerStats) -> String {
    let wait = wall.saturating_sub(stats.compute);
    format!(
        "wall_ms={:.3} compute_ms={:.3} wire_wait_ms={:.3} folded={}",
        wall.as_secs_f64() * 1e3,
        stats.compute.as_secs_f64() * 1e3,
        wait.as_secs_f64() * 1e3,
        stats.folded,
    )
}

/// Per-session I/O limits enforced by the connection driver.
///
/// `None` disables the corresponding deadline (the pre-hardening
/// behavior); the defaults are deliberately generous so healthy clients
/// on slow links never trip them, while a wedged peer cannot pin a
/// server thread forever.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SessionLimits {
    /// Longest a single `recv` may wait for bytes before the session
    /// fails with [`TransportError::TimedOut`].
    pub read_timeout: Option<Duration>,
    /// Longest a single `send` may block on a full socket buffer.
    pub write_timeout: Option<Duration>,
    /// Wall-clock budget for the whole session, evicting slow-loris
    /// clients that trickle bytes to defeat the per-read timeout.
    pub session_deadline: Option<Duration>,
}

impl Default for SessionLimits {
    /// 30 s per read, 30 s per write, 5 min per session.
    fn default() -> Self {
        SessionLimits {
            read_timeout: Some(Duration::from_secs(30)),
            write_timeout: Some(Duration::from_secs(30)),
            session_deadline: Some(Duration::from_secs(300)),
        }
    }
}

impl SessionLimits {
    /// No deadlines at all (tests that deliberately stall need this).
    pub fn unlimited() -> Self {
        SessionLimits {
            read_timeout: None,
            write_timeout: None,
            session_deadline: None,
        }
    }
}

/// Tracks one session's wall-clock budget and derives the read timeout
/// to arm before each `recv`: the per-read limit, shortened to whatever
/// remains of the session deadline.
#[derive(Debug)]
pub struct SessionDeadline {
    expires: Option<Instant>,
    read_timeout: Option<Duration>,
    clock: pps_obs::SharedClock,
}

impl SessionDeadline {
    /// Starts the clock on a session governed by `limits`.
    pub fn new(limits: &SessionLimits) -> Self {
        Self::with_clock(limits, pps_obs::real_clock())
    }

    /// [`SessionDeadline::new`] against an injected time source, so a
    /// simulated session's budget expires in virtual time.
    pub fn with_clock(limits: &SessionLimits, clock: pps_obs::SharedClock) -> Self {
        SessionDeadline {
            expires: limits.session_deadline.map(|d| clock.now() + d),
            read_timeout: limits.read_timeout,
            clock,
        }
    }

    /// The absolute instant the session expires, if it has one — armed
    /// on the wire as a mid-frame receive deadline so a byte-trickling
    /// peer cannot reset the clock.
    pub fn expires_at(&self) -> Option<Instant> {
        self.expires
    }

    /// The timeout to arm before the next read.
    ///
    /// # Errors
    /// [`TransportError::TimedOut`] once the session deadline has
    /// passed — the caller must abandon the session, not read again.
    pub fn next_read_timeout(&self) -> Result<Option<Duration>, TransportError> {
        match self.expires {
            None => Ok(self.read_timeout),
            Some(deadline) => {
                let remaining = deadline.saturating_duration_since(self.clock.now());
                if remaining.is_zero() {
                    return Err(TransportError::TimedOut);
                }
                Ok(Some(
                    self.read_timeout.map_or(remaining, |t| t.min(remaining)),
                ))
            }
        }
    }
}

/// What to do with a new connection when every concurrency slot is
/// taken (see [`TcpServer::with_admission`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Admission {
    /// Close the connection immediately; the client observes a clean
    /// disconnect and may retry with backoff.
    Refuse,
    /// Hold the connection unserviced until a running session finishes.
    Queue,
}

/// Lifecycle notifications delivered to [`TcpServer::serve_with`]
/// observers. Events for different sessions arrive from different
/// threads, hence the `Sync` bound on the callback.
#[derive(Debug)]
pub enum SessionEvent<'a> {
    /// A connection was accepted and assigned a 1-based session id.
    Accepted {
        /// Session id (accept order).
        session: usize,
        /// Peer address, when the socket can report one.
        peer: Option<SocketAddr>,
    },
    /// The session ran to completion.
    Finished {
        /// Session id (accept order).
        session: usize,
        /// Final per-session statistics.
        stats: &'a ServerStats,
    },
    /// The session died with a non-eviction error (the server keeps
    /// accepting).
    Failed {
        /// Session id (accept order).
        session: usize,
        /// What went wrong.
        error: &'a ProtocolError,
    },
    /// The session was evicted for exceeding a read timeout or the
    /// whole-session deadline.
    Evicted {
        /// Session id (accept order).
        session: usize,
        /// The timeout error that evicted it.
        error: &'a ProtocolError,
    },
    /// The session's thread panicked; the panic was contained and the
    /// server keeps accepting.
    Panicked {
        /// Session id (accept order).
        session: usize,
    },
    /// The session continued from a stored checkpoint (the client
    /// reconnected with `Resume`). Fires before the session's terminal
    /// event; the same session id later finishes, fails, or is evicted.
    Resumed {
        /// Session id (accept order) of the *new* connection.
        session: usize,
    },
    /// Admission control turned the connection away before a session
    /// started (no session id is assigned).
    Refused {
        /// Peer address, when the socket can report one.
        peer: Option<SocketAddr>,
    },
    /// `accept()` itself failed. The server backs off (exponentially,
    /// 50 ms doubling to ~1 s) and keeps listening, but gives up after
    /// [`MAX_CONSECUTIVE_ACCEPT_ERRORS`] failures in a row (a listener
    /// stuck in a persistent error state would otherwise busy-loop).
    AcceptError {
        /// The accept error.
        error: &'a ProtocolError,
    },
}

/// Consecutive `accept()` failures after which the accept loop stops
/// instead of retrying; a healthy listener resets the count on every
/// successful accept.
pub const MAX_CONSECUTIVE_ACCEPT_ERRORS: usize = 8;

/// First backoff after a failed `accept()`; doubles per consecutive
/// failure up to [`ACCEPT_ERROR_BACKOFF_MAX`].
const ACCEPT_ERROR_BACKOFF_BASE: Duration = Duration::from_millis(50);

/// Backoff ceiling for persistent accept errors.
const ACCEPT_ERROR_BACKOFF_MAX: Duration = Duration::from_secs(1);

/// Exponential accept-error backoff: 50 ms after the first failure,
/// doubling per consecutive failure, capped at ~1 s.
pub(crate) fn accept_backoff(consecutive_errors: usize) -> Duration {
    let doublings = consecutive_errors.saturating_sub(1).min(5) as u32;
    ACCEPT_ERROR_BACKOFF_BASE
        .saturating_mul(1u32 << doublings)
        .min(ACCEPT_ERROR_BACKOFF_MAX)
}

/// Stops a running [`TcpServer`] accept loop from another thread.
///
/// Cloneable and cheap; raising shutdown is idempotent. The handle
/// unblocks a pending blocking `accept()` with a throwaway loopback
/// connection, so `serve(None)` returns promptly instead of waiting for
/// the next real client.
#[derive(Clone, Debug)]
pub struct ShutdownHandle {
    flag: Arc<AtomicBool>,
    wake: Arc<(Mutex<()>, Condvar)>,
    addr: SocketAddr,
}

impl ShutdownHandle {
    /// Raises the shutdown flag and pokes the listener awake. The
    /// server finishes draining in-flight sessions before its
    /// `serve`/`serve_with` call returns. Also interrupts an
    /// accept-error backoff wait, so shutdown is never delayed by the
    /// up-to-1 s exponential backoff.
    pub fn shutdown(&self) {
        if self.flag.swap(true, Ordering::SeqCst) {
            return; // already raised; one wake-up is enough
        }
        // Take the wake lock between raising the flag and notifying:
        // a backoff waiter checks the flag *under this lock*, so it
        // either sees the flag or is parked when the notify fires —
        // never the lost-wakeup window in between.
        drop(lock_recover(&self.wake.0));
        self.wake.1.notify_all();
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(250));
    }

    /// Whether shutdown has been requested.
    pub fn is_shutdown(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }
}

/// Which runtime drives accepted connections (see
/// [`TcpServer::with_engine`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ServeEngine {
    /// One OS thread per connection, blocking I/O (the original
    /// runtime). Simple and fair, but the concurrency ceiling is the
    /// thread count.
    #[default]
    Threaded,
    /// Reactor + bounded worker pool: one thread polls every connection
    /// for readiness and `W` workers execute the protocol steps, so
    /// thousands of idle-ish sessions cost no threads. Wire bytes are
    /// identical to the threaded engine (PROTOCOL.md §12).
    Event,
}

/// Default bound on the [`Admission::Queue`] admission queue. Beyond
/// this many waiting connections the server refuses instead — an
/// unbounded queue just converts overload into unbounded latency.
pub const DEFAULT_QUEUE_CAPACITY: usize = 64;

/// Connections the admission gate tracks: sessions holding a slot and
/// connections parked in the bounded queue waiting for one.
#[derive(Default)]
struct GateState {
    active: usize,
    queued: usize,
}

/// A concurrent selected-sum server over a shared database, with
/// per-session deadlines, admission control, and graceful shutdown.
/// Two interchangeable runtimes drive the same protocol surface: the
/// default thread-per-connection loop and the event-driven reactor +
/// worker-pool orchestrator ([`TcpServer::with_engine`]).
pub struct TcpServer {
    pub(crate) listener: TcpListener,
    pub(crate) db: Arc<Database>,
    pub(crate) fold: FoldStrategy,
    pub(crate) limits: SessionLimits,
    pub(crate) max_concurrent: Option<usize>,
    pub(crate) admission: Admission,
    pub(crate) shutdown: Arc<AtomicBool>,
    pub(crate) shutdown_wake: Arc<(Mutex<()>, Condvar)>,
    pub(crate) obs: Option<ServerObs>,
    pub(crate) resumption: SessionTable,
    pub(crate) fault_hook: Option<Arc<dyn Fn(usize) + Send + Sync>>,
    pub(crate) require_shard: bool,
    pub(crate) plan_cache: Option<Arc<FoldPlanCache>>,
    pub(crate) engine: ServeEngine,
    pub(crate) workers: Option<usize>,
    pub(crate) queue_capacity: usize,
    pub(crate) fair_share: Option<usize>,
    pub(crate) slow_query_threshold: Option<Duration>,
    pub(crate) clock: pps_obs::SharedClock,
}

impl TcpServer {
    /// Binds a listening socket for `db` with default [`SessionLimits`]
    /// and no concurrency cap. Use `"127.0.0.1:0"` to let the OS pick an
    /// ephemeral port (see [`TcpServer::local_addr`]).
    ///
    /// # Errors
    /// [`ProtocolError::Transport`] when the bind fails.
    pub fn bind(db: Arc<Database>, addr: &str, fold: FoldStrategy) -> Result<Self, ProtocolError> {
        let listener = TcpListener::bind(addr)
            .map_err(|e| ProtocolError::Transport(TransportError::Io(e.to_string())))?;
        Ok(TcpServer {
            listener,
            db,
            fold,
            limits: SessionLimits::default(),
            max_concurrent: None,
            admission: Admission::Refuse,
            shutdown: Arc::new(AtomicBool::new(false)),
            shutdown_wake: Arc::new((Mutex::new(()), Condvar::new())),
            obs: None,
            resumption: SessionTable::default(),
            fault_hook: None,
            require_shard: false,
            plan_cache: None,
            engine: ServeEngine::Threaded,
            workers: None,
            queue_capacity: DEFAULT_QUEUE_CAPACITY,
            fair_share: None,
            slow_query_threshold: None,
            clock: pps_obs::real_clock(),
        })
    }

    /// Replaces the server's time source: session deadlines, admission
    /// sweeps, and the event reactor's idle tick all read this clock.
    /// The default is the real clock; the deterministic simulator
    /// injects a [`VirtualClock`](pps_obs::VirtualClock) shared with
    /// every other component of the scenario. Note the resumption
    /// table keeps its own clock — pair this with
    /// [`TcpServer::with_resumption_table`] to virtualize TTLs too.
    #[must_use]
    pub fn with_clock(mut self, clock: pps_obs::SharedClock) -> Self {
        self.clock = clock;
        self
    }

    /// Replaces the whole resumption table (rather than just its bounds
    /// as [`TcpServer::with_resumption`] does), so a caller can install
    /// a [`SessionTable::deterministic`] one with seeded IDs and a
    /// virtual TTL clock.
    #[must_use]
    pub fn with_resumption_table(mut self, table: SessionTable) -> Self {
        self.resumption = table;
        self
    }

    /// Selects the runtime that drives accepted connections. The
    /// default is [`ServeEngine::Threaded`]; [`ServeEngine::Event`]
    /// multiplexes every connection over a reactor thread plus a
    /// bounded worker pool (see [`TcpServer::with_workers`]).
    #[must_use]
    pub fn with_engine(mut self, engine: ServeEngine) -> Self {
        self.engine = engine;
        self
    }

    /// Sets the event engine's worker-pool size (protocol steps execute
    /// on these threads). Ignored by the threaded engine. The default
    /// is the host's available parallelism, capped at 8.
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers.max(1));
        self
    }

    /// Bounds the [`Admission::Queue`] admission queue (default
    /// [`DEFAULT_QUEUE_CAPACITY`]). Connections arriving when the cap
    /// *and* the queue are both full are refused with a clean close.
    #[must_use]
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity.max(1);
        self
    }

    /// Caps how many protocol steps from the same peer IP may occupy
    /// event-engine workers at once (default: no cap). With `k` set, a
    /// single chatty peer can hold at most `k` workers while other
    /// peers have frames waiting — the rest of the pool stays available
    /// to them. Ignored by the threaded engine (its fairness is the OS
    /// scheduler's).
    #[must_use]
    pub fn with_peer_fair_share(mut self, jobs: usize) -> Self {
        self.fair_share = Some(jobs.max(1));
        self
    }

    /// Replaces the fold-plan cache consulted when the strategy is
    /// [`FoldStrategy::Precomputed`]. By default the process-wide
    /// [`FoldPlanCache::global`] is used, so every server (and shard
    /// worker) sharing an `Arc<Database>` also shares one digit table;
    /// pass a private cache to isolate a server's plan lifetime.
    #[must_use]
    pub fn with_fold_plan_cache(mut self, cache: Arc<FoldPlanCache>) -> Self {
        self.plan_cache = Some(cache);
        self
    }

    /// Marks this server as a shard worker: until a `ShardHello`
    /// handshake (or a granted `Resume`, whose checkpoint carries its
    /// own blinding) installs a blinding, only the handshake, resume,
    /// and size-discovery frames are accepted — and `PlainIndices` is
    /// refused outright, blinded or not — so the worker never answers a
    /// query with an *unblinded* partial sum. (Any server — shard
    /// worker or not — accepts the handshake when offered; this flag
    /// makes it mandatory.)
    #[must_use]
    pub fn require_shard_handshake(mut self) -> Self {
        self.require_shard = true;
        self
    }

    /// Flags sessions whose wall time (accept to completion, queue wait
    /// included) reaches `threshold`: each one increments
    /// `pps_slow_queries_total` and emits a `slow_query` event — carrying
    /// the session's phase breakdown, stamped with the peer's trace
    /// context when it announced one — through the observability
    /// tracer. A no-op without [`TcpServer::with_observability`].
    #[must_use]
    pub fn with_slow_query_threshold(mut self, threshold: Duration) -> Self {
        self.slow_query_threshold = Some(threshold);
        self
    }

    /// Attaches a [`ServerObs`] bundle: session lifecycle counters, the
    /// active-session gauge, session/fold/`server_compute` histograms,
    /// wire byte counters, and per-session spans through its tracer.
    /// The registry behind the bundle can be scraped live (see
    /// `MetricsServer` in `pps-obs`) while the accept loop runs.
    #[must_use]
    pub fn with_observability(mut self, obs: ServerObs) -> Self {
        self.obs = Some(obs);
        self
    }

    /// Replaces the per-session I/O limits.
    #[must_use]
    pub fn with_limits(mut self, limits: SessionLimits) -> Self {
        self.limits = limits;
        self
    }

    /// Caps concurrent sessions at `max` and sets the policy for
    /// over-limit connections.
    #[must_use]
    pub fn with_admission(mut self, max: usize, policy: Admission) -> Self {
        self.max_concurrent = Some(max.max(1));
        self.admission = policy;
        self
    }

    /// Replaces the session-resumption bounds (checkpoint capacity and
    /// TTL). Resumption is always on; this only tunes how long and how
    /// many checkpoints survive.
    #[must_use]
    pub fn with_resumption(mut self, config: ResumptionConfig) -> Self {
        self.resumption = SessionTable::new(config);
        self
    }

    /// Installs a chaos hook called with the session id at the start of
    /// every session thread, *inside* the panic-isolation boundary. A
    /// hook that panics simulates a server-side bug for a chosen
    /// session; the crash-containment tests use this to prove a panic
    /// is contained to one session.
    #[must_use]
    pub fn with_session_fault_hook(mut self, hook: impl Fn(usize) + Send + Sync + 'static) -> Self {
        self.fault_hook = Some(Arc::new(hook));
        self
    }

    /// The live resumption table (exposed for tests and diagnostics).
    pub fn session_table(&self) -> &SessionTable {
        &self.resumption
    }

    /// The bound address (the actual port, when bound to port 0).
    ///
    /// # Errors
    /// [`ProtocolError::Transport`] when the OS cannot report it.
    pub fn local_addr(&self) -> Result<SocketAddr, ProtocolError> {
        self.listener
            .local_addr()
            .map_err(|e| ProtocolError::Transport(TransportError::Io(e.to_string())))
    }

    /// A handle that stops this server's accept loop from any thread.
    ///
    /// # Errors
    /// [`ProtocolError::Transport`] when the bound address cannot be
    /// determined (needed for the accept wake-up).
    pub fn shutdown_handle(&self) -> Result<ShutdownHandle, ProtocolError> {
        let mut addr = self.local_addr()?;
        // The wake-up self-connection must target a routable address
        // even when bound to the wildcard.
        if addr.ip().is_unspecified() {
            addr.set_ip(match addr.ip() {
                IpAddr::V4(_) => IpAddr::V4(Ipv4Addr::LOCALHOST),
                IpAddr::V6(_) => IpAddr::V6(Ipv6Addr::LOCALHOST),
            });
        }
        Ok(ShutdownHandle {
            flag: Arc::clone(&self.shutdown),
            wake: Arc::clone(&self.shutdown_wake),
            addr,
        })
    }

    /// Builds (or fetches from the cache) the shared fold plan when the
    /// strategy is [`FoldStrategy::Precomputed`]: one digit table
    /// serves every session a serve loop admits, fresh or resumed.
    pub(crate) fn shared_plan(&self) -> Option<Arc<MultiExpPlan>> {
        (self.fold == FoldStrategy::Precomputed).then(|| {
            let cache: &FoldPlanCache = match &self.plan_cache {
                Some(cache) => cache,
                None => FoldPlanCache::global(),
            };
            cache.get_or_build(&self.db, self.obs.as_ref().map(|o| o.fold_plan()))
        })
    }

    /// The event engine's worker-pool size: the configured value, or
    /// the host's available parallelism capped at 8.
    pub(crate) fn worker_count(&self) -> usize {
        self.workers.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .min(8)
        })
    }

    /// Sleeps for `backoff` or until shutdown is raised, whichever
    /// comes first — the accept-error backoff must never delay a
    /// [`ShutdownHandle::shutdown`] (satellite fix: the old
    /// `thread::sleep` here ignored the flag for up to ~1 s).
    pub(crate) fn backoff_wait(&self, backoff: Duration) {
        let deadline = Instant::now() + backoff;
        let (lock, cv) = &*self.shutdown_wake;
        let mut guard = lock_recover(lock);
        loop {
            if self.shutdown.load(Ordering::SeqCst) {
                return;
            }
            let now = Instant::now();
            if now >= deadline {
                return;
            }
            let (g, _) = cv
                .wait_timeout(guard, deadline - now)
                .unwrap_or_else(|p| p.into_inner());
            guard = g;
        }
    }

    /// Serves sessions without observing their lifecycle. See
    /// [`TcpServer::serve_with`].
    pub fn serve(&self, max_sessions: Option<usize>) -> AggregateStats {
        self.serve_with(max_sessions, &|_| {})
    }

    /// Accepts connections until `max_sessions` have been accepted
    /// (`None` = forever, or until [`ShutdownHandle::shutdown`]),
    /// driving each against the shared database on the configured
    /// [`ServeEngine`], then waits for every in-flight session to
    /// finish and returns the aggregate. `on_event` fires as
    /// connections arrive and complete (from session threads on the
    /// threaded engine, from the reactor thread on the event engine).
    ///
    /// A failed session (malformed frames, disconnect, expired
    /// deadline) is counted and reported, never fatal to the server.
    /// Connections over the concurrency cap are queued (in a bounded,
    /// deadline-aware queue) or refused per the [`Admission`] policy.
    /// A failed `accept()` is reported as [`SessionEvent::AcceptError`]
    /// and retried after an exponential, shutdown-interruptible
    /// backoff; [`MAX_CONSECUTIVE_ACCEPT_ERRORS`] failures in a row end
    /// the loop (returning whatever was aggregated) rather than
    /// spinning on a persistently broken listener.
    pub fn serve_with(
        &self,
        max_sessions: Option<usize>,
        on_event: &(dyn Fn(SessionEvent<'_>) + Sync),
    ) -> AggregateStats {
        match self.engine {
            ServeEngine::Threaded => self.serve_threaded(max_sessions, on_event),
            ServeEngine::Event => crate::orchestrator::serve_event(self, max_sessions, on_event),
        }
    }

    /// The thread-per-connection runtime (see [`ServeEngine::Threaded`]).
    fn serve_threaded(
        &self,
        max_sessions: Option<usize>,
        on_event: &(dyn Fn(SessionEvent<'_>) + Sync),
    ) -> AggregateStats {
        let start = Instant::now();
        let checkpoints_evicted_before = self.resumption.evicted();
        // One shared plan for every session this loop admits (fresh or
        // resumed): built at most once per database process-wide, via
        // the configured cache or the global one.
        let plan = self.shared_plan();
        let agg = Mutex::new(AggregateStats::default());
        // Admission gate: slot/queue counts + wakeup for queued waiters.
        let gate = (Mutex::new(GateState::default()), Condvar::new());
        // Concurrency high-water mark (gated or not).
        let active_now = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            let mut accepted = 0usize;
            let mut accept_errors = 0usize;
            for stream in self.listener.incoming() {
                let stream = match stream {
                    Ok(s) => {
                        accept_errors = 0;
                        s
                    }
                    Err(e) => {
                        accept_errors += 1;
                        lock_recover(&agg).accept_errors += 1;
                        if let Some(obs) = &self.obs {
                            obs.accept_errors.inc();
                        }
                        let error = ProtocolError::Transport(TransportError::Io(e.to_string()));
                        on_event(SessionEvent::AcceptError { error: &error });
                        if accept_errors >= MAX_CONSECUTIVE_ACCEPT_ERRORS {
                            break;
                        }
                        self.backoff_wait(accept_backoff(accept_errors));
                        if self.shutdown.load(Ordering::SeqCst) {
                            break;
                        }
                        continue;
                    }
                };
                // A shutdown request may arrive as the wake-up
                // connection itself; either way, stop before admitting.
                if self.shutdown.load(Ordering::SeqCst) {
                    drop(stream);
                    break;
                }
                // Admission decides *without ever blocking this thread*:
                // the old Queue path parked the lone accept thread on
                // the gate condvar, head-of-line-blocking every later
                // connection. Now a queued connection waits on its own
                // session thread and the queue itself is bounded.
                let mut wait_in_queue = false;
                if let Some(max) = self.max_concurrent {
                    let mut g = lock_recover(&gate.0);
                    if g.active >= max {
                        if self.admission == Admission::Refuse || g.queued >= self.queue_capacity {
                            drop(g);
                            let peer = stream.peer_addr().ok();
                            drop(stream); // clean close (FIN)
                            lock_recover(&agg).refused += 1;
                            if let Some(obs) = &self.obs {
                                obs.refused.inc();
                            }
                            on_event(SessionEvent::Refused { peer });
                            continue;
                        }
                        g.queued += 1;
                        wait_in_queue = true;
                    } else {
                        g.active += 1;
                    }
                }
                accepted += 1;
                let id = accepted;
                if wait_in_queue {
                    lock_recover(&agg).queued += 1;
                }
                let agg = &agg;
                let gate = &gate;
                let active_now = &active_now;
                let peak = &peak;
                let db = &*self.db;
                let fold = self.fold;
                let plan = plan.as_ref();
                let limits = &self.limits;
                let table = &self.resumption;
                let require_shard = self.require_shard;
                let max_concurrent = self.max_concurrent;
                let slow_query_threshold = self.slow_query_threshold;
                let obs = self.obs.as_ref();
                let fault_hook = self.fault_hook.clone();
                let shutdown = &self.shutdown;
                // The session clock starts at accept: a connection
                // waiting in the admission queue spends its own
                // deadline, so a queued slow-loris cannot outlive the
                // budget an admitted one gets.
                let deadline = SessionDeadline::with_clock(&self.limits, self.clock.clone());
                if let Some(obs) = obs {
                    obs.accepted.inc();
                    if wait_in_queue {
                        obs.queued.add(1);
                    }
                }
                scope.spawn(move || {
                    // Direct admissions already hold a gate slot taken
                    // on the accept thread; own it via RAII immediately
                    // so *every* exit path — including a panicking
                    // event observer — releases the slot and the active
                    // gauge exactly once.
                    let mut slot = if wait_in_queue {
                        None
                    } else {
                        Some(ActiveGuard::new(
                            obs,
                            max_concurrent.is_some().then_some(gate),
                            active_now,
                            peak,
                        ))
                    };
                    on_event(SessionEvent::Accepted {
                        session: id,
                        peer: stream.peer_addr().ok(),
                    });
                    let session_start = Instant::now();
                    if wait_in_queue {
                        let max = max_concurrent.expect("queued implies a concurrency cap");
                        let wait_start = Instant::now();
                        let outcome = wait_for_slot(gate, max, &deadline, shutdown);
                        if let Some(obs) = obs {
                            obs.queued.sub(1);
                            obs.queue_wait_seconds.record_duration(wait_start.elapsed());
                        }
                        match outcome {
                            QueueOutcome::Admitted => {
                                slot = Some(ActiveGuard::new(obs, Some(gate), active_now, peak));
                            }
                            QueueOutcome::Shutdown => {
                                // Admission was never granted; the
                                // connection is turned away cleanly.
                                lock_recover(agg).refused += 1;
                                if let Some(obs) = obs {
                                    obs.refused.inc();
                                }
                                on_event(SessionEvent::Refused {
                                    peer: stream.peer_addr().ok(),
                                });
                                return;
                            }
                            QueueOutcome::Expired => {
                                let error = ProtocolError::Transport(TransportError::TimedOut);
                                lock_recover(agg).evicted += 1;
                                if let Some(obs) = obs {
                                    obs.evicted.inc();
                                }
                                on_event(SessionEvent::Evicted {
                                    session: id,
                                    error: &error,
                                });
                                return;
                            }
                        }
                    }
                    let _slot = slot;
                    // Everything the session does — including the chaos
                    // hook and the span guard — runs inside the panic
                    // boundary, so an unwinding session can only reach
                    // the (poison-recovering) accounting below.
                    let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
                        // Records on drop, so evicted/failed sessions
                        // get a span too.
                        let mut span =
                            obs.map(|o| o.tracer().span("session").session(id as u64).start());
                        if let Some(hook) = &fault_hook {
                            hook(id);
                        }
                        let wire_metrics = obs.map(|o| o.wire.clone());
                        let mut flow =
                            SessionFlow::new(db, fold, plan.cloned(), table, require_shard);
                        let result =
                            drive_connection(&mut flow, stream, limits, deadline, wire_metrics);
                        // Stamp the peer's announced trace context onto
                        // the session span so the client-side assembler
                        // can claim it by trace id.
                        let trace = flow.trace();
                        if let (Some(span), Some(ctx)) = (span.as_mut(), trace) {
                            span.set_trace(ctx);
                        }
                        (flow.resumed(), flow.stats().clone(), result, trace)
                    }));
                    match outcome {
                        Ok((resumed, stats, result, trace)) => {
                            if resumed {
                                lock_recover(agg).resumed += 1;
                                if let Some(obs) = obs {
                                    obs.resumed.inc();
                                }
                                on_event(SessionEvent::Resumed { session: id });
                            }
                            match result {
                                Ok(()) => {
                                    let wall = session_start.elapsed();
                                    let mut a = lock_recover(agg);
                                    a.sessions += 1;
                                    a.folded += stats.folded;
                                    a.compute += stats.compute;
                                    drop(a);
                                    if let Some(obs) = obs {
                                        obs.completed.inc();
                                        obs.session_seconds.record_duration(wall);
                                        for batch in &stats.per_batch_compute {
                                            obs.fold_seconds.record_duration(*batch);
                                        }
                                        // Propagate the peer's trace
                                        // context onto everything recorded
                                        // for this session.
                                        let tracer = match trace {
                                            Some(ctx) => obs.tracer().with_context(ctx),
                                            None => obs.tracer().clone(),
                                        };
                                        // The phase histogram and the span
                                        // bridge see the same Duration, so a
                                        // scrape and a reconstructed
                                        // RunReport agree exactly.
                                        obs.server_compute.record_duration(stats.compute);
                                        tracer.record_phase_total(
                                            "server_compute",
                                            pps_obs::Phase::ServerCompute,
                                            Some(id as u64),
                                            stats.compute,
                                        );
                                        if slow_query_threshold.is_some_and(|t| wall >= t) {
                                            obs.slow_queries.inc();
                                            tracer.event(
                                                "slow_query",
                                                Some(id as u64),
                                                slow_query_detail(wall, &stats),
                                            );
                                        }
                                    }
                                    on_event(SessionEvent::Finished {
                                        session: id,
                                        stats: &stats,
                                    });
                                }
                                Err(e) if is_eviction(&e) => {
                                    lock_recover(agg).evicted += 1;
                                    if let Some(obs) = obs {
                                        obs.evicted.inc();
                                    }
                                    on_event(SessionEvent::Evicted {
                                        session: id,
                                        error: &e,
                                    });
                                }
                                Err(e) => {
                                    lock_recover(agg).failed += 1;
                                    if let Some(obs) = obs {
                                        obs.failed.inc();
                                    }
                                    on_event(SessionEvent::Failed {
                                        session: id,
                                        error: &e,
                                    });
                                }
                            }
                        }
                        Err(_panic) => {
                            lock_recover(agg).panicked += 1;
                            if let Some(obs) = obs {
                                obs.panicked.inc();
                            }
                            on_event(SessionEvent::Panicked { session: id });
                        }
                    }
                });
                if max_sessions.is_some_and(|m| accepted >= m) {
                    break;
                }
            }
        });
        let mut stats = agg.into_inner().unwrap_or_else(|p| p.into_inner());
        stats.wall = start.elapsed();
        stats.peak_active = peak.load(Ordering::SeqCst);
        stats.checkpoints_evicted = self.resumption.evicted() - checkpoints_evicted_before;
        if let Some(obs) = &self.obs {
            obs.checkpoints_evicted.add(stats.checkpoints_evicted);
        }
        stats
    }
}

/// Why a queued connection's wait ended.
enum QueueOutcome {
    /// A slot freed; the session now holds it.
    Admitted,
    /// Shutdown was raised while waiting; admission is never granted.
    Shutdown,
    /// The session deadline (running since accept) expired in-queue.
    Expired,
}

/// Parks a queued session thread until a concurrency slot frees, the
/// server shuts down, or the session's own deadline (started at accept)
/// expires. On every outcome the queue count is released; on
/// [`QueueOutcome::Admitted`] the slot count has been taken.
fn wait_for_slot(
    gate: &(Mutex<GateState>, Condvar),
    max: usize,
    deadline: &SessionDeadline,
    shutdown: &AtomicBool,
) -> QueueOutcome {
    let mut g = lock_recover(&gate.0);
    loop {
        if shutdown.load(Ordering::SeqCst) {
            g.queued -= 1;
            return QueueOutcome::Shutdown;
        }
        if deadline
            .expires_at()
            .is_some_and(|expires| deadline.clock.now() >= expires)
        {
            g.queued -= 1;
            return QueueOutcome::Expired;
        }
        if g.active < max {
            g.active += 1;
            g.queued -= 1;
            return QueueOutcome::Admitted;
        }
        // Bound each wait so shutdown and deadline stay responsive even
        // if a notification is missed.
        let mut wait = Duration::from_millis(50);
        if let Some(expires) = deadline.expires_at() {
            // Under a virtual clock the remaining budget never shrinks
            // by itself, so keep the bounded 50 ms poll as the wait —
            // the deadline check above re-reads virtual time each pass.
            if !deadline.clock.is_virtual() {
                wait = wait.min(expires.saturating_duration_since(deadline.clock.now()));
            }
        }
        let (next, _) = gate
            .1
            .wait_timeout(g, wait.max(Duration::from_millis(1)))
            .unwrap_or_else(|p| p.into_inner());
        g = next;
    }
}

/// RAII ownership of everything an admitted session holds: the active
/// gauge, the shared concurrency high-water counter, and (when gated)
/// its admission slot. Construction takes the gauge/counter; the gate
/// slot must already be held. Drop releases all of it exactly once, on
/// every exit path — clean completion, failure, eviction, a panicking
/// session, or a panicking event observer.
struct ActiveGuard<'a> {
    obs: Option<&'a ServerObs>,
    gate: Option<&'a (Mutex<GateState>, Condvar)>,
    active_now: &'a AtomicUsize,
}

impl<'a> ActiveGuard<'a> {
    fn new(
        obs: Option<&'a ServerObs>,
        gate: Option<&'a (Mutex<GateState>, Condvar)>,
        active_now: &'a AtomicUsize,
        peak: &'a AtomicUsize,
    ) -> Self {
        if let Some(obs) = obs {
            obs.active.add(1);
        }
        let now = active_now.fetch_add(1, Ordering::SeqCst) + 1;
        peak.fetch_max(now, Ordering::SeqCst);
        ActiveGuard {
            obs,
            gate,
            active_now,
        }
    }
}

impl Drop for ActiveGuard<'_> {
    fn drop(&mut self) {
        self.active_now.fetch_sub(1, Ordering::SeqCst);
        if let Some(obs) = self.obs {
            obs.active.sub(1);
        }
        if let Some(gate) = self.gate {
            lock_recover(&gate.0).active -= 1;
            gate.1.notify_all();
        }
    }
}

/// Pumps frames between the blocking wire and the [`SessionFlow`] until
/// the product has been sent, under `limits` and the caller's
/// `deadline` (started at accept, so time spent in the admission queue
/// counts against the session budget). The protocol surface — resume
/// tickets, checkpointing, shard gating — lives entirely in the flow;
/// this function owns only the I/O and the deadlines.
fn drive_connection(
    flow: &mut SessionFlow<'_>,
    stream: TcpStream,
    limits: &SessionLimits,
    deadline: SessionDeadline,
    metrics: Option<WireMetrics>,
) -> Result<(), ProtocolError> {
    let mut wire = TcpWire::new(stream);
    if let Some(metrics) = metrics {
        wire.set_metrics(metrics);
    }
    wire.set_write_timeout(limits.write_timeout)?;
    // Two-tier eviction: the per-read socket timeout (re-armed below)
    // catches silent stalls, while the absolute mid-frame deadline
    // catches tricklers that feed a byte per interval to reset it.
    wire.set_recv_deadline(deadline.expires_at());
    while !flow.is_done() {
        wire.set_read_timeout(deadline.next_read_timeout()?)?;
        let frame = wire.recv()?;
        let step = flow.on_frame(&frame)?;
        for reply in step.replies {
            wire.send(reply)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{IndexSource, SumClient};
    use crate::data::Selection;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn query(addr: SocketAddr, selection: &Selection, seed: u64) -> u128 {
        let mut rng = StdRng::seed_from_u64(seed);
        let client = SumClient::generate(128, &mut rng).unwrap();
        let mut wire = TcpWire::connect(&addr.to_string()).unwrap();
        let mut source = IndexSource::Fresh(&mut rng);
        client
            .send_query(&mut wire, selection, 16, &mut source)
            .unwrap();
        let (sum, _) = client.receive_result(&mut wire).unwrap();
        sum.to_u128().unwrap()
    }

    #[test]
    fn serves_sequential_sessions_and_aggregates() {
        let db = Arc::new(Database::new(vec![10, 20, 30, 40, 50]).unwrap());
        let server =
            TcpServer::bind(Arc::clone(&db), "127.0.0.1:0", FoldStrategy::MultiExp).unwrap();
        let addr = server.local_addr().unwrap();

        let clients = std::thread::spawn(move || {
            let a = query(addr, &Selection::from_indices(5, &[0, 2]).unwrap(), 1);
            let b = query(addr, &Selection::from_indices(5, &[4]).unwrap(), 2);
            (a, b)
        });
        let stats = server.serve(Some(2));
        let (a, b) = clients.join().unwrap();
        assert_eq!(a, 40);
        assert_eq!(b, 50);
        assert_eq!(stats.sessions, 2);
        assert_eq!(stats.failed, 0);
        assert_eq!(stats.refused, 0);
        assert_eq!(stats.folded, 10, "both sessions stream all 5 indices");
        assert!(stats.throughput() > 0.0);
    }

    #[test]
    fn failed_session_is_counted_not_fatal() {
        let db = Arc::new(Database::new(vec![1, 2, 3]).unwrap());
        let server =
            TcpServer::bind(Arc::clone(&db), "127.0.0.1:0", FoldStrategy::default()).unwrap();
        let addr = server.local_addr().unwrap();

        let events = Mutex::new(Vec::new());
        let clients = std::thread::spawn(move || {
            // A rude client: connects and hangs up without a Hello.
            drop(TcpWire::connect(&addr.to_string()).unwrap());
            query(addr, &Selection::from_indices(3, &[1, 2]).unwrap(), 3)
        });
        let stats = server.serve_with(Some(2), &|e| {
            let tag = match e {
                SessionEvent::Accepted { .. } => "accepted",
                SessionEvent::Finished { .. } => "finished",
                SessionEvent::Failed { .. } => "failed",
                SessionEvent::Evicted { .. } => "evicted",
                SessionEvent::Panicked { .. } => "panicked",
                SessionEvent::Resumed { .. } => "resumed",
                SessionEvent::Refused { .. } => "refused",
                SessionEvent::AcceptError { .. } => "accept_error",
            };
            events.lock().unwrap().push(tag);
        });
        assert_eq!(clients.join().unwrap(), 5);
        assert_eq!(stats.sessions, 1);
        assert_eq!(stats.failed, 1);
        assert_eq!(stats.folded, 3);
        let events = events.into_inner().unwrap();
        assert_eq!(events.iter().filter(|t| **t == "accepted").count(), 2);
        assert_eq!(events.iter().filter(|t| **t == "finished").count(), 1);
        assert_eq!(events.iter().filter(|t| **t == "failed").count(), 1);
    }

    #[test]
    fn accept_backoff_is_exponential_and_capped() {
        assert_eq!(accept_backoff(1), Duration::from_millis(50));
        assert_eq!(accept_backoff(2), Duration::from_millis(100));
        assert_eq!(accept_backoff(3), Duration::from_millis(200));
        assert_eq!(accept_backoff(4), Duration::from_millis(400));
        assert_eq!(accept_backoff(5), Duration::from_millis(800));
        assert_eq!(accept_backoff(6), Duration::from_secs(1), "capped");
        assert_eq!(accept_backoff(100), Duration::from_secs(1));
        // Eight consecutive failures now wait > 3.5 s in total, versus
        // 400 ms with the old fixed 50 ms pause.
        let total: Duration = (1..MAX_CONSECUTIVE_ACCEPT_ERRORS).map(accept_backoff).sum();
        assert!(total > Duration::from_secs(3));
    }

    #[test]
    fn session_deadline_shrinks_read_timeout_then_expires() {
        let limits = SessionLimits {
            read_timeout: Some(Duration::from_secs(30)),
            write_timeout: None,
            session_deadline: Some(Duration::from_millis(80)),
        };
        let deadline = SessionDeadline::new(&limits);
        let first = deadline.next_read_timeout().unwrap().unwrap();
        assert!(first <= Duration::from_millis(80), "clamped to remaining");
        std::thread::sleep(Duration::from_millis(100));
        assert_eq!(deadline.next_read_timeout(), Err(TransportError::TimedOut));
    }

    #[test]
    fn no_deadline_passes_read_timeout_through() {
        let deadline = SessionDeadline::new(&SessionLimits::unlimited());
        assert_eq!(deadline.next_read_timeout(), Ok(None));
        let limits = SessionLimits {
            read_timeout: Some(Duration::from_secs(7)),
            write_timeout: None,
            session_deadline: None,
        };
        assert_eq!(
            SessionDeadline::new(&limits).next_read_timeout(),
            Ok(Some(Duration::from_secs(7)))
        );
    }

    #[test]
    fn shutdown_stops_an_unbounded_serve() {
        let db = Arc::new(Database::new(vec![4, 5, 6]).unwrap());
        let server =
            TcpServer::bind(Arc::clone(&db), "127.0.0.1:0", FoldStrategy::default()).unwrap();
        let addr = server.local_addr().unwrap();
        let handle = server.shutdown_handle().unwrap();
        assert!(!handle.is_shutdown());

        let server_thread = std::thread::spawn(move || server.serve(None));
        // A real session completes while the server runs unbounded.
        let sum = query(addr, &Selection::from_indices(3, &[0, 2]).unwrap(), 9);
        assert_eq!(sum, 10);

        handle.shutdown();
        let stats = server_thread.join().unwrap();
        assert_eq!(stats.sessions, 1);
        assert_eq!(stats.failed, 0);
        assert!(handle.is_shutdown());
        // Idempotent: a second call is a no-op, not a hang.
        handle.shutdown();
    }

    #[test]
    fn shutdown_before_serve_returns_immediately() {
        let db = Arc::new(Database::new(vec![1]).unwrap());
        let server =
            TcpServer::bind(Arc::clone(&db), "127.0.0.1:0", FoldStrategy::default()).unwrap();
        let handle = server.shutdown_handle().unwrap();
        handle.shutdown();
        let stats = server.serve(None);
        assert_eq!(stats.sessions, 0);
    }

    #[test]
    fn observed_server_records_counters_and_compute_histogram() {
        use crate::obs::ServerObs;
        use pps_obs::{Registry, RingCollector, Tracer};

        let registry = Arc::new(Registry::new());
        let ring = Arc::new(RingCollector::new(64));
        let obs = ServerObs::with_tracer(
            Arc::clone(&registry),
            Tracer::new(ring.clone() as Arc<dyn pps_obs::Collector>),
        );
        let db = Arc::new(Database::new(vec![10, 20, 30]).unwrap());
        let server = TcpServer::bind(Arc::clone(&db), "127.0.0.1:0", FoldStrategy::default())
            .unwrap()
            .with_observability(obs.clone());
        let addr = server.local_addr().unwrap();

        let clients = std::thread::spawn(move || {
            query(addr, &Selection::from_indices(3, &[0, 2]).unwrap(), 11)
        });
        let stats = server.serve(Some(1));
        assert_eq!(clients.join().unwrap(), 40);
        assert_eq!(stats.sessions, 1);

        assert_eq!(obs.accepted.get(), 1);
        assert_eq!(obs.completed.get(), 1);
        assert_eq!(obs.active.get(), 0, "gauge returns to zero");
        assert_eq!(obs.session_seconds.count(), 1);
        assert_eq!(
            obs.server_compute.sum(),
            stats.compute,
            "phase histogram carries the exact compute duration"
        );
        assert!(obs.wire.bytes_received.get() > 0);
        assert!(obs.wire.bytes_sent.get() > 0);

        // One session span plus one synthesized server_compute span.
        let spans = ring.spans();
        assert_eq!(spans.len(), 2);
        assert!(spans.iter().any(|s| s.name == "session"));
        let compute_span = spans.iter().find(|s| s.name == "server_compute").unwrap();
        assert_eq!(compute_span.duration(), stats.compute);

        let text = registry.render_prometheus();
        assert!(text.contains("pps_sessions_completed_total 1"));
        assert!(text.contains(r#"pps_phase_duration_seconds_count{phase="server_compute"} 1"#));
    }

    #[test]
    fn precomputed_server_builds_one_plan_and_reuses_it() {
        use crate::obs::ServerObs;
        use pps_obs::Registry;

        let registry = Arc::new(Registry::new());
        let obs = ServerObs::new(Arc::clone(&registry));
        let db = Arc::new(Database::new(vec![10, 20, 30, 40]).unwrap());
        let cache = Arc::new(FoldPlanCache::new(2));
        let server = TcpServer::bind(Arc::clone(&db), "127.0.0.1:0", FoldStrategy::Precomputed)
            .unwrap()
            .with_fold_plan_cache(Arc::clone(&cache))
            .with_observability(obs.clone());
        let addr = server.local_addr().unwrap();

        // Two separate serve loops: the first builds the plan, the
        // second finds it in the cache.
        for (round, seed) in [(0u64, 31u64), (1, 32)] {
            let clients = std::thread::spawn(move || {
                query(addr, &Selection::from_indices(4, &[1, 3]).unwrap(), seed)
            });
            let stats = server.serve(Some(1));
            assert_eq!(clients.join().unwrap(), 60);
            assert_eq!(stats.sessions, 1, "round {round}");
        }

        assert_eq!(obs.fold_plan.builds.get(), 1, "built once, then cached");
        assert_eq!(obs.fold_plan.hits.get(), 1);
        assert!(obs.fold_plan.bytes.get() > 0);
        assert_eq!(obs.fold_plan.build_seconds.count(), 1);

        let text = registry.render_prometheus();
        assert!(text.contains("pps_fold_plan_builds_total 1"));
        assert!(text.contains("pps_fold_plan_hits_total 1"));
    }

    #[test]
    fn event_engine_serves_sessions_end_to_end() {
        let db = Arc::new(Database::new(vec![10, 20, 30, 40, 50]).unwrap());
        let server = TcpServer::bind(Arc::clone(&db), "127.0.0.1:0", FoldStrategy::MultiExp)
            .unwrap()
            .with_engine(ServeEngine::Event)
            .with_workers(2);
        let addr = server.local_addr().unwrap();

        let clients = std::thread::spawn(move || {
            let a = query(addr, &Selection::from_indices(5, &[0, 2]).unwrap(), 41);
            let b = query(addr, &Selection::from_indices(5, &[4]).unwrap(), 42);
            (a, b)
        });
        let stats = server.serve(Some(2));
        let (a, b) = clients.join().unwrap();
        assert_eq!(a, 40, "same answers as the threaded engine");
        assert_eq!(b, 50);
        assert_eq!(stats.sessions, 2);
        assert_eq!(stats.failed, 0);
        assert_eq!(stats.folded, 10);
        assert!(stats.peak_active >= 1);
    }

    #[test]
    fn event_engine_shutdown_stops_unbounded_serve() {
        let db = Arc::new(Database::new(vec![4, 5, 6]).unwrap());
        let server = TcpServer::bind(Arc::clone(&db), "127.0.0.1:0", FoldStrategy::default())
            .unwrap()
            .with_engine(ServeEngine::Event);
        let addr = server.local_addr().unwrap();
        let handle = server.shutdown_handle().unwrap();

        let server_thread = std::thread::spawn(move || server.serve(None));
        let sum = query(addr, &Selection::from_indices(3, &[0, 2]).unwrap(), 43);
        assert_eq!(sum, 10);
        handle.shutdown();
        let stats = server_thread.join().unwrap();
        assert_eq!(stats.sessions, 1);
        assert_eq!(stats.failed, 0);
    }

    /// Satellite regression: the active-session gauge must return to
    /// zero after a campaign that exercises every exit path — a refused
    /// connection, an evicted idler, a panicked session (chaos hook),
    /// and a clean completion. The old runtime incremented the gauge on
    /// the accept thread before spawning, so early-exit paths could
    /// leak or underflow it.
    #[test]
    fn active_gauge_returns_to_zero_after_mixed_outcomes() {
        use crate::obs::ServerObs;
        use pps_obs::Registry;
        use std::io::Read;

        let registry = Arc::new(Registry::new());
        let obs = ServerObs::new(Arc::clone(&registry));
        let db = Arc::new(Database::new(vec![10, 20, 30]).unwrap());
        let server = TcpServer::bind(Arc::clone(&db), "127.0.0.1:0", FoldStrategy::default())
            .unwrap()
            .with_observability(obs.clone())
            .with_admission(1, Admission::Refuse)
            .with_limits(SessionLimits {
                read_timeout: Some(Duration::from_millis(200)),
                write_timeout: Some(Duration::from_secs(5)),
                session_deadline: Some(Duration::from_secs(30)),
            })
            // Session 2 hits a server-side bug (contained panic).
            .with_session_fault_hook(|id| {
                if id == 2 {
                    panic!("chaos: session {id}");
                }
            });
        let addr = server.local_addr().unwrap();

        let clients = std::thread::spawn(move || {
            let wait_eof = |mut s: TcpStream| {
                let mut buf = [0u8; 16];
                while matches!(s.read(&mut buf), Ok(n) if n > 0) {}
            };
            // Session 1 admitted and idle: holds the only slot.
            let idler = TcpStream::connect(addr).unwrap();
            std::thread::sleep(Duration::from_millis(50));
            // Over the cap with Refuse: turned away with a clean close.
            wait_eof(TcpStream::connect(addr).unwrap());
            // The idler trips the 200 ms read timeout: evicted.
            wait_eof(idler);
            // Session 2: the chaos hook panics it immediately.
            wait_eof(TcpStream::connect(addr).unwrap());
            std::thread::sleep(Duration::from_millis(200));
            // Session 3 completes normally.
            query(addr, &Selection::from_indices(3, &[0, 1]).unwrap(), 44)
        });
        let stats = server.serve(Some(3));
        assert_eq!(clients.join().unwrap(), 30);
        assert_eq!(stats.sessions, 1);
        assert_eq!(stats.refused, 1);
        assert_eq!(stats.evicted, 1);
        assert_eq!(stats.panicked, 1);
        assert_eq!(obs.active.get(), 0, "every exit path released the gauge");
        assert_eq!(obs.queued.get(), 0);
        let text = registry.render_prometheus();
        assert!(text.contains("pps_sessions_active 0"));
    }

    #[test]
    fn queue_admission_serves_everyone_eventually() {
        let db = Arc::new(Database::new(vec![7, 8, 9]).unwrap());
        let server = TcpServer::bind(Arc::clone(&db), "127.0.0.1:0", FoldStrategy::default())
            .unwrap()
            .with_admission(1, Admission::Queue);
        let addr = server.local_addr().unwrap();
        let sel = Selection::from_indices(3, &[0, 1, 2]).unwrap();

        let clients = std::thread::spawn(move || {
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..3)
                    .map(|i| {
                        let sel = &sel;
                        scope.spawn(move || query(addr, sel, 20 + i))
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().unwrap())
                    .collect::<Vec<_>>()
            })
        });
        let stats = server.serve(Some(3));
        assert_eq!(clients.join().unwrap(), vec![24, 24, 24]);
        assert_eq!(stats.sessions, 3);
        assert_eq!(stats.refused, 0);
    }
}
