//! Multi-client private sum with blinded partial sums — §3.5 / Fig. 8.
//!
//! `k` cooperating clients each hold the index weights for `1/k` of the
//! database and want their *joint* selected sum without any of them (or
//! the server) learning the partial sums. Protocol:
//!
//! **Phase 1** — each client `C_i` runs the single-client protocol on its
//! shard under its own key. The server blinds each partial product by
//! homomorphically adding a random `R_i`, where `Σ R_i ≡ 0 (mod M)` for a
//! public blinding modulus `M`; `C_i` therefore decrypts only the blinded
//! partial sum `P_i + R_i`.
//!
//! **Phase 2** — a ring pass: `C_1` sends its blinded value to `C_2`, each
//! `C_i` adds its own and forwards, and `C_k` obtains
//! `Σ(P_i + R_i) ≡ Σ P_i (mod M)` — the true sum, with all blinding
//! cancelled — and broadcasts it.
//!
//! `M` must satisfy `M + max_sum < min_i N_i` so that no blinded partial
//! wraps the Paillier message space (we pick `M = 2^(min key bits − 2)`),
//! and `max_sum < M` so the final reduction is exact.

use std::time::{Duration, Instant};

use pps_bignum::Uint;
use pps_transport::{LinkProfile, SimLink, Wire};
use rand::RngCore;

use crate::client::{IndexSource, SumClient};
use crate::data::{Database, Selection};
use crate::error::ProtocolError;
use crate::messages::{RingPartial, RingTotal};
use crate::report::{RunReport, Variant};
use crate::run::RunConfig;
use crate::server::ServerSession;

/// Per-client component timings from a multi-client run.
#[derive(Clone, Debug)]
pub struct ClientLeg {
    /// Rows in this client's shard.
    pub shard_len: usize,
    /// Online encryption time.
    pub encrypt: Duration,
    /// Server compute time for this shard.
    pub server_compute: Duration,
    /// Simulated communication time for this leg.
    pub comm: Duration,
    /// Decryption time of the blinded partial.
    pub decrypt: Duration,
}

impl ClientLeg {
    /// Sequential wall time of this leg.
    pub fn total(&self) -> Duration {
        self.encrypt + self.server_compute + self.comm + self.decrypt
    }
}

/// Result of a multi-client run.
#[derive(Clone, Debug)]
pub struct MultiClientReport {
    /// Aggregate report (parallel wall-clock model; see [`run_multiclient`]).
    pub aggregate: RunReport,
    /// Per-client legs.
    pub legs: Vec<ClientLeg>,
    /// Virtual time of the phase-2 ring pass.
    pub ring_comm: Duration,
}

/// Splits `n` rows into `k` contiguous shards (the last takes the
/// remainder).
fn shard_ranges(n: usize, k: usize) -> Vec<(usize, usize)> {
    let base = n / k;
    let mut out = Vec::with_capacity(k);
    let mut start = 0;
    for i in 0..k {
        let len = if i == k - 1 { n - start } else { base };
        out.push((start, start + len));
        start += len;
    }
    out
}

/// Runs the §3.5 protocol with `k` clients over `link`.
///
/// The clients operate in parallel in the real protocol; this driver runs
/// them sequentially and models parallel wall time as the *maximum* leg
/// plus the ring-combination overhead, which is how the paper's ≈k-fold
/// speed-up arises.
///
/// # Errors
/// Configuration, crypto, and transport failures; result/oracle mismatch.
pub fn run_multiclient(
    db: &Database,
    selection: &Selection,
    k: usize,
    key_bits: usize,
    link: LinkProfile,
    rng: &mut dyn RngCore,
) -> Result<MultiClientReport, ProtocolError> {
    if k == 0 {
        return Err(ProtocolError::Config("need at least one client".into()));
    }
    if db.len() < k {
        return Err(ProtocolError::Config(format!(
            "database of {} rows cannot be split across {k} clients",
            db.len()
        )));
    }
    if selection.len() != db.len() {
        return Err(ProtocolError::Config(
            "selection/database length mismatch".into(),
        ));
    }
    // `M = 2^(min_bits − 2)` below: with no floor on the requested key
    // width the subtraction underflows (and `shl` then aborts on an
    // absurd shift) instead of failing typed.
    if key_bits < crate::multidb::MIN_BLINDING_KEY_BITS {
        return Err(ProtocolError::Config(format!(
            "key width {key_bits} bits is too small for a blinding modulus \
             (need at least {})",
            crate::multidb::MIN_BLINDING_KEY_BITS
        )));
    }

    // Each client generates its own key, "independently and in parallel".
    let clients: Vec<SumClient> = (0..k)
        .map(|_| SumClient::generate(key_bits, rng))
        .collect::<Result<_, _>>()?;

    // Public blinding modulus M = 2^(min key bits - 2).
    let min_bits = clients
        .iter()
        .map(|c| c.keypair().public.key_bits())
        .min()
        .expect("k >= 1");
    let m = Uint::one().shl(min_bits - 2);

    // Worst-case sum must stay below M (and below every N_i with M of
    // headroom, which min_bits - 2 guarantees).
    let worst = (db.len() as u128)
        .checked_mul(db.bound() as u128)
        .and_then(|v| v.checked_mul(selection.max_weight().max(1) as u128))
        .map(Uint::from_u128);
    match worst {
        Some(w) if w < m => {}
        _ => {
            return Err(ProtocolError::SumOverflow {
                needed_bits: worst.map_or(129, |w| w.bit_len()),
                available_bits: min_bits - 2,
            })
        }
    }

    // Server draws blindings with Σ R_i ≡ 0 (mod M).
    let mut blindings = Vec::with_capacity(k);
    let mut acc = Uint::zero();
    for _ in 0..k - 1 {
        let r = Uint::random_below(rng, &m).map_err(pps_crypto::CryptoError::from)?;
        acc = acc.mod_add(&r, &m).map_err(pps_crypto::CryptoError::from)?;
        blindings.push(r);
    }
    blindings.push(acc.mod_neg(&m).map_err(pps_crypto::CryptoError::from)?);

    // Phase 1: each client learns its blinded partial sum.
    let ranges = shard_ranges(db.len(), k);
    let mut legs = Vec::with_capacity(k);
    let mut blinded_partials = Vec::with_capacity(k);
    let mut total_bytes_up = 0usize;
    let mut total_bytes_down = 0usize;
    let mut total_messages = 0usize;

    for (i, client) in clients.iter().enumerate() {
        let (lo, hi) = ranges[i];
        let shard_db = Database::new(db.values()[lo..hi].to_vec())?;
        let shard_sel = Selection::weighted(selection.weights()[lo..hi].to_vec());

        let (mut cw, mut sw) = SimLink::pair(link.clone());
        let config = RunConfig::unbatched(link.clone());
        let mut source = IndexSource::Fresh(rng);
        let send_stats = client.send_query(
            &mut cw,
            &shard_sel,
            config.batch_size.min(shard_sel.len()).max(1),
            &mut source,
        )?;

        let mut server = ServerSession::with_blinding(&shard_db, blindings[i].clone());
        crate::run::pump_server(&mut server, &mut sw)?;

        let reply = cw.recv()?;
        let (blinded, decrypt) = client.decrypt_product(&reply)?;
        // No wraparound by construction (P_i + R_i < N_i), so reducing
        // mod M yields (P_i + R_i) mod M exactly.
        blinded_partials.push(blinded.rem_of(&m).map_err(pps_crypto::CryptoError::from)?);

        let stats = cw.stats();
        total_bytes_up += stats.payload_bytes_sent;
        total_bytes_down += stats.payload_bytes_received;
        total_messages += stats.messages_sent + stats.messages_received;
        legs.push(ClientLeg {
            shard_len: hi - lo,
            encrypt: send_stats.encrypt,
            server_compute: server.stats().compute,
            comm: cw.virtual_elapsed(),
            decrypt,
        });
    }

    // Phase 2: ring combination C_1 → C_2 → … → C_k, then broadcast.
    let (mut ring_a, mut ring_b) = SimLink::pair(link.clone());
    let ring_start = Instant::now();
    let mut running = blinded_partials[0].clone();
    for partial in blinded_partials.iter().skip(1) {
        ring_a.send(
            RingPartial {
                running: running.clone(),
            }
            .encode()?,
        )?;
        let frame = ring_b.recv()?;
        let received = RingPartial::decode(&frame)?.running;
        running = received
            .mod_add(partial, &m)
            .map_err(pps_crypto::CryptoError::from)?;
    }
    // Broadcast the total to the other k-1 clients.
    let total_frame = RingTotal {
        total: running.clone(),
    }
    .encode()?;
    for _ in 0..k.saturating_sub(1) {
        ring_a.send(total_frame.clone())?;
        let _ = ring_b.recv()?;
    }
    let ring_cpu = ring_start.elapsed();
    let ring_comm = ring_a.virtual_elapsed();
    let ring_stats = ring_a.stats();
    total_bytes_up += ring_stats.payload_bytes_sent;
    total_messages += ring_stats.messages_sent;

    // Verify against the oracle.
    let expected = db.oracle_sum(selection)?;
    let got = running
        .to_u128()
        .ok_or_else(|| ProtocolError::Config("combined sum exceeds 128 bits".into()))?;
    if got != expected {
        return Err(ProtocolError::Config(format!(
            "multi-client result {got} disagrees with oracle {expected}"
        )));
    }

    // Parallel wall-clock model: the k legs run concurrently, so each
    // component is the max across legs; the ring pass is serial on top.
    let max = |f: fn(&ClientLeg) -> Duration| legs.iter().map(f).max().unwrap_or_default();
    let aggregate = RunReport {
        variant: Variant::MultiClient { k },
        n: db.len(),
        selected: selection.selected_count(),
        key_bits,
        link: link.name.to_string(),
        client_offline: Duration::ZERO,
        client_encrypt: max(|l| l.encrypt),
        server_compute: max(|l| l.server_compute),
        comm: max(|l| l.comm) + ring_comm,
        client_decrypt: max(|l| l.decrypt) + ring_cpu,
        pipelined_total: None,
        bytes_to_server: total_bytes_up,
        bytes_to_client: total_bytes_down,
        messages: total_messages,
        result: got,
    };

    Ok(MultiClientReport {
        aggregate,
        legs,
        ring_comm,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(n: usize) -> (Database, Selection, StdRng) {
        let mut rng = StdRng::seed_from_u64(777);
        let db = Database::random(n, 1000, &mut rng).unwrap();
        let sel = Selection::random(n, 0.4, &mut rng).unwrap();
        (db, sel, rng)
    }

    #[test]
    fn shard_ranges_cover() {
        assert_eq!(shard_ranges(10, 3), vec![(0, 3), (3, 6), (6, 10)]);
        assert_eq!(shard_ranges(9, 3), vec![(0, 3), (3, 6), (6, 9)]);
        assert_eq!(shard_ranges(5, 1), vec![(0, 5)]);
        assert_eq!(
            shard_ranges(5, 5),
            vec![(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]
        );
    }

    #[test]
    fn three_clients_match_oracle() {
        let (db, sel, mut rng) = setup(30);
        let r = run_multiclient(&db, &sel, 3, 128, LinkProfile::gigabit_lan(), &mut rng).unwrap();
        assert_eq!(r.aggregate.result, db.oracle_sum(&sel).unwrap());
        assert_eq!(r.legs.len(), 3);
        assert_eq!(r.legs.iter().map(|l| l.shard_len).sum::<usize>(), 30);
        assert_eq!(r.aggregate.variant, Variant::MultiClient { k: 3 });
    }

    #[test]
    fn single_client_degenerate_case() {
        let (db, sel, mut rng) = setup(12);
        let r = run_multiclient(&db, &sel, 1, 128, LinkProfile::gigabit_lan(), &mut rng).unwrap();
        assert_eq!(r.aggregate.result, db.oracle_sum(&sel).unwrap());
    }

    #[test]
    fn uneven_shards() {
        // 10 rows across 4 clients: shards of 2,2,2,4.
        let (db, sel, mut rng) = setup(10);
        let r = run_multiclient(&db, &sel, 4, 128, LinkProfile::gigabit_lan(), &mut rng).unwrap();
        assert_eq!(r.aggregate.result, db.oracle_sum(&sel).unwrap());
        assert_eq!(r.legs[3].shard_len, 4);
    }

    #[test]
    fn parallel_model_speedup() {
        // The aggregate encrypt time is the max leg, i.e. ≈ 1/k of the
        // total encryption work — the source of Fig. 9's ≈3× gain.
        let (db, sel, mut rng) = setup(30);
        let r = run_multiclient(&db, &sel, 3, 128, LinkProfile::gigabit_lan(), &mut rng).unwrap();
        let total_encrypt: Duration = r.legs.iter().map(|l| l.encrypt).sum();
        assert!(r.aggregate.client_encrypt < total_encrypt);
    }

    #[test]
    fn rejects_bad_configs() {
        let (db, sel, mut rng) = setup(6);
        assert!(run_multiclient(&db, &sel, 0, 128, LinkProfile::gigabit_lan(), &mut rng).is_err());
        assert!(run_multiclient(&db, &sel, 7, 128, LinkProfile::gigabit_lan(), &mut rng).is_err());
        let short = Selection::from_bits(&[true; 3]);
        assert!(
            run_multiclient(&db, &short, 2, 128, LinkProfile::gigabit_lan(), &mut rng).is_err()
        );
    }

    #[test]
    fn tiny_key_is_a_config_error_not_a_panic() {
        // Regression: `min_bits - 2` underflowed for degenerate key
        // widths. The request must die as a typed Config error before
        // any key is generated.
        let (db, sel, mut rng) = setup(6);
        for bits in [0usize, 1, 2, 8] {
            match run_multiclient(&db, &sel, 2, bits, LinkProfile::gigabit_lan(), &mut rng) {
                Err(ProtocolError::Config(msg)) => {
                    assert!(msg.contains("too small"), "bits={bits}: {msg}")
                }
                other => panic!("bits={bits}: expected Config error, got {other:?}"),
            }
        }
    }

    #[test]
    fn one_row_per_client_degenerate_split() {
        // db.len() == k: every shard is a single row, the other
        // degenerate split besides k = 1.
        let (db, sel, mut rng) = setup(4);
        let r = run_multiclient(&db, &sel, 4, 128, LinkProfile::gigabit_lan(), &mut rng).unwrap();
        assert_eq!(r.aggregate.result, db.oracle_sum(&sel).unwrap());
        assert_eq!(r.legs.len(), 4);
        assert!(r.legs.iter().all(|l| l.shard_len == 1));
    }

    #[test]
    fn overflow_guard() {
        let mut rng = StdRng::seed_from_u64(9);
        let db = Database::new(vec![u64::MAX / 2; 4]).unwrap();
        let sel = Selection::from_bits(&[true; 4]);
        assert!(matches!(
            run_multiclient(&db, &sel, 2, 64, LinkProfile::gigabit_lan(), &mut rng),
            Err(ProtocolError::SumOverflow { .. })
        ));
    }

    #[test]
    fn blinding_sums_to_zero_mod_m() {
        // Statistical check via the protocol itself: many runs, all exact.
        let (db, sel, mut rng) = setup(9);
        for _ in 0..3 {
            let r =
                run_multiclient(&db, &sel, 3, 128, LinkProfile::gigabit_lan(), &mut rng).unwrap();
            assert_eq!(r.aggregate.result, db.oracle_sum(&sel).unwrap());
        }
    }
}
