//! Server-side databases and client-side selections.

use pps_bignum::Uint;
use rand::Rng;
use rand::RngCore;

use crate::error::ProtocolError;

/// The server's database: `n` numbers. The paper uses 32-bit values; we
/// store `u64` and record the value bound for overflow analysis.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Database {
    values: Vec<u64>,
    /// Exclusive upper bound on the values (e.g. `2^32`).
    bound: u64,
}

impl Database {
    /// Wraps explicit values, computing the bound from the maximum.
    ///
    /// # Errors
    /// [`ProtocolError::Config`] for an empty database.
    pub fn new(values: Vec<u64>) -> Result<Self, ProtocolError> {
        if values.is_empty() {
            return Err(ProtocolError::Config("database must not be empty".into()));
        }
        let max = *values.iter().max().expect("non-empty");
        Ok(Database {
            values,
            bound: max.saturating_add(1),
        })
    }

    /// A deliberately empty database (zero rows). [`Database::new`]
    /// rejects an empty vector to catch accidental empties; this
    /// constructor exists for servers that are provisioned before data
    /// arrives — a session against it announces `total == 0` and is
    /// finalized immediately with the identity product.
    pub fn empty() -> Self {
        Database {
            values: Vec::new(),
            bound: 1,
        }
    }

    /// Generates `n` uniform random values in `[0, bound)` — the paper's
    /// workload is `n` 32-bit numbers (`bound = 2^32`).
    ///
    /// # Errors
    /// [`ProtocolError::Config`] for `n == 0` or `bound == 0`.
    pub fn random(n: usize, bound: u64, rng: &mut dyn RngCore) -> Result<Self, ProtocolError> {
        if n == 0 {
            return Err(ProtocolError::Config("database must not be empty".into()));
        }
        if bound == 0 {
            return Err(ProtocolError::Config("value bound must be positive".into()));
        }
        let values = (0..n).map(|_| rng.gen_range(0..bound)).collect();
        Ok(Database { values, bound })
    }

    /// The paper's exact workload: `n` 32-bit values.
    ///
    /// # Errors
    /// [`ProtocolError::Config`] for `n == 0`.
    pub fn random_32bit(n: usize, rng: &mut dyn RngCore) -> Result<Self, ProtocolError> {
        Self::random(n, 1 << 32, rng)
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True iff empty (only via [`Database::empty`]).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Row values.
    pub fn values(&self) -> &[u64] {
        &self.values
    }

    /// Exclusive value bound.
    pub fn bound(&self) -> u64 {
        self.bound
    }

    /// A database holding the squares of this one's values — the server
    /// side of private variance (Σx² uses the same index vector).
    ///
    /// # Errors
    /// [`ProtocolError::Config`] if any square overflows `u64`.
    pub fn squared(&self) -> Result<Self, ProtocolError> {
        let values = self
            .values
            .iter()
            .map(|&v| {
                v.checked_mul(v)
                    .ok_or_else(|| ProtocolError::Config(format!("{v}² overflows u64")))
            })
            .collect::<Result<Vec<_>, _>>()?;
        Database::new(values)
    }

    /// Plaintext oracle: the true weighted sum for `selection`, used by
    /// tests and reports.
    ///
    /// # Errors
    /// [`ProtocolError::Config`] on length mismatch.
    pub fn oracle_sum(&self, selection: &Selection) -> Result<u128, ProtocolError> {
        if selection.len() != self.len() {
            return Err(ProtocolError::Config(format!(
                "selection length {} != database length {}",
                selection.len(),
                self.len()
            )));
        }
        Ok(self
            .values
            .iter()
            .zip(selection.weights())
            .map(|(&x, &w)| x as u128 * w as u128)
            .sum())
    }
}

/// The client's private selection: one weight per database row.
///
/// Weights of 0/1 give the paper's selected sum; larger integer weights
/// give weighted sums ("integer weights in some larger range could be
/// used to produce a weighted sum", §2).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Selection {
    weights: Vec<u64>,
}

impl Selection {
    /// A 0/1 selection from booleans.
    pub fn from_bits(bits: &[bool]) -> Self {
        Selection {
            weights: bits.iter().map(|&b| b as u64).collect(),
        }
    }

    /// A 0/1 selection choosing the given row indices out of `n`.
    ///
    /// # Errors
    /// [`ProtocolError::Config`] for out-of-range indices.
    pub fn from_indices(n: usize, indices: &[usize]) -> Result<Self, ProtocolError> {
        let mut weights = vec![0u64; n];
        for &i in indices {
            if i >= n {
                return Err(ProtocolError::Config(format!(
                    "index {i} out of range 0..{n}"
                )));
            }
            weights[i] = 1;
        }
        Ok(Selection { weights })
    }

    /// An arbitrary integer-weighted selection.
    pub fn weighted(weights: Vec<u64>) -> Self {
        Selection { weights }
    }

    /// A uniformly random 0/1 selection with inclusion probability `p`.
    ///
    /// # Errors
    /// [`ProtocolError::Config`] for `p` outside `[0, 1]`.
    pub fn random(n: usize, p: f64, rng: &mut dyn RngCore) -> Result<Self, ProtocolError> {
        if !(0.0..=1.0).contains(&p) {
            return Err(ProtocolError::Config(
                "selection probability must be in [0,1]".into(),
            ));
        }
        Ok(Selection {
            weights: (0..n).map(|_| (rng.gen::<f64>() < p) as u64).collect(),
        })
    }

    /// Number of weights (must equal the database length).
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// True iff zero-length.
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// The weight vector.
    pub fn weights(&self) -> &[u64] {
        &self.weights
    }

    /// Number of rows with nonzero weight (the paper's `m`).
    pub fn selected_count(&self) -> usize {
        self.weights.iter().filter(|&&w| w != 0).count()
    }

    /// Largest weight (1 for 0/1 selections).
    pub fn max_weight(&self) -> u64 {
        self.weights.iter().copied().max().unwrap_or(0)
    }
}

/// Checks that the worst-case sum `n · max_value · max_weight` fits the
/// Paillier message space with headroom; the protocol refuses to run
/// otherwise (database privacy gives the client *no* way to detect
/// wraparound).
pub fn check_message_space(
    db: &Database,
    selection: &Selection,
    modulus: &Uint,
) -> Result<(), ProtocolError> {
    let worst = (db.len() as u128)
        .checked_mul(db.bound() as u128)
        .and_then(|v| v.checked_mul(selection.max_weight().max(1) as u128));
    let needed_bits = match worst {
        Some(w) => Uint::from_u128(w).bit_len(),
        None => 129,
    };
    // One bit of headroom below N.
    let available_bits = modulus.bit_len().saturating_sub(1);
    if needed_bits > available_bits {
        return Err(ProtocolError::SumOverflow {
            needed_bits,
            available_bits,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn database_construction() {
        let db = Database::new(vec![5, 10, 3]).unwrap();
        assert_eq!(db.len(), 3);
        assert_eq!(db.bound(), 11);
        assert!(Database::new(vec![]).is_err());
    }

    #[test]
    fn random_database_respects_bound() {
        let mut rng = StdRng::seed_from_u64(1);
        let db = Database::random(1000, 50, &mut rng).unwrap();
        assert!(db.values().iter().all(|&v| v < 50));
        assert!(Database::random(0, 50, &mut rng).is_err());
        assert!(Database::random(10, 0, &mut rng).is_err());
    }

    #[test]
    fn random_32bit_matches_paper_workload() {
        let mut rng = StdRng::seed_from_u64(2);
        let db = Database::random_32bit(100, &mut rng).unwrap();
        assert_eq!(db.bound(), 1 << 32);
        assert!(db.values().iter().all(|&v| v < (1 << 32)));
    }

    #[test]
    fn squared_database() {
        let db = Database::new(vec![2, 3, 4]).unwrap();
        assert_eq!(db.squared().unwrap().values(), &[4, 9, 16]);
        let huge = Database::new(vec![u64::MAX]).unwrap();
        assert!(huge.squared().is_err());
    }

    #[test]
    fn selection_constructors() {
        let s = Selection::from_bits(&[true, false, true]);
        assert_eq!(s.weights(), &[1, 0, 1]);
        assert_eq!(s.selected_count(), 2);

        let s = Selection::from_indices(5, &[0, 4]).unwrap();
        assert_eq!(s.weights(), &[1, 0, 0, 0, 1]);
        assert!(Selection::from_indices(5, &[5]).is_err());

        let s = Selection::weighted(vec![0, 7, 2]);
        assert_eq!(s.max_weight(), 7);
    }

    #[test]
    fn random_selection_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let s = Selection::random(10_000, 0.25, &mut rng).unwrap();
        let frac = s.selected_count() as f64 / 10_000.0;
        assert!((0.2..0.3).contains(&frac), "frac={frac}");
        assert!(Selection::random(10, 1.5, &mut rng).is_err());
        assert_eq!(
            Selection::random(10, 0.0, &mut rng)
                .unwrap()
                .selected_count(),
            0
        );
        assert_eq!(
            Selection::random(10, 1.0, &mut rng)
                .unwrap()
                .selected_count(),
            10
        );
    }

    #[test]
    fn oracle_sum() {
        let db = Database::new(vec![10, 20, 30, 40]).unwrap();
        let s = Selection::from_bits(&[true, false, true, false]);
        assert_eq!(db.oracle_sum(&s).unwrap(), 40);
        let w = Selection::weighted(vec![1, 2, 3, 4]);
        assert_eq!(db.oracle_sum(&w).unwrap(), 10 + 40 + 90 + 160);
        let short = Selection::from_bits(&[true]);
        assert!(db.oracle_sum(&short).is_err());
    }

    #[test]
    fn message_space_check() {
        let db = Database::new(vec![u32::MAX as u64; 4]).unwrap();
        let s = Selection::from_bits(&[true; 4]);
        // 128-bit modulus: plenty for 4 × 2^32.
        let big = Uint::one().shl(128);
        assert!(check_message_space(&db, &s, &big).is_ok());
        // 34-bit modulus: 4 × 2^32 ≈ 2^34 needs 35 bits > 33 available.
        let small = Uint::one().shl(34);
        assert!(matches!(
            check_message_space(&db, &s, &small),
            Err(ProtocolError::SumOverflow { .. })
        ));
        // Huge weights overflow too: 4 · 2^32 · (2^64−1) ≈ 2^98 needs
        // more than the 89 bits a 90-bit modulus offers.
        let w = Selection::weighted(vec![u64::MAX; 4]);
        assert!(check_message_space(&db, &w, &Uint::one().shl(90)).is_err());
    }
}
