//! Cross-process trace assembly: one causally ordered timeline from a
//! traced sharded query (PROTOCOL.md §9.4).
//!
//! A traced query mints one [`TraceContext`], carries it to every shard
//! worker inside the handshake messages, and records its own client-side
//! spans through a context-stamped [`Tracer`]. Each worker's runtime
//! stamps the context onto everything it records for that session, and
//! its [`TraceBuffer`](pps_obs::TraceBuffer) serves those records back
//! over `GET /trace/<id>`. [`run_sharded_query_traced`] drives the whole
//! round trip: run the query, fetch each leg's server-side records, and
//! merge everything into a [`TraceTimeline`].
//!
//! **Clock skew.** Every process timestamps against its own tracer
//! epoch, so raw server timestamps are meaningless next to client ones.
//! The assembler normalizes per leg by aligning the *midpoint* of the
//! server's `session` span with the midpoint of the client's matching
//! `shard_leg` span: the server session is causally enclosed by the
//! client leg (the client opened the connection and read the last
//! reply), so midpoint alignment centers the server work inside the
//! observed envelope and is exact when request and response latencies
//! are symmetric. Durations are never altered — only offsets.

use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

use pps_obs::{JsonValue, Record, Registry, RingCollector, TraceContext, Tracer};
use rand::RngCore;

use crate::client::SumClient;
use crate::error::ProtocolError;
use crate::obs::{PhaseTotals, ShardObs};
use crate::report::{RunReport, Variant};
use crate::shard::{run_sharded_query, ShardQueryConfig, ShardQueryOutcome};

/// How many records the traced query's private client-side ring holds.
const CLIENT_RING_CAPACITY: usize = 4096;

/// How long [`run_sharded_query_traced`] keeps polling a leg's obs
/// endpoint for the session's records. The server finalizes a session
/// (and records its spans) moments *after* the client has its answer —
/// the gap is one connection-close detection, so the poll is short.
const FETCH_RETRIES: u32 = 100;
const FETCH_RETRY_DELAY: Duration = Duration::from_millis(10);

/// One record placed on the merged timeline: which process emitted it
/// (0 = client, `i + 1` = shard leg `i`) and the record itself, with
/// its timestamps already normalized onto the client's clock.
#[derive(Clone, Debug)]
pub struct TimelineEntry {
    /// Emitting process: 0 for the client, `leg + 1` for a shard leg.
    pub process: usize,
    /// The span or event, timestamps in client-clock nanoseconds.
    pub record: Record,
}

impl TimelineEntry {
    /// Human label for the emitting process.
    pub fn process_label(&self) -> String {
        process_label(self.process)
    }

    fn start_ns(&self) -> u64 {
        match &self.record {
            Record::Span(s) => s.start_ns,
            Record::Event(e) => e.at_ns,
        }
    }
}

fn process_label(process: usize) -> String {
    if process == 0 {
        "client".into()
    } else {
        format!("shard{}", process - 1)
    }
}

/// The assembled cross-process timeline of one traced query.
#[derive(Clone, Debug)]
pub struct TraceTimeline {
    /// The query's trace id.
    pub trace_id: u128,
    /// Total processes (client + legs), even if a leg recorded nothing.
    pub processes: usize,
    /// All records, ordered by normalized start time.
    pub entries: Vec<TimelineEntry>,
}

impl TraceTimeline {
    /// Merges the client's records with each leg's server-side records
    /// into one timeline on the client's clock. `legs[i]` holds what
    /// shard leg `i`'s server recorded for this trace (possibly empty
    /// when the fetch failed); skew normalization is per leg, keyed on
    /// the client's `shard_leg` span with `session == i` (see the
    /// module docs). A leg with no alignment anchor is merged with its
    /// raw timestamps.
    pub fn assemble(trace_id: u128, client: Vec<Record>, legs: Vec<Vec<Record>>) -> Self {
        let mut entries: Vec<TimelineEntry> = Vec::new();
        for record in &client {
            entries.push(TimelineEntry {
                process: 0,
                record: record.clone(),
            });
        }
        let processes = legs.len() + 1;
        for (i, leg) in legs.into_iter().enumerate() {
            let offset = leg_clock_offset(&client, &leg, i as u64);
            for mut record in leg {
                shift_record(&mut record, offset);
                entries.push(TimelineEntry {
                    process: i + 1,
                    record,
                });
            }
        }
        entries.sort_by_key(|e| (e.start_ns(), e.process));
        TraceTimeline {
            trace_id,
            processes,
            entries,
        }
    }

    /// The spans on the timeline, in timeline order.
    pub fn spans(&self) -> impl Iterator<Item = &pps_obs::SpanRecord> {
        self.entries.iter().filter_map(|e| match &e.record {
            Record::Span(s) => Some(s),
            Record::Event(_) => None,
        })
    }

    /// Distinct processes that actually contributed records.
    pub fn processes_seen(&self) -> usize {
        let mut seen = vec![false; self.processes];
        for e in &self.entries {
            if let Some(slot) = seen.get_mut(e.process) {
                *slot = true;
            }
        }
        seen.iter().filter(|s| **s).count()
    }

    /// The timeline as a JSON object: trace id, process labels, and one
    /// entry per record (the record's own JSONL shape plus `process`).
    pub fn to_json(&self) -> JsonValue {
        let entries = self.entries.iter().map(|e| {
            let record = match &e.record {
                Record::Span(s) => s.to_json(),
                Record::Event(ev) => ev.to_json(),
            };
            JsonValue::object()
                .field("process", e.process as u64)
                .field("process_label", e.process_label())
                .field("record", record)
        });
        JsonValue::object()
            .field(
                "trace_id",
                TraceContext::new(self.trace_id, 0).trace_id_hex(),
            )
            .field("processes", self.processes as u64)
            .field("entries", JsonValue::array(entries))
    }

    /// A human-readable rendering: one line per record, time-ordered,
    /// offsets relative to the earliest record.
    pub fn render_pretty(&self) -> String {
        let origin = self.entries.iter().map(TimelineEntry::start_ns).min();
        let mut out = format!(
            "trace {} — {} records across {} processes\n",
            TraceContext::new(self.trace_id, 0).trace_id_hex(),
            self.entries.len(),
            self.processes_seen(),
        );
        let Some(origin) = origin else { return out };
        for e in &self.entries {
            let at_ms = (e.start_ns() - origin) as f64 / 1e6;
            match &e.record {
                Record::Span(s) => {
                    let dur_ms = s.duration().as_secs_f64() * 1e3;
                    let phase = s.phase.map(|p| p.label()).unwrap_or("-");
                    out.push_str(&format!(
                        "{:>10.3}ms  {:<8} span  {:<20} {:>10.3}ms  phase={}\n",
                        at_ms,
                        e.process_label(),
                        s.name,
                        dur_ms,
                        phase,
                    ));
                }
                Record::Event(ev) => {
                    out.push_str(&format!(
                        "{:>10.3}ms  {:<8} event {:<20} {}\n",
                        at_ms,
                        e.process_label(),
                        ev.name,
                        ev.detail,
                    ));
                }
            }
        }
        out
    }

    /// The timeline in Chrome trace-event format (the JSON object form
    /// with a `traceEvents` array), loadable in Perfetto / `chrome:
    /// //tracing`. Each process gets its own `pid` track with a
    /// `process_name` metadata record; spans become complete (`X`)
    /// events, events become instants (`i`), timestamps in microseconds.
    pub fn to_chrome_trace(&self) -> JsonValue {
        let mut events: Vec<JsonValue> = Vec::new();
        for process in 0..self.processes {
            events.push(
                JsonValue::object()
                    .field("ph", "M")
                    .field("name", "process_name")
                    .field("pid", process as u64)
                    .field("tid", 0u64)
                    .field(
                        "args",
                        JsonValue::object().field("name", process_label(process)),
                    ),
            );
        }
        for e in &self.entries {
            let pid = e.process as u64;
            events.push(match &e.record {
                Record::Span(s) => {
                    let mut args = JsonValue::object();
                    if let Some(phase) = s.phase {
                        args = args.field("phase", phase.label());
                    }
                    if let Some(batch) = s.batch {
                        args = args.field("batch", batch);
                    }
                    JsonValue::object()
                        .field("ph", "X")
                        .field("name", s.name.as_str())
                        .field("pid", pid)
                        .field("tid", s.session.unwrap_or(0))
                        .field("ts", s.start_ns as f64 / 1e3)
                        .field("dur", s.duration().as_nanos() as f64 / 1e3)
                        .field("args", args)
                }
                Record::Event(ev) => JsonValue::object()
                    .field("ph", "i")
                    .field("s", "t")
                    .field("name", ev.name.as_str())
                    .field("pid", pid)
                    .field("tid", ev.session.unwrap_or(0))
                    .field("ts", ev.at_ns as f64 / 1e3)
                    .field(
                        "args",
                        JsonValue::object().field("detail", ev.detail.as_str()),
                    ),
            });
        }
        JsonValue::object()
            .field("traceEvents", JsonValue::Array(events))
            .field("displayTimeUnit", "ms")
    }
}

/// Client-clock minus server-clock offset for leg `i`: aligns the
/// midpoint of the server's `session` span with the midpoint of the
/// client's `shard_leg` span for that leg. Zero when either anchor span
/// is missing.
fn leg_clock_offset(client: &[Record], leg: &[Record], leg_index: u64) -> i64 {
    let client_mid = client.iter().find_map(|r| match r {
        Record::Span(s) if s.name == "shard_leg" && s.session == Some(leg_index) => {
            Some(midpoint_ns(s))
        }
        _ => None,
    });
    let server_mid = leg.iter().find_map(|r| match r {
        Record::Span(s) if s.name == "session" => Some(midpoint_ns(s)),
        _ => None,
    });
    match (client_mid, server_mid) {
        (Some(c), Some(s)) => c - s,
        _ => 0,
    }
}

fn midpoint_ns(s: &pps_obs::SpanRecord) -> i64 {
    (s.start_ns as i64) + ((s.end_ns.saturating_sub(s.start_ns)) as i64) / 2
}

fn shift_ns(t: u64, offset: i64) -> u64 {
    (t as i64).saturating_add(offset).max(0) as u64
}

fn shift_record(record: &mut Record, offset: i64) {
    match record {
        Record::Span(s) => {
            s.start_ns = shift_ns(s.start_ns, offset);
            s.end_ns = shift_ns(s.end_ns, offset);
        }
        Record::Event(e) => e.at_ns = shift_ns(e.at_ns, offset),
    }
}

/// Parses a `GET /trace/<id>` JSONL body back into records. Lines that
/// are not well-formed span/event objects are skipped (a collector
/// version skew must degrade a timeline, not fail the query).
pub fn parse_trace_jsonl(body: &str) -> Vec<Record> {
    body.lines().filter_map(record_from_line).collect()
}

fn record_from_line(line: &str) -> Option<Record> {
    let v = JsonValue::parse(line).ok()?;
    let trace = v.get("trace_id").and_then(|t| {
        let id = TraceContext::parse_trace_id(t.as_str()?)?;
        let parent = v.get("parent_span_id").and_then(JsonValue::as_u64)?;
        Some(TraceContext::new(id, parent))
    });
    let name = v.get("name")?.as_str()?.to_string();
    let session = v.get("session").and_then(JsonValue::as_u64);
    match v.get("kind")?.as_str()? {
        "span" => Some(Record::Span(pps_obs::SpanRecord {
            name,
            phase: v
                .get("phase")
                .and_then(JsonValue::as_str)
                .and_then(pps_obs::Phase::from_label),
            session,
            batch: v.get("batch").and_then(JsonValue::as_u64),
            start_ns: v.get("start_ns")?.as_u64()?,
            end_ns: v.get("end_ns")?.as_u64()?,
            trace,
        })),
        "event" => Some(Record::Event(pps_obs::EventRecord {
            name,
            session,
            at_ns: v.get("at_ns")?.as_u64()?,
            detail: v
                .get("detail")
                .and_then(JsonValue::as_str)
                .unwrap_or_default()
                .to_string(),
            trace,
        })),
        _ => None,
    }
}

/// Fetches the records a server's [`pps_obs::TraceBuffer`] holds for `trace_id`
/// through its obs HTTP endpoint. Returns an empty vec on 404 (unknown
/// or evicted trace).
///
/// # Errors
/// [`ProtocolError::Config`] when the endpoint is unreachable or
/// answers with a non-200/404 status.
pub fn fetch_trace(addr: SocketAddr, trace_id: u128) -> Result<Vec<Record>, ProtocolError> {
    let path = format!("/trace/{}", TraceContext::new(trace_id, 0).trace_id_hex());
    let (status, body) = pps_obs::http::get(addr, &path)
        .map_err(|e| ProtocolError::Config(format!("trace fetch from {addr} failed: {e}")))?;
    if status.contains("404") {
        return Ok(Vec::new());
    }
    if !status.contains("200") {
        return Err(ProtocolError::Config(format!(
            "trace fetch from {addr}: unexpected status {status}"
        )));
    }
    Ok(parse_trace_jsonl(&body))
}

/// Everything a traced sharded query produced.
#[derive(Clone, Debug)]
pub struct TracedShardQuery {
    /// The ordinary query outcome: sum, sizes, per-leg reports.
    pub outcome: ShardQueryOutcome,
    /// The four-component breakdown reconstructed from the merged
    /// timeline's phase-tagged spans (client phases summed over legs,
    /// server compute summed over the legs' server-side records).
    pub report: RunReport,
    /// The minted trace id, shared by every record on the timeline.
    pub trace_id: u128,
    /// The merged cross-process timeline.
    pub timeline: TraceTimeline,
    /// Legs whose server-side records were actually fetched (a leg
    /// whose obs endpoint never served the trace contributes only
    /// client-side records to the timeline).
    pub legs_fetched: usize,
}

/// Runs one sharded query end-to-end traced: mints a [`TraceContext`],
/// propagates it to every worker on the wire, then assembles the full
/// cross-process timeline by fetching each leg's server-side records
/// from `obs_addrs[i]` (shard `i`'s obs HTTP endpoint, see
/// `MetricsServer::start_with_traces`).
///
/// Client-side spans (per-leg encrypt/wire/decrypt phases and the
/// `shard_leg` envelopes) are recorded into a private ring; shard-leg
/// counters additionally land in `registry`.
///
/// # Errors
/// As [`run_sharded_query`], plus [`ProtocolError::Config`] when
/// `obs_addrs` does not pair up with `addrs`. A leg whose trace fetch
/// fails does *not* fail the query — the timeline just lacks that leg's
/// server-side records (see [`TracedShardQuery::legs_fetched`]).
pub fn run_sharded_query_traced(
    addrs: &[String],
    obs_addrs: &[SocketAddr],
    client: &SumClient,
    select: &[usize],
    config: &ShardQueryConfig,
    registry: Arc<Registry>,
    rng: &mut dyn RngCore,
) -> Result<TracedShardQuery, ProtocolError> {
    if obs_addrs.len() != addrs.len() {
        return Err(ProtocolError::Config(format!(
            "{} shard addresses but {} obs addresses",
            addrs.len(),
            obs_addrs.len()
        )));
    }
    let mut id_bytes = [0u8; 16];
    rng.fill_bytes(&mut id_bytes);
    let trace_id = u128::from_be_bytes(id_bytes).max(1); // zero reads as "absent"
    let ctx = TraceContext::new(trace_id, 0);

    let ring = Arc::new(RingCollector::new(CLIENT_RING_CAPACITY));
    let tracer = Tracer::new(Arc::clone(&ring) as Arc<dyn pps_obs::Collector>).with_context(ctx);
    let obs = ShardObs::with_tracer(registry, tracer.clone());

    let mut traced_config = config.clone();
    traced_config.tcp.trace = Some(ctx);

    let span = tracer.span("sharded_query").start();
    let outcome = run_sharded_query(addrs, client, select, &traced_config, Some(&obs), rng);
    drop(span);
    let outcome = outcome?;

    let client_records = ring.records();
    let mut legs_fetched = 0usize;
    let mut leg_records = Vec::with_capacity(obs_addrs.len());
    for addr in obs_addrs {
        let records = fetch_leg_records(*addr, trace_id);
        if !records.is_empty() {
            legs_fetched += 1;
        }
        leg_records.push(records);
    }

    let timeline = TraceTimeline::assemble(trace_id, client_records, leg_records);
    let report = report_from_timeline(&timeline, &outcome, client);

    Ok(TracedShardQuery {
        outcome,
        report,
        trace_id,
        timeline,
        legs_fetched,
    })
}

/// Polls one leg's obs endpoint until its server has finalized the
/// session (the trace contains a `session` span) or the retry budget is
/// spent. The server records its spans moments after the client has its
/// answer — at connection teardown — so the first poll usually misses.
fn fetch_leg_records(addr: SocketAddr, trace_id: u128) -> Vec<Record> {
    let mut last = Vec::new();
    for _ in 0..FETCH_RETRIES {
        if let Ok(records) = fetch_trace(addr, trace_id) {
            let finalized = records.iter().any(|r| match r {
                Record::Span(s) => s.name == "session",
                Record::Event(_) => false,
            });
            if finalized {
                return records;
            }
            last = records;
        }
        std::thread::sleep(FETCH_RETRY_DELAY);
    }
    last
}

/// Reconstructs the paper's four-component [`RunReport`] from the
/// merged timeline: phase-tagged spans sum into the decomposition
/// (exactly the [`PhaseTotals`] bridge), traffic comes from the query
/// outcome, and the `sharded_query` envelope span is the pipelined
/// makespan.
fn report_from_timeline(
    timeline: &TraceTimeline,
    outcome: &ShardQueryOutcome,
    client: &SumClient,
) -> RunReport {
    let totals = PhaseTotals::from_spans(timeline.spans());
    let makespan = timeline
        .spans()
        .find(|s| s.name == "sharded_query")
        .map(pps_obs::SpanRecord::duration);
    let mut report = RunReport {
        variant: Variant::MultiDatabase {
            k: outcome.legs.len(),
        },
        n: outcome.n,
        selected: outcome.selected,
        key_bits: client.keypair().public.key_bits(),
        link: "tcp".into(),
        client_offline: Duration::ZERO,
        client_encrypt: Duration::ZERO,
        server_compute: Duration::ZERO,
        comm: Duration::ZERO,
        client_decrypt: Duration::ZERO,
        pipelined_total: makespan,
        bytes_to_server: outcome
            .legs
            .iter()
            .map(|l| l.traffic.payload_bytes_sent)
            .sum(),
        bytes_to_client: outcome
            .legs
            .iter()
            .map(|l| l.traffic.payload_bytes_received)
            .sum(),
        messages: outcome
            .legs
            .iter()
            .map(|l| l.traffic.messages_sent + l.traffic.messages_received)
            .sum(),
        result: outcome.sum,
    };
    totals.apply(&mut report);
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use pps_obs::{EventRecord, Phase, SpanRecord};

    fn span(name: &str, session: Option<u64>, start: u64, end: u64) -> Record {
        Record::Span(SpanRecord {
            name: name.into(),
            phase: None,
            session,
            batch: None,
            start_ns: start,
            end_ns: end,
            trace: Some(TraceContext::new(7, 0)),
        })
    }

    #[test]
    fn skew_normalization_centers_server_span_in_client_envelope() {
        // Client saw leg 0 from 1000 to 3000 (midpoint 2000); the
        // server's own clock put its session at 500_000..500_400
        // (midpoint 500_200). Offset is 2000 - 500_200.
        let client = vec![span("shard_leg", Some(0), 1000, 3000)];
        let leg = vec![
            span("session", Some(1), 500_000, 500_400),
            Record::Event(EventRecord {
                name: "slow_query".into(),
                session: Some(1),
                at_ns: 500_400,
                detail: String::new(),
                trace: Some(TraceContext::new(7, 0)),
            }),
        ];
        let t = TraceTimeline::assemble(7, client, vec![leg]);
        let session = t
            .spans()
            .find(|s| s.name == "session")
            .expect("session span merged");
        assert_eq!(session.start_ns, 1800);
        assert_eq!(session.end_ns, 2200);
        assert_eq!(
            session.duration(),
            Duration::from_nanos(400),
            "durations survive normalization"
        );
        let event = t
            .entries
            .iter()
            .find_map(|e| match &e.record {
                Record::Event(ev) => Some(ev),
                _ => None,
            })
            .expect("event merged");
        assert_eq!(event.at_ns, 2200, "events shift by the same offset");
        assert_eq!(t.processes_seen(), 2);
    }

    #[test]
    fn missing_anchor_merges_unshifted() {
        let client = vec![span("sharded_query", None, 0, 10)];
        let leg = vec![span("fold", Some(1), 42, 52)];
        let t = TraceTimeline::assemble(7, client, vec![leg]);
        let fold = t.spans().find(|s| s.name == "fold").unwrap();
        assert_eq!(fold.start_ns, 42);
    }

    #[test]
    fn entries_are_time_ordered() {
        let client = vec![span("b", None, 50, 60), span("a", None, 10, 90)];
        let t = TraceTimeline::assemble(7, client, vec![]);
        let names: Vec<&str> = t.spans().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["a", "b"]);
    }

    #[test]
    fn jsonl_round_trips_through_parse() {
        let records = vec![
            Record::Span(SpanRecord {
                name: "fold".into(),
                phase: Some(Phase::ServerCompute),
                session: Some(3),
                batch: Some(1),
                start_ns: 5,
                end_ns: 9,
                trace: Some(TraceContext::new(0xabc, 2)),
            }),
            Record::Event(EventRecord {
                name: "slow_query".into(),
                session: Some(3),
                at_ns: 11,
                detail: "wall_ms=1.0".into(),
                trace: Some(TraceContext::new(0xabc, 2)),
            }),
        ];
        let mut body = String::new();
        for r in &records {
            let json = match r {
                Record::Span(s) => s.to_json(),
                Record::Event(e) => e.to_json(),
            };
            body.push_str(&json.render());
            body.push('\n');
        }
        body.push_str("not json\n"); // tolerated, skipped
        let parsed = parse_trace_jsonl(&body);
        assert_eq!(parsed.len(), 2);
        match &parsed[0] {
            Record::Span(s) => {
                assert_eq!(s.name, "fold");
                assert_eq!(s.phase, Some(Phase::ServerCompute));
                assert_eq!(s.session, Some(3));
                assert_eq!(s.batch, Some(1));
                assert_eq!(s.start_ns, 5);
                assert_eq!(s.end_ns, 9);
                assert_eq!(s.trace, Some(TraceContext::new(0xabc, 2)));
            }
            other => panic!("expected span, got {other:?}"),
        }
        match &parsed[1] {
            Record::Event(e) => {
                assert_eq!(e.name, "slow_query");
                assert_eq!(e.detail, "wall_ms=1.0");
                assert_eq!(e.trace, Some(TraceContext::new(0xabc, 2)));
            }
            other => panic!("expected event, got {other:?}"),
        }
    }

    #[test]
    fn chrome_trace_has_one_track_per_process() {
        let client = vec![span("sharded_query", None, 0, 100)];
        let legs = vec![
            vec![span("session", Some(1), 10, 20)],
            vec![span("session", Some(2), 10, 20)],
            vec![span("session", Some(3), 10, 20)],
        ];
        let t = TraceTimeline::assemble(9, client, legs);
        let chrome = t.to_chrome_trace().render();
        let parsed = JsonValue::parse(&chrome).expect("chrome export is valid JSON");
        let events = parsed
            .get("traceEvents")
            .and_then(JsonValue::as_array)
            .expect("traceEvents array");
        let mut pids: Vec<u64> = events
            .iter()
            .filter_map(|e| e.get("pid").and_then(JsonValue::as_u64))
            .collect();
        pids.sort_unstable();
        pids.dedup();
        assert_eq!(pids, vec![0, 1, 2, 3], "client + 3 leg tracks");
        let metadata = events
            .iter()
            .filter(|e| e.get("ph").and_then(JsonValue::as_str) == Some("M"))
            .count();
        assert_eq!(metadata, 4, "one process_name record per track");
    }

    #[test]
    fn pretty_render_mentions_every_record() {
        let client = vec![span("sharded_query", None, 0, 100)];
        let leg = vec![span("session", Some(1), 10, 20)];
        let t = TraceTimeline::assemble(9, client, vec![leg]);
        let text = t.render_pretty();
        assert!(text.contains("sharded_query"));
        assert!(text.contains("session"));
        assert!(text.contains("client"));
        assert!(text.contains("shard0"));
    }
}
