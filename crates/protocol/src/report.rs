//! Run reports: the paper's four-component runtime breakdown.
//!
//! Every figure in the paper plots some subset of **client encryption
//! time**, **server computation time**, **communication time**, and
//! **client decryption time** against the database size. A [`RunReport`]
//! records exactly those components (plus byte counts and the offline
//! preprocessing time, which the paper excludes from "online" totals).

use std::fmt;
use std::time::Duration;

use pps_obs::JsonValue;

/// Which protocol variant produced a report.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Variant {
    /// Non-private baseline: client sends plaintext indices (§2).
    PlainIndices,
    /// Non-private baseline: server dumps the database (§2).
    DownloadAll,
    /// The basic private protocol of Fig. 1 (§3.1).
    Basic,
    /// Batched/pipelined index streaming (§3.2).
    Batched,
    /// Offline-preprocessed index encryptions (§3.3).
    Preprocessed,
    /// Batching + preprocessing combined (§3.4).
    Combined,
    /// `k` cooperating clients with blinded partial sums (§3.5).
    MultiClient {
        /// Number of cooperating clients.
        k: usize,
    },
    /// One client over `k` distributed database partitions with
    /// correlated server-side blinding (§1 extension).
    MultiDatabase {
        /// Number of partitions/servers.
        k: usize,
    },
}

impl Variant {
    /// Stable machine-readable identifier (used as the `variant` field
    /// of [`RunReport::to_json`]).
    pub fn slug(&self) -> String {
        match self {
            Self::PlainIndices => "plain_indices".into(),
            Self::DownloadAll => "download_all".into(),
            Self::Basic => "basic".into(),
            Self::Batched => "batched".into(),
            Self::Preprocessed => "preprocessed".into(),
            Self::Combined => "combined".into(),
            Self::MultiClient { k } => format!("multi_client_{k}"),
            Self::MultiDatabase { k } => format!("multi_database_{k}"),
        }
    }
}

impl fmt::Display for Variant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::PlainIndices => write!(f, "plain-indices baseline"),
            Self::DownloadAll => write!(f, "download-all baseline"),
            Self::Basic => write!(f, "private sum (no optimizations)"),
            Self::Batched => write!(f, "private sum + batching"),
            Self::Preprocessed => write!(f, "private sum + preprocessing"),
            Self::Combined => write!(f, "private sum + batching + preprocessing"),
            Self::MultiClient { k } => write!(f, "private sum, {k} clients"),
            Self::MultiDatabase { k } => write!(f, "private sum over {k} distributed databases"),
        }
    }
}

/// Timing and traffic breakdown of one protocol execution.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Protocol variant.
    pub variant: Variant,
    /// Database size `n`.
    pub n: usize,
    /// Number of selected rows `m`.
    pub selected: usize,
    /// Paillier modulus size in bits (512 in the paper).
    pub key_bits: usize,
    /// Link profile name.
    pub link: String,
    /// Offline client precomputation (not part of the online total).
    pub client_offline: Duration,
    /// Online client encryption / index-preparation time.
    pub client_encrypt: Duration,
    /// Server homomorphic-product time.
    pub server_compute: Duration,
    /// Communication time (virtual, from the link model).
    pub comm: Duration,
    /// Client decryption time (constant in `n`).
    pub client_decrypt: Duration,
    /// Overlapped makespan for pipelined variants (`None` when the
    /// variant is strictly sequential).
    pub pipelined_total: Option<Duration>,
    /// Payload bytes sent client → server.
    pub bytes_to_server: usize,
    /// Payload bytes sent server → client.
    pub bytes_to_client: usize,
    /// Total messages exchanged.
    pub messages: usize,
    /// The computed (and verified) selected sum.
    pub result: u128,
}

impl RunReport {
    /// Sum of the online components with no overlap — the runtime of a
    /// strictly sequential execution (Figs. 2, 3, 5, 6).
    pub fn total_sequential(&self) -> Duration {
        self.client_encrypt + self.server_compute + self.comm + self.client_decrypt
    }

    /// Online runtime: the pipelined makespan when the variant overlaps
    /// stages, the sequential total otherwise (the "overall runtime"
    /// curves of Figs. 4, 7, 9).
    pub fn total_online(&self) -> Duration {
        self.pipelined_total
            .unwrap_or_else(|| self.total_sequential())
    }

    /// End-to-end cost including offline preprocessing.
    pub fn total_with_offline(&self) -> Duration {
        self.total_online() + self.client_offline
    }

    /// The report as a JSON object — the workspace's one serialized
    /// report shape, shared by the CLI's `--trace json` output and the
    /// bench harness's `BENCH_*.json` files. Durations are fractional
    /// seconds; the four online components appear under `phases` using
    /// the paper's phase labels.
    pub fn to_json(&self) -> JsonValue {
        let phases = JsonValue::object()
            .field("client_encrypt", JsonValue::seconds(self.client_encrypt))
            .field("comm", JsonValue::seconds(self.comm))
            .field("server_compute", JsonValue::seconds(self.server_compute))
            .field("client_decrypt", JsonValue::seconds(self.client_decrypt))
            .field("offline", JsonValue::seconds(self.client_offline));
        JsonValue::object()
            .field("variant", self.variant.slug())
            .field("variant_label", self.variant.to_string())
            .field("n", self.n as u64)
            .field("selected", self.selected as u64)
            .field("key_bits", self.key_bits as u64)
            .field("link", self.link.as_str())
            .field("phases", phases)
            .field(
                "total_sequential_seconds",
                JsonValue::seconds(self.total_sequential()),
            )
            .field(
                "total_online_seconds",
                JsonValue::seconds(self.total_online()),
            )
            .field(
                "pipelined_total_seconds",
                self.pipelined_total.map(JsonValue::seconds),
            )
            .field("bytes_to_server", self.bytes_to_server as u64)
            .field("bytes_to_client", self.bytes_to_client as u64)
            .field("messages", self.messages as u64)
            .field("result", self.result.to_string())
    }

    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "{} | n={} m={} | enc {:.3}s srv {:.3}s comm {:.3}s dec {:.4}s | online {:.3}s | {} B up, {} B down",
            self.variant,
            self.n,
            self.selected,
            self.client_encrypt.as_secs_f64(),
            self.server_compute.as_secs_f64(),
            self.comm.as_secs_f64(),
            self.client_decrypt.as_secs_f64(),
            self.total_online().as_secs_f64(),
            self.bytes_to_server,
            self.bytes_to_client,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> RunReport {
        RunReport {
            variant: Variant::Basic,
            n: 1000,
            selected: 500,
            key_bits: 512,
            link: "test".into(),
            client_offline: Duration::from_secs(9),
            client_encrypt: Duration::from_secs(4),
            server_compute: Duration::from_secs(2),
            comm: Duration::from_secs(1),
            client_decrypt: Duration::from_millis(10),
            pipelined_total: None,
            bytes_to_server: 128_000,
            bytes_to_client: 128,
            messages: 3,
            result: 12345,
        }
    }

    #[test]
    fn totals() {
        let r = report();
        assert_eq!(r.total_sequential(), Duration::from_millis(7010));
        assert_eq!(r.total_online(), r.total_sequential());
        assert_eq!(r.total_with_offline(), Duration::from_millis(16_010));
    }

    #[test]
    fn pipelined_total_overrides() {
        let mut r = report();
        r.pipelined_total = Some(Duration::from_secs(5));
        assert_eq!(r.total_online(), Duration::from_secs(5));
        // Sequential view is unchanged.
        assert_eq!(r.total_sequential(), Duration::from_millis(7010));
    }

    #[test]
    fn variant_display() {
        assert_eq!(Variant::Basic.to_string(), "private sum (no optimizations)");
        assert!(Variant::MultiClient { k: 3 }.to_string().contains('3'));
    }

    #[test]
    fn summary_contains_components() {
        let s = report().summary();
        assert!(s.contains("n=1000"));
        assert!(s.contains("128000 B up"));
    }

    #[test]
    fn to_json_round_trips_the_breakdown() {
        let text = report().to_json().render();
        assert!(text.contains(r#""variant":"basic""#));
        assert!(text.contains(r#""n":1000"#));
        assert!(text.contains(r#""client_encrypt":4.0"#));
        assert!(text.contains(r#""offline":9.0"#));
        assert!(text.contains(r#""total_sequential_seconds":7.01"#));
        assert!(text.contains(r#""pipelined_total_seconds":null"#));
        assert!(text.contains(r#""result":"12345""#));

        let mut r = report();
        r.variant = Variant::MultiClient { k: 3 };
        r.pipelined_total = Some(Duration::from_secs(5));
        let text = r.to_json().render();
        assert!(text.contains(r#""variant":"multi_client_3""#));
        assert!(text.contains(r#""pipelined_total_seconds":5.0"#));
    }
}
