//! Networked sharded queries: blinded partial sums over `k` parallel
//! TCP shard legs (§3.5, promoted from the in-process simulation in
//! [`multidb`](crate::multidb)).
//!
//! Each shard worker owns one horizontal partition of the database and
//! answers the ordinary streaming protocol — except that the very first
//! message on every connection is a [`ShardHello`] carrying the
//! pairwise blinding seeds for that worker's position in the fan-out.
//! The worker folds its correlated blinding
//! `R_i = Σ_{j>i} r_ij − Σ_{j<i} r_ji (mod M)` into its accumulator, so
//! the value it returns is uniform in `M = 2^(key_bits − 2)` to anyone
//! who is missing even one of its pairwise seeds: no single worker or
//! transport observer learns another partition's true partial. Over
//! all `k` workers the blindings telescope to `Σ R_i ≡ 0 (mod M)` —
//! summing the decrypted partials mod `M` cancels every blinding and
//! yields the true selected sum, with **no worker-to-worker traffic at
//! query time** (the paper's key §3.5 property).
//!
//! **Fault tolerance is per leg.** Every leg runs the PR 3/PR 5 retry
//! and resume machinery independently: when one shard's connection dies
//! mid-stream, only that leg reconnects and continues from its own
//! server-side checkpoint (which carries the blinding, so a resumed
//! partial is still blinded); the other legs are untouched and re-send
//! zero bytes.
//!
//! **Trust model.** The client distributes the pairwise seeds at query
//! time, standing in for the out-of-band pairwise enrollment the paper
//! assumes between servers. That shortcut has a real cost: because the
//! client dealt **every** seed, it can recompute each worker's `R_i`
//! ([`leg_blinding`](crate::multidb::leg_blinding) is deterministic in
//! the seeds) and unblind each partial by itself — in this deployment
//! the blinding provides **no privacy against the client**. What it
//! does protect is the workers from *each other* and from transport
//! observers: worker `i` misses the pairwise seeds it is not party to,
//! so worker `j`'s partial is uniform in `M` from its point of view,
//! and a coalition must reach `k − 1` workers (plus the wire) before
//! the remaining partial falls. The paper's stronger bound — partials
//! hidden even from the querier, colluding with up to `k − 1` servers
//! — requires the servers to establish the pairwise seeds out-of-band
//! among themselves; the wire protocol already carries everything else
//! needed for that deployment, only the seed dealer changes. The
//! `k = 1` degenerate fan-out has no pairs and therefore `R_0 = 0`:
//! the one partial *is* the total, which the client learns anyway.

use std::io::{Read, Write};

use pps_bignum::Uint;
use pps_crypto::CryptoError;
use pps_transport::{StreamWire, TcpWire, TrafficStats, Wire};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

use crate::client::SumClient;
use crate::data::Selection;
use crate::error::ProtocolError;
use crate::messages::{ShardHello, SizeReply, SizeRequest};
use crate::multidb::MIN_BLINDING_KEY_BITS;
use crate::obs::ShardObs;
use crate::tcp_client::{
    run_stream_query_raw, LegTrace, PresetQuery, RawQueryOutcome, TcpQueryConfig,
};

/// Width in bytes of each pairwise blinding seed the engine generates.
const SEED_BYTES: usize = 32;

/// Upper bound on the row count a single shard may claim at size
/// discovery. `SizeReply.n` is attacker-controlled (a malicious or
/// buggy worker can report anything); an implausible size is refused
/// instead of being folded into the offset arithmetic.
const MAX_SHARD_ROWS: u64 = 1 << 40;

/// Configuration for a sharded query.
#[derive(Clone, Debug, Default)]
pub struct ShardQueryConfig {
    /// Per-leg transport configuration: batch size, deadlines, and the
    /// retry policy each leg applies independently.
    pub tcp: TcpQueryConfig,
    /// When the client knows the servers' value bound, the engine
    /// pre-checks that the worst-case total `n_total · bound` fits the
    /// blinding modulus `M = 2^(key_bits − 2)` and fails with
    /// [`ProtocolError::SumOverflow`] before streaming anything. `None`
    /// skips the check (the sum is still correct mod `M`).
    pub value_bound: Option<u64>,
}

/// What one shard leg did: its blinded partial and its retry history.
#[derive(Clone, Debug)]
pub struct ShardLegReport {
    /// Leg index `i` in the fan-out, `0 ≤ i < k`.
    pub leg: usize,
    /// Rows this shard reported owning at size discovery.
    pub rows: usize,
    /// The decrypted **blinded** partial `(data_i + R_i)` — uniform in
    /// `M` for `k > 1` to any party missing one of leg `i`'s pairwise
    /// seeds. The seed-dealing client itself can reconstruct `R_i` and
    /// unblind it (see the module-level trust model).
    pub blinded_partial: Uint,
    /// Attempts this leg made (1 = clean).
    pub attempts: u32,
    /// Attempts that continued from a surviving server checkpoint
    /// instead of re-issuing the leg's whole query.
    pub resumed_attempts: u32,
    /// Encrypted-payload bytes written by each of this leg's attempts,
    /// in order.
    pub attempt_payload_bytes: Vec<usize>,
    /// Traffic counters of this leg's successful attempt.
    pub traffic: TrafficStats,
}

/// Result of a sharded query.
#[derive(Clone, Debug)]
pub struct ShardQueryOutcome {
    /// The private selected sum, with every blinding cancelled.
    pub sum: u128,
    /// Total rows across all shards (the global index space).
    pub n: usize,
    /// Rows selected (global indices requested).
    pub selected: usize,
    /// Per-leg reports, in leg order.
    pub legs: Vec<ShardLegReport>,
}

fn bignum(e: pps_bignum::BignumError) -> ProtocolError {
    ProtocolError::Crypto(CryptoError::from(e))
}

/// Everything one leg needs, assembled before the fan-out so the
/// spawned threads stay simple.
struct LegPlan<S, F> {
    leg: usize,
    connect: F,
    /// The discovery connection, reused as attempt 1's wire.
    wire: StreamWire<S>,
    hello: pps_transport::Frame,
    rows: usize,
    local: Vec<usize>,
    rng_seed: [u8; 32],
}

fn run_leg<S, F>(
    mut plan: LegPlan<S, F>,
    client: &SumClient,
    config: &TcpQueryConfig,
    tracer: Option<&pps_obs::Tracer>,
) -> Result<RawQueryOutcome, ProtocolError>
where
    S: Read + Write,
    F: FnMut(u32) -> Result<StreamWire<S>, ProtocolError>,
{
    let preset = PresetQuery {
        n: plan.rows,
        selection: Selection::from_indices(plan.rows, &plan.local)?,
    };
    let leg_trace = tracer.map(|tracer| LegTrace {
        tracer,
        leg: plan.leg as u64,
    });
    let mut first = Some(plan.wire);
    let inner = &mut plan.connect;
    let hello = &plan.hello;
    // Attempt 1 reuses the discovery connection (its ShardHello is
    // already installed); every reconnect re-opens the handshake so the
    // fresh server session is blinded before any other message.
    let mut connect = move |attempt: u32| -> Result<StreamWire<S>, ProtocolError> {
        if let Some(wire) = first.take() {
            return Ok(wire);
        }
        let mut wire = inner(attempt)?;
        wire.send(hello.clone())?;
        Ok(wire)
    };
    let mut rng = StdRng::from_seed(plan.rng_seed);
    run_stream_query_raw(
        &mut connect,
        client,
        &[],
        config,
        &mut rng,
        Some(preset),
        leg_trace.as_ref(),
    )
}

/// Runs one private selected-sum query fanned out over `legs.len()`
/// shard workers, each reached through its own connector. `select`
/// holds **global** row indices over the concatenation of the shards'
/// partitions in leg order; the engine discovers each shard's size,
/// splits the selection, and runs the `k` legs concurrently — each with
/// independent retry/resume — before combining the blinded partials
/// mod `M = 2^(key_bits − 2)`.
///
/// Each connector is called once per attempt of its leg with the
/// 1-based attempt number, exactly as
/// [`run_stream_query_with_resume`](crate::run_stream_query_with_resume)
/// does; fault-injection harnesses drive this directly over
/// instrumented streams.
///
/// # Errors
/// [`ProtocolError::Config`] on an empty fan-out, a key too narrow to
/// blind, or an out-of-range global index;
/// [`ProtocolError::SumOverflow`] when `value_bound` shows the
/// worst-case total cannot fit the blinding modulus; otherwise the
/// first failing leg's error.
pub fn run_sharded_query_with<S, F>(
    legs: Vec<F>,
    client: &SumClient,
    select: &[usize],
    config: &ShardQueryConfig,
    obs: Option<&ShardObs>,
    rng: &mut dyn RngCore,
) -> Result<ShardQueryOutcome, ProtocolError>
where
    S: Read + Write + Send,
    F: FnMut(u32) -> Result<StreamWire<S>, ProtocolError> + Send,
{
    let k = legs.len();
    if k == 0 {
        return Err(ProtocolError::Config(
            "sharded query needs at least one shard".into(),
        ));
    }
    let key_bits = client.keypair().public.key_bits();
    if key_bits < MIN_BLINDING_KEY_BITS {
        return Err(ProtocolError::Config(format!(
            "key width {key_bits} bits is too small for a blinding modulus \
             (need at least {MIN_BLINDING_KEY_BITS})"
        )));
    }
    let m_bits = key_bits - 2;
    let m = Uint::one().shl(m_bits);

    // Pairwise seeds, matrix-addressed as seeds[i][j - i - 1] for i < j
    // (the multidb convention): leg i adds its row, subtracts column i.
    let seeds: Vec<Vec<Vec<u8>>> = (0..k)
        .map(|i| {
            (i + 1..k)
                .map(|_| {
                    let mut s = vec![0u8; SEED_BYTES];
                    rng.fill_bytes(&mut s);
                    s
                })
                .collect()
        })
        .collect();
    let hellos: Vec<pps_transport::Frame> = (0..k)
        .map(|i| {
            ShardHello {
                shard_index: i as u32,
                shard_count: k as u32,
                m_bits: m_bits as u32,
                seeds_add: seeds[i].clone(),
                seeds_sub: (0..i).map(|j| seeds[j][i - j - 1].clone()).collect(),
                trace: config.tcp.trace,
            }
            .encode()
            .map_err(ProtocolError::from)
        })
        .collect::<Result<_, _>>()?;

    // Phase A — sequential size discovery. Each leg's first connection
    // opens with its ShardHello (so a `require_shard` worker accepts
    // it) and asks for the shard's row count; the connection is kept
    // and becomes attempt 1 of the streaming phase.
    let mut wires = Vec::with_capacity(k);
    let mut shard_rows = Vec::with_capacity(k);
    let mut legs = legs;
    for (i, connect) in legs.iter_mut().enumerate() {
        let mut wire = connect(1)?;
        wire.send(hellos[i].clone())?;
        wire.send(SizeRequest.encode()?)?;
        let reported = SizeReply::decode(&wire.recv()?)?.n;
        // The reply is worker-controlled: cap it before it enters the
        // offset arithmetic below, where a huge value would wrap in
        // release builds and silently misroute the selection split.
        if reported > MAX_SHARD_ROWS {
            return Err(ProtocolError::Config(format!(
                "shard {i} claims {reported} rows, above the \
                 {MAX_SHARD_ROWS}-row cap"
            )));
        }
        wires.push(wire);
        shard_rows.push(reported as usize);
    }

    // Partition offsets and the global row count, with the accumulation
    // checked: even capped sizes must not be allowed to wrap the total.
    let mut offsets = Vec::with_capacity(k);
    let mut acc = 0usize;
    for (i, &rows) in shard_rows.iter().enumerate() {
        offsets.push(acc);
        acc = acc
            .checked_add(rows)
            .ok_or_else(|| ProtocolError::Config(format!("shard sizes overflow at shard {i}")))?;
    }
    let n_total = acc;

    if let Some(bound) = config.value_bound {
        // Mirror of check_message_space, against the blinding modulus:
        // the client has no database to hand the real check, but it
        // knows the shard sizes and (optionally) the value bound.
        let needed_bits = match (n_total as u128).checked_mul(bound as u128) {
            Some(w) => Uint::from_u128(w).bit_len(),
            None => 129,
        };
        if needed_bits > m_bits {
            return Err(ProtocolError::SumOverflow {
                needed_bits,
                available_bits: m_bits,
            });
        }
    }

    // Split the global selection into per-shard local index lists.
    let mut locals: Vec<Vec<usize>> = vec![Vec::new(); k];
    for &g in select {
        if g >= n_total {
            return Err(ProtocolError::Config(format!(
                "index {g} out of range 0..{n_total}"
            )));
        }
        let leg = offsets.partition_point(|&o| o <= g) - 1;
        locals[leg].push(g - offsets[leg]);
    }

    // Per-leg rng seeds drawn before the fan-out: the engine takes one
    // &mut rng but each thread needs its own independent stream. Seeds
    // are full-width (256-bit) — the leg rng drives the Paillier
    // encryption randomness, whose entropy must not collapse to 64
    // bits below the key's security level.
    let plans: Vec<LegPlan<S, F>> = {
        let mut plans = Vec::with_capacity(k);
        let mut locals = locals.into_iter();
        let mut wires = wires.into_iter();
        let mut hellos = hellos.into_iter();
        for (i, connect) in legs.into_iter().enumerate() {
            plans.push(LegPlan {
                leg: i,
                connect,
                wire: wires.next().expect("one wire per leg"),
                hello: hellos.next().expect("one hello per leg"),
                rows: shard_rows[i],
                local: locals.next().expect("one split per leg"),
                rng_seed: {
                    let mut seed = [0u8; 32];
                    rng.fill_bytes(&mut seed);
                    seed
                },
            });
        }
        plans
    };

    // Phase B — the fan-out: k concurrent legs, each independently
    // retrying/resuming over its own connection.
    let tcp = &config.tcp;
    let raws: Vec<(usize, Result<RawQueryOutcome, ProtocolError>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = plans
            .into_iter()
            .map(|plan| {
                if let Some(o) = obs {
                    o.legs.inc();
                }
                let leg = plan.leg;
                scope.spawn(move || {
                    let span =
                        obs.map(|o| o.tracer().span("shard_leg").session(leg as u64).start());
                    let r = run_leg(plan, client, tcp, obs.map(|o| o.tracer()));
                    drop(span);
                    (leg, r)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("shard leg panicked"))
            .collect()
    });

    let mut reports = Vec::with_capacity(k);
    let mut total = Uint::zero();
    for (leg, raw) in raws {
        let raw = raw?;
        if let Some(o) = obs {
            o.resumes.add(u64::from(raw.resumed_attempts));
        }
        total = total
            .mod_add(&raw.sum.rem_of(&m).map_err(bignum)?, &m)
            .map_err(bignum)?;
        reports.push(ShardLegReport {
            leg,
            rows: raw.n,
            blinded_partial: raw.sum,
            attempts: raw.retry.attempts,
            resumed_attempts: raw.resumed_attempts,
            attempt_payload_bytes: raw.attempt_payload_bytes,
            traffic: raw.traffic,
        });
    }

    let sum = total
        .to_u128()
        .ok_or_else(|| ProtocolError::Config("sum exceeds 128 bits".into()))?;
    Ok(ShardQueryOutcome {
        sum,
        n: n_total,
        selected: select.len(),
        legs: reports,
    })
}

/// Runs one sharded query over real TCP: one worker address per shard,
/// in partition order. Each leg connects with the deadlines and retry
/// policy in `config.tcp`.
///
/// # Errors
/// As [`run_sharded_query_with`]; per-leg connection failures are
/// retried under the leg's retry policy before surfacing.
pub fn run_sharded_query(
    addrs: &[String],
    client: &SumClient,
    select: &[usize],
    config: &ShardQueryConfig,
    obs: Option<&ShardObs>,
    rng: &mut dyn RngCore,
) -> Result<ShardQueryOutcome, ProtocolError> {
    let legs: Vec<_> = addrs
        .iter()
        .map(|addr| {
            let tcp = config.tcp.clone();
            move |_attempt: u32| -> Result<TcpWire, ProtocolError> {
                let mut wire = TcpWire::connect(addr)?;
                wire.set_read_timeout(tcp.read_timeout)?;
                wire.set_write_timeout(tcp.write_timeout)?;
                Ok(wire)
            }
        })
        .collect();
    run_sharded_query_with(legs, client, select, config, obs, rng)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_fanout_is_a_config_error() {
        let mut rng = StdRng::seed_from_u64(1);
        let client = SumClient::generate(128, &mut rng).unwrap();
        let err = run_sharded_query(
            &[],
            &client,
            &[0],
            &ShardQueryConfig::default(),
            None,
            &mut rng,
        )
        .unwrap_err();
        assert!(matches!(err, ProtocolError::Config(_)));
    }

    #[test]
    fn selection_split_respects_shard_offsets() {
        // Exercised indirectly end to end; here, check the arithmetic
        // of partition_point on a representative offset table.
        let offsets = [0usize, 16, 32];
        let pick = |g: usize| offsets.partition_point(|&o| o <= g) - 1;
        assert_eq!(pick(0), 0);
        assert_eq!(pick(15), 0);
        assert_eq!(pick(16), 1);
        assert_eq!(pick(31), 1);
        assert_eq!(pick(32), 2);
        assert_eq!(pick(47), 2);
    }
}
