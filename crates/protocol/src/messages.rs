//! Protocol messages and their byte-exact wire codecs.
//!
//! Every message serializes to a [`Frame`] so the transport layer counts
//! the same bytes a real deployment would ship. Ciphertexts are encoded
//! fixed-width (the width of `N²`), exactly as the OpenSSL-based
//! implementation in the paper would have sent them.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use pps_bignum::Uint;
use pps_crypto::{Ciphertext, PaillierPublicKey};
use pps_obs::{TraceContext, TRACE_CONTEXT_WIRE_LEN};
use pps_transport::{Frame, TransportError};

use crate::error::ProtocolError;

/// Decodes the optional distributed-tracing trailer (PROTOCOL.md §9.4)
/// that [`Hello`], [`Resume`], and [`ShardHello`] may carry: either the
/// payload ends exactly where the base layout ends (no context — the
/// v2 wire image, byte-identical to pre-tracing peers) or exactly
/// [`TRACE_CONTEXT_WIRE_LEN`] bytes follow. Anything else is malformed.
fn decode_trace_trailer(
    p: &mut Bytes,
    msg: &'static str,
) -> Result<Option<TraceContext>, TransportError> {
    match p.remaining() {
        0 => Ok(None),
        TRACE_CONTEXT_WIRE_LEN => {
            let bytes = p.copy_to_bytes(TRACE_CONTEXT_WIRE_LEN);
            Ok(TraceContext::from_wire_bytes(&bytes))
        }
        _ => Err(TransportError::Malformed(msg)),
    }
}

/// Appends the trailer [`decode_trace_trailer`] reads. Encoding `None`
/// appends nothing, keeping the frame byte-identical to the pre-tracing
/// layout.
fn encode_trace_trailer(buf: &mut BytesMut, trace: Option<TraceContext>) {
    if let Some(ctx) = trace {
        buf.put_slice(&ctx.to_wire_bytes());
    }
}

/// Frame type discriminants.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum MsgType {
    /// Client → server: session setup (public key, element count, batch
    /// size).
    Hello = 1,
    /// Client → server: a batch of encrypted index weights.
    IndexBatch = 2,
    /// Server → client: the homomorphic product (encrypted sum).
    Product = 3,
    /// Client → server (non-private baseline): plaintext indices.
    PlainIndices = 4,
    /// Server → client (non-private baseline): plaintext sum.
    PlainSum = 5,
    /// Server → client (download-all baseline): raw database values.
    Dump = 6,
    /// Client ↔ client (multi-client phase 2): running blinded sum.
    RingPartial = 7,
    /// Client → clients (multi-client phase 2): final combined sum.
    RingTotal = 8,
    /// Client → server: database-size discovery (empty payload).
    SizeRequest = 9,
    /// Server → client: database size as a u64.
    SizeReply = 10,
    /// Server → client: session ID assigned at `Hello` (resumable
    /// runtimes only; in-process drivers never send it).
    HelloAck = 11,
    /// Client → server: reconnect and continue a checkpointed session.
    Resume = 12,
    /// Server → client: resume verdict plus the authoritative
    /// next-expected batch sequence number.
    ResumeAck = 13,
    /// Client → shard worker: sharded-query handshake (§3.5 networked) —
    /// shard position, blinding-modulus width, and the pairwise blinding
    /// seeds this worker needs to derive its correlated blinding `R_i`.
    /// Sent before anything else on every connection to a shard.
    ShardHello = 14,
}

impl MsgType {
    fn from_u8(v: u8) -> Result<Self, TransportError> {
        Ok(match v {
            1 => Self::Hello,
            2 => Self::IndexBatch,
            3 => Self::Product,
            4 => Self::PlainIndices,
            5 => Self::PlainSum,
            6 => Self::Dump,
            7 => Self::RingPartial,
            8 => Self::RingTotal,
            9 => Self::SizeRequest,
            10 => Self::SizeReply,
            11 => Self::HelloAck,
            12 => Self::Resume,
            13 => Self::ResumeAck,
            14 => Self::ShardHello,
            _ => return Err(TransportError::Malformed("unknown message type")),
        })
    }
}

/// Session setup sent by the client before streaming encrypted indices.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Hello {
    /// Paillier modulus `N` (the public key under `g = N + 1`).
    pub modulus: Uint,
    /// Total number of index weights that will follow.
    pub total: u64,
    /// Number of indices per [`IndexBatch`].
    pub batch_size: u32,
    /// Optional distributed-tracing context (PROTOCOL.md §9.4).
    /// `None` encodes byte-identically to the pre-tracing layout.
    pub trace: Option<TraceContext>,
}

impl Hello {
    /// Encodes to a frame:
    /// `[modulus_len u16][modulus][total u64][batch u32][trace 24B?]`.
    ///
    /// # Errors
    /// [`TransportError::Malformed`] when the modulus is too wide for
    /// the u16 length prefix (a silent `as u16` cast here used to
    /// truncate the length and corrupt the frame); otherwise propagates
    /// frame-size errors (cannot occur for real keys).
    pub fn encode(&self) -> Result<Frame, TransportError> {
        let m = self.modulus.to_bytes_be();
        if m.len() > u16::MAX as usize {
            return Err(TransportError::Malformed(
                "hello modulus exceeds u16 length prefix",
            ));
        }
        let mut buf = BytesMut::with_capacity(2 + m.len() + 12 + TRACE_CONTEXT_WIRE_LEN);
        buf.put_u16(m.len() as u16);
        buf.put_slice(&m);
        buf.put_u64(self.total);
        buf.put_u32(self.batch_size);
        encode_trace_trailer(&mut buf, self.trace);
        Frame::new(MsgType::Hello as u8, buf.freeze())
    }

    /// Decodes from a frame payload.
    ///
    /// # Errors
    /// [`TransportError::Malformed`] on truncation or trailing bytes
    /// (anything after `batch_size` other than exactly one trace
    /// trailer).
    pub fn decode(frame: &Frame) -> Result<Self, TransportError> {
        expect_type(frame, MsgType::Hello)?;
        let mut p = frame.payload.clone();
        if p.remaining() < 2 {
            return Err(TransportError::Malformed("hello truncated"));
        }
        let mlen = p.get_u16() as usize;
        if p.remaining() < mlen + 12 {
            return Err(TransportError::Malformed("hello truncated"));
        }
        let modulus = Uint::from_bytes_be(&p.copy_to_bytes(mlen));
        let total = p.get_u64();
        let batch_size = p.get_u32();
        let trace = decode_trace_trailer(&mut p, "hello trailing bytes")?;
        Ok(Hello {
            modulus,
            total,
            batch_size,
            trace,
        })
    }
}

/// A batch of fixed-width encrypted index weights.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IndexBatch {
    /// 0-based batch sequence number within the session. The server
    /// enforces strict monotonicity (`seq == next expected`) so a
    /// resumed or replayed stream can never double-fold a chunk.
    pub seq: u64,
    /// Ciphertexts `E(I_i)` for a contiguous range of indices.
    pub ciphertexts: Vec<Ciphertext>,
}

impl IndexBatch {
    /// Encodes to a frame: `[seq u64][count u32][ct bytes fixed-width]…`.
    ///
    /// # Errors
    /// [`TransportError::Malformed`] when the batch holds more
    /// ciphertexts than the u32 count field can carry (the silent
    /// `as u32` cast here used to truncate the count and desynchronize
    /// the stream); frame-size errors for absurdly large batches.
    pub fn encode(&self, key: &PaillierPublicKey) -> Result<Frame, TransportError> {
        if self.ciphertexts.len() > u32::MAX as usize {
            return Err(TransportError::Malformed(
                "index batch count exceeds u32 field",
            ));
        }
        let w = key.ciphertext_bytes();
        let mut buf = BytesMut::with_capacity(12 + w * self.ciphertexts.len());
        buf.put_u64(self.seq);
        buf.put_u32(self.ciphertexts.len() as u32);
        for ct in &self.ciphertexts {
            let bytes = ct
                .to_bytes(key)
                .map_err(|_| TransportError::Malformed("ciphertext wider than key"))?;
            buf.put_slice(&bytes);
        }
        Frame::new(MsgType::IndexBatch as u8, buf.freeze())
    }

    /// Decodes and *validates* each ciphertext (membership in `Z*_{N²}`,
    /// i.e. `0 < c < N²` with `gcd(c, N) = 1`).
    ///
    /// # Errors
    /// * [`ProtocolError::Transport`] ([`TransportError::Malformed`]) on
    ///   truncation or a length/count mismatch;
    /// * [`ProtocolError::InvalidInput`] on a zero-ciphertext batch — an
    ///   empty batch folds nothing and can only stall the stream;
    /// * [`ProtocolError::Crypto`] when a ciphertext is out of range — a
    ///   careful server must reject these rather than fold them into its
    ///   product.
    pub fn decode(frame: &Frame, key: &PaillierPublicKey) -> Result<Self, ProtocolError> {
        expect_type(frame, MsgType::IndexBatch)?;
        let mut p = frame.payload.clone();
        if p.remaining() < 12 {
            return Err(TransportError::Malformed("batch truncated").into());
        }
        let seq = p.get_u64();
        let count = p.get_u32() as usize;
        if count == 0 {
            return Err(ProtocolError::InvalidInput("empty index batch"));
        }
        let w = key.ciphertext_bytes();
        let body = count
            .checked_mul(w)
            .ok_or(ProtocolError::InvalidInput("index batch count overflows"))?;
        if p.remaining() != body {
            return Err(TransportError::Malformed("batch length mismatch").into());
        }
        let mut ciphertexts = Vec::with_capacity(count);
        for _ in 0..count {
            let bytes = p.copy_to_bytes(w);
            let ct = Ciphertext::from_bytes(&bytes, key)?;
            ciphertexts.push(ct);
        }
        Ok(IndexBatch { seq, ciphertexts })
    }
}

/// Session ID assignment, sent by resumable server runtimes immediately
/// after accepting a [`Hello`]. The ID is the client's ticket for
/// [`Resume`] after a disconnect. In-process drivers skip this message
/// entirely, and `SumClient::receive_result` tolerates (ignores) it, so
/// both deployments speak the same client code.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HelloAck {
    /// Server-assigned, unguessable session identifier (never zero).
    pub session_id: u64,
}

impl HelloAck {
    /// Encodes as 8 big-endian bytes.
    ///
    /// # Errors
    /// None in practice.
    pub fn encode(&self) -> Result<Frame, TransportError> {
        Frame::new(
            MsgType::HelloAck as u8,
            self.session_id.to_be_bytes().to_vec(),
        )
    }

    /// Decodes.
    ///
    /// # Errors
    /// [`TransportError::Malformed`] on wrong length.
    pub fn decode(frame: &Frame) -> Result<Self, TransportError> {
        expect_type(frame, MsgType::HelloAck)?;
        let b: [u8; 8] = frame.payload[..]
            .try_into()
            .map_err(|_| TransportError::Malformed("hello ack wrong length"))?;
        Ok(HelloAck {
            session_id: u64::from_be_bytes(b),
        })
    }
}

/// Reconnect request: continue the checkpointed session `session_id`
/// from batch `next_seq`. Must be the first message on a fresh
/// connection; the server's [`ResumeAck`] carries the authoritative
/// resume point (the server may have acked more than the client saw).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Resume {
    /// The session ID from [`HelloAck`].
    pub session_id: u64,
    /// The client's guess at the next batch sequence number.
    pub next_seq: u64,
    /// Optional distributed-tracing context (PROTOCOL.md §9.4).
    pub trace: Option<TraceContext>,
}

impl Resume {
    /// Encodes as `[session_id u64][next_seq u64][trace 24B?]`.
    ///
    /// # Errors
    /// None in practice.
    pub fn encode(&self) -> Result<Frame, TransportError> {
        let mut buf = BytesMut::with_capacity(16 + TRACE_CONTEXT_WIRE_LEN);
        buf.put_u64(self.session_id);
        buf.put_u64(self.next_seq);
        encode_trace_trailer(&mut buf, self.trace);
        Frame::new(MsgType::Resume as u8, buf.freeze())
    }

    /// Decodes.
    ///
    /// # Errors
    /// [`TransportError::Malformed`] on wrong length (16 bytes, or
    /// 16 plus one trace trailer).
    pub fn decode(frame: &Frame) -> Result<Self, TransportError> {
        expect_type(frame, MsgType::Resume)?;
        let mut p = frame.payload.clone();
        if p.remaining() < 16 {
            return Err(TransportError::Malformed("resume wrong length"));
        }
        let session_id = p.get_u64();
        let next_seq = p.get_u64();
        let trace = decode_trace_trailer(&mut p, "resume wrong length")?;
        Ok(Resume {
            session_id,
            next_seq,
            trace,
        })
    }
}

/// Resume verdict. When `granted`, the client streams batches starting
/// at `next_seq`; when refused (checkpoint expired, evicted, or never
/// existed), the client falls back to a fresh [`Hello`] on the same
/// connection and `next_seq` is zero.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ResumeAck {
    /// Whether the checkpoint was found and restored.
    pub granted: bool,
    /// The server's next-expected batch sequence number.
    pub next_seq: u64,
}

impl ResumeAck {
    /// Encodes as `[granted u8][next_seq u64]`.
    ///
    /// # Errors
    /// None in practice.
    pub fn encode(&self) -> Result<Frame, TransportError> {
        let mut buf = BytesMut::with_capacity(9);
        buf.put_u8(u8::from(self.granted));
        buf.put_u64(self.next_seq);
        Frame::new(MsgType::ResumeAck as u8, buf.freeze())
    }

    /// Decodes.
    ///
    /// # Errors
    /// [`TransportError::Malformed`] on wrong length or a granted byte
    /// that is neither 0 nor 1.
    pub fn decode(frame: &Frame) -> Result<Self, TransportError> {
        expect_type(frame, MsgType::ResumeAck)?;
        let b: [u8; 9] = frame.payload[..]
            .try_into()
            .map_err(|_| TransportError::Malformed("resume ack wrong length"))?;
        let granted = match b[0] {
            0 => false,
            1 => true,
            _ => return Err(TransportError::Malformed("resume ack bad flag")),
        };
        Ok(ResumeAck {
            granted,
            next_seq: u64::from_be_bytes(b[1..].try_into().unwrap()),
        })
    }
}

/// The server's reply: one ciphertext holding the (possibly blinded)
/// encrypted sum.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Product {
    /// `E(Σ I_i·x_i)` (plus blinding in the multi-client protocol).
    pub ciphertext: Ciphertext,
}

impl Product {
    /// Encodes to a frame of one fixed-width ciphertext.
    ///
    /// # Errors
    /// Frame-size errors (cannot occur for real keys).
    pub fn encode(&self, key: &PaillierPublicKey) -> Result<Frame, TransportError> {
        let bytes = self
            .ciphertext
            .to_bytes(key)
            .map_err(|_| TransportError::Malformed("ciphertext wider than key"))?;
        Frame::new(MsgType::Product as u8, bytes)
    }

    /// Decodes and validates.
    ///
    /// # Errors
    /// [`TransportError::Malformed`] on length or validity failures.
    pub fn decode(frame: &Frame, key: &PaillierPublicKey) -> Result<Self, TransportError> {
        expect_type(frame, MsgType::Product)?;
        let ct = Ciphertext::from_bytes(&frame.payload, key)
            .map_err(|_| TransportError::Malformed("invalid product ciphertext"))?;
        Ok(Product { ciphertext: ct })
    }
}

/// Plaintext index list — the trivial non-private baseline (§2): the
/// client reveals exactly which rows it wants.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PlainIndices {
    /// Selected row indices.
    pub indices: Vec<u64>,
}

impl PlainIndices {
    /// Encodes as `[count u32][index u64]…`.
    ///
    /// # Errors
    /// [`TransportError::Malformed`] when the index count exceeds the
    /// u32 count field; frame-size errors for absurd counts.
    pub fn encode(&self) -> Result<Frame, TransportError> {
        if self.indices.len() > u32::MAX as usize {
            return Err(TransportError::Malformed("index count exceeds u32 field"));
        }
        let mut buf = BytesMut::with_capacity(4 + 8 * self.indices.len());
        buf.put_u32(self.indices.len() as u32);
        for &i in &self.indices {
            buf.put_u64(i);
        }
        Frame::new(MsgType::PlainIndices as u8, buf.freeze())
    }

    /// Decodes.
    ///
    /// # Errors
    /// [`TransportError::Malformed`] on truncation.
    pub fn decode(frame: &Frame) -> Result<Self, TransportError> {
        expect_type(frame, MsgType::PlainIndices)?;
        let mut p = frame.payload.clone();
        if p.remaining() < 4 {
            return Err(TransportError::Malformed("indices truncated"));
        }
        let count = p.get_u32() as usize;
        if p.remaining() != count * 8 {
            return Err(TransportError::Malformed("indices length mismatch"));
        }
        Ok(PlainIndices {
            indices: (0..count).map(|_| p.get_u64()).collect(),
        })
    }
}

/// Plaintext sum reply for the non-private baseline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PlainSum {
    /// The sum of the requested rows.
    pub sum: u128,
}

impl PlainSum {
    /// Encodes as 16 big-endian bytes.
    ///
    /// # Errors
    /// None in practice.
    pub fn encode(&self) -> Result<Frame, TransportError> {
        Frame::new(MsgType::PlainSum as u8, self.sum.to_be_bytes().to_vec())
    }

    /// Decodes.
    ///
    /// # Errors
    /// [`TransportError::Malformed`] on wrong length.
    pub fn decode(frame: &Frame) -> Result<Self, TransportError> {
        expect_type(frame, MsgType::PlainSum)?;
        let b: [u8; 16] = frame.payload[..]
            .try_into()
            .map_err(|_| TransportError::Malformed("plain sum wrong length"))?;
        Ok(PlainSum {
            sum: u128::from_be_bytes(b),
        })
    }
}

/// Full database dump — the other trivial baseline (§2): the server
/// reveals everything and the client sums locally.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Dump {
    /// All database values.
    pub values: Vec<u64>,
}

impl Dump {
    /// Encodes as `[count u32][value u64]…`.
    ///
    /// # Errors
    /// [`TransportError::Malformed`] when the value count exceeds the
    /// u32 count field; [`TransportError::FrameTooLarge`] for databases
    /// beyond the frame cap (~8M values).
    pub fn encode(&self) -> Result<Frame, TransportError> {
        if self.values.len() > u32::MAX as usize {
            return Err(TransportError::Malformed("dump count exceeds u32 field"));
        }
        let mut buf = BytesMut::with_capacity(4 + 8 * self.values.len());
        buf.put_u32(self.values.len() as u32);
        for &v in &self.values {
            buf.put_u64(v);
        }
        Frame::new(MsgType::Dump as u8, buf.freeze())
    }

    /// Decodes.
    ///
    /// # Errors
    /// [`TransportError::Malformed`] on truncation.
    pub fn decode(frame: &Frame) -> Result<Self, TransportError> {
        expect_type(frame, MsgType::Dump)?;
        let mut p = frame.payload.clone();
        if p.remaining() < 4 {
            return Err(TransportError::Malformed("dump truncated"));
        }
        let count = p.get_u32() as usize;
        if p.remaining() != count * 8 {
            return Err(TransportError::Malformed("dump length mismatch"));
        }
        Ok(Dump {
            values: (0..count).map(|_| p.get_u64()).collect(),
        })
    }
}

/// Running blinded sum passed around the client ring in phase 2 of the
/// multi-client protocol (§3.5). Values are residues modulo the shared
/// blinding modulus `M`, encoded as variable-width `Uint`s.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RingPartial {
    /// Running total `Σ_{j<=i} (P_j + R_j) mod M`.
    pub running: Uint,
}

impl RingPartial {
    /// Encodes as `[len u16][bytes]`.
    ///
    /// # Errors
    /// [`TransportError::Malformed`] when the residue is too wide for
    /// the u16 length prefix.
    pub fn encode(&self) -> Result<Frame, TransportError> {
        Frame::new(MsgType::RingPartial as u8, encode_uint(&self.running)?)
    }

    /// Decodes.
    ///
    /// # Errors
    /// [`TransportError::Malformed`] on truncation.
    pub fn decode(frame: &Frame) -> Result<Self, TransportError> {
        expect_type(frame, MsgType::RingPartial)?;
        Ok(RingPartial {
            running: decode_uint(&frame.payload)?,
        })
    }
}

/// Final unblinded total broadcast by the last ring client.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RingTotal {
    /// `Σ P_i mod M` — the true selected sum.
    pub total: Uint,
}

impl RingTotal {
    /// Encodes as `[len u16][bytes]`.
    ///
    /// # Errors
    /// [`TransportError::Malformed`] when the total is too wide for the
    /// u16 length prefix.
    pub fn encode(&self) -> Result<Frame, TransportError> {
        Frame::new(MsgType::RingTotal as u8, encode_uint(&self.total)?)
    }

    /// Decodes.
    ///
    /// # Errors
    /// [`TransportError::Malformed`] on truncation.
    pub fn decode(frame: &Frame) -> Result<Self, TransportError> {
        expect_type(frame, MsgType::RingTotal)?;
        Ok(RingTotal {
            total: decode_uint(&frame.payload)?,
        })
    }
}

/// Database-size discovery, for clients (e.g. the CLI) that connect
/// without prior knowledge of `n`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SizeRequest;

impl SizeRequest {
    /// Encodes (empty payload).
    ///
    /// # Errors
    /// None in practice.
    pub fn encode(&self) -> Result<Frame, TransportError> {
        Frame::new(MsgType::SizeRequest as u8, Vec::new())
    }

    /// Decodes.
    ///
    /// # Errors
    /// [`TransportError::Malformed`] on a non-empty payload.
    pub fn decode(frame: &Frame) -> Result<Self, TransportError> {
        expect_type(frame, MsgType::SizeRequest)?;
        if !frame.payload.is_empty() {
            return Err(TransportError::Malformed("size request carries no payload"));
        }
        Ok(SizeRequest)
    }
}

/// Reply to [`SizeRequest`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SizeReply {
    /// Number of database rows.
    pub n: u64,
}

impl SizeReply {
    /// Encodes as 8 big-endian bytes.
    ///
    /// # Errors
    /// None in practice.
    pub fn encode(&self) -> Result<Frame, TransportError> {
        Frame::new(MsgType::SizeReply as u8, self.n.to_be_bytes().to_vec())
    }

    /// Decodes.
    ///
    /// # Errors
    /// [`TransportError::Malformed`] on wrong length.
    pub fn decode(frame: &Frame) -> Result<Self, TransportError> {
        expect_type(frame, MsgType::SizeReply)?;
        let b: [u8; 8] = frame.payload[..]
            .try_into()
            .map_err(|_| TransportError::Malformed("size reply wrong length"))?;
        Ok(SizeReply {
            n: u64::from_be_bytes(b),
        })
    }
}

/// Hard cap on the blinding-modulus width a [`ShardHello`] may request.
/// Generous against any real Paillier key (≤ a few thousand bits) while
/// keeping a hostile handshake from making the server allocate a huge
/// `M = 2^m_bits`.
pub const MAX_SHARD_M_BITS: u32 = 16_384;

/// Hard cap on the shard count a [`ShardHello`] may claim.
pub const MAX_SHARD_COUNT: u32 = 4_096;

/// Widest pairwise blinding seed a [`ShardHello`] may carry.
pub const MAX_SHARD_SEED_BYTES: usize = 64;

/// Sharded-query handshake (§3.5, networked): sent by the fan-out
/// engine as the very first message on every connection to a shard
/// worker, before `Resume`, `SizeRequest`, or `Hello`.
///
/// The worker derives its correlated blinding
/// `R_i = Σ_{j>i} r_ij − Σ_{j<i} r_ji (mod M)` from the pairwise seeds:
/// `seeds_add` holds the seeds for pairs `(i, j)` with `j > i` (added)
/// and `seeds_sub` the seeds for pairs `(j, i)` with `j < i`
/// (subtracted), with `M = 2^m_bits`. Over all `k` workers the
/// blindings telescope to `Σ R_i ≡ 0 (mod M)`, so the combined partials
/// yield the true sum while each individual `Product` stays blinded.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardHello {
    /// This worker's position `i` in the fan-out, `0 ≤ i < k`.
    pub shard_index: u32,
    /// Total number of shards `k` in the query.
    pub shard_count: u32,
    /// Blinding-modulus width: `M = 2^m_bits` (the engine uses
    /// `key_bits − 2` so every blinded partial fits the message space).
    pub m_bits: u32,
    /// Seeds for pairs `(i, j)`, `j > i`, ascending in `j` — their
    /// derived blindings are *added* to `R_i`. Length `k − 1 − i`.
    pub seeds_add: Vec<Vec<u8>>,
    /// Seeds for pairs `(j, i)`, `j < i`, ascending in `j` — their
    /// derived blindings are *subtracted*. Length `i`.
    pub seeds_sub: Vec<Vec<u8>>,
    /// Optional distributed-tracing context (PROTOCOL.md §9.4) shared
    /// by every leg of the sharded query.
    pub trace: Option<TraceContext>,
}

impl ShardHello {
    /// Encodes to a frame:
    /// `[index u32][count u32][m_bits u32][n_add u16][n_sub u16][seed_len u16][seed]…[trace 24B?]`
    /// with `seeds_add` first, then `seeds_sub`, all the same width.
    ///
    /// # Errors
    /// [`TransportError::Malformed`] when the seed lists are too long
    /// for their u16 count fields or their widths are inconsistent.
    pub fn encode(&self) -> Result<Frame, TransportError> {
        let n_add = self.seeds_add.len();
        let n_sub = self.seeds_sub.len();
        if n_add > u16::MAX as usize || n_sub > u16::MAX as usize {
            return Err(TransportError::Malformed(
                "shard hello seed count exceeds u16 field",
            ));
        }
        let seed_len = self
            .seeds_add
            .first()
            .or(self.seeds_sub.first())
            .map_or(0, Vec::len);
        if seed_len > MAX_SHARD_SEED_BYTES {
            return Err(TransportError::Malformed("shard hello seed too wide"));
        }
        if self
            .seeds_add
            .iter()
            .chain(&self.seeds_sub)
            .any(|s| s.len() != seed_len)
        {
            return Err(TransportError::Malformed(
                "shard hello seeds differ in width",
            ));
        }
        let mut buf =
            BytesMut::with_capacity(18 + seed_len * (n_add + n_sub) + TRACE_CONTEXT_WIRE_LEN);
        buf.put_u32(self.shard_index);
        buf.put_u32(self.shard_count);
        buf.put_u32(self.m_bits);
        buf.put_u16(n_add as u16);
        buf.put_u16(n_sub as u16);
        buf.put_u16(seed_len as u16);
        for seed in self.seeds_add.iter().chain(&self.seeds_sub) {
            buf.put_slice(seed);
        }
        encode_trace_trailer(&mut buf, self.trace);
        Frame::new(MsgType::ShardHello as u8, buf.freeze())
    }

    /// Decodes and validates the shard geometry: `index < count ≤`
    /// [`MAX_SHARD_COUNT`], `0 < m_bits ≤` [`MAX_SHARD_M_BITS`],
    /// `n_add = k − 1 − i`, `n_sub = i`, and a sane seed width (zero
    /// only when there are no seeds, i.e. `k = 1`).
    ///
    /// # Errors
    /// [`TransportError::Malformed`] on truncation or any geometry
    /// violation — a worker must reject an inconsistent handshake
    /// rather than answer with blinding that cannot telescope to zero.
    pub fn decode(frame: &Frame) -> Result<Self, TransportError> {
        expect_type(frame, MsgType::ShardHello)?;
        let mut p = frame.payload.clone();
        if p.remaining() < 18 {
            return Err(TransportError::Malformed("shard hello truncated"));
        }
        let shard_index = p.get_u32();
        let shard_count = p.get_u32();
        let m_bits = p.get_u32();
        let n_add = p.get_u16() as usize;
        let n_sub = p.get_u16() as usize;
        let seed_len = p.get_u16() as usize;
        if shard_count == 0 || shard_count > MAX_SHARD_COUNT || shard_index >= shard_count {
            return Err(TransportError::Malformed("shard hello bad geometry"));
        }
        if m_bits == 0 || m_bits > MAX_SHARD_M_BITS {
            return Err(TransportError::Malformed(
                "shard hello blinding width out of range",
            ));
        }
        if n_add != (shard_count - 1 - shard_index) as usize || n_sub != shard_index as usize {
            return Err(TransportError::Malformed(
                "shard hello seed counts disagree with geometry",
            ));
        }
        let total_seeds = n_add + n_sub;
        if seed_len > MAX_SHARD_SEED_BYTES || (total_seeds > 0 && seed_len == 0) {
            return Err(TransportError::Malformed("shard hello bad seed width"));
        }
        let seed_bytes = total_seeds * seed_len;
        if p.remaining() < seed_bytes {
            return Err(TransportError::Malformed("shard hello length mismatch"));
        }
        let mut take = |count: usize| -> Vec<Vec<u8>> {
            (0..count)
                .map(|_| p.copy_to_bytes(seed_len).to_vec())
                .collect()
        };
        let seeds_add = take(n_add);
        let seeds_sub = take(n_sub);
        let trace = decode_trace_trailer(&mut p, "shard hello length mismatch")?;
        Ok(ShardHello {
            shard_index,
            shard_count,
            m_bits,
            seeds_add,
            seeds_sub,
            trace,
        })
    }
}

fn encode_uint(v: &Uint) -> Result<Bytes, TransportError> {
    let b = v.to_bytes_be();
    if b.len() > u16::MAX as usize {
        return Err(TransportError::Malformed("uint exceeds u16 length prefix"));
    }
    let mut buf = BytesMut::with_capacity(2 + b.len());
    buf.put_u16(b.len() as u16);
    buf.put_slice(&b);
    Ok(buf.freeze())
}

fn decode_uint(payload: &Bytes) -> Result<Uint, TransportError> {
    let mut p = payload.clone();
    if p.remaining() < 2 {
        return Err(TransportError::Malformed("uint truncated"));
    }
    let len = p.get_u16() as usize;
    if p.remaining() != len {
        return Err(TransportError::Malformed("uint length mismatch"));
    }
    Ok(Uint::from_bytes_be(&p.copy_to_bytes(len)))
}

fn expect_type(frame: &Frame, want: MsgType) -> Result<(), TransportError> {
    let got = MsgType::from_u8(frame.msg_type)?;
    if got != want {
        return Err(TransportError::Malformed("unexpected message type"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pps_crypto::PaillierKeypair;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn key() -> PaillierKeypair {
        let mut rng = StdRng::seed_from_u64(77);
        PaillierKeypair::generate(128, &mut rng).unwrap()
    }

    #[test]
    fn hello_round_trip() {
        let kp = key();
        let h = Hello {
            modulus: kp.public.n().clone(),
            total: 100_000,
            batch_size: 100,
            trace: None,
        };
        let f = h.encode().unwrap();
        assert_eq!(Hello::decode(&f).unwrap(), h);
    }

    #[test]
    fn hello_truncation_rejected() {
        let kp = key();
        let h = Hello {
            modulus: kp.public.n().clone(),
            total: 5,
            batch_size: 1,
            trace: None,
        };
        let f = h.encode().unwrap();
        for cut in [0usize, 1, 5, f.payload.len() - 1] {
            let bad = Frame::new(MsgType::Hello as u8, f.payload.slice(..cut)).unwrap();
            assert!(Hello::decode(&bad).is_err(), "cut={cut}");
        }
    }

    #[test]
    fn index_batch_round_trip() {
        let kp = key();
        let mut rng = StdRng::seed_from_u64(78);
        let cts: Vec<_> = (0..5)
            .map(|i| kp.public.encrypt_u64(i % 2, &mut rng).unwrap())
            .collect();
        let b = IndexBatch {
            seq: 42,
            ciphertexts: cts.clone(),
        };
        let f = b.encode(&kp.public).unwrap();
        let back = IndexBatch::decode(&f, &kp.public).unwrap();
        assert_eq!(back.seq, 42);
        assert_eq!(back.ciphertexts, cts);
        // Wire size: 8-byte seq + 4-byte count + fixed-width ciphertexts.
        assert_eq!(f.payload.len(), 12 + 5 * kp.public.ciphertext_bytes());
    }

    #[test]
    fn index_batch_invalid_ciphertext_rejected_as_crypto_error() {
        let kp = key();
        let w = kp.public.ciphertext_bytes();
        // seq = 0, count = 1, ciphertext bytes all zero (0 is not in
        // Z*_{N²}): the rejection must be *typed* so callers can tell
        // hostile ciphertexts from framing noise.
        let mut buf = BytesMut::new();
        buf.put_u64(0);
        buf.put_u32(1);
        buf.put_slice(&vec![0u8; w]);
        let f = Frame::new(MsgType::IndexBatch as u8, buf.freeze()).unwrap();
        assert!(matches!(
            IndexBatch::decode(&f, &kp.public),
            Err(ProtocolError::Crypto(_))
        ));
    }

    #[test]
    fn index_batch_length_mismatch_rejected() {
        let kp = key();
        let mut buf = BytesMut::new();
        buf.put_u64(0);
        buf.put_u32(2); // claims two, provides zero
        let f = Frame::new(MsgType::IndexBatch as u8, buf.freeze()).unwrap();
        assert!(matches!(
            IndexBatch::decode(&f, &kp.public),
            Err(ProtocolError::Transport(TransportError::Malformed(_)))
        ));
    }

    #[test]
    fn empty_index_batch_rejected_as_invalid_input() {
        let kp = key();
        let mut buf = BytesMut::new();
        buf.put_u64(3);
        buf.put_u32(0);
        let f = Frame::new(MsgType::IndexBatch as u8, buf.freeze()).unwrap();
        assert!(matches!(
            IndexBatch::decode(&f, &kp.public),
            Err(ProtocolError::InvalidInput("empty index batch"))
        ));
    }

    #[test]
    fn resume_messages_round_trip() {
        let ack = HelloAck {
            session_id: 0xfeed_beef_dead_cafe,
        };
        assert_eq!(HelloAck::decode(&ack.encode().unwrap()).unwrap(), ack);
        let r = Resume {
            session_id: 7,
            next_seq: 1234,
            trace: None,
        };
        assert_eq!(Resume::decode(&r.encode().unwrap()).unwrap(), r);
        for granted in [false, true] {
            let ra = ResumeAck {
                granted,
                next_seq: 99,
            };
            assert_eq!(ResumeAck::decode(&ra.encode().unwrap()).unwrap(), ra);
        }
    }

    #[test]
    fn resume_messages_reject_malformed_payloads() {
        let bad = Frame::new(MsgType::HelloAck as u8, vec![1u8; 7]).unwrap();
        assert!(HelloAck::decode(&bad).is_err());
        let bad = Frame::new(MsgType::Resume as u8, vec![1u8; 15]).unwrap();
        assert!(Resume::decode(&bad).is_err());
        let bad = Frame::new(MsgType::ResumeAck as u8, vec![1u8; 10]).unwrap();
        assert!(ResumeAck::decode(&bad).is_err());
        // A granted flag outside {0, 1} is corruption, not a verdict.
        let mut buf = BytesMut::new();
        buf.put_u8(2);
        buf.put_u64(0);
        let bad = Frame::new(MsgType::ResumeAck as u8, buf.freeze()).unwrap();
        assert!(ResumeAck::decode(&bad).is_err());
    }

    #[test]
    fn product_round_trip() {
        let kp = key();
        let mut rng = StdRng::seed_from_u64(79);
        let ct = kp.public.encrypt_u64(4242, &mut rng).unwrap();
        let p = Product { ciphertext: ct };
        let f = p.encode(&kp.public).unwrap();
        assert_eq!(Product::decode(&f, &kp.public).unwrap(), p);
    }

    #[test]
    fn plain_messages_round_trip() {
        let pi = PlainIndices {
            indices: vec![3, 1, 4, 1, 5],
        };
        assert_eq!(PlainIndices::decode(&pi.encode().unwrap()).unwrap(), pi);
        let ps = PlainSum { sum: u128::MAX - 7 };
        assert_eq!(PlainSum::decode(&ps.encode().unwrap()).unwrap(), ps);
        let d = Dump {
            values: (0..100).collect(),
        };
        assert_eq!(Dump::decode(&d.encode().unwrap()).unwrap(), d);
    }

    #[test]
    fn ring_messages_round_trip() {
        let rp = RingPartial {
            running: Uint::from_u128(0xdead_beef_cafe),
        };
        assert_eq!(RingPartial::decode(&rp.encode().unwrap()).unwrap(), rp);
        let rt = RingTotal {
            total: Uint::zero(),
        };
        assert_eq!(RingTotal::decode(&rt.encode().unwrap()).unwrap(), rt);
    }

    #[test]
    fn size_messages_round_trip() {
        let req = SizeRequest;
        assert_eq!(SizeRequest::decode(&req.encode().unwrap()).unwrap(), req);
        let rep = SizeReply { n: 123_456 };
        assert_eq!(SizeReply::decode(&rep.encode().unwrap()).unwrap(), rep);
        // Payload discipline.
        let bad = Frame::new(MsgType::SizeRequest as u8, vec![1u8]).unwrap();
        assert!(SizeRequest::decode(&bad).is_err());
        let bad = Frame::new(MsgType::SizeReply as u8, vec![1u8; 3]).unwrap();
        assert!(SizeReply::decode(&bad).is_err());
    }

    #[test]
    fn hello_oversized_modulus_rejected_not_truncated() {
        // Regression: `put_u16(m.len() as u16)` used to silently wrap a
        // >64 KiB modulus length and corrupt the frame. It must now be
        // a typed encode error.
        let h = Hello {
            modulus: Uint::from_bytes_be(&vec![1u8; u16::MAX as usize + 1]),
            total: 1,
            batch_size: 1,
            trace: None,
        };
        assert!(matches!(
            h.encode(),
            Err(TransportError::Malformed(
                "hello modulus exceeds u16 length prefix"
            ))
        ));
    }

    #[test]
    fn ring_oversized_residue_rejected_not_truncated() {
        // Same truncation class via the shared uint codec's u16 prefix.
        let rp = RingPartial {
            running: Uint::from_bytes_be(&vec![1u8; u16::MAX as usize + 1]),
        };
        assert!(matches!(
            rp.encode(),
            Err(TransportError::Malformed("uint exceeds u16 length prefix"))
        ));
    }

    fn seeds(n: usize, tag: u8) -> Vec<Vec<u8>> {
        (0..n).map(|i| vec![tag ^ i as u8; 32]).collect()
    }

    #[test]
    fn shard_hello_round_trip() {
        // Middle worker of k = 4: one seed subtracted (pair with worker
        // 0), two added (pairs with workers 2 and 3).
        let sh = ShardHello {
            shard_index: 1,
            shard_count: 4,
            m_bits: 126,
            seeds_add: seeds(2, 0xaa),
            seeds_sub: seeds(1, 0x55),
            trace: None,
        };
        let f = sh.encode().unwrap();
        assert_eq!(ShardHello::decode(&f).unwrap(), sh);
        // k = 1 degenerate: no seeds at all, zero seed width.
        let solo = ShardHello {
            shard_index: 0,
            shard_count: 1,
            m_bits: 126,
            seeds_add: Vec::new(),
            seeds_sub: Vec::new(),
            trace: None,
        };
        let f = solo.encode().unwrap();
        assert_eq!(ShardHello::decode(&f).unwrap(), solo);
    }

    #[test]
    fn shard_hello_rejects_bad_geometry() {
        let good = ShardHello {
            shard_index: 1,
            shard_count: 3,
            m_bits: 126,
            seeds_add: seeds(1, 1),
            seeds_sub: seeds(1, 2),
            trace: None,
        };
        let tamper = |f: &mut Vec<u8>, at: usize, v: u8| f[at] = v;
        let base = good.encode().unwrap().payload.to_vec();
        // index ≥ count (byte 3 is the low byte of shard_index).
        let mut bad = base.clone();
        tamper(&mut bad, 3, 7);
        let f = Frame::new(MsgType::ShardHello as u8, bad).unwrap();
        assert!(ShardHello::decode(&f).is_err());
        // m_bits = 0.
        let mut bad = base.clone();
        for b in &mut bad[8..12] {
            *b = 0;
        }
        let f = Frame::new(MsgType::ShardHello as u8, bad).unwrap();
        assert!(ShardHello::decode(&f).is_err());
        // Seed counts that disagree with the claimed geometry.
        let mut bad = base.clone();
        tamper(&mut bad, 13, 2); // n_add = 2 but k − 1 − i = 1
        let f = Frame::new(MsgType::ShardHello as u8, bad).unwrap();
        assert!(ShardHello::decode(&f).is_err());
        // Truncated seed bytes.
        let f = Frame::new(MsgType::ShardHello as u8, base[..base.len() - 1].to_vec()).unwrap();
        assert!(ShardHello::decode(&f).is_err());
        // Inconsistent widths refuse to encode.
        let mut lop = good;
        lop.seeds_sub[0].truncate(16);
        assert!(lop.encode().is_err());
    }

    #[test]
    fn trace_trailer_round_trips_on_handshake_messages() {
        let kp = key();
        let ctx = TraceContext::new(0x1122_3344_5566_7788_99aa_bbcc_ddee_ff00, 17);
        let h = Hello {
            modulus: kp.public.n().clone(),
            total: 64,
            batch_size: 8,
            trace: Some(ctx),
        };
        assert_eq!(Hello::decode(&h.encode().unwrap()).unwrap(), h);
        let r = Resume {
            session_id: 9,
            next_seq: 3,
            trace: Some(ctx),
        };
        assert_eq!(Resume::decode(&r.encode().unwrap()).unwrap(), r);
        let sh = ShardHello {
            shard_index: 0,
            shard_count: 2,
            m_bits: 126,
            seeds_add: seeds(1, 0x11),
            seeds_sub: Vec::new(),
            trace: Some(ctx),
        };
        assert_eq!(ShardHello::decode(&sh.encode().unwrap()).unwrap(), sh);
    }

    #[test]
    fn absent_trace_context_is_byte_identical_to_v2_layout() {
        // The compatibility guarantee (PROTOCOL.md §9.4): encoding with
        // `trace: None` must add zero bytes, so an untraced client is
        // indistinguishable on the wire from a pre-tracing one, and the
        // traced form is exactly the untraced bytes plus one 24-byte
        // trailer.
        let kp = key();
        let ctx = TraceContext::new(5, 6);
        let untraced = Hello {
            modulus: kp.public.n().clone(),
            total: 10,
            batch_size: 2,
            trace: None,
        };
        let traced = Hello {
            trace: Some(ctx),
            ..untraced.clone()
        };
        let u = untraced.encode().unwrap().payload;
        let t = traced.encode().unwrap().payload;
        assert_eq!(t.len(), u.len() + TRACE_CONTEXT_WIRE_LEN);
        assert_eq!(&t[..u.len()], &u[..]);
        assert_eq!(&t[u.len()..], &ctx.to_wire_bytes()[..]);

        let untraced = Resume {
            session_id: 1,
            next_seq: 2,
            trace: None,
        };
        let u = untraced.encode().unwrap().payload;
        assert_eq!(u.len(), 16, "v2 resume layout unchanged");
        let t = Resume {
            trace: Some(ctx),
            ..untraced
        }
        .encode()
        .unwrap()
        .payload;
        assert_eq!(&t[..16], &u[..]);

        let untraced = ShardHello {
            shard_index: 0,
            shard_count: 2,
            m_bits: 126,
            seeds_add: seeds(1, 9),
            seeds_sub: Vec::new(),
            trace: None,
        };
        let u = untraced.encode().unwrap().payload;
        let t = ShardHello {
            trace: Some(ctx),
            ..untraced.clone()
        }
        .encode()
        .unwrap()
        .payload;
        assert_eq!(t.len(), u.len() + TRACE_CONTEXT_WIRE_LEN);
        assert_eq!(&t[..u.len()], &u[..]);
    }

    #[test]
    fn partial_trace_trailer_rejected() {
        let kp = key();
        let h = Hello {
            modulus: kp.public.n().clone(),
            total: 10,
            batch_size: 2,
            trace: Some(TraceContext::new(1, 2)),
        };
        let full = h.encode().unwrap().payload.to_vec();
        for cut in 1..TRACE_CONTEXT_WIRE_LEN {
            let bad = Frame::new(MsgType::Hello as u8, full[..full.len() - cut].to_vec()).unwrap();
            assert!(Hello::decode(&bad).is_err(), "cut={cut}");
        }
        let r = Resume {
            session_id: 1,
            next_seq: 2,
            trace: Some(TraceContext::new(1, 2)),
        };
        let full = r.encode().unwrap().payload.to_vec();
        let bad = Frame::new(MsgType::Resume as u8, full[..full.len() - 1].to_vec()).unwrap();
        assert!(Resume::decode(&bad).is_err());
    }

    #[test]
    fn wrong_type_rejected() {
        let ps = PlainSum { sum: 1 }.encode().unwrap();
        assert!(PlainIndices::decode(&ps).is_err());
        let weird = Frame::new(99, Vec::new()).unwrap();
        assert!(Hello::decode(&weird).is_err());
    }
}
