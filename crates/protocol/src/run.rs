//! Single-client protocol orchestrators.
//!
//! Each `run_*` function executes one protocol variant end to end over a
//! virtual-clock [`SimLink`], verifies the result against the plaintext
//! oracle, and returns the paper's four-component [`RunReport`].
//! Computation is *measured* (real wall time of the actual cryptographic
//! work on this machine); communication is *simulated* by the link model.
//!
//! [`run_threaded`] additionally executes the identical state machines
//! over a real cross-thread [`ChannelWire`], which integration tests use
//! to show the protocol is driver-independent.

use std::time::{Duration, Instant};

use pps_crypto::{BitEncryptionPool, RandomizerPool};
use pps_transport::{
    pipeline_makespan, ChannelWire, Frame, LinkProfile, SimLink, TransportError, Wire,
};
use rand::RngCore;

use crate::client::{ClientSendStats, IndexSource, SumClient};
use crate::data::{check_message_space, Database, Selection};
use crate::error::ProtocolError;
use crate::messages::{Dump, PlainIndices, PlainSum};
use crate::report::{RunReport, Variant};
use crate::server::ServerSession;

/// Shared configuration for a protocol run.
#[derive(Clone, Debug)]
pub struct RunConfig {
    /// Link model for the simulated communication component.
    pub link: LinkProfile,
    /// Indices per batch message. The unoptimized protocol uses one batch
    /// holding the whole vector; the paper's §3.2 experiments use 100.
    pub batch_size: usize,
}

impl RunConfig {
    /// Unbatched configuration over `link` (whole index vector in one
    /// message — the §3.1 shape).
    pub fn unbatched(link: LinkProfile) -> Self {
        RunConfig {
            link,
            batch_size: usize::MAX,
        }
    }

    /// Batched configuration (the paper's §3.2 experiments use 100).
    pub fn batched(link: LinkProfile, batch_size: usize) -> Self {
        RunConfig { link, batch_size }
    }

    fn effective_batch(&self, n: usize) -> usize {
        self.batch_size.min(n).max(1)
    }
}

/// Drains every queued frame into the server session, forwarding any
/// reply, until the queue is empty.
pub(crate) fn pump_server(
    server: &mut ServerSession<'_>,
    wire: &mut SimLink,
) -> Result<(), ProtocolError> {
    loop {
        match wire.recv() {
            Ok(frame) => {
                if let Some(reply) = server.on_frame(&frame)? {
                    wire.send(reply)?;
                }
            }
            Err(TransportError::Empty) => return Ok(()),
            Err(e) => return Err(e.into()),
        }
    }
}

/// Common tail: assemble the report and verify against the oracle.
#[allow(clippy::too_many_arguments)]
fn finish_report(
    variant: Variant,
    db: &Database,
    selection: &Selection,
    client: &SumClient,
    config: &RunConfig,
    send_stats: ClientSendStats,
    client_offline: Duration,
    server: &ServerSession<'_>,
    client_wire: &SimLink,
    sum: pps_bignum::Uint,
    decrypt: Duration,
    pipelined_total: Option<Duration>,
) -> Result<RunReport, ProtocolError> {
    let expected = db.oracle_sum(selection)?;
    let got = sum
        .to_u128()
        .ok_or_else(|| ProtocolError::Config("decrypted sum exceeds 128 bits".into()))?;
    if got != expected {
        return Err(ProtocolError::Config(format!(
            "protocol result {got} disagrees with oracle {expected}"
        )));
    }
    let stats = client_wire.stats();
    Ok(RunReport {
        variant,
        n: db.len(),
        selected: selection.selected_count(),
        key_bits: client.keypair().public.key_bits(),
        link: config.link.name.to_string(),
        client_offline,
        client_encrypt: send_stats.encrypt,
        server_compute: server.stats().compute,
        comm: client_wire.virtual_elapsed(),
        client_decrypt: decrypt,
        pipelined_total,
        bytes_to_server: stats.payload_bytes_sent,
        bytes_to_client: stats.payload_bytes_received,
        messages: stats.messages_sent + stats.messages_received,
        result: got,
    })
}

/// Computes the overlapped makespan of a batched run from measured
/// per-batch client/server times and modeled per-batch link times, then
/// adds the constant-size product reply and final decryption.
fn batched_makespan(
    send_stats: &ClientSendStats,
    server: &ServerSession<'_>,
    config: &RunConfig,
    decrypt: Duration,
    reply_bytes: usize,
) -> Duration {
    let link_times: Vec<Duration> = send_stats
        .per_batch_bytes
        .iter()
        .map(|&b| config.link.message_time(b))
        .collect();
    let stages = [
        send_stats.per_batch_encrypt.clone(),
        link_times,
        server.stats().per_batch_compute.clone(),
    ];
    pipeline_makespan(&stages) + config.link.message_time(reply_bytes) + decrypt
}

/// Core driver shared by all single-client private variants.
#[allow(clippy::too_many_arguments)]
fn run_private(
    variant: Variant,
    db: &Database,
    selection: &Selection,
    client: &SumClient,
    config: &RunConfig,
    source: &mut IndexSource<'_>,
    client_offline: Duration,
    pipelined: bool,
) -> Result<RunReport, ProtocolError> {
    if selection.len() != db.len() {
        return Err(ProtocolError::Config(format!(
            "selection length {} != database length {}",
            selection.len(),
            db.len()
        )));
    }
    check_message_space(db, selection, client.keypair().public.n())?;

    let (mut cw, mut sw) = SimLink::pair(config.link.clone());
    let batch = config.effective_batch(db.len());
    let send_stats = client.send_query(&mut cw, selection, batch, source)?;

    let mut server = ServerSession::new(db);
    pump_server(&mut server, &mut sw)?;

    let reply = cw.recv()?;
    let reply_bytes = reply.encoded_len();
    let (sum, decrypt) = client.decrypt_product(&reply)?;

    let pipelined_total =
        pipelined.then(|| batched_makespan(&send_stats, &server, config, decrypt, reply_bytes));

    finish_report(
        variant,
        db,
        selection,
        client,
        config,
        send_stats,
        client_offline,
        &server,
        &cw,
        sum,
        decrypt,
        pipelined_total,
    )
}

/// §3.1 — the direct implementation with no optimizations: the client
/// encrypts every index online and ships the whole vector.
///
/// # Errors
/// Configuration, crypto, and transport failures; result/oracle mismatch.
pub fn run_basic(
    db: &Database,
    selection: &Selection,
    client: &SumClient,
    link: LinkProfile,
    rng: &mut dyn RngCore,
) -> Result<RunReport, ProtocolError> {
    let config = RunConfig::unbatched(link);
    let mut source = IndexSource::Fresh(rng);
    run_private(
        Variant::Basic,
        db,
        selection,
        client,
        &config,
        &mut source,
        Duration::ZERO,
        false,
    )
}

/// [`run_basic`] with the client's index-vector encryption spread
/// across up to `client_threads` worker threads (the multi-core attack
/// on the paper's measured bottleneck; see
/// `PaillierPublicKey::encrypt_batch_parallel`). `client_threads = 1`
/// reproduces the paper-fidelity sequential path, which the figure
/// harness pins for fig2–fig7.
///
/// # Errors
/// As [`run_basic`].
pub fn run_basic_parallel(
    db: &Database,
    selection: &Selection,
    client: &SumClient,
    link: LinkProfile,
    client_threads: usize,
    rng: &mut dyn RngCore,
) -> Result<RunReport, ProtocolError> {
    let config = RunConfig::unbatched(link);
    let mut source = IndexSource::FreshParallel {
        rng,
        threads: client_threads,
    };
    run_private(
        Variant::Basic,
        db,
        selection,
        client,
        &config,
        &mut source,
        Duration::ZERO,
        false,
    )
}

/// §3.2 — batching / pipeline parallelism: the index vector is processed
/// and shipped in chunks (the paper uses 100), and the report's
/// `pipelined_total` holds the overlapped makespan.
///
/// # Errors
/// As [`run_basic`].
pub fn run_batched(
    db: &Database,
    selection: &Selection,
    client: &SumClient,
    link: LinkProfile,
    batch_size: usize,
    rng: &mut dyn RngCore,
) -> Result<RunReport, ProtocolError> {
    let config = RunConfig::batched(link, batch_size);
    let mut source = IndexSource::Fresh(rng);
    run_private(
        Variant::Batched,
        db,
        selection,
        client,
        &config,
        &mut source,
        Duration::ZERO,
        true,
    )
}

/// [`run_batched`] with up to `client_threads` worker threads encrypting
/// each chunk — the §3.2 pipeline (chunks overlap the wire) composed
/// with intra-chunk multi-core encryption. `client_threads = 1`
/// reproduces the paper-fidelity sequential path.
///
/// # Errors
/// As [`run_basic`].
#[allow(clippy::too_many_arguments)]
pub fn run_batched_parallel(
    db: &Database,
    selection: &Selection,
    client: &SumClient,
    link: LinkProfile,
    batch_size: usize,
    client_threads: usize,
    rng: &mut dyn RngCore,
) -> Result<RunReport, ProtocolError> {
    let config = RunConfig::batched(link, batch_size);
    let mut source = IndexSource::FreshParallel {
        rng,
        threads: client_threads,
    };
    run_private(
        Variant::Batched,
        db,
        selection,
        client,
        &config,
        &mut source,
        Duration::ZERO,
        true,
    )
}

/// §3.3 — preprocessing the index vector: encryptions of 0/1 are drawn
/// from an offline pool; the pool-filling time is reported as
/// `client_offline` and excluded from the online total, exactly as the
/// paper accounts it.
///
/// # Errors
/// As [`run_basic`]; also pool exhaustion if `selection` needs more
/// ciphertexts than were precomputed.
pub fn run_preprocessed(
    db: &Database,
    selection: &Selection,
    client: &SumClient,
    link: LinkProfile,
    rng: &mut dyn RngCore,
) -> Result<RunReport, ProtocolError> {
    let config = RunConfig::unbatched(link);
    let (mut pool, offline) = fill_pool_for(selection, client, rng)?;
    let mut source = IndexSource::BitPool(&mut pool);
    run_private(
        Variant::Preprocessed,
        db,
        selection,
        client,
        &config,
        &mut source,
        offline,
        false,
    )
}

/// §3.4 — batching and preprocessing combined (the paper's ≈94 %
/// reduction).
///
/// # Errors
/// As [`run_preprocessed`].
pub fn run_combined(
    db: &Database,
    selection: &Selection,
    client: &SumClient,
    link: LinkProfile,
    batch_size: usize,
    rng: &mut dyn RngCore,
) -> Result<RunReport, ProtocolError> {
    let config = RunConfig::batched(link, batch_size);
    let (mut pool, offline) = fill_pool_for(selection, client, rng)?;
    let mut source = IndexSource::BitPool(&mut pool);
    run_private(
        Variant::Combined,
        db,
        selection,
        client,
        &config,
        &mut source,
        offline,
        true,
    )
}

/// Weighted-sum variant: arbitrary integer weights with pooled `r^N`
/// randomizers (generalizes §3.3 beyond 0/1 selections).
///
/// # Errors
/// As [`run_basic`].
pub fn run_weighted(
    db: &Database,
    selection: &Selection,
    client: &SumClient,
    link: LinkProfile,
    rng: &mut dyn RngCore,
) -> Result<RunReport, ProtocolError> {
    let config = RunConfig::unbatched(link);
    let start = Instant::now();
    let mut pool = RandomizerPool::new(client.keypair().public.clone());
    pool.fill(selection.len(), rng)?;
    let offline = start.elapsed();
    let mut source = IndexSource::RandomizerPool(&mut pool);
    run_private(
        Variant::Preprocessed,
        db,
        selection,
        client,
        &config,
        &mut source,
        offline,
        false,
    )
}

fn fill_pool_for(
    selection: &Selection,
    client: &SumClient,
    rng: &mut dyn RngCore,
) -> Result<(BitEncryptionPool, Duration), ProtocolError> {
    let ones = selection.selected_count();
    let zeros = selection.len() - ones;
    let start = Instant::now();
    let mut pool = BitEncryptionPool::new(client.keypair().public.clone());
    pool.fill(zeros, ones, rng)?;
    Ok((pool, start.elapsed()))
}

/// §2's trivial non-private baseline: plaintext indices up, plaintext sum
/// down. Fast, but the server learns the client's selection.
///
/// # Errors
/// Configuration and transport failures.
pub fn run_plain_baseline(
    db: &Database,
    selection: &Selection,
    link: LinkProfile,
) -> Result<RunReport, ProtocolError> {
    if selection.len() != db.len() {
        return Err(ProtocolError::Config(
            "selection/database length mismatch".into(),
        ));
    }
    if selection.max_weight() > 1 {
        return Err(ProtocolError::Config(
            "plain baseline supports 0/1 selections only".into(),
        ));
    }
    let (mut cw, mut sw) = SimLink::pair(link.clone());

    let start = Instant::now();
    let indices: Vec<u64> = selection
        .weights()
        .iter()
        .enumerate()
        .filter(|(_, &w)| w != 0)
        .map(|(i, _)| i as u64)
        .collect();
    let prep = start.elapsed();
    cw.send(PlainIndices { indices }.encode()?)?;

    let mut server = ServerSession::new(db);
    pump_server(&mut server, &mut sw)?;

    let reply = cw.recv()?;
    let start = Instant::now();
    let sum = PlainSum::decode(&reply)?.sum;
    let decode = start.elapsed();

    let expected = db.oracle_sum(selection)?;
    if sum != expected {
        return Err(ProtocolError::Config("baseline sum mismatch".into()));
    }
    let stats = cw.stats();
    Ok(RunReport {
        variant: Variant::PlainIndices,
        n: db.len(),
        selected: selection.selected_count(),
        key_bits: 0,
        link: link.name.to_string(),
        client_offline: Duration::ZERO,
        client_encrypt: prep,
        server_compute: server.stats().compute,
        comm: cw.virtual_elapsed(),
        client_decrypt: decode,
        pipelined_total: None,
        bytes_to_server: stats.payload_bytes_sent,
        bytes_to_client: stats.payload_bytes_received,
        messages: stats.messages_sent + stats.messages_received,
        result: sum,
    })
}

/// §2's other trivial baseline: the server dumps the database and the
/// client sums locally. Fast, but the client learns everything.
///
/// # Errors
/// Configuration and transport failures.
pub fn run_download_baseline(
    db: &Database,
    selection: &Selection,
    link: LinkProfile,
) -> Result<RunReport, ProtocolError> {
    if selection.len() != db.len() {
        return Err(ProtocolError::Config(
            "selection/database length mismatch".into(),
        ));
    }
    let (mut cw, mut sw) = SimLink::pair(link.clone());
    let mut server = ServerSession::new(db);
    sw.send(server.dump()?)?;

    let frame = cw.recv()?;
    let start = Instant::now();
    let dump = Dump::decode(&frame)?;
    let sum: u128 = dump
        .values
        .iter()
        .zip(selection.weights())
        .map(|(&x, &w)| x as u128 * w as u128)
        .sum();
    let client_time = start.elapsed();

    let expected = db.oracle_sum(selection)?;
    if sum != expected {
        return Err(ProtocolError::Config("baseline sum mismatch".into()));
    }
    let stats = cw.stats();
    Ok(RunReport {
        variant: Variant::DownloadAll,
        n: db.len(),
        selected: selection.selected_count(),
        key_bits: 0,
        link: link.name.to_string(),
        client_offline: Duration::ZERO,
        client_encrypt: client_time,
        server_compute: server.stats().compute,
        comm: cw.virtual_elapsed(),
        client_decrypt: Duration::ZERO,
        pipelined_total: None,
        bytes_to_server: stats.payload_bytes_sent,
        bytes_to_client: stats.payload_bytes_received,
        messages: stats.messages_sent + stats.messages_received,
        result: sum,
    })
}

/// Runs the basic protocol with client and server on real concurrent
/// threads over a [`ChannelWire`] — proof that the same state machines
/// work under genuine concurrency (used by integration tests).
///
/// Returns the decrypted sum.
///
/// # Errors
/// Any failure on either thread.
pub fn run_threaded(
    db: &Database,
    selection: &Selection,
    client: &SumClient,
    batch_size: usize,
    rng: &mut dyn RngCore,
) -> Result<u128, ProtocolError> {
    let (mut cw, mut sw) = ChannelWire::pair();
    let db_clone = db.clone();
    let server_thread = std::thread::spawn(move || -> Result<(), ProtocolError> {
        let mut server = ServerSession::new(&db_clone);
        while !server.is_done() {
            let frame: Frame = sw.recv()?;
            if let Some(reply) = server.on_frame(&frame)? {
                sw.send(reply)?;
            }
        }
        Ok(())
    });

    let mut source = IndexSource::Fresh(rng);
    client.send_query(&mut cw, selection, batch_size.max(1), &mut source)?;
    let (sum, _) = client.receive_result(&mut cw)?;

    server_thread
        .join()
        .map_err(|_| ProtocolError::Config("server thread panicked".into()))??;

    let got = sum
        .to_u128()
        .ok_or_else(|| ProtocolError::Config("sum exceeds 128 bits".into()))?;
    let expected = db.oracle_sum(selection)?;
    if got != expected {
        return Err(ProtocolError::Config(format!(
            "threaded result {got} disagrees with oracle {expected}"
        )));
    }
    Ok(got)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(n: usize) -> (Database, Selection, SumClient, StdRng) {
        let mut rng = StdRng::seed_from_u64(1234);
        let db = Database::random(n, 1000, &mut rng).unwrap();
        let sel = Selection::random(n, 0.5, &mut rng).unwrap();
        let client = SumClient::generate(128, &mut rng).unwrap();
        (db, sel, client, rng)
    }

    #[test]
    fn basic_run_report() {
        let (db, sel, client, mut rng) = setup(40);
        let r = run_basic(&db, &sel, &client, LinkProfile::gigabit_lan(), &mut rng).unwrap();
        assert_eq!(r.n, 40);
        assert_eq!(r.variant, Variant::Basic);
        assert_eq!(r.result, db.oracle_sum(&sel).unwrap());
        assert!(r.client_encrypt > Duration::ZERO);
        assert!(r.server_compute > Duration::ZERO);
        assert!(r.comm > Duration::ZERO);
        assert!(r.pipelined_total.is_none());
        // One hello + one batch + one product.
        assert_eq!(r.messages, 3);
        // Upstream bytes dominated by n fixed-width ciphertexts.
        assert!(r.bytes_to_server >= 40 * client.keypair().public.ciphertext_bytes());
        assert!(r.bytes_to_client >= client.keypair().public.ciphertext_bytes());
    }

    #[test]
    fn batched_run_overlaps() {
        let (db, sel, client, mut rng) = setup(60);
        let r = run_batched(&db, &sel, &client, LinkProfile::gigabit_lan(), 10, &mut rng).unwrap();
        assert_eq!(r.variant, Variant::Batched);
        let pipelined = r.pipelined_total.expect("batched reports a makespan");
        assert!(pipelined <= r.total_sequential());
        assert_eq!(r.result, db.oracle_sum(&sel).unwrap());
        // 60/10 batches + hello + product.
        assert_eq!(r.messages, 8);
    }

    #[test]
    fn parallel_runners_match_oracle_all_thread_counts() {
        let (db, sel, client, mut rng) = setup(30);
        let expected = db.oracle_sum(&sel).unwrap();
        for threads in [1usize, 2, 4] {
            let basic = run_basic_parallel(
                &db,
                &sel,
                &client,
                LinkProfile::gigabit_lan(),
                threads,
                &mut rng,
            )
            .unwrap();
            assert_eq!(basic.result, expected, "basic threads={threads}");
            assert_eq!(basic.variant, Variant::Basic);
            let batched = run_batched_parallel(
                &db,
                &sel,
                &client,
                LinkProfile::gigabit_lan(),
                7,
                threads,
                &mut rng,
            )
            .unwrap();
            assert_eq!(batched.result, expected, "batched threads={threads}");
            assert!(batched.pipelined_total.is_some());
        }
    }

    #[test]
    fn preprocessed_run_shifts_cost_offline() {
        let (db, sel, client, mut rng) = setup(40);
        let basic = run_basic(&db, &sel, &client, LinkProfile::gigabit_lan(), &mut rng).unwrap();
        let prep =
            run_preprocessed(&db, &sel, &client, LinkProfile::gigabit_lan(), &mut rng).unwrap();
        assert_eq!(prep.result, basic.result);
        assert!(prep.client_offline > Duration::ZERO);
        // The paper's ≈82% effect: online client time collapses.
        assert!(
            prep.client_encrypt < basic.client_encrypt / 4,
            "online encrypt {:?} should be far below fresh {:?}",
            prep.client_encrypt,
            basic.client_encrypt
        );
    }

    #[test]
    fn combined_run() {
        let (db, sel, client, mut rng) = setup(50);
        let r = run_combined(&db, &sel, &client, LinkProfile::gigabit_lan(), 10, &mut rng).unwrap();
        assert_eq!(r.variant, Variant::Combined);
        assert!(r.client_offline > Duration::ZERO);
        assert!(r.pipelined_total.is_some());
        assert_eq!(r.result, db.oracle_sum(&sel).unwrap());
    }

    #[test]
    fn weighted_run() {
        let mut rng = StdRng::seed_from_u64(4321);
        let db = Database::new(vec![10, 20, 30, 40]).unwrap();
        let sel = Selection::weighted(vec![1, 0, 2, 3]);
        let client = SumClient::generate(128, &mut rng).unwrap();
        let r = run_weighted(&db, &sel, &client, LinkProfile::gigabit_lan(), &mut rng).unwrap();
        assert_eq!(r.result, 10 + 60 + 120);
    }

    #[test]
    fn baselines() {
        let (db, sel, _, _) = setup(30);
        let plain = run_plain_baseline(&db, &sel, LinkProfile::gigabit_lan()).unwrap();
        assert_eq!(plain.result, db.oracle_sum(&sel).unwrap());
        assert_eq!(plain.key_bits, 0);
        let dl = run_download_baseline(&db, &sel, LinkProfile::gigabit_lan()).unwrap();
        assert_eq!(dl.result, plain.result);
        // Download ships the whole database; plain ships only indices.
        assert!(dl.bytes_to_client > plain.bytes_to_server);
        // Weighted selections are rejected by the plain baseline.
        let w = Selection::weighted(vec![2; 30]);
        assert!(run_plain_baseline(&db, &w, LinkProfile::gigabit_lan()).is_err());
    }

    #[test]
    fn threaded_matches_oracle() {
        let (db, sel, client, mut rng) = setup(25);
        let sum = run_threaded(&db, &sel, &client, 7, &mut rng).unwrap();
        assert_eq!(sum, db.oracle_sum(&sel).unwrap());
    }

    #[test]
    fn length_mismatch_rejected() {
        let (db, _, client, mut rng) = setup(10);
        let bad = Selection::from_bits(&[true; 5]);
        assert!(run_basic(&db, &bad, &client, LinkProfile::gigabit_lan(), &mut rng).is_err());
        assert!(run_plain_baseline(&db, &bad, LinkProfile::gigabit_lan()).is_err());
        assert!(run_download_baseline(&db, &bad, LinkProfile::gigabit_lan()).is_err());
    }

    #[test]
    fn message_space_guard_trips() {
        // A 64-bit key cannot hold sums of huge values.
        let mut rng = StdRng::seed_from_u64(5);
        let client = SumClient::generate(64, &mut rng).unwrap();
        let db = Database::new(vec![u64::MAX / 2; 8]).unwrap();
        let sel = Selection::from_bits(&[true; 8]);
        assert!(matches!(
            run_basic(&db, &sel, &client, LinkProfile::gigabit_lan(), &mut rng),
            Err(ProtocolError::SumOverflow { .. })
        ));
    }

    #[test]
    fn modem_link_inflates_comm() {
        let (db, sel, client, mut rng) = setup(20);
        let lan = run_basic(&db, &sel, &client, LinkProfile::gigabit_lan(), &mut rng).unwrap();
        let modem = run_basic(&db, &sel, &client, LinkProfile::modem_56k(), &mut rng).unwrap();
        assert!(
            modem.comm > lan.comm * 100,
            "56k comm must dwarf gigabit comm"
        );
        assert_eq!(modem.result, lan.result);
    }
}
