//! Bounded, process-wide cache of per-database fold plans.
//!
//! A [`MultiExpPlan`](pps_bignum::MultiExpPlan) digit-decomposes every
//! database exponent once; the table then serves every fold against
//! that database. Building it is `O(n)` but not free (and at `n = 10⁵`
//! the table is ~800 KB), so the plan must be **built once and shared**
//! — across all concurrent TCP sessions, across the shard workers of a
//! partitioned deployment, and across sessions resumed from a
//! checkpoint. [`FoldPlanCache`] provides exactly that: a small LRU of
//! `Arc`-shared plans keyed by database identity.
//!
//! Identity is the `Arc<Database>` *allocation*, not the contents:
//! comparing contents would cost as much as rebuilding the plan, while
//! every component that shares a database already shares the `Arc`
//! (the TCP runtime clones one `Arc<Database>` into each connection
//! thread). Each entry holds a [`Weak`] back-reference and is only
//! considered live while `upgrade()` still yields **the same
//! allocation** (`Arc::ptr_eq`), so a dropped database can never alias
//! a new one that happens to reuse its address.

use std::sync::{Arc, Mutex, Weak};
use std::time::Instant;

use pps_bignum::MultiExpPlan;

use crate::data::Database;
use crate::obs::FoldPlanObs;

/// Default number of distinct databases a cache retains plans for.
pub const DEFAULT_PLAN_CACHE_CAPACITY: usize = 8;

struct Entry {
    /// `Arc::as_ptr` of the database at insert time — the lookup key.
    key: usize,
    /// Liveness guard: the entry is valid only while this upgrades to
    /// the *same* allocation as the database being looked up.
    db: Weak<Database>,
    plan: Arc<MultiExpPlan>,
}

/// A bounded LRU cache mapping live `Arc<Database>` handles to their
/// shared [`MultiExpPlan`]s.
///
/// `get_or_build` returns the cached plan when the same database
/// (same `Arc` allocation) was seen before, and otherwise builds,
/// caches, and returns a new one, evicting the least-recently-used
/// entry once `capacity` distinct databases are held. All methods take
/// `&self`; the cache is internally synchronized and safe to share
/// behind an `Arc` from any number of threads.
pub struct FoldPlanCache {
    entries: Mutex<Vec<Entry>>,
    capacity: usize,
}

impl FoldPlanCache {
    /// An empty cache retaining plans for at most `capacity` databases.
    /// A capacity of 0 is treated as 1.
    pub fn new(capacity: usize) -> Self {
        FoldPlanCache {
            entries: Mutex::new(Vec::new()),
            capacity: capacity.max(1),
        }
    }

    /// The process-wide shared cache (capacity
    /// [`DEFAULT_PLAN_CACHE_CAPACITY`]). Every `TcpServer` uses this
    /// unless given its own cache, so co-hosted servers sharing one
    /// `Arc<Database>` also share one plan.
    pub fn global() -> &'static FoldPlanCache {
        static GLOBAL: std::sync::OnceLock<FoldPlanCache> = std::sync::OnceLock::new();
        GLOBAL.get_or_init(|| FoldPlanCache::new(DEFAULT_PLAN_CACHE_CAPACITY))
    }

    /// The plan for `db`, building and caching it on first sight.
    ///
    /// When `obs` is provided, a build increments
    /// `pps_fold_plan_builds_total`, records its duration in
    /// `pps_fold_plan_build_seconds`, and adjusts the
    /// `pps_fold_plan_bytes` gauge (including evictions); a cache hit
    /// increments `pps_fold_plan_hits_total`.
    pub fn get_or_build(&self, db: &Arc<Database>, obs: Option<&FoldPlanObs>) -> Arc<MultiExpPlan> {
        let key = Arc::as_ptr(db) as usize;
        let mut entries = self.entries.lock().expect("plan cache poisoned");

        // Drop entries whose database died; their address may be reused.
        let mut freed: i64 = 0;
        entries.retain(|e| {
            let live = e.db.upgrade().is_some();
            if !live {
                freed += e.plan.table_bytes() as i64;
            }
            live
        });

        if let Some(pos) = entries
            .iter()
            .position(|e| e.key == key && e.db.upgrade().is_some_and(|live| Arc::ptr_eq(&live, db)))
        {
            let entry = entries.remove(pos);
            let plan = Arc::clone(&entry.plan);
            entries.push(entry); // move to most-recently-used
            if let Some(obs) = obs {
                obs.hits.inc();
                obs.bytes.add(-freed);
            }
            return plan;
        }

        let start = Instant::now();
        let plan = Arc::new(MultiExpPlan::build(db.values()));
        let built = start.elapsed();
        let mut delta = plan.table_bytes() as i64 - freed;
        if entries.len() >= self.capacity {
            let evicted = entries.remove(0);
            delta -= evicted.plan.table_bytes() as i64;
        }
        entries.push(Entry {
            key,
            db: Arc::downgrade(db),
            plan: Arc::clone(&plan),
        });
        if let Some(obs) = obs {
            obs.builds.inc();
            obs.build_seconds.record_duration(built);
            obs.bytes.add(delta);
        }
        plan
    }

    /// Number of live cached plans (dead-database entries are counted
    /// until the next `get_or_build` sweeps them).
    pub fn len(&self) -> usize {
        self.entries.lock().expect("plan cache poisoned").len()
    }

    /// Whether the cache currently holds no plans.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pps_obs::Registry;

    fn db(values: Vec<u64>) -> Arc<Database> {
        Arc::new(Database::new(values).unwrap())
    }

    #[test]
    fn second_lookup_is_a_hit_on_the_same_plan() {
        let cache = FoldPlanCache::new(4);
        let registry = Registry::new();
        let obs = FoldPlanObs::new(&registry);
        let d = db(vec![1, 2, 3]);
        let a = cache.get_or_build(&d, Some(&obs));
        let b = cache.get_or_build(&d, Some(&obs));
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(obs.builds.get(), 1);
        assert_eq!(obs.hits.get(), 1);
        assert_eq!(obs.bytes.get(), a.table_bytes() as i64);
    }

    #[test]
    fn equal_contents_different_allocation_is_a_miss() {
        let cache = FoldPlanCache::new(4);
        let a = cache.get_or_build(&db(vec![5, 6]), None);
        let b = cache.get_or_build(&db(vec![5, 6]), None);
        assert!(!Arc::ptr_eq(&a, &b), "identity is the Arc, not contents");
    }

    #[test]
    fn dead_database_entry_is_swept_and_address_reuse_is_safe() {
        let cache = FoldPlanCache::new(4);
        let registry = Registry::new();
        let obs = FoldPlanObs::new(&registry);
        let d = db(vec![7, 8, 9]);
        let bytes = cache.get_or_build(&d, Some(&obs)).table_bytes();
        assert_eq!(obs.bytes.get(), bytes as i64);
        drop(d);
        // Next lookup sweeps the dead entry and releases its bytes.
        let fresh = db(vec![10, 11]);
        let plan = cache.get_or_build(&fresh, Some(&obs));
        assert_eq!(cache.len(), 1);
        assert_eq!(plan.rows(), 2);
        assert_eq!(obs.bytes.get(), plan.table_bytes() as i64);
        assert_eq!(obs.builds.get(), 2);
    }

    #[test]
    fn capacity_evicts_least_recently_used() {
        let cache = FoldPlanCache::new(2);
        let registry = Registry::new();
        let obs = FoldPlanObs::new(&registry);
        let d1 = db(vec![1]);
        let d2 = db(vec![2, 2]);
        let d3 = db(vec![3, 3, 3]);
        let p1 = cache.get_or_build(&d1, Some(&obs));
        let p2 = cache.get_or_build(&d2, Some(&obs));
        // Touch d1 so d2 is the LRU entry when d3 arrives.
        cache.get_or_build(&d1, Some(&obs));
        let p3 = cache.get_or_build(&d3, Some(&obs));
        assert_eq!(cache.len(), 2);
        let expected = (p1.table_bytes() + p3.table_bytes()) as i64;
        assert_eq!(obs.bytes.get(), expected);
        drop(p2);
        // d2 was evicted: looking it up again rebuilds.
        cache.get_or_build(&d2, Some(&obs));
        assert_eq!(obs.builds.get(), 4);
    }

    #[test]
    fn global_cache_is_shared() {
        let d = db(vec![42, 43]);
        let a = FoldPlanCache::global().get_or_build(&d, None);
        let b = FoldPlanCache::global().get_or_build(&d, None);
        assert!(Arc::ptr_eq(&a, &b));
    }
}
