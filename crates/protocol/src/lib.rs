//! # pps-protocol
//!
//! The paper's primary contribution: **private selected-sum computation**
//! — an instance of selective private function evaluation (Canetti et
//! al.) experimentally analyzed by Subramaniam, Wright & Yang
//! (SDM/VLDB 2004).
//!
//! A server holds a database of `n` numbers; a client holds a private
//! 0/1 (or integer-weighted) selection vector. The client learns
//! `Σ I_i·x_i` and nothing else about the database; the server learns
//! nothing about the selection. The protocol (paper Fig. 1):
//!
//! ```text
//! Client                              Server
//!   E(I_1), …, E(I_n)  ───────────▶
//!                                     v = Π E(I_i)^{x_i} mod N²
//!                      ◀───────────  v
//!   D(v) = Σ I_i·x_i
//! ```
//!
//! This crate implements the protocol plus all four optimizations the
//! paper evaluates, the two non-private baselines it contrasts with, and
//! the four-component timing breakdown its figures plot:
//!
//! * [`run_basic`] — §3.1, the direct implementation;
//! * [`run_basic_parallel`] / [`run_batched_parallel`] — the same
//!   protocols with multi-core client-side encryption
//!   (`IndexSource::FreshParallel`), the engineering answer to the
//!   client bottleneck the paper measures;
//! * [`run_batched`] — §3.2, chunked streaming with pipeline overlap;
//! * [`run_preprocessed`] — §3.3, offline `E(0)`/`E(1)` pools;
//! * [`run_combined`] — §3.4, both;
//! * [`run_multiclient`] — §3.5, `k` clients with blinded partial sums;
//! * [`run_plain_baseline`] / [`run_download_baseline`] — §2's trivial
//!   non-private alternatives;
//! * [`run_weighted`] — the weighted-sum generalization the paper
//!   sketches in §2;
//! * [`run_threaded`] — the same state machines over real threads;
//! * [`TcpServer`] — the concurrent deployment runtime: one thread per
//!   accepted TCP connection, all sessions sharing one database, with
//!   per-session deadlines, admission control, and graceful shutdown;
//! * [`run_tcp_query_with_retry`] — the fault-tolerant client: a full
//!   query over a real socket, re-issued with exponential backoff on
//!   transient transport failures, resuming from the server's last
//!   acknowledged batch when a checkpoint survives
//!   ([`SessionTable`], PROTOCOL.md §10);
//! * [`run_sharded_query`] — §3.5 over real sockets: `k` concurrent
//!   shard legs, each answering with a correlated-blinded partial that
//!   the client combines mod `M` (PROTOCOL.md §11), with per-leg
//!   retry and resume.
//!
//! # Quick start
//!
//! ```
//! use pps_protocol::{run_basic, Database, Selection, SumClient};
//! use pps_transport::LinkProfile;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let db = Database::new(vec![10, 20, 30, 40, 50]).unwrap();
//! let sel = Selection::from_indices(5, &[0, 2, 4]).unwrap();
//! let client = SumClient::generate(128, &mut rng).unwrap();
//!
//! let report = run_basic(&db, &sel, &client, LinkProfile::gigabit_lan(), &mut rng).unwrap();
//! assert_eq!(report.result, 90); // 10 + 30 + 50, computed privately
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod client;
mod cost;
mod data;
mod error;
pub mod flow;
pub mod messages;
mod multiclient;
mod multidb;
mod obs;
mod orchestrator;
mod perturb;
mod plan;
mod report;
pub mod resume;
mod run;
mod server;
mod shard;
mod tcp_client;
mod tcp_server;
mod trace;

pub use client::{ClientSendStats, IndexSource, SumClient};
pub use cost::{measure_encrypt_secs, CostModel, JAVA_SLOWDOWN, PAPER_ENCRYPT_SECS};
pub use data::{check_message_space, Database, Selection};
pub use error::ProtocolError;
pub use flow::{FlowStep, SessionFlow};
pub use multiclient::{run_multiclient, ClientLeg, MultiClientReport};
pub use multidb::{
    leg_blinding, pair_blinding, run_multidb, run_multidb_blinded, server_blinding, Partition,
    MIN_BLINDING_KEY_BITS,
};
pub use obs::{FoldPlanObs, PhaseTotals, QueryObs, ServerObs, ShardObs};
pub use perturb::{flip_probability_for_epsilon, run_randomized_response, PerturbedReport};
pub use plan::{FoldPlanCache, DEFAULT_PLAN_CACHE_CAPACITY};
pub use report::{RunReport, Variant};
pub use resume::{ResumptionConfig, SessionTable};
pub use run::{
    run_basic, run_basic_parallel, run_batched, run_batched_parallel, run_combined,
    run_download_baseline, run_plain_baseline, run_preprocessed, run_threaded, run_weighted,
    RunConfig,
};
pub use server::{FoldCheckpoint, FoldStrategy, ServerSession, ServerStats};
pub use shard::{
    run_sharded_query, run_sharded_query_with, ShardLegReport, ShardQueryConfig, ShardQueryOutcome,
};
pub use tcp_client::{
    run_stream_query_with_resume, run_tcp_query, run_tcp_query_observed, run_tcp_query_with_retry,
    TcpQueryConfig, TcpQueryOutcome,
};
pub use tcp_server::{
    Admission, AggregateStats, ServeEngine, SessionDeadline, SessionEvent, SessionLimits,
    ShutdownHandle, TcpServer, DEFAULT_QUEUE_CAPACITY, MAX_CONSECUTIVE_ACCEPT_ERRORS,
};
pub use trace::{
    fetch_trace, parse_trace_jsonl, run_sharded_query_traced, TimelineEntry, TraceTimeline,
    TracedShardQuery,
};
