//! Fault-tolerant TCP query client.
//!
//! [`run_tcp_query`] executes one complete private selected-sum query
//! against a listening [`TcpServer`](crate::TcpServer): connect, size
//! discovery, encrypted index stream, product decryption — all under
//! configurable read/write deadlines. [`run_tcp_query_with_retry`] wraps
//! it in a [`RetryPolicy`]: any *transport*-level failure (refused
//! connect, disconnect mid-query, expired deadline) is retried from
//! scratch after an exponentially backed-off, deterministically
//! jittered sleep.
//!
//! **Resume first, re-issue second.** The server acknowledges every
//! `Hello` with a session ID and checkpoints its fold state after each
//! acknowledged batch (PROTOCOL.md §10). A retrying attempt therefore
//! opens its fresh connection with `Resume { session_id, .. }`: when the
//! checkpoint survived, the server replies with the next batch sequence
//! number it expects and the client re-encrypts and re-sends **only the
//! unacknowledged tail** of the index vector. Only when the checkpoint
//! is gone (TTL expiry, capacity eviction, server restart) does the
//! client fall back to re-issuing the whole query on the same
//! connection.
//!
//! **Why re-issuing a whole query is safe:** the protocol is stateless
//! across sessions — the server keeps no record of a client between
//! connections (checkpoints are an optimization, never required for
//! correctness), and a fresh attempt re-encrypts the index vector under
//! fresh randomness, so a retried query is indistinguishable from a new
//! client and returns the same sum. Protocol-level errors (a malformed
//! reply, a key mismatch, an oracle disagreement) are **not** retried:
//! they signal a bug or an attack, not weather.

use std::io::{Read, Write};
use std::sync::Arc;
use std::time::Duration;

use pps_bignum::Uint;
use pps_obs::{Collector, Phase, RingCollector, SpanRecord, TeeCollector, TraceContext, Tracer};
use pps_transport::{
    RetryPolicy, RetryStats, StreamWire, TcpWire, TimedWire, TrafficStats, TransportError, Wire,
};
use rand::RngCore;

use crate::client::{IndexSource, SumClient};
use crate::data::Selection;
use crate::error::ProtocolError;
use crate::messages::{Hello, HelloAck, Resume, ResumeAck, SizeReply, SizeRequest};
use crate::obs::{PhaseTotals, QueryObs};
use crate::report::{RunReport, Variant};

/// Configuration for a TCP query.
#[derive(Clone, Debug)]
pub struct TcpQueryConfig {
    /// Indices per batch message (the paper's §3.2 experiments use 100).
    pub batch_size: usize,
    /// Worker threads for client-side index encryption (1 = the
    /// sequential paper-fidelity path).
    pub client_threads: usize,
    /// Socket read deadline; `None` blocks forever.
    pub read_timeout: Option<Duration>,
    /// Socket write deadline.
    pub write_timeout: Option<Duration>,
    /// Retry policy applied by [`run_tcp_query_with_retry`] to the
    /// connect and to full-query re-issue.
    pub retry: RetryPolicy,
    /// Distributed trace context announced to the server as a trailer
    /// on `Hello`/`Resume` (and on `ShardHello` by the fan-out engine).
    /// `None` — the default — leaves the wire byte-identical to an
    /// untraced peer (PROTOCOL.md §9.4).
    pub trace: Option<TraceContext>,
    /// Time source for retry backoff sleeps. The real clock by default;
    /// tests and the deterministic simulator inject a
    /// [`VirtualClock`](pps_obs::VirtualClock) so backoff schedules are
    /// asserted instead of waited out.
    pub clock: pps_obs::SharedClock,
}

impl Default for TcpQueryConfig {
    /// Batch 100, single-threaded encryption, 30 s deadlines, default
    /// retry policy.
    fn default() -> Self {
        TcpQueryConfig {
            batch_size: 100,
            client_threads: 1,
            read_timeout: Some(Duration::from_secs(30)),
            write_timeout: Some(Duration::from_secs(30)),
            retry: RetryPolicy::default(),
            trace: None,
            clock: pps_obs::real_clock(),
        }
    }
}

/// Result of a TCP query, including what the retry loop did.
#[derive(Clone, Debug)]
pub struct TcpQueryOutcome {
    /// The private sum.
    pub sum: u128,
    /// Database size discovered from the server.
    pub n: usize,
    /// Rows selected.
    pub selected: usize,
    /// Traffic counters of the **successful** attempt.
    pub traffic: TrafficStats,
    /// Attempts made and backoffs slept (one attempt, no delays, when
    /// the first try succeeded).
    pub retry: RetryStats,
    /// Attempts that continued from a surviving server checkpoint
    /// instead of re-issuing the whole query.
    pub resumed_attempts: u32,
    /// Encrypted-payload bytes written to the wire by each attempt, in
    /// order (attempts that failed before connecting record no entry).
    /// A resumed attempt's entry is strictly smaller than a full
    /// re-issue whenever at least one batch had been acknowledged.
    pub attempt_payload_bytes: Vec<usize>,
}

/// A query outcome whose sum is still a full-width [`Uint`]. The shard
/// fan-out engine needs this: a *blinded* partial sum is uniform in the
/// blinding modulus `M = 2^(key_bits - 2)` and overflows `u128` for any
/// key wider than 130 bits, so the conversion to `u128` must wait until
/// the blindings have cancelled.
#[derive(Clone, Debug)]
pub(crate) struct RawQueryOutcome {
    pub(crate) sum: Uint,
    pub(crate) n: usize,
    pub(crate) selected: usize,
    pub(crate) traffic: TrafficStats,
    pub(crate) retry: RetryStats,
    pub(crate) resumed_attempts: u32,
    pub(crate) attempt_payload_bytes: Vec<usize>,
}

/// A query whose size and selection are already known, so the attempt
/// loop skips size discovery. A shard leg uses this: the fan-out engine
/// discovers every shard's row count up front (it needs the global
/// offsets to split the selection) and each leg then queries its
/// pre-computed local selection.
pub(crate) struct PresetQuery {
    pub(crate) n: usize,
    pub(crate) selection: Selection,
}

/// Client-side span instrumentation for one shard leg: the tracer the
/// leg's phase spans go through (usually context-stamped by the traced
/// fan-out) and the leg index used as their session tag.
pub(crate) struct LegTrace<'a> {
    pub(crate) tracer: &'a Tracer,
    pub(crate) leg: u64,
}

impl LegTrace<'_> {
    /// Emits the leg's coarse three-phase decomposition for one
    /// successful attempt: the batch-streaming wall
    /// ([`Phase::ClientEncrypt`] — includes the writes it interleaves),
    /// the wait for the product minus its decryption ([`Phase::Comm`]),
    /// and the decryption itself ([`Phase::ClientDecrypt`]).
    fn record_phases(&self, stream_start: u64, stream_end: u64, decrypt: Duration) {
        let end = self.tracer.now_ns();
        let dec_ns = u64::try_from(decrypt.as_nanos())
            .unwrap_or(u64::MAX)
            .min(end.saturating_sub(stream_end));
        let span = |name: &str, phase, start_ns, end_ns| SpanRecord {
            name: name.to_string(),
            phase: Some(phase),
            session: Some(self.leg),
            batch: None,
            start_ns,
            end_ns,
            trace: None, // stamped by the tracer's context
        };
        self.tracer.record_span(span(
            "leg_encrypt_stream",
            Phase::ClientEncrypt,
            stream_start,
            stream_end,
        ));
        self.tracer
            .record_span(span("leg_wire_wait", Phase::Comm, stream_end, end - dec_ns));
        self.tracer
            .record_span(span("leg_decrypt", Phase::ClientDecrypt, end - dec_ns, end));
    }
}

/// Whether a failure is worth retrying: transient transport weather
/// (peer gone, deadline expired, OS-level socket error) yes; protocol,
/// crypto, and configuration errors no.
fn retryable(e: &ProtocolError) -> bool {
    matches!(
        e,
        ProtocolError::Transport(
            TransportError::Disconnected | TransportError::TimedOut | TransportError::Io(_)
        )
    )
}

/// Client-side query state that survives across attempts: the size and
/// selection discovered once, the resumption ticket granted by the
/// server's `HelloAck`, and how often resumption actually happened.
struct AttemptState {
    n: Option<usize>,
    selection: Option<Selection>,
    session: Option<u64>,
    resumed_attempts: u32,
}

fn index_source<'a>(config: &TcpQueryConfig, rng: &'a mut dyn RngCore) -> IndexSource<'a> {
    if config.client_threads > 1 {
        IndexSource::FreshParallel {
            rng,
            threads: config.client_threads,
        }
    } else {
        IndexSource::Fresh(rng)
    }
}

/// One attempt over an already-connected wire, resume-first: when a
/// previous attempt holds a session ticket, ask the server to continue
/// from its checkpoint; fall back to a full query (size discovery,
/// `Hello`, every batch) on the same connection when the checkpoint is
/// gone or this is the first attempt.
fn resumable_attempt<S: Read + Write>(
    wire: &mut StreamWire<S>,
    client: &SumClient,
    select: &[usize],
    config: &TcpQueryConfig,
    rng: &mut dyn RngCore,
    state: &mut AttemptState,
    leg: Option<&LegTrace<'_>>,
) -> Result<Uint, ProtocolError> {
    if let Some(sid) = state.session {
        wire.send(
            Resume {
                session_id: sid,
                next_seq: 0,
                trace: config.trace,
            }
            .encode()?,
        )?;
        let ack = ResumeAck::decode(&wire.recv()?)?;
        if ack.granted {
            state.resumed_attempts += 1;
            let selection = state
                .selection
                .as_ref()
                .expect("a ticket implies a prior Hello, which implies a selection");
            // Fresh randomness for the re-encrypted tail: the resumed
            // stream is as indistinguishable as a fresh query.
            let mut source = index_source(config, rng);
            let stream_start = leg.map(|l| l.tracer.now_ns());
            client.stream_batches(
                wire,
                selection,
                config.batch_size,
                &mut source,
                ack.next_seq,
            )?;
            let stream_end = leg.map(|l| l.tracer.now_ns());
            let (sum, decrypt) = client.receive_result(wire)?;
            if let (Some(l), Some(s), Some(e)) = (leg, stream_start, stream_end) {
                l.record_phases(s, e, decrypt);
            }
            return Ok(sum);
        }
        // Checkpoint gone (TTL, capacity, restart). The server is back
        // at AwaitHello on this very connection; fall through to a full
        // re-issue without reconnecting.
        state.session = None;
    }

    if state.n.is_none() {
        wire.send(SizeRequest.encode()?)?;
        let n = SizeReply::decode(&wire.recv()?)?.n as usize;
        state.selection = Some(Selection::from_indices(n, select)?);
        state.n = Some(n);
    }
    let selection = state.selection.as_ref().expect("set above");

    if config.batch_size == 0 {
        return Err(ProtocolError::Config("batch size must be positive".into()));
    }
    wire.send(
        Hello {
            modulus: client.keypair().public.n().clone(),
            total: selection.len() as u64,
            batch_size: config.batch_size.min(u32::MAX as usize) as u32,
            trace: config.trace,
        }
        .encode()?,
    )?;
    // Read the HelloAck eagerly — the ticket must be in hand *before*
    // the stream starts, or a disconnect mid-stream leaves nothing to
    // resume with.
    state.session = Some(HelloAck::decode(&wire.recv()?)?.session_id);
    let mut source = index_source(config, rng);
    let stream_start = leg.map(|l| l.tracer.now_ns());
    client.stream_batches(wire, selection, config.batch_size, &mut source, 0)?;
    let stream_end = leg.map(|l| l.tracer.now_ns());
    let (sum, decrypt) = client.receive_result(wire)?;
    if let (Some(l), Some(s), Some(e)) = (leg, stream_start, stream_end) {
        l.record_phases(s, e, decrypt);
    }
    Ok(sum)
}

/// Runs one private selected-sum query over a stream transport built by
/// `connect`, retrying on transient transport failures according to
/// `config.retry` — resume-first, full re-issue as the fallback (see
/// the module docs).
///
/// `connect` is called once per attempt with the 1-based attempt number
/// and must return a connected, deadline-configured wire. This is the
/// engine under [`run_tcp_query_with_retry`]; it is public so fault
/// injection harnesses can drive it over instrumented streams.
///
/// # Errors
/// The final attempt's error when every attempt fails, or immediately
/// on a non-retryable (protocol/crypto/config) failure.
pub fn run_stream_query_with_resume<S, F>(
    connect: &mut F,
    client: &SumClient,
    select: &[usize],
    config: &TcpQueryConfig,
    rng: &mut dyn RngCore,
) -> Result<TcpQueryOutcome, ProtocolError>
where
    S: Read + Write,
    F: FnMut(u32) -> Result<StreamWire<S>, ProtocolError>,
{
    let raw = run_stream_query_raw(connect, client, select, config, rng, None, None)?;
    let sum = raw
        .sum
        .to_u128()
        .ok_or_else(|| ProtocolError::Config("sum exceeds 128 bits".into()))?;
    Ok(TcpQueryOutcome {
        sum,
        n: raw.n,
        selected: raw.selected,
        traffic: raw.traffic,
        retry: raw.retry,
        resumed_attempts: raw.resumed_attempts,
        attempt_payload_bytes: raw.attempt_payload_bytes,
    })
}

/// The engine under [`run_stream_query_with_resume`]: same retry/resume
/// loop, but the sum stays a full-width [`Uint`] and an optional
/// [`PresetQuery`] skips size discovery. Shard legs use both: blinded
/// partials don't fit `u128`, and the fan-out engine already knows each
/// shard's size and local selection.
pub(crate) fn run_stream_query_raw<S, F>(
    connect: &mut F,
    client: &SumClient,
    select: &[usize],
    config: &TcpQueryConfig,
    rng: &mut dyn RngCore,
    preset: Option<PresetQuery>,
    leg: Option<&LegTrace<'_>>,
) -> Result<RawQueryOutcome, ProtocolError>
where
    S: Read + Write,
    F: FnMut(u32) -> Result<StreamWire<S>, ProtocolError>,
{
    let (mut state, selected) = match preset {
        Some(p) => {
            let selected = p.selection.selected_count();
            (
                AttemptState {
                    n: Some(p.n),
                    selection: Some(p.selection),
                    session: None,
                    resumed_attempts: 0,
                },
                selected,
            )
        }
        None => (
            AttemptState {
                n: None,
                selection: None,
                session: None,
                resumed_attempts: 0,
            },
            select.len(),
        ),
    };
    let mut retry = RetryStats::default();
    let mut attempt_payload_bytes = Vec::new();
    loop {
        retry.attempts += 1;
        let outcome = match connect(retry.attempts) {
            Ok(mut wire) => {
                let r = resumable_attempt(&mut wire, client, select, config, rng, &mut state, leg);
                attempt_payload_bytes.push(wire.stats().payload_bytes_sent);
                r.map(|sum| (sum, wire.stats()))
            }
            Err(e) => Err(e),
        };
        match outcome {
            Ok((sum, traffic)) => {
                return Ok(RawQueryOutcome {
                    sum,
                    n: state.n.unwrap_or(0),
                    selected,
                    traffic,
                    retry,
                    resumed_attempts: state.resumed_attempts,
                    attempt_payload_bytes,
                });
            }
            Err(e) => {
                if !retryable(&e) || retry.attempts >= config.retry.max_attempts.max(1) {
                    return Err(e);
                }
                let delay = config.retry.delay_for(retry.attempts - 1, rng);
                retry.delays.push(delay);
                config.clock.sleep(delay);
            }
        }
    }
}

fn tcp_connector<'a>(
    addr: &'a str,
    config: &'a TcpQueryConfig,
) -> impl FnMut(u32) -> Result<TcpWire, ProtocolError> + 'a {
    move |_attempt| {
        let mut wire = TcpWire::connect(addr)?;
        wire.set_read_timeout(config.read_timeout)?;
        wire.set_write_timeout(config.write_timeout)?;
        Ok(wire)
    }
}

/// Runs one private selected-sum query over TCP, without retry.
///
/// # Errors
/// Connection, transport, and protocol failures.
pub fn run_tcp_query(
    addr: &str,
    client: &SumClient,
    select: &[usize],
    config: &TcpQueryConfig,
    rng: &mut dyn RngCore,
) -> Result<TcpQueryOutcome, ProtocolError> {
    let single = TcpQueryConfig {
        retry: RetryPolicy {
            max_attempts: 1,
            ..config.retry
        },
        ..config.clone()
    };
    run_stream_query_with_resume(
        &mut tcp_connector(addr, config),
        client,
        select,
        &single,
        rng,
    )
}

/// Runs one private selected-sum query over TCP, retrying on transient
/// transport failures according to `config.retry`. A retry resumes from
/// the server's last acknowledged batch when its checkpoint survived,
/// and re-issues the **whole query** (fresh encryption — idempotent,
/// see the module docs) otherwise.
///
/// # Errors
/// The final attempt's error when every attempt fails, or immediately
/// on a non-retryable (protocol/crypto/config) failure.
pub fn run_tcp_query_with_retry(
    addr: &str,
    client: &SumClient,
    select: &[usize],
    config: &TcpQueryConfig,
    rng: &mut dyn RngCore,
) -> Result<TcpQueryOutcome, ProtocolError> {
    run_stream_query_with_resume(
        &mut tcp_connector(addr, config),
        client,
        select,
        config,
        rng,
    )
}

/// One *instrumented* query attempt: like [`attempt`], but over a
/// [`TimedWire`] (so time blocked on the socket is measured), with wire
/// byte counters attached, and — on success — the client-side phases
/// recorded into `obs` histograms and emitted as spans through `tracer`:
/// one `encrypt_batch` span per batch (tagged [`Phase::ClientEncrypt`]
/// with its batch id), one `wire_blocked` span ([`Phase::Comm`]), one
/// `decrypt` span ([`Phase::ClientDecrypt`]).
fn attempt_observed(
    addr: &str,
    client: &SumClient,
    select: &[usize],
    config: &TcpQueryConfig,
    rng: &mut dyn RngCore,
    obs: &QueryObs,
    tracer: &Tracer,
) -> Result<(u128, usize, TrafficStats), ProtocolError> {
    let mut inner = TcpWire::connect(addr)?;
    inner.set_metrics(obs.wire.clone());
    inner.set_read_timeout(config.read_timeout)?;
    inner.set_write_timeout(config.write_timeout)?;
    let mut wire = TimedWire::new(inner);

    wire.send(SizeRequest.encode()?)?;
    let n = SizeReply::decode(&wire.recv()?)?.n as usize;
    let selection = Selection::from_indices(n, select)?;

    let mut source = if config.client_threads > 1 {
        IndexSource::FreshParallel {
            rng,
            threads: config.client_threads,
        }
    } else {
        IndexSource::Fresh(rng)
    };
    let sent = client.send_query(&mut wire, &selection, config.batch_size, &mut source)?;
    let (sum, decrypt) = client.receive_result(&mut wire)?;
    let comm = wire.blocked();

    // Record the paper's client-side phases from the same Durations the
    // span bridge will sum, so a /metrics scrape and a reconstructed
    // RunReport agree exactly (not just within timer noise).
    for (batch, elapsed) in sent.per_batch_encrypt.iter().enumerate() {
        obs.client_encrypt.record_duration(*elapsed);
        let end_ns = tracer.now_ns();
        let dur_ns = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        tracer.record_span(SpanRecord {
            name: "encrypt_batch".to_string(),
            phase: Some(Phase::ClientEncrypt),
            session: None,
            batch: Some(batch as u64),
            start_ns: end_ns.saturating_sub(dur_ns),
            end_ns,
            trace: None,
        });
    }
    obs.comm.record_duration(comm);
    tracer.record_phase_total("wire_blocked", Phase::Comm, None, comm);
    obs.client_decrypt.record_duration(decrypt);
    tracer.record_phase_total("decrypt", Phase::ClientDecrypt, None, decrypt);

    let sum = sum
        .to_u128()
        .ok_or_else(|| ProtocolError::Config("sum exceeds 128 bits".into()))?;
    Ok((sum, n, wire.get_ref().stats()))
}

/// Runs one private selected-sum query over TCP with full telemetry:
/// retries as [`run_tcp_query_with_retry`] does, records the paper's
/// client-side phase decomposition into `obs`, and reconstructs a
/// [`RunReport`] from the spans of the successful attempt via
/// [`PhaseTotals`].
///
/// The report's `client_encrypt`, `comm`, and `client_decrypt` come
/// from this client's own spans. `server_compute` is zero unless the
/// collector behind `obs` also receives the server's spans (loopback
/// deployments sharing a collector get all four components; across a
/// real network the server's compute is invisible to the client and is
/// folded into `comm`, which measures total time blocked on the wire).
///
/// # Errors
/// As [`run_tcp_query_with_retry`].
pub fn run_tcp_query_observed(
    addr: &str,
    client: &SumClient,
    select: &[usize],
    config: &TcpQueryConfig,
    rng: &mut dyn RngCore,
    obs: &QueryObs,
) -> Result<(TcpQueryOutcome, RunReport), ProtocolError> {
    // Private ring for the span→report bridge, teed into the caller's
    // collector so shared-collector deployments see the same spans.
    let ring = Arc::new(RingCollector::new(4096));
    let tracer = Tracer::new(Arc::new(TeeCollector::new(vec![
        Arc::clone(&ring) as Arc<dyn Collector>,
        Arc::clone(obs.collector()),
    ])));
    let mut retry = RetryStats::default();
    loop {
        retry.attempts += 1;
        obs.retry_attempts.inc();
        match attempt_observed(addr, client, select, config, rng, obs, &tracer) {
            Ok((sum, n, traffic)) => {
                let mut report = RunReport {
                    variant: Variant::Batched,
                    n,
                    selected: select.len(),
                    key_bits: client.keypair().public.key_bits(),
                    link: format!("tcp:{addr}"),
                    client_offline: Duration::ZERO,
                    client_encrypt: Duration::ZERO,
                    server_compute: Duration::ZERO,
                    comm: Duration::ZERO,
                    client_decrypt: Duration::ZERO,
                    pipelined_total: None,
                    bytes_to_server: traffic.payload_bytes_sent,
                    bytes_to_client: traffic.payload_bytes_received,
                    messages: traffic.messages_sent + traffic.messages_received,
                    result: sum,
                };
                PhaseTotals::from_spans(ring.spans().iter()).apply(&mut report);
                // The observed path keeps its span accounting simple by
                // re-issuing in full on retry, so it never resumes.
                let attempt_payload_bytes = vec![traffic.payload_bytes_sent];
                let outcome = TcpQueryOutcome {
                    sum,
                    n,
                    selected: select.len(),
                    traffic,
                    retry,
                    resumed_attempts: 0,
                    attempt_payload_bytes,
                };
                return Ok((outcome, report));
            }
            Err(e) => {
                let give_up = !retryable(&e) || retry.attempts >= config.retry.max_attempts.max(1);
                if retryable(&e) {
                    obs.retry_failures.inc();
                }
                if give_up {
                    return Err(e);
                }
                let delay = config.retry.delay_for(retry.attempts - 1, rng);
                retry.delays.push(delay);
                config.clock.sleep(delay);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::Database;
    use crate::server::FoldStrategy;
    use crate::tcp_server::TcpServer;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    fn serve_one(values: Vec<u64>) -> (std::net::SocketAddr, std::thread::JoinHandle<()>) {
        let db = Arc::new(Database::new(values).unwrap());
        let server = TcpServer::bind(db, "127.0.0.1:0", FoldStrategy::default()).unwrap();
        let addr = server.local_addr().unwrap();
        let t = std::thread::spawn(move || {
            server.serve(Some(1));
        });
        (addr, t)
    }

    #[test]
    fn query_round_trip() {
        let (addr, t) = serve_one(vec![10, 20, 30, 40]);
        let mut rng = StdRng::seed_from_u64(1);
        let client = SumClient::generate(128, &mut rng).unwrap();
        let out = run_tcp_query(
            &addr.to_string(),
            &client,
            &[1, 3],
            &TcpQueryConfig::default(),
            &mut rng,
        )
        .unwrap();
        assert_eq!(out.sum, 60);
        assert_eq!(out.n, 4);
        assert_eq!(out.selected, 2);
        assert_eq!(out.retry.attempts, 1);
        assert!(out.retry.delays.is_empty());
        assert!(out.traffic.payload_bytes_sent > 0);
        t.join().unwrap();
    }

    #[test]
    fn dead_port_fails_without_retry_and_with_exhausted_retry() {
        let mut rng = StdRng::seed_from_u64(2);
        let client = SumClient::generate(128, &mut rng).unwrap();
        let config = TcpQueryConfig {
            retry: RetryPolicy {
                max_attempts: 2,
                base_delay: Duration::from_millis(1),
                max_delay: Duration::from_millis(2),
            },
            ..TcpQueryConfig::default()
        };
        let err = run_tcp_query("127.0.0.1:1", &client, &[0], &config, &mut rng).unwrap_err();
        assert!(matches!(
            err,
            ProtocolError::Transport(TransportError::Io(_))
        ));
        let err =
            run_tcp_query_with_retry("127.0.0.1:1", &client, &[0], &config, &mut rng).unwrap_err();
        assert!(matches!(
            err,
            ProtocolError::Transport(TransportError::Io(_))
        ));
    }

    #[test]
    fn config_errors_are_not_retried() {
        // An out-of-range selection is discovered after size discovery;
        // retrying it would loop uselessly, so it must fail fast.
        let (addr, t) = serve_one(vec![1, 2]);
        let mut rng = StdRng::seed_from_u64(3);
        let client = SumClient::generate(128, &mut rng).unwrap();
        let config = TcpQueryConfig::default();
        let err = run_tcp_query_with_retry(&addr.to_string(), &client, &[7], &config, &mut rng)
            .unwrap_err();
        assert!(matches!(err, ProtocolError::Config(_)));
        // The server session saw a disconnect, not a second attempt;
        // serve(Some(1)) returns regardless.
        t.join().unwrap();
    }

    #[test]
    fn observed_query_bridges_spans_into_a_report() {
        use crate::obs::ServerObs;
        use pps_obs::Registry;

        let registry = Arc::new(Registry::new());
        // One collector shared by both ends: the loopback deployment
        // where the bridge can see all four phases.
        let shared = Arc::new(RingCollector::new(256));
        let server_obs = ServerObs::with_tracer(
            Arc::clone(&registry),
            Tracer::new(Arc::clone(&shared) as Arc<dyn Collector>),
        );
        let query_obs = QueryObs::with_collector(
            Arc::clone(&registry),
            Arc::clone(&shared) as Arc<dyn Collector>,
        );

        let db = Arc::new(Database::new(vec![5, 6, 7, 8]).unwrap());
        let server = TcpServer::bind(db, "127.0.0.1:0", FoldStrategy::default())
            .unwrap()
            .with_observability(server_obs);
        let addr = server.local_addr().unwrap();
        let server_thread = std::thread::spawn(move || server.serve(Some(1)));

        let mut rng = StdRng::seed_from_u64(17);
        let client = SumClient::generate(128, &mut rng).unwrap();
        let config = TcpQueryConfig {
            batch_size: 2,
            ..TcpQueryConfig::default()
        };
        let (out, report) = run_tcp_query_observed(
            &addr.to_string(),
            &client,
            &[0, 3],
            &config,
            &mut rng,
            &query_obs,
        )
        .unwrap();
        let stats = server_thread.join().unwrap();

        assert_eq!(out.sum, 13);
        assert_eq!(report.result, 13);
        assert_eq!(report.n, 4);
        assert_eq!(report.selected, 2);
        assert!(report.link.starts_with("tcp:127.0.0.1:"));
        assert!(report.client_encrypt > Duration::ZERO);
        assert!(report.comm > Duration::ZERO);
        assert!(report.client_decrypt > Duration::ZERO);
        // The client cannot see across the wire, so its own report has
        // no server component...
        assert_eq!(report.server_compute, Duration::ZERO);
        // ...but the client's wire-blocked time necessarily covers it.
        assert!(report.comm >= stats.compute);

        // The histograms carry the exact same durations the report does.
        assert_eq!(query_obs.client_encrypt.sum(), report.client_encrypt);
        assert_eq!(query_obs.comm.sum(), report.comm);
        assert_eq!(query_obs.client_decrypt.sum(), report.client_decrypt);
        assert_eq!(
            query_obs.client_encrypt.count() as usize,
            2,
            "one sample per batch (4 rows / batch_size 2)"
        );
        assert_eq!(out.retry.attempts, 1);
        assert_eq!(query_obs.retry_attempts.get(), 1);
        assert_eq!(query_obs.retry_failures.get(), 0);

        // The shared collector saw both ends: reconstructing from it
        // yields the full four-component decomposition.
        let merged = PhaseTotals::from_spans(shared.spans().iter());
        assert_eq!(merged.client_encrypt, report.client_encrypt);
        assert_eq!(merged.comm, report.comm);
        assert_eq!(merged.client_decrypt, report.client_decrypt);
        assert_eq!(merged.server_compute, stats.compute);
    }

    #[test]
    fn retryable_taxonomy() {
        assert!(retryable(&ProtocolError::Transport(
            TransportError::Disconnected
        )));
        assert!(retryable(&ProtocolError::Transport(
            TransportError::TimedOut
        )));
        assert!(retryable(&ProtocolError::Transport(TransportError::Io(
            "connection refused".into()
        ))));
        assert!(!retryable(&ProtocolError::Config("bad".into())));
        assert!(!retryable(&ProtocolError::Transport(
            TransportError::Malformed("bad magic")
        )));
        assert!(!retryable(&ProtocolError::UnexpectedMessage("x")));
    }
}
