//! Fault-tolerant TCP query client.
//!
//! [`run_tcp_query`] executes one complete private selected-sum query
//! against a listening [`TcpServer`](crate::TcpServer): connect, size
//! discovery, encrypted index stream, product decryption — all under
//! configurable read/write deadlines. [`run_tcp_query_with_retry`] wraps
//! it in a [`RetryPolicy`]: any *transport*-level failure (refused
//! connect, disconnect mid-query, expired deadline) is retried from
//! scratch after an exponentially backed-off, deterministically
//! jittered sleep.
//!
//! **Why re-issuing a whole query is safe:** the protocol is stateless
//! across sessions — the server keeps no record of a client between
//! connections, and a fresh attempt re-encrypts the index vector under
//! fresh randomness, so a retried query is indistinguishable from a new
//! client and returns the same sum. Protocol-level errors (a malformed
//! reply, a key mismatch, an oracle disagreement) are **not** retried:
//! they signal a bug or an attack, not weather.

use std::sync::Arc;
use std::time::Duration;

use pps_obs::{Collector, Phase, RingCollector, SpanRecord, TeeCollector, Tracer};
use pps_transport::{
    RetryPolicy, RetryStats, TcpWire, TimedWire, TrafficStats, TransportError, Wire,
};
use rand::RngCore;

use crate::client::{IndexSource, SumClient};
use crate::data::Selection;
use crate::error::ProtocolError;
use crate::messages::{SizeReply, SizeRequest};
use crate::obs::{PhaseTotals, QueryObs};
use crate::report::{RunReport, Variant};

/// Configuration for a TCP query.
#[derive(Clone, Debug)]
pub struct TcpQueryConfig {
    /// Indices per batch message (the paper's §3.2 experiments use 100).
    pub batch_size: usize,
    /// Worker threads for client-side index encryption (1 = the
    /// sequential paper-fidelity path).
    pub client_threads: usize,
    /// Socket read deadline; `None` blocks forever.
    pub read_timeout: Option<Duration>,
    /// Socket write deadline.
    pub write_timeout: Option<Duration>,
    /// Retry policy applied by [`run_tcp_query_with_retry`] to the
    /// connect and to full-query re-issue.
    pub retry: RetryPolicy,
}

impl Default for TcpQueryConfig {
    /// Batch 100, single-threaded encryption, 30 s deadlines, default
    /// retry policy.
    fn default() -> Self {
        TcpQueryConfig {
            batch_size: 100,
            client_threads: 1,
            read_timeout: Some(Duration::from_secs(30)),
            write_timeout: Some(Duration::from_secs(30)),
            retry: RetryPolicy::default(),
        }
    }
}

/// Result of a TCP query, including what the retry loop did.
#[derive(Clone, Debug)]
pub struct TcpQueryOutcome {
    /// The private sum.
    pub sum: u128,
    /// Database size discovered from the server.
    pub n: usize,
    /// Rows selected.
    pub selected: usize,
    /// Traffic counters of the **successful** attempt.
    pub traffic: TrafficStats,
    /// Attempts made and backoffs slept (one attempt, no delays, when
    /// the first try succeeded).
    pub retry: RetryStats,
}

/// Whether a failure is worth retrying: transient transport weather
/// (peer gone, deadline expired, OS-level socket error) yes; protocol,
/// crypto, and configuration errors no.
fn retryable(e: &ProtocolError) -> bool {
    matches!(
        e,
        ProtocolError::Transport(
            TransportError::Disconnected | TransportError::TimedOut | TransportError::Io(_)
        )
    )
}

/// One query attempt: connect, discover the size, stream the encrypted
/// selection, decrypt the product.
fn attempt(
    addr: &str,
    client: &SumClient,
    select: &[usize],
    config: &TcpQueryConfig,
    rng: &mut dyn RngCore,
) -> Result<(u128, usize, TrafficStats), ProtocolError> {
    let mut wire = TcpWire::connect(addr)?;
    wire.set_read_timeout(config.read_timeout)?;
    wire.set_write_timeout(config.write_timeout)?;

    wire.send(SizeRequest.encode()?)?;
    let n = SizeReply::decode(&wire.recv()?)?.n as usize;
    let selection = Selection::from_indices(n, select)?;

    let mut source = if config.client_threads > 1 {
        IndexSource::FreshParallel {
            rng,
            threads: config.client_threads,
        }
    } else {
        IndexSource::Fresh(rng)
    };
    client.send_query(&mut wire, &selection, config.batch_size, &mut source)?;
    let (sum, _) = client.receive_result(&mut wire)?;
    let sum = sum
        .to_u128()
        .ok_or_else(|| ProtocolError::Config("sum exceeds 128 bits".into()))?;
    Ok((sum, n, wire.stats()))
}

/// Runs one private selected-sum query over TCP, without retry.
///
/// # Errors
/// Connection, transport, and protocol failures.
pub fn run_tcp_query(
    addr: &str,
    client: &SumClient,
    select: &[usize],
    config: &TcpQueryConfig,
    rng: &mut dyn RngCore,
) -> Result<TcpQueryOutcome, ProtocolError> {
    let (sum, n, traffic) = attempt(addr, client, select, config, rng)?;
    Ok(TcpQueryOutcome {
        sum,
        n,
        selected: select.len(),
        traffic,
        retry: RetryStats {
            attempts: 1,
            delays: Vec::new(),
        },
    })
}

/// Runs one private selected-sum query over TCP, retrying the **whole
/// query** (fresh connection, fresh encryption) on transient transport
/// failures according to `config.retry`. Safe because a fresh query is
/// idempotent (see the module docs).
///
/// # Errors
/// The final attempt's error when every attempt fails, or immediately
/// on a non-retryable (protocol/crypto/config) failure.
pub fn run_tcp_query_with_retry(
    addr: &str,
    client: &SumClient,
    select: &[usize],
    config: &TcpQueryConfig,
    rng: &mut dyn RngCore,
) -> Result<TcpQueryOutcome, ProtocolError> {
    let mut retry = RetryStats::default();
    loop {
        retry.attempts += 1;
        match attempt(addr, client, select, config, rng) {
            Ok((sum, n, traffic)) => {
                return Ok(TcpQueryOutcome {
                    sum,
                    n,
                    selected: select.len(),
                    traffic,
                    retry,
                })
            }
            Err(e) => {
                if !retryable(&e) || retry.attempts >= config.retry.max_attempts.max(1) {
                    return Err(e);
                }
                let delay = config.retry.delay_for(retry.attempts - 1, rng);
                retry.delays.push(delay);
                std::thread::sleep(delay);
            }
        }
    }
}

/// One *instrumented* query attempt: like [`attempt`], but over a
/// [`TimedWire`] (so time blocked on the socket is measured), with wire
/// byte counters attached, and — on success — the client-side phases
/// recorded into `obs` histograms and emitted as spans through `tracer`:
/// one `encrypt_batch` span per batch (tagged [`Phase::ClientEncrypt`]
/// with its batch id), one `wire_blocked` span ([`Phase::Comm`]), one
/// `decrypt` span ([`Phase::ClientDecrypt`]).
fn attempt_observed(
    addr: &str,
    client: &SumClient,
    select: &[usize],
    config: &TcpQueryConfig,
    rng: &mut dyn RngCore,
    obs: &QueryObs,
    tracer: &Tracer,
) -> Result<(u128, usize, TrafficStats), ProtocolError> {
    let mut inner = TcpWire::connect(addr)?;
    inner.set_metrics(obs.wire.clone());
    inner.set_read_timeout(config.read_timeout)?;
    inner.set_write_timeout(config.write_timeout)?;
    let mut wire = TimedWire::new(inner);

    wire.send(SizeRequest.encode()?)?;
    let n = SizeReply::decode(&wire.recv()?)?.n as usize;
    let selection = Selection::from_indices(n, select)?;

    let mut source = if config.client_threads > 1 {
        IndexSource::FreshParallel {
            rng,
            threads: config.client_threads,
        }
    } else {
        IndexSource::Fresh(rng)
    };
    let sent = client.send_query(&mut wire, &selection, config.batch_size, &mut source)?;
    let (sum, decrypt) = client.receive_result(&mut wire)?;
    let comm = wire.blocked();

    // Record the paper's client-side phases from the same Durations the
    // span bridge will sum, so a /metrics scrape and a reconstructed
    // RunReport agree exactly (not just within timer noise).
    for (batch, elapsed) in sent.per_batch_encrypt.iter().enumerate() {
        obs.client_encrypt.record_duration(*elapsed);
        let end_ns = tracer.now_ns();
        let dur_ns = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        tracer.record_span(SpanRecord {
            name: "encrypt_batch".to_string(),
            phase: Some(Phase::ClientEncrypt),
            session: None,
            batch: Some(batch as u64),
            start_ns: end_ns.saturating_sub(dur_ns),
            end_ns,
        });
    }
    obs.comm.record_duration(comm);
    tracer.record_phase_total("wire_blocked", Phase::Comm, None, comm);
    obs.client_decrypt.record_duration(decrypt);
    tracer.record_phase_total("decrypt", Phase::ClientDecrypt, None, decrypt);

    let sum = sum
        .to_u128()
        .ok_or_else(|| ProtocolError::Config("sum exceeds 128 bits".into()))?;
    Ok((sum, n, wire.get_ref().stats()))
}

/// Runs one private selected-sum query over TCP with full telemetry:
/// retries as [`run_tcp_query_with_retry`] does, records the paper's
/// client-side phase decomposition into `obs`, and reconstructs a
/// [`RunReport`] from the spans of the successful attempt via
/// [`PhaseTotals`].
///
/// The report's `client_encrypt`, `comm`, and `client_decrypt` come
/// from this client's own spans. `server_compute` is zero unless the
/// collector behind `obs` also receives the server's spans (loopback
/// deployments sharing a collector get all four components; across a
/// real network the server's compute is invisible to the client and is
/// folded into `comm`, which measures total time blocked on the wire).
///
/// # Errors
/// As [`run_tcp_query_with_retry`].
pub fn run_tcp_query_observed(
    addr: &str,
    client: &SumClient,
    select: &[usize],
    config: &TcpQueryConfig,
    rng: &mut dyn RngCore,
    obs: &QueryObs,
) -> Result<(TcpQueryOutcome, RunReport), ProtocolError> {
    // Private ring for the span→report bridge, teed into the caller's
    // collector so shared-collector deployments see the same spans.
    let ring = Arc::new(RingCollector::new(4096));
    let tracer = Tracer::new(Arc::new(TeeCollector::new(vec![
        Arc::clone(&ring) as Arc<dyn Collector>,
        Arc::clone(obs.collector()),
    ])));
    let mut retry = RetryStats::default();
    loop {
        retry.attempts += 1;
        obs.retry_attempts.inc();
        match attempt_observed(addr, client, select, config, rng, obs, &tracer) {
            Ok((sum, n, traffic)) => {
                let mut report = RunReport {
                    variant: Variant::Batched,
                    n,
                    selected: select.len(),
                    key_bits: client.keypair().public.key_bits(),
                    link: format!("tcp:{addr}"),
                    client_offline: Duration::ZERO,
                    client_encrypt: Duration::ZERO,
                    server_compute: Duration::ZERO,
                    comm: Duration::ZERO,
                    client_decrypt: Duration::ZERO,
                    pipelined_total: None,
                    bytes_to_server: traffic.payload_bytes_sent,
                    bytes_to_client: traffic.payload_bytes_received,
                    messages: traffic.messages_sent + traffic.messages_received,
                    result: sum,
                };
                PhaseTotals::from_spans(ring.spans().iter()).apply(&mut report);
                let outcome = TcpQueryOutcome {
                    sum,
                    n,
                    selected: select.len(),
                    traffic,
                    retry,
                };
                return Ok((outcome, report));
            }
            Err(e) => {
                let give_up = !retryable(&e) || retry.attempts >= config.retry.max_attempts.max(1);
                if retryable(&e) {
                    obs.retry_failures.inc();
                }
                if give_up {
                    return Err(e);
                }
                let delay = config.retry.delay_for(retry.attempts - 1, rng);
                retry.delays.push(delay);
                std::thread::sleep(delay);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::Database;
    use crate::server::FoldStrategy;
    use crate::tcp_server::TcpServer;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    fn serve_one(values: Vec<u64>) -> (std::net::SocketAddr, std::thread::JoinHandle<()>) {
        let db = Arc::new(Database::new(values).unwrap());
        let server = TcpServer::bind(db, "127.0.0.1:0", FoldStrategy::default()).unwrap();
        let addr = server.local_addr().unwrap();
        let t = std::thread::spawn(move || {
            server.serve(Some(1));
        });
        (addr, t)
    }

    #[test]
    fn query_round_trip() {
        let (addr, t) = serve_one(vec![10, 20, 30, 40]);
        let mut rng = StdRng::seed_from_u64(1);
        let client = SumClient::generate(128, &mut rng).unwrap();
        let out = run_tcp_query(
            &addr.to_string(),
            &client,
            &[1, 3],
            &TcpQueryConfig::default(),
            &mut rng,
        )
        .unwrap();
        assert_eq!(out.sum, 60);
        assert_eq!(out.n, 4);
        assert_eq!(out.selected, 2);
        assert_eq!(out.retry.attempts, 1);
        assert!(out.retry.delays.is_empty());
        assert!(out.traffic.payload_bytes_sent > 0);
        t.join().unwrap();
    }

    #[test]
    fn dead_port_fails_without_retry_and_with_exhausted_retry() {
        let mut rng = StdRng::seed_from_u64(2);
        let client = SumClient::generate(128, &mut rng).unwrap();
        let config = TcpQueryConfig {
            retry: RetryPolicy {
                max_attempts: 2,
                base_delay: Duration::from_millis(1),
                max_delay: Duration::from_millis(2),
            },
            ..TcpQueryConfig::default()
        };
        let err = run_tcp_query("127.0.0.1:1", &client, &[0], &config, &mut rng).unwrap_err();
        assert!(matches!(
            err,
            ProtocolError::Transport(TransportError::Io(_))
        ));
        let err =
            run_tcp_query_with_retry("127.0.0.1:1", &client, &[0], &config, &mut rng).unwrap_err();
        assert!(matches!(
            err,
            ProtocolError::Transport(TransportError::Io(_))
        ));
    }

    #[test]
    fn config_errors_are_not_retried() {
        // An out-of-range selection is discovered after size discovery;
        // retrying it would loop uselessly, so it must fail fast.
        let (addr, t) = serve_one(vec![1, 2]);
        let mut rng = StdRng::seed_from_u64(3);
        let client = SumClient::generate(128, &mut rng).unwrap();
        let config = TcpQueryConfig::default();
        let err = run_tcp_query_with_retry(&addr.to_string(), &client, &[7], &config, &mut rng)
            .unwrap_err();
        assert!(matches!(err, ProtocolError::Config(_)));
        // The server session saw a disconnect, not a second attempt;
        // serve(Some(1)) returns regardless.
        t.join().unwrap();
    }

    #[test]
    fn observed_query_bridges_spans_into_a_report() {
        use crate::obs::ServerObs;
        use pps_obs::Registry;

        let registry = Arc::new(Registry::new());
        // One collector shared by both ends: the loopback deployment
        // where the bridge can see all four phases.
        let shared = Arc::new(RingCollector::new(256));
        let server_obs = ServerObs::with_tracer(
            Arc::clone(&registry),
            Tracer::new(Arc::clone(&shared) as Arc<dyn Collector>),
        );
        let query_obs = QueryObs::with_collector(
            Arc::clone(&registry),
            Arc::clone(&shared) as Arc<dyn Collector>,
        );

        let db = Arc::new(Database::new(vec![5, 6, 7, 8]).unwrap());
        let server = TcpServer::bind(db, "127.0.0.1:0", FoldStrategy::default())
            .unwrap()
            .with_observability(server_obs);
        let addr = server.local_addr().unwrap();
        let server_thread = std::thread::spawn(move || server.serve(Some(1)));

        let mut rng = StdRng::seed_from_u64(17);
        let client = SumClient::generate(128, &mut rng).unwrap();
        let config = TcpQueryConfig {
            batch_size: 2,
            ..TcpQueryConfig::default()
        };
        let (out, report) = run_tcp_query_observed(
            &addr.to_string(),
            &client,
            &[0, 3],
            &config,
            &mut rng,
            &query_obs,
        )
        .unwrap();
        let stats = server_thread.join().unwrap();

        assert_eq!(out.sum, 13);
        assert_eq!(report.result, 13);
        assert_eq!(report.n, 4);
        assert_eq!(report.selected, 2);
        assert!(report.link.starts_with("tcp:127.0.0.1:"));
        assert!(report.client_encrypt > Duration::ZERO);
        assert!(report.comm > Duration::ZERO);
        assert!(report.client_decrypt > Duration::ZERO);
        // The client cannot see across the wire, so its own report has
        // no server component...
        assert_eq!(report.server_compute, Duration::ZERO);
        // ...but the client's wire-blocked time necessarily covers it.
        assert!(report.comm >= stats.compute);

        // The histograms carry the exact same durations the report does.
        assert_eq!(query_obs.client_encrypt.sum(), report.client_encrypt);
        assert_eq!(query_obs.comm.sum(), report.comm);
        assert_eq!(query_obs.client_decrypt.sum(), report.client_decrypt);
        assert_eq!(
            query_obs.client_encrypt.count() as usize,
            2,
            "one sample per batch (4 rows / batch_size 2)"
        );
        assert_eq!(out.retry.attempts, 1);
        assert_eq!(query_obs.retry_attempts.get(), 1);
        assert_eq!(query_obs.retry_failures.get(), 0);

        // The shared collector saw both ends: reconstructing from it
        // yields the full four-component decomposition.
        let merged = PhaseTotals::from_spans(shared.spans().iter());
        assert_eq!(merged.client_encrypt, report.client_encrypt);
        assert_eq!(merged.comm, report.comm);
        assert_eq!(merged.client_decrypt, report.client_decrypt);
        assert_eq!(merged.server_compute, stats.compute);
    }

    #[test]
    fn retryable_taxonomy() {
        assert!(retryable(&ProtocolError::Transport(
            TransportError::Disconnected
        )));
        assert!(retryable(&ProtocolError::Transport(
            TransportError::TimedOut
        )));
        assert!(retryable(&ProtocolError::Transport(TransportError::Io(
            "connection refused".into()
        ))));
        assert!(!retryable(&ProtocolError::Config("bad".into())));
        assert!(!retryable(&ProtocolError::Transport(
            TransportError::Malformed("bad magic")
        )));
        assert!(!retryable(&ProtocolError::UnexpectedMessage("x")));
    }
}
