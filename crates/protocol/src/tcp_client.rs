//! Fault-tolerant TCP query client.
//!
//! [`run_tcp_query`] executes one complete private selected-sum query
//! against a listening [`TcpServer`](crate::TcpServer): connect, size
//! discovery, encrypted index stream, product decryption — all under
//! configurable read/write deadlines. [`run_tcp_query_with_retry`] wraps
//! it in a [`RetryPolicy`]: any *transport*-level failure (refused
//! connect, disconnect mid-query, expired deadline) is retried from
//! scratch after an exponentially backed-off, deterministically
//! jittered sleep.
//!
//! **Why re-issuing a whole query is safe:** the protocol is stateless
//! across sessions — the server keeps no record of a client between
//! connections, and a fresh attempt re-encrypts the index vector under
//! fresh randomness, so a retried query is indistinguishable from a new
//! client and returns the same sum. Protocol-level errors (a malformed
//! reply, a key mismatch, an oracle disagreement) are **not** retried:
//! they signal a bug or an attack, not weather.

use std::time::Duration;

use pps_transport::{RetryPolicy, RetryStats, TcpWire, TrafficStats, TransportError, Wire};
use rand::RngCore;

use crate::client::{IndexSource, SumClient};
use crate::data::Selection;
use crate::error::ProtocolError;
use crate::messages::{SizeReply, SizeRequest};

/// Configuration for a TCP query.
#[derive(Clone, Debug)]
pub struct TcpQueryConfig {
    /// Indices per batch message (the paper's §3.2 experiments use 100).
    pub batch_size: usize,
    /// Worker threads for client-side index encryption (1 = the
    /// sequential paper-fidelity path).
    pub client_threads: usize,
    /// Socket read deadline; `None` blocks forever.
    pub read_timeout: Option<Duration>,
    /// Socket write deadline.
    pub write_timeout: Option<Duration>,
    /// Retry policy applied by [`run_tcp_query_with_retry`] to the
    /// connect and to full-query re-issue.
    pub retry: RetryPolicy,
}

impl Default for TcpQueryConfig {
    /// Batch 100, single-threaded encryption, 30 s deadlines, default
    /// retry policy.
    fn default() -> Self {
        TcpQueryConfig {
            batch_size: 100,
            client_threads: 1,
            read_timeout: Some(Duration::from_secs(30)),
            write_timeout: Some(Duration::from_secs(30)),
            retry: RetryPolicy::default(),
        }
    }
}

/// Result of a TCP query, including what the retry loop did.
#[derive(Clone, Debug)]
pub struct TcpQueryOutcome {
    /// The private sum.
    pub sum: u128,
    /// Database size discovered from the server.
    pub n: usize,
    /// Rows selected.
    pub selected: usize,
    /// Traffic counters of the **successful** attempt.
    pub traffic: TrafficStats,
    /// Attempts made and backoffs slept (one attempt, no delays, when
    /// the first try succeeded).
    pub retry: RetryStats,
}

/// Whether a failure is worth retrying: transient transport weather
/// (peer gone, deadline expired, OS-level socket error) yes; protocol,
/// crypto, and configuration errors no.
fn retryable(e: &ProtocolError) -> bool {
    matches!(
        e,
        ProtocolError::Transport(
            TransportError::Disconnected | TransportError::TimedOut | TransportError::Io(_)
        )
    )
}

/// One query attempt: connect, discover the size, stream the encrypted
/// selection, decrypt the product.
fn attempt(
    addr: &str,
    client: &SumClient,
    select: &[usize],
    config: &TcpQueryConfig,
    rng: &mut dyn RngCore,
) -> Result<(u128, usize, TrafficStats), ProtocolError> {
    let mut wire = TcpWire::connect(addr)?;
    wire.set_read_timeout(config.read_timeout)?;
    wire.set_write_timeout(config.write_timeout)?;

    wire.send(SizeRequest.encode()?)?;
    let n = SizeReply::decode(&wire.recv()?)?.n as usize;
    let selection = Selection::from_indices(n, select)?;

    let mut source = if config.client_threads > 1 {
        IndexSource::FreshParallel {
            rng,
            threads: config.client_threads,
        }
    } else {
        IndexSource::Fresh(rng)
    };
    client.send_query(&mut wire, &selection, config.batch_size, &mut source)?;
    let (sum, _) = client.receive_result(&mut wire)?;
    let sum = sum
        .to_u128()
        .ok_or_else(|| ProtocolError::Config("sum exceeds 128 bits".into()))?;
    Ok((sum, n, wire.stats()))
}

/// Runs one private selected-sum query over TCP, without retry.
///
/// # Errors
/// Connection, transport, and protocol failures.
pub fn run_tcp_query(
    addr: &str,
    client: &SumClient,
    select: &[usize],
    config: &TcpQueryConfig,
    rng: &mut dyn RngCore,
) -> Result<TcpQueryOutcome, ProtocolError> {
    let (sum, n, traffic) = attempt(addr, client, select, config, rng)?;
    Ok(TcpQueryOutcome {
        sum,
        n,
        selected: select.len(),
        traffic,
        retry: RetryStats {
            attempts: 1,
            delays: Vec::new(),
        },
    })
}

/// Runs one private selected-sum query over TCP, retrying the **whole
/// query** (fresh connection, fresh encryption) on transient transport
/// failures according to `config.retry`. Safe because a fresh query is
/// idempotent (see the module docs).
///
/// # Errors
/// The final attempt's error when every attempt fails, or immediately
/// on a non-retryable (protocol/crypto/config) failure.
pub fn run_tcp_query_with_retry(
    addr: &str,
    client: &SumClient,
    select: &[usize],
    config: &TcpQueryConfig,
    rng: &mut dyn RngCore,
) -> Result<TcpQueryOutcome, ProtocolError> {
    let mut retry = RetryStats::default();
    loop {
        retry.attempts += 1;
        match attempt(addr, client, select, config, rng) {
            Ok((sum, n, traffic)) => {
                return Ok(TcpQueryOutcome {
                    sum,
                    n,
                    selected: select.len(),
                    traffic,
                    retry,
                })
            }
            Err(e) => {
                if !retryable(&e) || retry.attempts >= config.retry.max_attempts.max(1) {
                    return Err(e);
                }
                let delay = config.retry.delay_for(retry.attempts - 1, rng);
                retry.delays.push(delay);
                std::thread::sleep(delay);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::Database;
    use crate::server::FoldStrategy;
    use crate::tcp_server::TcpServer;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    fn serve_one(values: Vec<u64>) -> (std::net::SocketAddr, std::thread::JoinHandle<()>) {
        let db = Arc::new(Database::new(values).unwrap());
        let server = TcpServer::bind(db, "127.0.0.1:0", FoldStrategy::default()).unwrap();
        let addr = server.local_addr().unwrap();
        let t = std::thread::spawn(move || {
            server.serve(Some(1));
        });
        (addr, t)
    }

    #[test]
    fn query_round_trip() {
        let (addr, t) = serve_one(vec![10, 20, 30, 40]);
        let mut rng = StdRng::seed_from_u64(1);
        let client = SumClient::generate(128, &mut rng).unwrap();
        let out = run_tcp_query(
            &addr.to_string(),
            &client,
            &[1, 3],
            &TcpQueryConfig::default(),
            &mut rng,
        )
        .unwrap();
        assert_eq!(out.sum, 60);
        assert_eq!(out.n, 4);
        assert_eq!(out.selected, 2);
        assert_eq!(out.retry.attempts, 1);
        assert!(out.retry.delays.is_empty());
        assert!(out.traffic.payload_bytes_sent > 0);
        t.join().unwrap();
    }

    #[test]
    fn dead_port_fails_without_retry_and_with_exhausted_retry() {
        let mut rng = StdRng::seed_from_u64(2);
        let client = SumClient::generate(128, &mut rng).unwrap();
        let config = TcpQueryConfig {
            retry: RetryPolicy {
                max_attempts: 2,
                base_delay: Duration::from_millis(1),
                max_delay: Duration::from_millis(2),
            },
            ..TcpQueryConfig::default()
        };
        let err = run_tcp_query("127.0.0.1:1", &client, &[0], &config, &mut rng).unwrap_err();
        assert!(matches!(
            err,
            ProtocolError::Transport(TransportError::Io(_))
        ));
        let err =
            run_tcp_query_with_retry("127.0.0.1:1", &client, &[0], &config, &mut rng).unwrap_err();
        assert!(matches!(
            err,
            ProtocolError::Transport(TransportError::Io(_))
        ));
    }

    #[test]
    fn config_errors_are_not_retried() {
        // An out-of-range selection is discovered after size discovery;
        // retrying it would loop uselessly, so it must fail fast.
        let (addr, t) = serve_one(vec![1, 2]);
        let mut rng = StdRng::seed_from_u64(3);
        let client = SumClient::generate(128, &mut rng).unwrap();
        let config = TcpQueryConfig::default();
        let err = run_tcp_query_with_retry(&addr.to_string(), &client, &[7], &config, &mut rng)
            .unwrap_err();
        assert!(matches!(err, ProtocolError::Config(_)));
        // The server session saw a disconnect, not a second attempt;
        // serve(Some(1)) returns regardless.
        t.join().unwrap();
    }

    #[test]
    fn retryable_taxonomy() {
        assert!(retryable(&ProtocolError::Transport(
            TransportError::Disconnected
        )));
        assert!(retryable(&ProtocolError::Transport(TransportError::TimedOut)));
        assert!(retryable(&ProtocolError::Transport(TransportError::Io(
            "connection refused".into()
        ))));
        assert!(!retryable(&ProtocolError::Config("bad".into())));
        assert!(!retryable(&ProtocolError::Transport(
            TransportError::Malformed("bad magic")
        )));
        assert!(!retryable(&ProtocolError::UnexpectedMessage("x")));
    }
}
