//! Perturbation-based approximate private sums — the paper's stated
//! future work (§4: "methods that give up some quantifiable amount of
//! privacy in order to achieve significant performance improvements")
//! and the other branch of the field it surveys in §1 ("those that use
//! perturbation, which provide weaker privacy properties, but allow much
//! more efficient solutions").
//!
//! Mechanism: **randomized response** on the index vector. The client
//! flips each selection bit with probability `p` and sends the perturbed
//! bits *in plaintext*; the server returns the perturbed selected sum
//! `S̃` and the database total `T`; the client debiases:
//!
//! ```text
//! E[S̃] = (1 − p)·S + p·(T − S)   ⇒   Ŝ = (S̃ − p·T) / (1 − 2p)
//! ```
//!
//! Privacy is quantifiable as local differential privacy: each bit's
//! report satisfies ε-LDP with `ε = ln((1 − p)/p)`. Performance is
//! dramatic — no cryptography at all — at the price of approximation
//! error with standard deviation `≈ √(n·p(1−p))·max_x / (1 − 2p)` and a
//! weaker (plausible-deniability) privacy notion, which is exactly the
//! trade the paper proposes to investigate.

use std::time::Instant;

use pps_transport::{LinkProfile, SimLink, Wire};
use rand::Rng;
use rand::RngCore;

use crate::data::{Database, Selection};
use crate::error::ProtocolError;
use crate::messages::{PlainIndices, PlainSum};
use crate::server::ServerSession;

/// Result of one randomized-response run.
#[derive(Clone, Debug)]
pub struct PerturbedReport {
    /// Database size.
    pub n: usize,
    /// Flip probability `p`.
    pub flip_probability: f64,
    /// The per-bit local-DP parameter `ε = ln((1−p)/p)`.
    pub epsilon: f64,
    /// Debiased estimate of the selected sum.
    pub estimate: f64,
    /// True selected sum (oracle; for error reporting only).
    pub true_sum: u128,
    /// `|estimate − true| / max(true, 1)`.
    pub relative_error: f64,
    /// A-priori standard deviation of the estimator.
    pub predicted_std_dev: f64,
    /// Wall-clock client+server compute (no cryptography).
    pub compute: std::time::Duration,
    /// Simulated communication time.
    pub comm: std::time::Duration,
    /// Total bytes on the wire.
    pub bytes: usize,
}

/// Converts a local-DP budget ε into the flip probability
/// `p = 1/(1 + e^ε)`.
pub fn flip_probability_for_epsilon(epsilon: f64) -> f64 {
    1.0 / (1.0 + epsilon.exp())
}

/// Runs the randomized-response protocol: perturbed plaintext bits up,
/// perturbed sum + database total down, client-side debiasing.
///
/// `epsilon` is the per-bit local-DP budget; smaller ε = stronger
/// plausible deniability = noisier estimate. `epsilon = ∞` degenerates
/// to the non-private plain-indices baseline.
///
/// # Errors
/// Configuration and transport failures; `epsilon` must be positive and
/// finite, and the selection must be 0/1.
pub fn run_randomized_response(
    db: &Database,
    selection: &Selection,
    epsilon: f64,
    link: LinkProfile,
    rng: &mut dyn RngCore,
) -> Result<PerturbedReport, ProtocolError> {
    if selection.len() != db.len() {
        return Err(ProtocolError::Config(
            "selection/database length mismatch".into(),
        ));
    }
    if selection.max_weight() > 1 {
        return Err(ProtocolError::Config(
            "randomized response needs a 0/1 selection".into(),
        ));
    }
    if !(epsilon.is_finite() && epsilon > 0.0) {
        return Err(ProtocolError::Config(
            "epsilon must be positive and finite".into(),
        ));
    }
    let p = flip_probability_for_epsilon(epsilon);

    let (mut cw, mut sw) = SimLink::pair(link);

    // --- Client: perturb and send plaintext indices. ---
    let start = Instant::now();
    let perturbed: Vec<u64> = selection
        .weights()
        .iter()
        .enumerate()
        .filter_map(|(i, &w)| {
            let bit = (w == 1) ^ (rng.gen::<f64>() < p);
            bit.then_some(i as u64)
        })
        .collect();
    let mut compute = start.elapsed();
    cw.send(PlainIndices { indices: perturbed }.encode()?)?;

    // --- Server: perturbed selected sum, plus the database total the
    // debiasing needs. ---
    let mut server = ServerSession::new(db);
    let frame = sw.recv()?;
    let start = Instant::now();
    let reply = server
        .on_frame(&frame)?
        .ok_or(ProtocolError::UnexpectedMessage("server produced no sum"))?;
    let total: u128 = db.values().iter().map(|&v| v as u128).sum();
    compute += start.elapsed();
    sw.send(reply)?;
    sw.send(PlainSum { sum: total }.encode()?)?;

    // --- Client: debias. ---
    let perturbed_sum = PlainSum::decode(&cw.recv()?)?.sum;
    let total = PlainSum::decode(&cw.recv()?)?.sum;
    let start = Instant::now();
    let estimate = (perturbed_sum as f64 - p * total as f64) / (1.0 - 2.0 * p);
    compute += start.elapsed();

    let true_sum = db.oracle_sum(selection)?;
    let relative_error = (estimate - true_sum as f64).abs() / (true_sum.max(1) as f64);
    // Each bit flips independently; a flip of bit i moves the perturbed
    // sum by ±x_i, so Var(S̃) = p(1−p)·Σ x_i², scaled by the debiasing
    // factor 1/(1−2p).
    let var: f64 = db
        .values()
        .iter()
        .map(|&x| (x as f64) * (x as f64))
        .sum::<f64>()
        * p
        * (1.0 - p)
        / ((1.0 - 2.0 * p) * (1.0 - 2.0 * p));
    let stats = cw.stats();
    Ok(PerturbedReport {
        n: db.len(),
        flip_probability: p,
        epsilon,
        estimate,
        true_sum,
        relative_error,
        predicted_std_dev: var.sqrt(),
        compute,
        comm: cw.virtual_elapsed(),
        bytes: stats.payload_bytes_sent + stats.payload_bytes_received,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(n: usize, seed: u64) -> (Database, Selection, StdRng) {
        let mut rng = StdRng::seed_from_u64(seed);
        let db = Database::random(n, 1000, &mut rng).unwrap();
        let sel = Selection::random(n, 0.5, &mut rng).unwrap();
        (db, sel, rng)
    }

    #[test]
    fn epsilon_to_probability() {
        // ε → ∞: never flip; ε = 0 would mean p = 1/2 (pure noise).
        assert!(flip_probability_for_epsilon(20.0) < 1e-8);
        assert!((flip_probability_for_epsilon(0.0) - 0.5).abs() < 1e-12);
        // ln(3) gives the classic warner p = 1/4.
        assert!((flip_probability_for_epsilon(3.0f64.ln()) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn estimator_is_unbiased_over_runs() {
        let (db, sel, mut rng) = setup(400, 42);
        let true_sum = db.oracle_sum(&sel).unwrap() as f64;
        let runs = 30;
        let mean_estimate: f64 = (0..runs)
            .map(|_| {
                run_randomized_response(&db, &sel, 2.0, LinkProfile::gigabit_lan(), &mut rng)
                    .unwrap()
                    .estimate
            })
            .sum::<f64>()
            / runs as f64;
        // The mean of 30 estimates should land within ~3 predicted
        // standard errors of the truth.
        let one =
            run_randomized_response(&db, &sel, 2.0, LinkProfile::gigabit_lan(), &mut rng).unwrap();
        let se = one.predicted_std_dev / (runs as f64).sqrt();
        assert!(
            (mean_estimate - true_sum).abs() < 3.5 * se,
            "mean {mean_estimate} vs true {true_sum} (se {se})"
        );
    }

    #[test]
    fn high_epsilon_is_nearly_exact() {
        let (db, sel, mut rng) = setup(300, 43);
        let r =
            run_randomized_response(&db, &sel, 15.0, LinkProfile::gigabit_lan(), &mut rng).unwrap();
        // p ≈ 3e-7: a flip among 300 bits is overwhelmingly unlikely.
        assert!(r.relative_error < 1e-3, "rel err {}", r.relative_error);
    }

    #[test]
    fn lower_epsilon_means_more_predicted_noise() {
        let (db, sel, mut rng) = setup(200, 44);
        let tight =
            run_randomized_response(&db, &sel, 4.0, LinkProfile::gigabit_lan(), &mut rng).unwrap();
        let loose =
            run_randomized_response(&db, &sel, 0.5, LinkProfile::gigabit_lan(), &mut rng).unwrap();
        assert!(loose.predicted_std_dev > 3.0 * tight.predicted_std_dev);
        assert!(loose.flip_probability > tight.flip_probability);
    }

    #[test]
    fn vastly_cheaper_than_crypto() {
        // The whole point of the trade: no modular exponentiation.
        let (db, sel, mut rng) = setup(300, 45);
        let r =
            run_randomized_response(&db, &sel, 1.0, LinkProfile::gigabit_lan(), &mut rng).unwrap();
        assert!(r.compute.as_millis() < 50, "compute {:?}", r.compute);
        // Bytes: 8 per (perturbed) index + two sums, vs 64+ per index for
        // Paillier at the smallest supported key.
        assert!(r.bytes < 16 * db.len() + 64);
    }

    #[test]
    fn invalid_configs_rejected() {
        let (db, sel, mut rng) = setup(10, 46);
        for eps in [0.0, -1.0, f64::INFINITY, f64::NAN] {
            assert!(
                run_randomized_response(&db, &sel, eps, LinkProfile::gigabit_lan(), &mut rng)
                    .is_err()
            );
        }
        let weighted = Selection::weighted(vec![2; 10]);
        assert!(
            run_randomized_response(&db, &weighted, 1.0, LinkProfile::gigabit_lan(), &mut rng)
                .is_err()
        );
        let short = Selection::from_bits(&[true; 3]);
        assert!(
            run_randomized_response(&db, &short, 1.0, LinkProfile::gigabit_lan(), &mut rng)
                .is_err()
        );
    }
}
