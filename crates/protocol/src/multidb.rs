//! Multiple distributed databases — the extension the paper sketches in
//! §1 ("this protocol … can easily be extended to work for multiple
//! distributed databases").
//!
//! One client queries `k` servers, each holding a horizontal partition of
//! the logical database. Two flavors:
//!
//! * [`run_multidb`] — the client runs the single-server protocol against
//!   each partition and adds the partial sums. Client privacy holds
//!   against every server, but the client learns the **per-partition**
//!   sums (acceptable when partitions are themselves aggregates, e.g.
//!   one hospital each).
//! * [`run_multidb_blinded`] — servers blind their partial sums with
//!   correlated randomness derived from **pairwise shared seeds**
//!   (no coordinator, no server↔server traffic at query time): server `i`
//!   adds `R_i = Σ_{j>i} r_ij − Σ_{j<i} r_ji (mod M)`, so `Σ R_i ≡ 0
//!   (mod M)` and the client's combined total is exact while each
//!   individual decryption is uniformly blinded — the client learns only
//!   the cross-database total.

use std::time::Duration;

use pps_bignum::Uint;
use pps_crypto::CtrPrg;
use pps_transport::{LinkProfile, SimLink, Wire};
use rand::RngCore;

use crate::client::{IndexSource, SumClient};
use crate::data::{check_message_space, Database, Selection};
use crate::error::ProtocolError;
use crate::report::{RunReport, Variant};
use crate::server::ServerSession;

/// Narrowest key the blinded flavors accept: the blinding modulus is
/// `M = 2^(key_bits − 2)`, and below this floor `M` has no room for any
/// actual sum (and the subtraction itself would underflow at 0/1 bits).
pub const MIN_BLINDING_KEY_BITS: usize = 16;

/// One partition: a server's database plus the client's selection over it.
pub struct Partition {
    /// The server's rows.
    pub db: Database,
    /// The client's weights for those rows.
    pub selection: Selection,
}

/// Derives the blinding value shared by servers `i < j` from their pair
/// seed: both endpoints compute the identical `r_ij ∈ [0, M)`.
///
/// # Errors
/// Propagates bignum sampling failures (a zero modulus).
pub fn pair_blinding(seed: &[u8], m: &Uint) -> Result<Uint, ProtocolError> {
    let mut prg = CtrPrg::new(seed);
    Ok(Uint::random_below(&mut prg, m).map_err(pps_crypto::CryptoError::from)?)
}

/// Computes one worker's net blinding from the seed lists it was handed:
/// shares derived from `seeds_add` are added, shares from `seeds_sub`
/// subtracted (mod `M`). This is the wire-facing flavor of
/// [`server_blinding`] — a networked shard receives exactly its own two
/// lists in the `ShardHello` handshake and never sees the full pairwise
/// matrix.
///
/// # Errors
/// Propagates bignum sampling/arithmetic failures.
pub fn leg_blinding(
    seeds_add: &[Vec<u8>],
    seeds_sub: &[Vec<u8>],
    m: &Uint,
) -> Result<Uint, ProtocolError> {
    let mut r = Uint::zero();
    for seed in seeds_add {
        let share = pair_blinding(seed, m)?;
        r = r
            .mod_add(&share, m)
            .map_err(pps_crypto::CryptoError::from)?;
    }
    for seed in seeds_sub {
        let share = pair_blinding(seed, m)?;
        let neg = share.mod_neg(m).map_err(pps_crypto::CryptoError::from)?;
        r = r.mod_add(&neg, m).map_err(pps_crypto::CryptoError::from)?;
    }
    Ok(r)
}

/// Computes server `i`'s net blinding `R_i` from the full pairwise seed
/// matrix: `R_i = Σ_{j>i} r_ij − Σ_{j<i} r_ji (mod M)`.
///
/// `seeds[(i, j)]` for `i < j` is addressed as `seeds[i][j - i - 1]`.
///
/// # Errors
/// Propagates bignum sampling/arithmetic failures.
pub fn server_blinding(
    i: usize,
    k: usize,
    seeds: &[Vec<Vec<u8>>],
    m: &Uint,
) -> Result<Uint, ProtocolError> {
    debug_assert_eq!(seeds[i].len(), k - i - 1);
    let seeds_sub: Vec<Vec<u8>> = (0..i).map(|j| seeds[j][i - j - 1].clone()).collect();
    leg_blinding(&seeds[i], &seeds_sub, m)
}

fn validate(partitions: &[Partition], client: &SumClient) -> Result<(), ProtocolError> {
    if partitions.is_empty() {
        return Err(ProtocolError::Config("need at least one partition".into()));
    }
    for (i, p) in partitions.iter().enumerate() {
        if p.selection.len() != p.db.len() {
            return Err(ProtocolError::Config(format!(
                "partition {i}: selection length {} != database length {}",
                p.selection.len(),
                p.db.len()
            )));
        }
        check_message_space(&p.db, &p.selection, client.keypair().public.n())?;
    }
    Ok(())
}

/// Runs the per-partition protocol and returns the per-partition reports
/// plus the combined total (the client sees partial sums).
///
/// # Errors
/// Configuration, crypto, and transport failures; oracle mismatches.
pub fn run_multidb(
    partitions: &[Partition],
    client: &SumClient,
    link: LinkProfile,
    rng: &mut dyn RngCore,
) -> Result<(Vec<RunReport>, u128), ProtocolError> {
    validate(partitions, client)?;
    let mut reports = Vec::with_capacity(partitions.len());
    let mut total: u128 = 0;
    for p in partitions {
        let r = crate::run::run_basic(&p.db, &p.selection, client, link.clone(), rng)?;
        total += r.result;
        reports.push(r);
    }
    Ok((reports, total))
}

/// Blinded multi-database query: the client learns **only** the combined
/// total across all `k` partitions.
///
/// Returns the aggregate report (components modeled as the max across the
/// parallel per-server legs) and the total.
///
/// # Errors
/// Configuration, crypto, and transport failures; oracle mismatch on the
/// combined total.
pub fn run_multidb_blinded(
    partitions: &[Partition],
    client: &SumClient,
    link: LinkProfile,
    rng: &mut dyn RngCore,
) -> Result<(RunReport, u128), ProtocolError> {
    validate(partitions, client)?;
    let k = partitions.len();
    let key_bits = client.keypair().public.key_bits();
    // `M = 2^(key_bits − 2)` — without a floor this subtraction
    // underflows for degenerate keys instead of failing typed.
    if key_bits < MIN_BLINDING_KEY_BITS {
        return Err(ProtocolError::Config(format!(
            "key width {key_bits} bits is too small for a blinding modulus \
             (need at least {MIN_BLINDING_KEY_BITS})"
        )));
    }
    let m = Uint::one().shl(key_bits - 2);

    // Worst-case combined total must stay below M.
    let worst: Option<u128> = partitions.iter().try_fold(0u128, |acc, p| {
        (p.db.len() as u128)
            .checked_mul(p.db.bound() as u128)
            .and_then(|v| v.checked_mul(p.selection.max_weight().max(1) as u128))
            .and_then(|v| acc.checked_add(v))
    });
    match worst.map(Uint::from_u128) {
        Some(w) if w < m => {}
        _ => {
            return Err(ProtocolError::SumOverflow {
                needed_bits: worst.map(|w| Uint::from_u128(w).bit_len()).unwrap_or(129),
                available_bits: key_bits - 2,
            })
        }
    }

    // Pairwise seeds, established once out of band (e.g. at enrollment).
    let mut seeds: Vec<Vec<Vec<u8>>> = Vec::with_capacity(k);
    for i in 0..k {
        let mut row = Vec::new();
        for _ in i + 1..k {
            let mut s = vec![0u8; 32];
            rng.fill_bytes(&mut s);
            row.push(s);
        }
        seeds.push(row);
    }

    let mut blinded_partials = Vec::with_capacity(k);
    let mut max_encrypt = Duration::ZERO;
    let mut max_server = Duration::ZERO;
    let mut max_comm = Duration::ZERO;
    let mut max_decrypt = Duration::ZERO;
    let mut bytes_up = 0usize;
    let mut bytes_down = 0usize;
    let mut messages = 0usize;
    let mut n_total = 0usize;
    let mut selected_total = 0usize;

    for (i, p) in partitions.iter().enumerate() {
        let r_i = server_blinding(i, k, &seeds, &m)?;
        let (mut cw, mut sw) = SimLink::pair(link.clone());
        let mut source = IndexSource::Fresh(rng);
        let send_stats =
            client.send_query(&mut cw, &p.selection, p.selection.len(), &mut source)?;

        let mut server = ServerSession::with_blinding(&p.db, r_i);
        crate::run::pump_server(&mut server, &mut sw)?;

        let reply = cw.recv()?;
        let (blinded, decrypt) = client.decrypt_product(&reply)?;
        blinded_partials.push(blinded.rem_of(&m).map_err(pps_crypto::CryptoError::from)?);

        let stats = cw.stats();
        bytes_up += stats.payload_bytes_sent;
        bytes_down += stats.payload_bytes_received;
        messages += stats.messages_sent + stats.messages_received;
        n_total += p.db.len();
        selected_total += p.selection.selected_count();
        max_encrypt = max_encrypt.max(send_stats.encrypt);
        max_server = max_server.max(server.stats().compute);
        max_comm = max_comm.max(cw.virtual_elapsed());
        max_decrypt = max_decrypt.max(decrypt);
    }

    // Combine mod M: the correlated blinding cancels.
    let mut total = Uint::zero();
    for b in &blinded_partials {
        total = total
            .mod_add(b, &m)
            .map_err(pps_crypto::CryptoError::from)?;
    }
    let got = total
        .to_u128()
        .ok_or_else(|| ProtocolError::Config("combined total exceeds 128 bits".into()))?;

    // Oracle check across all partitions.
    let expected: u128 = partitions
        .iter()
        .map(|p| p.db.oracle_sum(&p.selection))
        .sum::<Result<u128, _>>()?;
    if got != expected {
        return Err(ProtocolError::Config(format!(
            "multi-database result {got} disagrees with oracle {expected}"
        )));
    }

    let report = RunReport {
        variant: Variant::MultiDatabase { k },
        n: n_total,
        selected: selected_total,
        key_bits,
        link: link.name.to_string(),
        client_offline: Duration::ZERO,
        client_encrypt: max_encrypt,
        server_compute: max_server,
        comm: max_comm,
        client_decrypt: max_decrypt,
        pipelined_total: None,
        bytes_to_server: bytes_up,
        bytes_to_client: bytes_down,
        messages,
        result: got,
    };
    Ok((report, got))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn partitions(sizes: &[usize], rng: &mut StdRng) -> Vec<Partition> {
        sizes
            .iter()
            .map(|&n| {
                let db = Database::random(n, 1000, rng).unwrap();
                let selection = Selection::random(n, 0.5, rng).unwrap();
                Partition { db, selection }
            })
            .collect()
    }

    fn client(rng: &mut StdRng) -> SumClient {
        SumClient::generate(128, rng).unwrap()
    }

    #[test]
    fn plain_multidb_totals() {
        let mut rng = StdRng::seed_from_u64(500);
        let parts = partitions(&[10, 20, 15], &mut rng);
        let c = client(&mut rng);
        let (reports, total) =
            run_multidb(&parts, &c, LinkProfile::gigabit_lan(), &mut rng).unwrap();
        assert_eq!(reports.len(), 3);
        let expected: u128 = parts
            .iter()
            .map(|p| p.db.oracle_sum(&p.selection).unwrap())
            .sum();
        assert_eq!(total, expected);
        assert_eq!(
            reports.iter().map(|r| r.result).sum::<u128>(),
            expected,
            "partials add up"
        );
    }

    #[test]
    fn blinded_multidb_matches_oracle() {
        let mut rng = StdRng::seed_from_u64(501);
        let parts = partitions(&[12, 8, 20, 5], &mut rng);
        let c = client(&mut rng);
        let (report, total) =
            run_multidb_blinded(&parts, &c, LinkProfile::gigabit_lan(), &mut rng).unwrap();
        let expected: u128 = parts
            .iter()
            .map(|p| p.db.oracle_sum(&p.selection).unwrap())
            .sum();
        assert_eq!(total, expected);
        assert_eq!(report.n, 45);
        assert_eq!(report.variant, Variant::MultiDatabase { k: 4 });
    }

    #[test]
    fn blinded_partials_are_actually_blinded() {
        // Each individual decryption must differ from the true partial
        // sum with overwhelming probability (the blinding is ~126 bits).
        let mut rng = StdRng::seed_from_u64(502);
        let parts = partitions(&[10, 10], &mut rng);
        let c = client(&mut rng);

        // Re-run the internals to capture one blinded partial.
        let m = Uint::one().shl(c.keypair().public.key_bits() - 2);
        let mut seeds = vec![vec![vec![1u8; 32]], vec![]];
        seeds[0][0] = vec![7u8; 32];
        let r0 = server_blinding(0, 2, &seeds, &m).unwrap();
        let r1 = server_blinding(1, 2, &seeds, &m).unwrap();
        assert_eq!(
            r0.mod_add(&r1, &m).unwrap(),
            Uint::zero(),
            "blindings cancel"
        );
        assert!(!r0.is_zero(), "nontrivial blinding");
        let _ = parts;
    }

    #[test]
    fn single_partition_degenerates_to_basic() {
        let mut rng = StdRng::seed_from_u64(503);
        let parts = partitions(&[25], &mut rng);
        let c = client(&mut rng);
        let (_, total) =
            run_multidb_blinded(&parts, &c, LinkProfile::gigabit_lan(), &mut rng).unwrap();
        assert_eq!(total, parts[0].db.oracle_sum(&parts[0].selection).unwrap());
    }

    #[test]
    fn config_and_overflow_errors() {
        let mut rng = StdRng::seed_from_u64(504);
        let c = client(&mut rng);
        assert!(run_multidb(&[], &c, LinkProfile::gigabit_lan(), &mut rng).is_err());

        let bad = vec![Partition {
            db: Database::new(vec![1, 2, 3]).unwrap(),
            selection: Selection::from_bits(&[true]),
        }];
        assert!(run_multidb(&bad, &c, LinkProfile::gigabit_lan(), &mut rng).is_err());
        assert!(run_multidb_blinded(&bad, &c, LinkProfile::gigabit_lan(), &mut rng).is_err());

        // Combined overflow across partitions, each individually fine.
        let mut rng64 = StdRng::seed_from_u64(505);
        let small_key = SumClient::generate(64, &mut rng64).unwrap();
        let huge: Vec<Partition> = (0..4)
            .map(|_| Partition {
                db: Database::new(vec![u64::MAX / 8; 4]).unwrap(),
                selection: Selection::from_bits(&[true; 4]),
            })
            .collect();
        assert!(matches!(
            run_multidb_blinded(&huge, &small_key, LinkProfile::gigabit_lan(), &mut rng64),
            Err(ProtocolError::SumOverflow { .. })
        ));
    }

    #[test]
    fn pairwise_seeds_are_symmetric() {
        let m = Uint::one().shl(60);
        let a = pair_blinding(b"shared-seed-42", &m).unwrap();
        let b = pair_blinding(b"shared-seed-42", &m).unwrap();
        assert_eq!(a, b, "both endpoints derive the same share");
        let c = pair_blinding(b"different-seed", &m).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn blindings_cancel_for_many_servers() {
        let mut rng = StdRng::seed_from_u64(506);
        let m = Uint::one().shl(100);
        for k in [2usize, 3, 5, 8] {
            let mut seeds: Vec<Vec<Vec<u8>>> = Vec::new();
            for i in 0..k {
                let mut row = Vec::new();
                for _ in i + 1..k {
                    let mut s = vec![0u8; 32];
                    rng.fill_bytes(&mut s);
                    row.push(s);
                }
                seeds.push(row);
            }
            let mut acc = Uint::zero();
            for i in 0..k {
                let r = server_blinding(i, k, &seeds, &m).unwrap();
                acc = acc.mod_add(&r, &m).unwrap();
            }
            assert_eq!(acc, Uint::zero(), "k={k}");
        }
    }

    #[test]
    fn leg_blinding_agrees_with_matrix_addressing() {
        // The wire-facing flavor (two flat lists, what a ShardHello
        // carries) must derive the same R_i as the in-process matrix.
        let mut rng = StdRng::seed_from_u64(507);
        let m = Uint::one().shl(100);
        let k = 4;
        let mut seeds: Vec<Vec<Vec<u8>>> = Vec::new();
        for i in 0..k {
            seeds.push(
                (i + 1..k)
                    .map(|_| {
                        let mut s = vec![0u8; 32];
                        rng.fill_bytes(&mut s);
                        s
                    })
                    .collect(),
            );
        }
        for i in 0..k {
            let seeds_sub: Vec<Vec<u8>> = (0..i).map(|j| seeds[j][i - j - 1].clone()).collect();
            assert_eq!(
                leg_blinding(&seeds[i], &seeds_sub, &m).unwrap(),
                server_blinding(i, k, &seeds, &m).unwrap(),
                "i={i}"
            );
        }
    }
}
