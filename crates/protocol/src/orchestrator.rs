//! The event-driven session orchestrator ([`ServeEngine::Event`]).
//!
//! The threaded runtime spends one OS thread per connection, which caps
//! concurrency at the thread count long before it exhausts sockets or
//! CPU. This module multiplexes *every* accepted connection over two
//! small, fixed resources instead:
//!
//! * **One reactor thread** owns the nonblocking listener and every
//!   connection's [`NonBlockingWire`]. Each tick it accepts a burst of
//!   new connections, polls every socket for newly reassembled frames,
//!   flushes buffered replies, evicts deadline violators, and applies
//!   admission control (the same `Refuse`/`Queue` policies as the
//!   threaded engine, with the queue bounded and deadline-aware).
//! * **A bounded pool of `W` workers** executes the protocol steps —
//!   the CPU-heavy homomorphic folds — one job at a time. The reactor
//!   hands a worker the connection's [`SessionFlow`] plus every frame
//!   waiting in its inbox; the worker feeds them through
//!   [`SessionFlow::on_frame`] and sends the flow and the reply frames
//!   back. A connection is never on two workers at once, so session
//!   state needs no locks.
//!
//! Scheduling is round-robin over connections with ready frames, with
//! an optional per-peer cap ([`TcpServer::with_peer_fair_share`]): a
//! single chatty peer can hold at most `k` workers while other peers
//! have frames waiting.
//!
//! The wire dialect is exactly the threaded engine's — both pump the
//! same [`SessionFlow`] — so a client cannot tell the engines apart
//! (PROTOCOL.md §12), and [`AggregateStats`]/[`SessionEvent`] semantics
//! match the threaded runtime event for event.
//!
//! # Why a scan loop, not epoll
//!
//! The workspace forbids unsafe code and vendors no OS-event-queue
//! bindings, so readiness is discovered by scanning nonblocking sockets
//! (`WouldBlock` = not ready) with a ~1 ms sleep on idle ticks. That is
//! O(connections) per tick rather than O(ready), which is the right
//! trade for this repo: the experiments top out at a few thousand
//! loopback sessions, where a full scan costs microseconds.

use std::collections::{HashMap, VecDeque};
use std::net::{IpAddr, SocketAddr, TcpStream};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::Ordering;
use std::sync::mpsc::{Receiver, Sender, TryRecvError};
use std::time::{Duration, Instant};

use pps_obs::SpanGuard;
use pps_transport::{Frame, NonBlockingWire, TransportError};

use crate::error::ProtocolError;
use crate::flow::SessionFlow;
use crate::tcp_server::{
    accept_backoff, is_eviction, AggregateStats, SessionDeadline, SessionEvent, TcpServer,
    MAX_CONSECUTIVE_ACCEPT_ERRORS,
};

/// How long the reactor sleeps when a tick made no progress (no accept,
/// no frame, no result, no flush). Bounds idle CPU without adding
/// meaningful latency: a frame arriving mid-sleep waits at most this.
const IDLE_TICK: Duration = Duration::from_millis(1);

/// Most frames a connection may buffer in its inbox before the reactor
/// stops reading its socket (backpressure: TCP flow control pushes back
/// on the peer instead of the reactor buffering without bound).
const INBOX_LIMIT: usize = 64;

/// A unit of work for one worker: every frame currently waiting on one
/// connection, plus the session state machine to feed them through.
struct Job<'a> {
    conn: usize,
    flow: SessionFlow<'a>,
    frames: Vec<Frame>,
}

/// What a worker produced for one [`Job`]. `flow` is `None` exactly
/// when a protocol step panicked (the session state is poisoned and the
/// connection must be torn down as [`SessionEvent::Panicked`]).
struct JobResult<'a> {
    worker: usize,
    conn: usize,
    flow: Option<SessionFlow<'a>>,
    replies: Vec<Frame>,
    resumed_now: bool,
    outcome: Result<(), ProtocolError>,
}

/// Runs protocol steps for whatever connection the reactor assigns,
/// until the job channel closes. Panics in a step are contained here
/// (the reactor thread must never unwind).
fn worker_loop<'a>(index: usize, jobs: Receiver<Job<'a>>, results: Sender<JobResult<'a>>) {
    while let Ok(Job {
        conn,
        mut flow,
        frames,
    }) = jobs.recv()
    {
        let mut replies = Vec::new();
        let mut resumed_now = false;
        let stepped = std::panic::catch_unwind(AssertUnwindSafe(|| {
            for frame in &frames {
                let step = flow.on_frame(frame)?;
                resumed_now |= step.resumed_now;
                replies.extend(step.replies);
                if flow.is_done() {
                    break;
                }
            }
            Ok(())
        }));
        let (flow, outcome) = match stepped {
            Ok(outcome) => (Some(flow), outcome),
            Err(_panic) => (None, Ok(())),
        };
        let sent = results.send(JobResult {
            worker: index,
            conn,
            flow,
            replies,
            resumed_now,
            outcome,
        });
        if sent.is_err() {
            return; // reactor gone; nothing left to do
        }
    }
}

/// One admitted connection's reactor-side state.
struct Conn<'a> {
    peer: Option<SocketAddr>,
    wire: NonBlockingWire,
    /// Frames reassembled off the socket, waiting for a worker.
    inbox: VecDeque<Frame>,
    /// `None` while a worker holds the flow (a job is in flight).
    flow: Option<SessionFlow<'a>>,
    in_flight: bool,
    deadline: SessionDeadline,
    /// Set at accept (queue wait counts toward session latency).
    started: Instant,
    /// Last instant bytes arrived or a job was dispatched; drives the
    /// per-read idle timeout, mirroring the threaded engine's re-armed
    /// socket read timeout.
    last_activity: Instant,
    /// The peer half-closed its read side; fail the session once the
    /// inbox drains if the protocol has not completed.
    read_closed: bool,
    /// The protocol completed; flush remaining replies, then finalize.
    done: bool,
    /// Terminal error, applied once no job is in flight.
    error: Option<ProtocolError>,
    /// Records the session span on drop (at finalization), stamped with
    /// the peer's trace context just before.
    span: Option<SpanGuard>,
}

/// A connection parked in the bounded admission queue: accepted and
/// counted, but its socket is left unserviced (exactly like the
/// threaded engine's queued connections) until a slot frees, its
/// deadline expires, or shutdown drops it.
struct QueuedConn {
    id: usize,
    stream: TcpStream,
    peer: Option<SocketAddr>,
    deadline: SessionDeadline,
    enqueued: Instant,
    started: Instant,
}

/// Drives the full serve loop on the event engine. Same contract as
/// [`TcpServer::serve_with`]: returns when `max_sessions` connections
/// have been accepted (or shutdown was raised) *and* every in-flight
/// session has drained.
pub(crate) fn serve_event(
    server: &TcpServer,
    max_sessions: Option<usize>,
    on_event: &(dyn Fn(SessionEvent<'_>) + Sync),
) -> AggregateStats {
    let clock = server.clock.clone();
    let start = clock.now();
    let checkpoints_evicted_before = server.resumption.evicted();
    let plan = server.shared_plan();
    let obs = server.obs.as_ref();
    let mut agg = AggregateStats::default();

    if let Err(e) = server.listener.set_nonblocking(true) {
        // Without a nonblocking listener there is no reactor; report the
        // condition the same way a broken accept loop would.
        agg.accept_errors += 1;
        if let Some(obs) = obs {
            obs.accept_errors.inc();
        }
        let error = ProtocolError::Transport(TransportError::Io(e.to_string()));
        on_event(SessionEvent::AcceptError { error: &error });
        agg.wall = clock.now().duration_since(start);
        return agg;
    }

    let worker_count = server.worker_count();
    let mut peak_active = 0usize;
    std::thread::scope(|scope| {
        let (result_tx, result_rx) = std::sync::mpsc::channel::<JobResult<'_>>();
        // Per-worker job channels: the vendored channel's receiver is
        // not cloneable, and per-worker queues let the reactor dispatch
        // only to workers it knows are idle — which doubles as the
        // worker-utilization metric.
        let mut workers: Vec<(Sender<Job<'_>>, Option<usize>)> = Vec::with_capacity(worker_count);
        for index in 0..worker_count {
            let (job_tx, job_rx) = std::sync::mpsc::channel::<Job<'_>>();
            let results = result_tx.clone();
            scope.spawn(move || worker_loop(index, job_rx, results));
            workers.push((job_tx, None));
        }
        drop(result_tx);

        let mut conns: HashMap<usize, Conn<'_>> = HashMap::new();
        let mut queue: VecDeque<QueuedConn> = VecDeque::new();
        let mut accepted = 0usize;
        let mut accept_errors = 0usize;
        let mut accept_retry_at: Option<Instant> = None;
        let mut stop_accepting = false;

        // Finalizes one connection: fires its terminal event, updates
        // every counter, and releases the active gauge. Closures cannot
        // borrow `agg`/`conns` mutably while the loop also does, so this
        // is a macro-free plain fn via parameters.
        fn finalize(
            agg: &mut AggregateStats,
            obs: Option<&crate::obs::ServerObs>,
            on_event: &(dyn Fn(SessionEvent<'_>) + Sync),
            id: usize,
            mut conn: Conn<'_>,
            slow_query_threshold: Option<std::time::Duration>,
        ) {
            if let Some(obs) = obs {
                obs.active.sub(1);
            }
            // Stamp the peer's announced trace context onto the session
            // span before it records (the span drops with `conn`), so
            // every exit path — completed, evicted, failed, drained —
            // carries it.
            let trace = conn.flow.as_ref().and_then(|f| f.trace());
            if let (Some(span), Some(ctx)) = (conn.span.as_mut(), trace) {
                span.set_trace(ctx);
            }
            match (&conn.error, conn.done) {
                (None, true) => {
                    let stats = match &conn.flow {
                        Some(flow) => flow.stats().clone(),
                        None => return, // unreachable: done implies flow home
                    };
                    let wall = conn.started.elapsed();
                    agg.sessions += 1;
                    agg.folded += stats.folded;
                    agg.compute += stats.compute;
                    if let Some(obs) = obs {
                        obs.completed.inc();
                        obs.session_seconds.record_duration(wall);
                        for batch in &stats.per_batch_compute {
                            obs.fold_seconds.record_duration(*batch);
                        }
                        let tracer = match trace {
                            Some(ctx) => obs.tracer().with_context(ctx),
                            None => obs.tracer().clone(),
                        };
                        obs.server_compute.record_duration(stats.compute);
                        tracer.record_phase_total(
                            "server_compute",
                            pps_obs::Phase::ServerCompute,
                            Some(id as u64),
                            stats.compute,
                        );
                        if slow_query_threshold.is_some_and(|t| wall >= t) {
                            obs.slow_queries.inc();
                            tracer.event(
                                "slow_query",
                                Some(id as u64),
                                crate::tcp_server::slow_query_detail(wall, &stats),
                            );
                        }
                    }
                    on_event(SessionEvent::Finished {
                        session: id,
                        stats: &stats,
                    });
                }
                (Some(e), _) if is_eviction(e) => {
                    agg.evicted += 1;
                    if let Some(obs) = obs {
                        obs.evicted.inc();
                    }
                    on_event(SessionEvent::Evicted {
                        session: id,
                        error: e,
                    });
                }
                (Some(e), _) => {
                    agg.failed += 1;
                    if let Some(obs) = obs {
                        obs.failed.inc();
                    }
                    on_event(SessionEvent::Failed {
                        session: id,
                        error: e,
                    });
                }
                (None, false) => {
                    // Shutdown drain of a half-finished session: counted
                    // as a failure (the client never got its product).
                    let e = ProtocolError::Transport(TransportError::Disconnected);
                    agg.failed += 1;
                    if let Some(obs) = obs {
                        obs.failed.inc();
                    }
                    on_event(SessionEvent::Failed {
                        session: id,
                        error: &e,
                    });
                }
            }
        }

        loop {
            let mut progress = false;
            let shutdown = server.shutdown.load(Ordering::SeqCst);
            if shutdown {
                stop_accepting = true;
            }

            // ---- Accept burst -------------------------------------
            if !stop_accepting && accept_retry_at.is_none_or(|t| clock.now() >= t) {
                accept_retry_at = None;
                loop {
                    if max_sessions.is_some_and(|m| accepted >= m) {
                        stop_accepting = true;
                        break;
                    }
                    match server.listener.accept() {
                        Ok((stream, peer)) => {
                            accept_errors = 0;
                            progress = true;
                            if server.shutdown.load(Ordering::SeqCst) {
                                // The shutdown poke itself, or a client
                                // racing it: either way, stop here.
                                drop(stream);
                                stop_accepting = true;
                                break;
                            }
                            let at_cap =
                                server.max_concurrent.is_some_and(|max| conns.len() >= max);
                            if at_cap {
                                use crate::tcp_server::Admission;
                                if server.admission == Admission::Refuse
                                    || queue.len() >= server.queue_capacity
                                {
                                    drop(stream); // clean close (FIN)
                                    agg.refused += 1;
                                    if let Some(obs) = obs {
                                        obs.refused.inc();
                                    }
                                    on_event(SessionEvent::Refused { peer: Some(peer) });
                                    continue;
                                }
                                accepted += 1;
                                agg.queued += 1;
                                if let Some(obs) = obs {
                                    obs.accepted.inc();
                                    obs.queued.add(1);
                                }
                                on_event(SessionEvent::Accepted {
                                    session: accepted,
                                    peer: Some(peer),
                                });
                                let now = clock.now();
                                queue.push_back(QueuedConn {
                                    id: accepted,
                                    stream,
                                    peer: Some(peer),
                                    deadline: SessionDeadline::with_clock(
                                        &server.limits,
                                        clock.clone(),
                                    ),
                                    enqueued: now,
                                    started: now,
                                });
                                continue;
                            }
                            accepted += 1;
                            if let Some(obs) = obs {
                                obs.accepted.inc();
                            }
                            on_event(SessionEvent::Accepted {
                                session: accepted,
                                peer: Some(peer),
                            });
                            let now = clock.now();
                            activate(
                                server,
                                &plan,
                                obs,
                                on_event,
                                &mut agg,
                                &mut conns,
                                accepted,
                                stream,
                                Some(peer),
                                SessionDeadline::with_clock(&server.limits, clock.clone()),
                                now,
                            );
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                        Err(e) => {
                            accept_errors += 1;
                            agg.accept_errors += 1;
                            if let Some(obs) = obs {
                                obs.accept_errors.inc();
                            }
                            let error = ProtocolError::Transport(TransportError::Io(e.to_string()));
                            on_event(SessionEvent::AcceptError { error: &error });
                            if accept_errors >= MAX_CONSECUTIVE_ACCEPT_ERRORS {
                                stop_accepting = true;
                            } else {
                                // No sleeping on the reactor: note when
                                // to try again and keep ticking.
                                accept_retry_at = Some(clock.now() + accept_backoff(accept_errors));
                            }
                            break;
                        }
                    }
                }
            }

            // ---- Admission queue maintenance ----------------------
            if shutdown {
                // Same semantics as the threaded engine's queued waiter
                // observing shutdown: turned away, never admitted.
                for q in queue.drain(..) {
                    if let Some(obs) = obs {
                        obs.queued.sub(1);
                        obs.queue_wait_seconds
                            .record_duration(clock.now().duration_since(q.enqueued));
                    }
                    agg.refused += 1;
                    if let Some(obs) = obs {
                        obs.refused.inc();
                    }
                    on_event(SessionEvent::Refused { peer: q.peer });
                }
            } else {
                // Evict queued connections whose session deadline
                // (running since accept) expired while waiting.
                let mut kept = VecDeque::with_capacity(queue.len());
                for q in queue.drain(..) {
                    let expired = q.deadline.expires_at().is_some_and(|at| clock.now() >= at);
                    if expired {
                        progress = true;
                        if let Some(obs) = obs {
                            obs.queued.sub(1);
                            obs.queue_wait_seconds
                                .record_duration(clock.now().duration_since(q.enqueued));
                            obs.evicted.inc();
                        }
                        agg.evicted += 1;
                        let error = ProtocolError::Transport(TransportError::TimedOut);
                        on_event(SessionEvent::Evicted {
                            session: q.id,
                            error: &error,
                        });
                    } else {
                        kept.push_back(q);
                    }
                }
                queue = kept;
                // Promote from the queue while slots are free.
                while server.max_concurrent.is_none_or(|max| conns.len() < max) {
                    let Some(q) = queue.pop_front() else { break };
                    progress = true;
                    if let Some(obs) = obs {
                        obs.queued.sub(1);
                        obs.queue_wait_seconds
                            .record_duration(clock.now().duration_since(q.enqueued));
                    }
                    activate(
                        server, &plan, obs, on_event, &mut agg, &mut conns, q.id, q.stream, q.peer,
                        q.deadline, q.started,
                    );
                }
            }
            peak_active = peak_active.max(conns.len());

            // ---- Poll sockets for frames --------------------------
            let ids: Vec<usize> = conns.keys().copied().collect();
            for id in &ids {
                let conn = conns.get_mut(id).expect("id collected above");
                if conn.done || conn.error.is_some() || conn.read_closed {
                    continue;
                }
                while conn.inbox.len() < INBOX_LIMIT {
                    match conn.wire.poll_recv() {
                        Ok(Some(frame)) => {
                            conn.inbox.push_back(frame);
                            conn.last_activity = clock.now();
                            progress = true;
                        }
                        Ok(None) => break,
                        Err(TransportError::Disconnected) => {
                            conn.read_closed = true;
                            break;
                        }
                        Err(e) => {
                            conn.error = Some(ProtocolError::Transport(e));
                            break;
                        }
                    }
                }
            }

            // ---- Deadline / idle / half-close sweep ---------------
            for id in &ids {
                let conn = conns.get_mut(id).expect("id collected above");
                if conn.done || conn.error.is_some() {
                    continue;
                }
                let now = clock.now();
                if conn.deadline.expires_at().is_some_and(|at| now >= at) {
                    conn.error = Some(ProtocolError::Transport(TransportError::TimedOut));
                    continue;
                }
                let waiting_for_peer = conn.inbox.is_empty() && !conn.in_flight;
                if waiting_for_peer && conn.read_closed {
                    conn.error = Some(ProtocolError::Transport(TransportError::Disconnected));
                    continue;
                }
                if waiting_for_peer
                    && server
                        .limits
                        .read_timeout
                        .is_some_and(|t| now.duration_since(conn.last_activity) >= t)
                {
                    conn.error = Some(ProtocolError::Transport(TransportError::TimedOut));
                }
            }

            // ---- Dispatch ready work to idle workers --------------
            // Per-peer fairness: count workers currently held per peer
            // IP; a peer at its share waits even if workers are idle.
            let fair_share = server.fair_share;
            let mut held_per_peer: HashMap<IpAddr, usize> = HashMap::new();
            if fair_share.is_some() {
                for (_, busy) in &workers {
                    if let Some(conn_id) = busy {
                        if let Some(ip) = conns.get(conn_id).and_then(|c| c.peer).map(|p| p.ip()) {
                            *held_per_peer.entry(ip).or_insert(0) += 1;
                        }
                    }
                }
            }
            for id in &ids {
                let Some(idle) = workers.iter().position(|(_, busy)| busy.is_none()) else {
                    break;
                };
                let conn = conns.get_mut(id).expect("id collected above");
                if conn.in_flight
                    || conn.done
                    || conn.error.is_some()
                    || conn.inbox.is_empty()
                    || conn.flow.is_none()
                {
                    continue;
                }
                if let (Some(share), Some(peer)) = (fair_share, conn.peer) {
                    let held = held_per_peer.entry(peer.ip()).or_insert(0);
                    if *held >= share {
                        continue;
                    }
                    *held += 1;
                }
                let flow = conn.flow.take().expect("checked above");
                let frames: Vec<Frame> = conn.inbox.drain(..).collect();
                conn.in_flight = true;
                conn.last_activity = clock.now();
                progress = true;
                let send = workers[idle].0.send(Job {
                    conn: *id,
                    flow,
                    frames,
                });
                if send.is_ok() {
                    workers[idle].1 = Some(*id);
                } else {
                    // Worker died (its panic was contained, but the
                    // channel is gone); treat the session as panicked.
                    conn.in_flight = false;
                    conn.error = Some(ProtocolError::Transport(TransportError::Io(
                        "worker channel closed".into(),
                    )));
                }
            }
            if let Some(obs) = obs {
                let busy = workers.iter().filter(|(_, b)| b.is_some()).count();
                obs.workers_busy.set(busy as i64);
            }

            // ---- Collect worker results ---------------------------
            loop {
                let result = match result_rx.try_recv() {
                    Ok(r) => r,
                    Err(TryRecvError::Empty) => break,
                    Err(TryRecvError::Disconnected) => break,
                };
                progress = true;
                workers[result.worker].1 = None;
                let Some(conn) = conns.get_mut(&result.conn) else {
                    continue; // unreachable: in-flight conns stay in the map
                };
                conn.in_flight = false;
                if result.resumed_now {
                    agg.resumed += 1;
                    if let Some(obs) = obs {
                        obs.resumed.inc();
                    }
                    on_event(SessionEvent::Resumed {
                        session: result.conn,
                    });
                }
                match result.flow {
                    None => {
                        // A protocol step panicked; the flow is gone.
                        agg.panicked += 1;
                        if let Some(obs) = obs {
                            obs.panicked.inc();
                            obs.active.sub(1);
                        }
                        on_event(SessionEvent::Panicked {
                            session: result.conn,
                        });
                        conns.remove(&result.conn);
                        continue;
                    }
                    Some(flow) => {
                        conn.done = flow.is_done();
                        conn.flow = Some(flow);
                    }
                }
                for reply in &result.replies {
                    conn.wire.queue(reply);
                }
                if let Err(e) = result.outcome {
                    conn.error = Some(e);
                }
            }

            // ---- Flush buffered writes, finalize finished conns ---
            let ids: Vec<usize> = conns.keys().copied().collect();
            for id in ids {
                let conn = conns.get_mut(&id).expect("id collected above");
                if conn.in_flight {
                    continue;
                }
                if conn.wire.has_pending_write() && conn.error.is_none() {
                    match conn.wire.flush() {
                        Ok(true) => progress = true,
                        Ok(false) => {} // backpressure; retry next tick
                        Err(e) => conn.error = Some(ProtocolError::Transport(e)),
                    }
                }
                let complete = conn.done && !conn.wire.has_pending_write();
                if complete || conn.error.is_some() {
                    progress = true;
                    let conn = conns.remove(&id).expect("present above");
                    finalize(
                        &mut agg,
                        obs,
                        on_event,
                        id,
                        conn,
                        server.slow_query_threshold,
                    );
                }
            }

            // ---- Termination / idle sleep -------------------------
            if stop_accepting && conns.is_empty() && queue.is_empty() {
                break;
            }
            if !progress {
                // Under a virtual clock this advances simulated time and
                // returns at once; yield so worker threads still run.
                clock.sleep(IDLE_TICK);
                if clock.is_virtual() {
                    std::thread::yield_now();
                }
            }
        }

        // Shutdown drain complete: drop the job channels so the workers'
        // recv() ends and the scope can join them.
        drop(workers);
        if let Some(obs) = obs {
            obs.workers_busy.set(0);
        }
    });

    // Leave the listener as we found it for any later threaded serve.
    let _ = server.listener.set_nonblocking(false);

    agg.wall = clock.now().duration_since(start);
    agg.peak_active = peak_active;
    agg.checkpoints_evicted = server.resumption.evicted() - checkpoints_evicted_before;
    if let Some(obs) = obs {
        obs.checkpoints_evicted.add(agg.checkpoints_evicted);
    }
    agg
}

/// Admits one connection: runs the chaos hook (inside a panic
/// boundary), wraps the socket in a [`NonBlockingWire`], builds the
/// session flow, and installs the connection in the reactor's map. On
/// hook panic or socket failure the connection is finalized immediately
/// with the matching event.
#[allow(clippy::too_many_arguments)]
fn activate<'a>(
    server: &'a TcpServer,
    plan: &Option<std::sync::Arc<pps_bignum::MultiExpPlan>>,
    obs: Option<&crate::obs::ServerObs>,
    on_event: &(dyn Fn(SessionEvent<'_>) + Sync),
    agg: &mut AggregateStats,
    conns: &mut HashMap<usize, Conn<'a>>,
    id: usize,
    stream: TcpStream,
    peer: Option<SocketAddr>,
    deadline: SessionDeadline,
    started: Instant,
) {
    if let Some(obs) = obs {
        obs.active.add(1);
    }
    let span = obs.map(|o| o.tracer().span("session").session(id as u64).start());
    if let Some(hook) = &server.fault_hook {
        let hooked = std::panic::catch_unwind(AssertUnwindSafe(|| hook(id)));
        if hooked.is_err() {
            agg.panicked += 1;
            if let Some(obs) = obs {
                obs.panicked.inc();
                obs.active.sub(1);
            }
            on_event(SessionEvent::Panicked { session: id });
            drop(span); // records the (aborted) session span
            return;
        }
    }
    let mut wire = match NonBlockingWire::new(stream) {
        Ok(wire) => wire,
        Err(e) => {
            agg.failed += 1;
            if let Some(obs) = obs {
                obs.failed.inc();
                obs.active.sub(1);
            }
            let error = ProtocolError::Transport(e);
            on_event(SessionEvent::Failed {
                session: id,
                error: &error,
            });
            return;
        }
    };
    if let Some(obs) = obs {
        wire.set_metrics(obs.wire.clone());
    }
    let flow = SessionFlow::new(
        &server.db,
        server.fold,
        plan.clone(),
        &server.resumption,
        server.require_shard,
    );
    let now = server.clock.now();
    conns.insert(
        id,
        Conn {
            peer,
            wire,
            inbox: VecDeque::new(),
            flow: Some(flow),
            in_flight: false,
            deadline,
            started,
            last_activity: now,
            read_closed: false,
            done: false,
            error: None,
            span,
        },
    );
}
