//! The querying client's side of the selected-sum protocol.
//!
//! The client prepares encrypted index weights from an [`IndexSource`] —
//! either fresh online encryption (the unoptimized path of §3.1) or the
//! offline pools of §3.3 — streams them in batches, and decrypts the
//! returned product.

use std::time::{Duration, Instant};

use pps_bignum::Uint;
use pps_crypto::{BitEncryptionPool, Ciphertext, CryptoError, PaillierKeypair, RandomizerPool};
use pps_transport::{Frame, Wire};
use rand::RngCore;

use crate::data::Selection;
use crate::error::ProtocolError;
use crate::messages::{Hello, IndexBatch, MsgType, Product};

/// Where the client's encrypted index weights come from.
pub enum IndexSource<'a> {
    /// Encrypt each weight online with fresh randomness (§3.1; the cost
    /// the paper identifies as the bottleneck).
    Fresh(&'a mut dyn RngCore),
    /// Encrypt each batch online across multiple worker threads — the
    /// multi-core attack on the §3.1 bottleneck. `threads = 1` behaves
    /// like a stream-split [`IndexSource::Fresh`]; paper-fidelity figure
    /// runs pin `threads = 1`.
    FreshParallel {
        /// Seed RNG; per-worker CSPRNG streams are derived from it
        /// deterministically.
        rng: &'a mut dyn RngCore,
        /// Worker-thread cap per batch.
        threads: usize,
    },
    /// Draw precomputed `E(0)`/`E(1)` from an offline pool (§3.3).
    /// Only valid for 0/1 selections.
    BitPool(&'a mut BitEncryptionPool),
    /// Encrypt arbitrary weights online using precomputed `r^N` factors —
    /// a weighted-query generalization of the §3.3 idea.
    RandomizerPool(&'a mut RandomizerPool),
}

impl IndexSource<'_> {
    fn produce(
        &mut self,
        keypair: &PaillierKeypair,
        weight: u64,
    ) -> Result<Ciphertext, ProtocolError> {
        match self {
            IndexSource::Fresh(rng) => Ok(keypair.public.encrypt(&Uint::from_u64(weight), *rng)?),
            IndexSource::FreshParallel { rng, threads } => Ok(keypair
                .public
                .encrypt_batch_parallel(&[Uint::from_u64(weight)], *threads, *rng)?
                .pop()
                .expect("one ciphertext per plaintext")),
            IndexSource::BitPool(pool) => match weight {
                0 => Ok(pool.take(false)?),
                1 => Ok(pool.take(true)?),
                _ => Err(ProtocolError::Crypto(CryptoError::PlaintextOutOfRange)),
            },
            IndexSource::RandomizerPool(pool) => Ok(pool.encrypt(&Uint::from_u64(weight))?),
        }
    }

    /// Produces the ciphertexts for one whole batch, in order. For
    /// [`IndexSource::FreshParallel`] the batch is encrypted across
    /// worker threads in one call — this is where the §3.2 pipeline
    /// (batches overlap the wire) composes with intra-batch parallelism;
    /// the other sources fall back to the per-weight path.
    fn produce_batch(
        &mut self,
        keypair: &PaillierKeypair,
        weights: &[u64],
    ) -> Result<Vec<Ciphertext>, ProtocolError> {
        match self {
            IndexSource::FreshParallel { rng, threads } => {
                let ms: Vec<Uint> = weights.iter().map(|&w| Uint::from_u64(w)).collect();
                Ok(keypair.public.encrypt_batch_parallel(&ms, *threads, *rng)?)
            }
            _ => weights.iter().map(|&w| self.produce(keypair, w)).collect(),
        }
    }
}

/// Client-side timing of the send phase.
#[derive(Clone, Debug, Default)]
pub struct ClientSendStats {
    /// Total online index-preparation time (encryption or pool lookups,
    /// excluding wire operations).
    pub encrypt: Duration,
    /// Per-batch preparation times, for the pipeline model.
    pub per_batch_encrypt: Vec<Duration>,
    /// Per-batch encoded payload sizes in bytes.
    pub per_batch_bytes: Vec<usize>,
}

/// The client of the selected-sum protocol.
pub struct SumClient {
    keypair: PaillierKeypair,
}

impl SumClient {
    /// Wraps a keypair. The paper uses 512-bit keys.
    pub fn new(keypair: PaillierKeypair) -> Self {
        SumClient { keypair }
    }

    /// Generates a fresh keypair of `key_bits`.
    ///
    /// # Errors
    /// Propagates key-generation failures.
    pub fn generate(key_bits: usize, rng: &mut dyn RngCore) -> Result<Self, ProtocolError> {
        Ok(SumClient {
            keypair: PaillierKeypair::generate(key_bits, rng)?,
        })
    }

    /// The client's keypair.
    pub fn keypair(&self) -> &PaillierKeypair {
        &self.keypair
    }

    /// Sends the query: a `Hello` followed by `⌈n / batch_size⌉` batches
    /// of encrypted weights drawn from `source`.
    ///
    /// # Errors
    /// Configuration, crypto, and transport failures.
    pub fn send_query(
        &self,
        wire: &mut dyn Wire,
        selection: &Selection,
        batch_size: usize,
        source: &mut IndexSource<'_>,
    ) -> Result<ClientSendStats, ProtocolError> {
        if batch_size == 0 {
            return Err(ProtocolError::Config("batch size must be positive".into()));
        }
        if selection.is_empty() {
            return Err(ProtocolError::Config("selection must not be empty".into()));
        }
        let hello = Hello {
            modulus: self.keypair.public.n().clone(),
            total: selection.len() as u64,
            batch_size: batch_size.min(u32::MAX as usize) as u32,
            trace: None,
        };
        wire.send(hello.encode()?)?;
        self.stream_batches(wire, selection, batch_size, source, 0)
    }

    /// Streams the index batches for `selection`, starting at batch
    /// sequence number `from_seq` (batches below it are skipped without
    /// being encrypted). `from_seq = 0` streams the whole query; a
    /// resuming client passes the `next_seq` granted by the server's
    /// `ResumeAck` so only the unacknowledged tail is re-encrypted and
    /// re-sent (PROTOCOL.md §10).
    ///
    /// # Errors
    /// Configuration, crypto, and transport failures.
    pub fn stream_batches(
        &self,
        wire: &mut dyn Wire,
        selection: &Selection,
        batch_size: usize,
        source: &mut IndexSource<'_>,
        from_seq: u64,
    ) -> Result<ClientSendStats, ProtocolError> {
        if batch_size == 0 {
            return Err(ProtocolError::Config("batch size must be positive".into()));
        }
        let mut stats = ClientSendStats::default();
        for (seq, chunk) in selection.weights().chunks(batch_size).enumerate() {
            let seq = seq as u64;
            if seq < from_seq {
                continue;
            }
            let start = Instant::now();
            let cts = source.produce_batch(&self.keypair, chunk)?;
            let frame = IndexBatch {
                seq,
                ciphertexts: cts,
            }
            .encode(&self.keypair.public)?;
            let elapsed = start.elapsed();
            stats.encrypt += elapsed;
            stats.per_batch_encrypt.push(elapsed);
            stats.per_batch_bytes.push(frame.encoded_len());
            wire.send(frame)?;
        }
        Ok(stats)
    }

    /// Receives the product frame and decrypts the selected sum,
    /// skipping any `HelloAck` frames still buffered ahead of it (the
    /// resumable server acknowledges every `Hello` with a session ID;
    /// callers that don't resume may simply ignore it).
    ///
    /// Returns `(sum, decrypt_time)`.
    ///
    /// # Errors
    /// Transport and decryption failures.
    pub fn receive_result(&self, wire: &mut dyn Wire) -> Result<(Uint, Duration), ProtocolError> {
        loop {
            let frame = wire.recv()?;
            if frame.msg_type == MsgType::HelloAck as u8 {
                continue;
            }
            return self.decrypt_product(&frame);
        }
    }

    /// Decrypts a product frame (split out for drivers that already hold
    /// the frame).
    ///
    /// # Errors
    /// Malformed frames and decryption failures.
    pub fn decrypt_product(&self, frame: &Frame) -> Result<(Uint, Duration), ProtocolError> {
        let product = Product::decode(frame, &self.keypair.public)?;
        let start = Instant::now();
        let sum = self.keypair.secret.decrypt(&product.ciphertext)?;
        Ok((sum, start.elapsed()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::Database;
    use crate::server::ServerSession;
    use pps_transport::{LinkProfile, SimLink, TransportError};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn client() -> SumClient {
        let mut rng = StdRng::seed_from_u64(91);
        SumClient::generate(128, &mut rng).unwrap()
    }

    /// Drives client + server sequentially over a SimLink pair.
    fn drive(
        client: &SumClient,
        db: &Database,
        sel: &Selection,
        batch: usize,
        source: &mut IndexSource<'_>,
    ) -> Uint {
        let (mut cw, mut sw) = SimLink::pair(LinkProfile::gigabit_lan());
        client.send_query(&mut cw, sel, batch, source).unwrap();
        let mut server = ServerSession::new(db);
        loop {
            match sw.recv() {
                Ok(frame) => {
                    if let Some(reply) = server.on_frame(&frame).unwrap() {
                        sw.send(reply).unwrap();
                    }
                }
                Err(TransportError::Empty) => break,
                Err(e) => panic!("unexpected transport error: {e}"),
            }
        }
        let (sum, _) = client.receive_result(&mut cw).unwrap();
        sum
    }

    #[test]
    fn fresh_source_end_to_end() {
        let c = client();
        let mut rng = StdRng::seed_from_u64(92);
        let db = Database::new(vec![1, 2, 3, 4, 5, 6]).unwrap();
        let sel = Selection::from_bits(&[true, true, false, false, true, false]);
        let mut src = IndexSource::Fresh(&mut rng);
        assert_eq!(drive(&c, &db, &sel, 2, &mut src).to_u64(), Some(8));
    }

    #[test]
    fn fresh_parallel_source_end_to_end() {
        let c = client();
        let db = Database::new(vec![1, 2, 3, 4, 5, 6, 7, 8]).unwrap();
        let sel = Selection::from_bits(&[true, false, true, false, true, false, true, false]);
        for threads in [1usize, 2, 4] {
            let mut rng = StdRng::seed_from_u64(90);
            let mut src = IndexSource::FreshParallel {
                rng: &mut rng,
                threads,
            };
            assert_eq!(
                drive(&c, &db, &sel, 3, &mut src).to_u64(),
                Some(16),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn bit_pool_source_end_to_end() {
        let c = client();
        let mut rng = StdRng::seed_from_u64(93);
        let db = Database::new(vec![100, 200, 300]).unwrap();
        let sel = Selection::from_bits(&[false, true, true]);
        let mut pool = BitEncryptionPool::new(c.keypair().public.clone());
        pool.fill(2, 2, &mut rng).unwrap();
        let mut src = IndexSource::BitPool(&mut pool);
        assert_eq!(drive(&c, &db, &sel, 3, &mut src).to_u64(), Some(500));
    }

    #[test]
    fn bit_pool_rejects_weights() {
        let c = client();
        let mut rng = StdRng::seed_from_u64(94);
        let mut pool = BitEncryptionPool::new(c.keypair().public.clone());
        pool.fill(1, 1, &mut rng).unwrap();
        let mut src = IndexSource::BitPool(&mut pool);
        assert!(src.produce(c.keypair(), 7).is_err());
    }

    #[test]
    fn randomizer_pool_source_end_to_end() {
        let c = client();
        let mut rng = StdRng::seed_from_u64(95);
        let db = Database::new(vec![10, 20, 30]).unwrap();
        let sel = Selection::weighted(vec![2, 0, 5]);
        let mut pool = RandomizerPool::new(c.keypair().public.clone());
        pool.fill(3, &mut rng).unwrap();
        let mut src = IndexSource::RandomizerPool(&mut pool);
        assert_eq!(drive(&c, &db, &sel, 3, &mut src).to_u64(), Some(170));
    }

    #[test]
    fn send_stats_track_batches() {
        let c = client();
        let mut rng = StdRng::seed_from_u64(96);
        let sel = Selection::from_bits(&[true; 10]);
        let (mut cw, _sw) = SimLink::pair(LinkProfile::gigabit_lan());
        let mut src = IndexSource::Fresh(&mut rng);
        let stats = c.send_query(&mut cw, &sel, 3, &mut src).unwrap();
        assert_eq!(stats.per_batch_encrypt.len(), 4, "10 indices / 3 per batch");
        assert!(stats.encrypt > Duration::ZERO);
        let w = c.keypair().public.ciphertext_bytes();
        assert!(stats.per_batch_bytes[0] >= 3 * w);
    }

    #[test]
    fn config_validation() {
        let c = client();
        let mut rng = StdRng::seed_from_u64(97);
        let (mut cw, _sw) = SimLink::pair(LinkProfile::gigabit_lan());
        let sel = Selection::from_bits(&[true]);
        let mut src = IndexSource::Fresh(&mut rng);
        assert!(c.send_query(&mut cw, &sel, 0, &mut src).is_err());
        let empty = Selection::from_bits(&[]);
        assert!(c.send_query(&mut cw, &empty, 1, &mut src).is_err());
    }
}
