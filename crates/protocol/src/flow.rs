//! The engine-independent per-frame protocol surface.
//!
//! Both server runtimes — the thread-per-connection loop and the
//! event-driven orchestrator — speak the exact same resumable dialect:
//! `Hello` is acknowledged with a session ticket, fold state is
//! checkpointed after every acknowledged batch, `Resume` restores a
//! stored checkpoint, `ShardHello` installs a §3.5 blinding, and a
//! shard-gated worker refuses anything unblinded. [`SessionFlow`]
//! captures that surface as one frame-in/frames-out step function so
//! the two engines cannot drift: the threaded driver pumps it from a
//! blocking wire, the orchestrator pumps it from worker threads, and
//! the bytes on the wire are identical either way (PROTOCOL.md §12).

use std::sync::Arc;

use pps_bignum::MultiExpPlan;
use pps_obs::TraceContext;
use pps_transport::Frame;

use crate::data::Database;
use crate::error::ProtocolError;
use crate::messages::{Hello, HelloAck, MsgType, Resume, ResumeAck, ShardHello};
use crate::multidb::leg_blinding;
use crate::resume::SessionTable;
use crate::server::{FoldStrategy, ServerSession, ServerStats};

/// What one [`SessionFlow::on_frame`] step produced: zero or more reply
/// frames (sent in order) and whether this step granted a resume.
#[derive(Debug, Default)]
pub struct FlowStep {
    /// Replies to write to the peer, in order.
    pub replies: Vec<Frame>,
    /// This step restored a checkpoint (fire `SessionEvent::Resumed`).
    pub resumed_now: bool,
}

/// One connection's protocol state machine: a [`ServerSession`] plus the
/// runtime concerns layered on top of it (resume tickets, checkpoint
/// storage, shard gating). Pure message-in/messages-out — no I/O, no
/// clocks — so any scheduler can drive it: the two TCP engines pump it
/// from sockets, and the `pps-sim` discrete-event harness pumps it from
/// simulated wires (which is why the type is public).
pub struct SessionFlow<'a> {
    session: ServerSession<'a>,
    db: &'a Database,
    fold: FoldStrategy,
    plan: Option<Arc<MultiExpPlan>>,
    table: &'a SessionTable,
    require_shard: bool,
    ticket: Option<u64>,
    resumed: bool,
    trace: Option<TraceContext>,
}

impl<'a> SessionFlow<'a> {
    /// A flow awaiting its first frame. `plan` is `Some` exactly when
    /// `fold` is [`FoldStrategy::Precomputed`] and was built from this
    /// very database by the serve loop.
    pub fn new(
        db: &'a Database,
        fold: FoldStrategy,
        plan: Option<Arc<MultiExpPlan>>,
        table: &'a SessionTable,
        require_shard: bool,
    ) -> Self {
        let session = match &plan {
            Some(plan) => ServerSession::with_fold_plan(db, Arc::clone(plan))
                .expect("plan was built from this database"),
            None => ServerSession::with_fold(db, fold),
        };
        SessionFlow {
            session,
            db,
            fold,
            plan,
            table,
            require_shard,
            ticket: None,
            resumed: false,
            trace: None,
        }
    }

    /// Whether the protocol ran to completion (the product was
    /// produced); the connection should flush and close.
    pub fn is_done(&self) -> bool {
        self.session.is_done()
    }

    /// Whether any step granted a `Resume`.
    pub fn resumed(&self) -> bool {
        self.resumed
    }

    /// The distributed trace context the peer announced on its
    /// handshake (`Hello`, `ShardHello`, or `Resume` trailer), if any —
    /// the runtime stamps it onto this session's spans and events.
    pub fn trace(&self) -> Option<TraceContext> {
        self.trace
    }

    /// The session's accumulated statistics.
    pub fn stats(&self) -> &ServerStats {
        self.session.stats()
    }

    /// Whether a §3.5 blinding is installed on the underlying session.
    /// The simulation harness's invariant oracle uses this to check a
    /// shard worker never reaches the reply step unblinded.
    pub fn has_blinding(&self) -> bool {
        self.session.has_blinding()
    }

    /// Feeds one frame through the full runtime dialect: shard
    /// handshake and gate, resume grant/denial, hello acknowledgement,
    /// the protocol step itself, and checkpointing. On the step that
    /// completes the session the checkpoint is spent (removed), not
    /// left to TTL eviction.
    ///
    /// # Errors
    /// Any protocol violation; the caller must close the connection
    /// (the flow is not recoverable after an error).
    pub fn on_frame(&mut self, frame: &Frame) -> Result<FlowStep, ProtocolError> {
        let mut step = FlowStep::default();
        if frame.msg_type == MsgType::ShardHello as u8 {
            // Shard handshake: derive this worker's correlated blinding
            // from the pairwise seeds and install it before the session
            // starts. No reply — the client pipelines its next message
            // immediately. On a *resume*, the restored checkpoint's own
            // blinding (the same value — seeds are per-query)
            // supersedes this fresh session.
            let sh = ShardHello::decode(frame)?;
            self.trace = sh.trace.or(self.trace);
            let m = pps_bignum::Uint::one().shl(sh.m_bits as usize);
            let r = leg_blinding(&sh.seeds_add, &sh.seeds_sub, &m)?;
            self.session.set_blinding(r)?;
            return Ok(step);
        }
        if self.require_shard {
            let allowed = match frame.msg_type {
                // Always acceptable: the handshake itself, a resume
                // (its checkpoint carries the session's blinding), and
                // size discovery (reveals only the row count).
                t if t == MsgType::ShardHello as u8 => true,
                t if t == MsgType::Resume as u8 => true,
                t if t == MsgType::SizeRequest as u8 => true,
                // Never acceptable: the plaintext baseline replies with
                // the raw partition sum and the blinding never touches
                // that path — per-index probes would read the whole
                // partition out unblinded.
                t if t == MsgType::PlainIndices as u8 => false,
                // Everything else only once a blinding is installed.
                _ => self.session.has_blinding(),
            };
            if !allowed {
                return Err(ProtocolError::UnexpectedMessage(
                    "shard worker accepts only blinded queries",
                ));
            }
        }
        if frame.msg_type == MsgType::Resume as u8 {
            if !self.session.is_awaiting_hello() {
                return Err(ProtocolError::UnexpectedMessage("resume mid-session"));
            }
            let req = Resume::decode(frame)?;
            self.trace = req.trace.or(self.trace);
            // `take` makes the grant exclusive; a checkpoint that fails
            // validation against this database is discarded, not
            // granted.
            let restored = self
                .table
                .take(req.session_id)
                .and_then(|cp| match &self.plan {
                    Some(plan) => {
                        ServerSession::resume_with_plan(self.db, Arc::clone(plan), cp).ok()
                    }
                    None => ServerSession::resume(self.db, self.fold, cp).ok(),
                });
            match restored {
                Some(restored) => {
                    self.session = restored;
                    self.resumed = true;
                    step.resumed_now = true;
                    self.ticket = Some(req.session_id);
                    let next_seq = self.session.next_seq().unwrap_or(0);
                    // Re-store at once: a disconnect between the grant
                    // and the next batch must not lose the checkpointed
                    // work.
                    if let Some(cp) = self.session.checkpoint() {
                        self.table.store(req.session_id, cp);
                    }
                    step.replies.push(
                        ResumeAck {
                            granted: true,
                            next_seq,
                        }
                        .encode()?,
                    );
                }
                None => {
                    // Stale / evicted / unknown: the client falls back
                    // to a fresh Hello on this connection.
                    step.replies.push(
                        ResumeAck {
                            granted: false,
                            next_seq: 0,
                        }
                        .encode()?,
                    );
                }
            }
            return Ok(step);
        }
        let fresh_hello =
            frame.msg_type == MsgType::Hello as u8 && self.session.is_awaiting_hello();
        if fresh_hello {
            // Peek the trace trailer before the session consumes the
            // frame. The double decode is confined to the one Hello per
            // session and costs microseconds against the session's
            // crypto; a decode error surfaces from on_frame below.
            if let Ok(hello) = Hello::decode(frame) {
                self.trace = hello.trace.or(self.trace);
            }
        }
        let reply = self.session.on_frame(frame)?;
        if fresh_hello {
            let id = self.table.allocate();
            self.ticket = Some(id);
            step.replies.push(HelloAck { session_id: id }.encode()?);
        }
        if let (Some(id), Some(cp)) = (self.ticket, self.session.checkpoint()) {
            self.table.store(id, cp);
        }
        if let Some(reply) = reply {
            step.replies.push(reply);
        }
        if self.session.is_done() {
            // Clean completion: the checkpoint is spent, not evicted.
            if let Some(id) = self.ticket.take() {
                self.table.remove(id);
            }
        }
        Ok(step)
    }
}
