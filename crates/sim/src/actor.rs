//! Client actors: the behavior classes a campaign population mixes.
//!
//! Every actor's wire behavior is captured up-front as a *script* — the
//! exact frames it will send, already encoded to bytes — built
//! deterministically from the campaign seed. Adversarial classes build
//! an honest script first and then sabotage it (corrupt bytes, replay a
//! sequence number, drop one), so the attack surface is exactly the
//! honest protocol's wire image, not a synthetic approximation. The
//! runner then plays scripts against real [`SessionFlow`] state
//! machines over the simulated network.
//!
//! [`SessionFlow`]: pps_protocol::SessionFlow

use bytes::Bytes;
use pps_protocol::messages::{Hello, IndexBatch, ShardHello};
use pps_protocol::SumClient;
use rand::rngs::StdRng;
use rand::RngCore;

use crate::scenario::Scenario;
use crate::SimError;

/// A campaign client's behavior class.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Behavior {
    /// Runs the protocol cleanly; must complete with the correct sum.
    Honest,
    /// Disconnects mid-stream after a scripted number of frames, then
    /// reconnects and resumes from the server's checkpoint.
    Churning,
    /// Corrupts one frame's bytes (magic flip, unknown type, length
    /// inflation, or payload garbage).
    Byzantine,
    /// Sends a structurally invalid `Hello`.
    MalformedHello,
    /// Sends a `ShardHello` whose geometry cannot telescope to zero.
    MalformedShard,
    /// Replays a duplicate batch sequence number.
    ReplayDup,
    /// Skips a batch sequence number.
    ReplayGap,
    /// Trickles its handshake one byte at a time, forever.
    SlowLoris,
    /// One leg of a blinded shard group (see `Scenario::shard_groups`).
    ShardLeg {
        /// Which shard group this leg belongs to.
        group: usize,
        /// Position of this leg within the group (0-based).
        leg: usize,
    },
}

impl Behavior {
    /// Short class label used in traces and oracle reports.
    pub fn label(self) -> &'static str {
        match self {
            Behavior::Honest => "honest",
            Behavior::Churning => "churn",
            Behavior::Byzantine => "byzantine",
            Behavior::MalformedHello => "malformed_hello",
            Behavior::MalformedShard => "malformed_shard",
            Behavior::ReplayDup => "replay_dup",
            Behavior::ReplayGap => "replay_gap",
            Behavior::SlowLoris => "slow_loris",
            Behavior::ShardLeg { .. } => "shard_leg",
        }
    }

    /// Whether this class must *fail* to obtain a sum. The oracle
    /// treats a completion by an adversarial client as a violation.
    pub fn is_adversarial(self) -> bool {
        !matches!(
            self,
            Behavior::Honest | Behavior::Churning | Behavior::ShardLeg { .. }
        )
    }

    /// Whether the runner should reconnect this client after a hangup.
    /// Adversarial classes are one-shot: the server's rejection is the
    /// outcome under test.
    pub fn retries(self) -> bool {
        !self.is_adversarial()
    }
}

/// A client's precomputed wire script.
pub struct Script {
    /// Encoded frames, in send order. `frames[0]` is the handshake
    /// (`Hello`, or `ShardHello` for shard legs — see
    /// [`prepend_shard_hello`]); the rest are `IndexBatch` frames.
    pub frames: Vec<Bytes>,
    /// The plaintext selected sum an honest completion must decrypt to.
    pub expected: Option<u64>,
    /// Churners: how many frames to send before the scripted kill.
    pub kill_after: Option<usize>,
}

/// Builds the frame script for one client. `db_values` is the database
/// of the server this client targets (the main database, or one shard
/// partition for a [`Behavior::ShardLeg`]).
///
/// # Errors
/// Encoding or encryption failures (none occur for well-formed
/// scenarios; surfaced rather than panicking so a bad scenario fails
/// with a report).
pub fn build_script(
    scenario: &Scenario,
    behavior: Behavior,
    client: &SumClient,
    db_values: &[u64],
    rng: &mut StdRng,
) -> Result<Script, SimError> {
    let n = db_values.len();
    // 0/1 selection vector; shard legs select every row so the group
    // total is the whole-table sum, which the oracle recomputes.
    let mut weights = vec![0u64; n];
    if matches!(behavior, Behavior::ShardLeg { .. }) {
        weights.fill(1);
    } else {
        for w in weights.iter_mut() {
            *w = u64::from(rng.next_u32().is_multiple_of(2));
        }
        if weights.iter().all(|&w| w == 0) {
            weights[rng.next_u32() as usize % n] = 1;
        }
    }
    let expected: u64 = weights.iter().zip(db_values).map(|(w, v)| w * v).sum();

    let public = &client.keypair().public;
    let hello = Hello {
        modulus: public.n().clone(),
        total: n as u64,
        batch_size: scenario.batch_size.min(u32::MAX as usize) as u32,
        trace: None,
    }
    .encode()
    .map_err(|e| SimError(format!("hello encode: {e}")))?;

    let mut frames = vec![hello.encode()];
    for (seq, chunk) in weights.chunks(scenario.batch_size).enumerate() {
        let cts = chunk
            .iter()
            .map(|&w| public.encrypt_u64(w, rng))
            .collect::<Result<Vec<_>, _>>()
            .map_err(|e| SimError(format!("encrypt: {e}")))?;
        let frame = IndexBatch {
            seq: seq as u64,
            ciphertexts: cts,
        }
        .encode(public)
        .map_err(|e| SimError(format!("batch encode: {e}")))?;
        frames.push(frame.encode());
    }

    let mut script = Script {
        frames,
        expected: Some(expected),
        kill_after: None,
    };
    sabotage(&mut script, behavior, rng)?;
    Ok(script)
}

/// Applies the behavior class's deviation to an honest script.
fn sabotage(script: &mut Script, behavior: Behavior, rng: &mut StdRng) -> Result<(), SimError> {
    let n_frames = script.frames.len();
    match behavior {
        Behavior::Honest | Behavior::ShardLeg { .. } => {}
        Behavior::Churning => {
            // Send the Hello plus at least one batch, leave at least
            // one batch unsent, so the resume actually has a tail.
            if n_frames < 3 {
                return Err(SimError(
                    "churn scenario needs at least two batches per query".into(),
                ));
            }
            script.kill_after = Some(2 + rng.next_u32() as usize % (n_frames - 2));
            return Ok(());
        }
        Behavior::Byzantine => {
            let target = 1 + rng.next_u32() as usize % (n_frames - 1);
            let mut bytes = script.frames[target].to_vec();
            match rng.next_u32() % 4 {
                // Magic flip: the decoder must kill the stream.
                0 => bytes[0] ^= 0x80,
                // Unknown message type: decodes, then the session
                // rejects it.
                1 => bytes[2] = 0xEE,
                // Length inflation past the frame cap.
                2 => bytes[3..7].copy_from_slice(&0xFFFF_FFFFu32.to_be_bytes()),
                // Payload garbage: ciphertext validation must reject.
                _ => {
                    for b in bytes.iter_mut().skip(7) {
                        *b = (rng.next_u32() & 0xFF) as u8;
                    }
                }
            }
            script.frames[target] = Bytes::from(bytes);
        }
        Behavior::MalformedHello => {
            // A syntactically valid frame whose Hello payload is
            // truncated garbage.
            let frame = pps_transport::Frame::new(
                pps_protocol::messages::MsgType::Hello as u8,
                Bytes::from_static(&[0xDE, 0xAD]),
            )
            .map_err(|e| SimError(format!("malformed hello: {e}")))?;
            script.frames = vec![frame.encode()];
        }
        Behavior::MalformedShard => {
            // Geometry violation: index ≥ count. Encoding doesn't check
            // geometry (only the server-side decode does), which is
            // exactly the hostile-client path under test.
            let frame = ShardHello {
                shard_index: 7,
                shard_count: 3,
                m_bits: 64,
                seeds_add: Vec::new(),
                seeds_sub: Vec::new(),
                trace: None,
            }
            .encode()
            .map_err(|e| SimError(format!("malformed shard: {e}")))?;
            script.frames = vec![frame.encode()];
        }
        Behavior::ReplayDup => {
            // Batch 0 twice: the second copy's seq is stale and the
            // server must refuse to double-fold.
            let dup = script.frames[1].clone();
            script.frames.insert(2, dup);
        }
        Behavior::ReplayGap => {
            // Drop a middle batch: the successor's seq arrives early.
            if n_frames < 4 {
                return Err(SimError(
                    "replay-gap needs at least three batches per query".into(),
                ));
            }
            script.frames.remove(2);
        }
        Behavior::SlowLoris => {
            // Only the handshake is ever (partially) sent.
            script.frames.truncate(1);
        }
    }
    if behavior.is_adversarial() {
        script.expected = None;
    }
    Ok(())
}

/// Builds the `k` pairwise-seeded `ShardHello` frames for one shard
/// group (the multidb convention: leg `i` adds seeds for pairs `(i,j)`,
/// `j > i`, and subtracts seeds for pairs `(j,i)`, `j < i`) and
/// prepends each to the matching leg's script.
///
/// # Errors
/// Encoding failures (cannot occur for valid geometry).
pub fn prepend_shard_hello(
    scripts: &mut [&mut Script],
    m_bits: u32,
    rng: &mut StdRng,
) -> Result<(), SimError> {
    let k = scripts.len();
    let seeds: Vec<Vec<Vec<u8>>> = (0..k)
        .map(|i| {
            (i + 1..k)
                .map(|_| {
                    let mut s = vec![0u8; 32];
                    rng.fill_bytes(&mut s);
                    s
                })
                .collect()
        })
        .collect();
    for (i, script) in scripts.iter_mut().enumerate() {
        let frame = ShardHello {
            shard_index: i as u32,
            shard_count: k as u32,
            m_bits,
            seeds_add: seeds[i].clone(),
            seeds_sub: (0..i).map(|j| seeds[j][i - j - 1].clone()).collect(),
            trace: None,
        }
        .encode()
        .map_err(|e| SimError(format!("shard hello encode: {e}")))?;
        script.frames.insert(0, frame.encode());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pps_transport::Frame;
    use rand::SeedableRng;

    fn scenario() -> Scenario {
        crate::scenario::Scenario::by_name("byzantine").unwrap()
    }

    fn client() -> SumClient {
        let mut rng = StdRng::seed_from_u64(5);
        SumClient::generate(64, &mut rng).unwrap()
    }

    #[test]
    fn honest_script_is_hello_plus_batches() {
        let sc = scenario();
        let c = client();
        let values = sc.db_values();
        let mut rng = StdRng::seed_from_u64(11);
        let script = build_script(&sc, Behavior::Honest, &c, &values, &mut rng).unwrap();
        assert_eq!(script.frames.len(), 1 + sc.db_rows.div_ceil(sc.batch_size));
        assert!(script.expected.is_some());
        // Every frame round-trips through the real decoder.
        let mut buf = bytes::BytesMut::new();
        for f in &script.frames {
            buf.extend_from_slice(f);
        }
        let mut count = 0;
        while let Some(_f) = Frame::decode(&mut buf).unwrap() {
            count += 1;
        }
        assert_eq!(count, script.frames.len());
    }

    #[test]
    fn scripts_are_deterministic_per_seed() {
        let sc = scenario();
        let c = client();
        let values = sc.db_values();
        let a = build_script(
            &sc,
            Behavior::Byzantine,
            &c,
            &values,
            &mut StdRng::seed_from_u64(3),
        )
        .unwrap();
        let b = build_script(
            &sc,
            Behavior::Byzantine,
            &c,
            &values,
            &mut StdRng::seed_from_u64(3),
        )
        .unwrap();
        assert_eq!(a.frames, b.frames);
    }

    #[test]
    fn byzantine_scripts_differ_from_honest() {
        let sc = scenario();
        let c = client();
        let values = sc.db_values();
        let mut rng = StdRng::seed_from_u64(7);
        let honest = build_script(&sc, Behavior::Honest, &c, &values, &mut rng).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let byz = build_script(&sc, Behavior::Byzantine, &c, &values, &mut rng).unwrap();
        assert_ne!(honest.frames, byz.frames);
        assert!(byz.expected.is_none());
    }

    #[test]
    fn shard_hellos_decode_with_valid_geometry() {
        let sc = scenario();
        let c = client();
        let values = sc.db_values();
        let mut rng = StdRng::seed_from_u64(9);
        let mut s0 = build_script(
            &sc,
            Behavior::ShardLeg { group: 0, leg: 0 },
            &c,
            &values,
            &mut rng,
        )
        .unwrap();
        let mut s1 = build_script(
            &sc,
            Behavior::ShardLeg { group: 0, leg: 1 },
            &c,
            &values,
            &mut rng,
        )
        .unwrap();
        let mut s2 = build_script(
            &sc,
            Behavior::ShardLeg { group: 0, leg: 2 },
            &c,
            &values,
            &mut rng,
        )
        .unwrap();
        prepend_shard_hello(&mut [&mut s0, &mut s1, &mut s2], 62, &mut rng).unwrap();
        for (i, s) in [&s0, &s1, &s2].iter().enumerate() {
            let mut buf = bytes::BytesMut::from(&s.frames[0][..]);
            let frame = Frame::decode(&mut buf).unwrap().unwrap();
            let sh = ShardHello::decode(&frame).unwrap();
            assert_eq!(sh.shard_index, i as u32);
            assert_eq!(sh.shard_count, 3);
        }
    }
}
