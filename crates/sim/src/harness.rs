//! Shared scenario-runner helpers for tests and CI.
//!
//! Three layers, smallest to largest:
//!
//! * [`proto`] — fixtures for protocol-level failure-injection tests
//!   (one database, one client, deterministic rng, canned frames);
//! * [`chaos`] — scaffolding for real-socket chaos tests: the canonical
//!   48-row database, selection, expected plaintext sum, retry configs,
//!   and a fault-schedule query driver over real TCP;
//! * campaign helpers — run a named simulator scenario, assert a
//!   campaign is bit-reproducible, and run the CI matrix.

use crate::run::{run_campaign, CampaignReport};
use crate::scenario::{Scenario, SimEngine};
use crate::SimError;

/// Runs a named scenario, optionally rescaling its population (the CI
/// matrix uses small populations; `pps sim run` uses the registry's).
///
/// # Errors
/// Unknown scenario name, or scenario-construction failure.
pub fn run_named(
    name: &str,
    seed: u64,
    engine: SimEngine,
    population: Option<usize>,
) -> Result<CampaignReport, SimError> {
    let mut scenario =
        Scenario::by_name(name).ok_or_else(|| SimError(format!("unknown scenario `{name}`")))?;
    if let Some(p) = population {
        scenario = scenario.with_population(p);
    }
    run_campaign(&scenario, seed, engine)
}

/// Runs the campaign twice and asserts the event trace and metrics
/// snapshot are bit-identical — the reproducibility contract behind
/// every violation's repro string.
///
/// # Panics
/// When the two runs differ, with both hashes in the message.
///
/// # Errors
/// Propagates scenario-construction failures.
pub fn assert_reproducible(
    name: &str,
    seed: u64,
    engine: SimEngine,
    population: Option<usize>,
) -> Result<CampaignReport, SimError> {
    let a = run_named(name, seed, engine, population)?;
    let b = run_named(name, seed, engine, population)?;
    assert_eq!(
        a.trace_hash,
        b.trace_hash,
        "campaign `{name}` seed {seed} ({}) is not trace-reproducible",
        engine.name()
    );
    assert_eq!(
        a.metrics_snapshot,
        b.metrics_snapshot,
        "campaign `{name}` seed {seed} ({}) is not metrics-reproducible",
        engine.name()
    );
    assert_eq!(a.events, b.events);
    Ok(a)
}

/// Runs every registry scenario on both engines at a reduced
/// population, returning all reports (CI's `sim-matrix` step).
///
/// # Errors
/// The first scenario-construction failure.
pub fn run_matrix(seed: u64, population: usize) -> Result<Vec<CampaignReport>, SimError> {
    let mut out = Vec::new();
    for scenario in Scenario::registry() {
        for engine in SimEngine::all() {
            let scaled = scenario.clone().with_population(population);
            out.push(run_campaign(&scaled, seed, engine)?);
        }
    }
    Ok(out)
}

/// Fixtures for protocol-level failure-injection tests.
pub mod proto {
    use pps_protocol::messages::Hello;
    use pps_protocol::{Database, SumClient};
    use pps_transport::Frame;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// The canonical four-row fixture: `[10, 20, 30, 40]`, a 128-bit
    /// client, and a seeded rng.
    pub fn fixture() -> (Database, SumClient, StdRng) {
        let mut rng = StdRng::seed_from_u64(66);
        let db = Database::new(vec![10, 20, 30, 40]).unwrap();
        let client = SumClient::generate(128, &mut rng).unwrap();
        (db, client, rng)
    }

    /// A well-formed `Hello` for `client` announcing `total` indices in
    /// batches of four.
    pub fn hello_frame(client: &SumClient, total: u64) -> Frame {
        Hello {
            modulus: client.keypair().public.n().clone(),
            total,
            batch_size: 4,
            trace: None,
        }
        .encode()
        .unwrap()
    }
}

/// Scaffolding for chaos tests over real TCP sockets with scripted
/// [`FaultSchedule`]s under the framing layer.
///
/// [`FaultSchedule`]: pps_transport::FaultSchedule
pub mod chaos {
    use std::net::{SocketAddr, TcpStream};
    use std::sync::Arc;
    use std::time::Duration;

    use pps_protocol::{
        run_stream_query_with_resume, Database, ProtocolError, SumClient, TcpQueryConfig,
        TcpQueryOutcome,
    };
    use pps_transport::{FaultSchedule, FaultyStream, RetryPolicy, StreamWire, TransportError};
    use rand::rngs::StdRng;

    /// Rows in the canonical chaos database.
    pub const N: usize = 48;
    /// Batch size the chaos queries stream with (12 batches per query).
    pub const BATCH: usize = 4;

    /// The canonical 48-row database: `value(i) = 7i + 3`.
    pub fn database() -> Arc<Database> {
        Arc::new(Database::new((0..N as u64).map(|i| i * 7 + 3).collect()).unwrap())
    }

    /// Every third row.
    pub fn selection() -> Vec<usize> {
        (0..N).step_by(3).collect()
    }

    /// The plaintext sum [`selection`] must decrypt to.
    pub fn expected_sum() -> u128 {
        selection().iter().map(|&i| (i as u128) * 7 + 3).sum()
    }

    /// A chaos-test query config: small batches, 10 s socket timeouts,
    /// the given retry policy.
    pub fn config(policy: RetryPolicy) -> TcpQueryConfig {
        TcpQueryConfig {
            batch_size: BATCH,
            client_threads: 1,
            read_timeout: Some(Duration::from_secs(10)),
            write_timeout: Some(Duration::from_secs(10)),
            retry: policy,
            ..TcpQueryConfig::default()
        }
    }

    /// Runs one resumable query against `addr` where the `attempt`-th
    /// connection gets `schedule(attempt)` injected under the framing
    /// layer — the shared driver for scripted-disconnect scenarios.
    ///
    /// # Errors
    /// Whatever the query ultimately fails with once retries are
    /// exhausted.
    pub fn faulty_query(
        addr: SocketAddr,
        client: &SumClient,
        cfg: &TcpQueryConfig,
        rng: &mut StdRng,
        schedule: impl Fn(u32) -> FaultSchedule,
    ) -> Result<TcpQueryOutcome, ProtocolError> {
        let read_timeout = cfg.read_timeout;
        let mut connect =
            |attempt: u32| -> Result<StreamWire<FaultyStream<TcpStream>>, ProtocolError> {
                let stream = TcpStream::connect(addr)
                    .map_err(|e| ProtocolError::Transport(TransportError::Io(e.to_string())))?;
                stream
                    .set_read_timeout(read_timeout)
                    .map_err(|e| ProtocolError::Transport(TransportError::Io(e.to_string())))?;
                Ok(FaultyStream::wire(stream, schedule(attempt)))
            };
        run_stream_query_with_resume(&mut connect, client, &selection(), cfg, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_named_rejects_unknown_scenarios() {
        assert!(run_named("nope", 1, SimEngine::Threaded, None).is_err());
    }

    #[test]
    fn reproducibility_helper_passes_for_a_small_campaign() {
        let report = assert_reproducible("clean_lan", 3, SimEngine::Threaded, Some(4)).unwrap();
        assert!(report.ok(), "{}", report.render());
    }

    #[test]
    fn chaos_fixture_sums_agree() {
        let db = chaos::database();
        let want: u128 = chaos::selection()
            .iter()
            .map(|&i| u128::from(db.values()[i]))
            .sum();
        assert_eq!(chaos::expected_sum(), want);
    }
}
