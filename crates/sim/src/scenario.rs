//! Scenario definitions: named, versioned campaign shapes.
//!
//! A [`Scenario`] fixes everything about a campaign except the seed and
//! the engine: the database, the population mix (how many clients of
//! each [`Behavior`](crate::actor::Behavior) class), the link profiles,
//! partition windows, fault dials, and server limits. `pps sim run
//! --scenario <name> --seed <s>` replays any of them bit-identically.

use std::time::Duration;

use pps_transport::LinkProfile;

/// Which deterministic service-scheduling model drives the simulated
/// server — mirrors the two real runtimes (`ServeEngine`), so campaign
/// findings transfer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SimEngine {
    /// Thread-per-connection model: every frame is serviced the moment
    /// it is reassembled (unbounded virtual workers).
    Threaded,
    /// Reactor model: a bounded worker pool services per-connection
    /// frame queues in arrival order; frames wait when all workers are
    /// busy, exactly like the event orchestrator's job dispatch.
    Event,
}

impl SimEngine {
    /// CLI / repro-string name.
    pub fn name(self) -> &'static str {
        match self {
            SimEngine::Threaded => "threaded",
            SimEngine::Event => "event",
        }
    }

    /// Parses a CLI name.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "threaded" => Some(SimEngine::Threaded),
            "event" => Some(SimEngine::Event),
            _ => None,
        }
    }

    /// Both engines, for matrix runs.
    pub fn all() -> [SimEngine; 2] {
        [SimEngine::Threaded, SimEngine::Event]
    }
}

/// How the population's link profiles are assigned.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LinkMix {
    /// Everyone on the paper's gigabit LAN profile.
    Lan,
    /// Everyone on the paper's 56 Kbps modem profile.
    Modem,
    /// Clients alternate between the two profiles (even ids LAN, odd
    /// ids modem) — the mixed campaign exercises both media at once.
    Alternating,
}

impl LinkMix {
    /// The profile for client `id` under this mix.
    pub fn profile_for(self, id: usize) -> LinkProfile {
        match self {
            LinkMix::Lan => LinkProfile::gigabit_lan(),
            LinkMix::Modem => LinkProfile::modem_56k(),
            LinkMix::Alternating => {
                if id.is_multiple_of(2) {
                    LinkProfile::gigabit_lan()
                } else {
                    LinkProfile::modem_56k()
                }
            }
        }
    }
}

/// A network partition window: clients whose `id % stripe == residue`
/// lose the server between `start` and `end` (virtual time).
#[derive(Clone, Copy, Debug)]
pub struct PartitionWindow {
    /// Window start, virtual time since campaign start.
    pub start: Duration,
    /// Window end.
    pub end: Duration,
    /// Stripe modulus selecting affected clients.
    pub stripe: usize,
    /// Stripe residue selecting affected clients.
    pub residue: usize,
}

impl PartitionWindow {
    /// Whether this window cuts off client `id`.
    pub fn affects(&self, id: usize) -> bool {
        self.stripe > 0 && id % self.stripe == self.residue
    }
}

/// Population mix: counts per behavior class. Classes not exercised by
/// a scenario are zero.
#[derive(Clone, Copy, Debug, Default)]
pub struct Population {
    /// Clean protocol runs, checked against the plaintext oracle.
    pub honest: usize,
    /// Disconnect mid-stream, reconnect, resume from the checkpoint.
    pub churning: usize,
    /// Corrupt frame bytes (magic flips, length inflation, garbage).
    pub byzantine: usize,
    /// Send structurally invalid `Hello` frames.
    pub malformed_hello: usize,
    /// Send geometry-violating `ShardHello` frames.
    pub malformed_shard: usize,
    /// Replay a duplicate batch sequence number.
    pub replay_dup: usize,
    /// Skip a batch sequence number (gap).
    pub replay_gap: usize,
    /// Trickle a handshake byte-by-byte forever.
    pub slow_loris: usize,
}

impl Population {
    /// Total client count.
    pub fn total(&self) -> usize {
        self.honest
            + self.churning
            + self.byzantine
            + self.malformed_hello
            + self.malformed_shard
            + self.replay_dup
            + self.replay_gap
            + self.slow_loris
    }

    /// Scales every class by `target_total / total`, keeping at least
    /// one member of every class that was nonzero (so a small CI
    /// profile still exercises every behavior).
    pub fn scaled_to(&self, target_total: usize) -> Population {
        let total = self.total().max(1);
        let scale = |n: usize| {
            if n == 0 {
                0
            } else {
                (n * target_total / total).max(1)
            }
        };
        Population {
            honest: scale(self.honest),
            churning: scale(self.churning),
            byzantine: scale(self.byzantine),
            malformed_hello: scale(self.malformed_hello),
            malformed_shard: scale(self.malformed_shard),
            replay_dup: scale(self.replay_dup),
            replay_gap: scale(self.replay_gap),
            slow_loris: scale(self.slow_loris),
        }
    }
}

/// A named campaign shape. Fields not listed per-scenario use the
/// defaults in `Scenario::base`.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Registry name (`pps sim run --scenario <name>`).
    pub name: &'static str,
    /// One-line description for `pps sim list`.
    pub about: &'static str,
    /// Client population mix.
    pub population: Population,
    /// Link profile assignment.
    pub links: LinkMix,
    /// Database size (rows). Every client selects a deterministic
    /// subset of these rows.
    pub db_rows: usize,
    /// Indices per `IndexBatch`.
    pub batch_size: usize,
    /// Paillier key width for the campaign key pool (kept small — the
    /// sim measures protocol robustness, not crypto throughput).
    pub key_bits: usize,
    /// Checkpoint TTL for the server's resumption table.
    pub resume_ttl: Duration,
    /// Per-session virtual wall budget (evicts slow-loris flows).
    pub session_deadline: Option<Duration>,
    /// Concurrent-session cap; excess connections are refused and the
    /// client retries with backoff. `None` = unbounded.
    pub max_concurrent: Option<usize>,
    /// Event-engine worker-pool size.
    pub workers: usize,
    /// Partition windows.
    pub partitions: Vec<PartitionWindow>,
    /// Per-send reset probability, parts per million.
    pub drop_per_million: u32,
    /// Propagation jitter ceiling, parts per million of latency.
    pub jitter_per_million: u32,
    /// Number of 3-leg blinded shard groups (each leg queries one
    /// horizontal partition of the database through a shard-gated
    /// server; the oracle recombines the blinded partials).
    pub shard_groups: usize,
}

impl Scenario {
    fn base(name: &'static str, about: &'static str) -> Self {
        Scenario {
            name,
            about,
            population: Population::default(),
            links: LinkMix::Lan,
            db_rows: 24,
            batch_size: 6,
            key_bits: 128,
            resume_ttl: Duration::from_secs(120),
            session_deadline: Some(Duration::from_secs(30)),
            max_concurrent: None,
            workers: 4,
            partitions: Vec::new(),
            drop_per_million: 0,
            jitter_per_million: 0,
            shard_groups: 0,
        }
    }

    /// The full scenario registry, in matrix order.
    pub fn registry() -> Vec<Scenario> {
        vec![
            Scenario {
                population: Population {
                    honest: 64,
                    ..Population::default()
                },
                ..Scenario::base("clean_lan", "clean executions on the gigabit LAN profile")
            },
            Scenario {
                population: Population {
                    honest: 24,
                    ..Population::default()
                },
                links: LinkMix::Modem,
                ..Scenario::base(
                    "clean_modem",
                    "clean executions on the 56 Kbps modem profile",
                )
            },
            Scenario {
                population: Population {
                    honest: 40,
                    churning: 24,
                    ..Population::default()
                },
                ..Scenario::base(
                    "churn",
                    "clients disconnect mid-stream and resume from checkpoints",
                )
            },
            Scenario {
                population: Population {
                    honest: 32,
                    byzantine: 12,
                    malformed_hello: 8,
                    malformed_shard: 6,
                    replay_dup: 6,
                    replay_gap: 6,
                    ..Population::default()
                },
                ..Scenario::base(
                    "byzantine",
                    "frame corruption, malformed handshakes, and seq replays",
                )
            },
            Scenario {
                population: Population {
                    honest: 24,
                    slow_loris: 12,
                    ..Population::default()
                },
                session_deadline: Some(Duration::from_secs(2)),
                max_concurrent: Some(16),
                ..Scenario::base(
                    "slow_loris",
                    "byte-trickling floods against the session deadline",
                )
            },
            Scenario {
                population: Population {
                    honest: 48,
                    ..Population::default()
                },
                partitions: vec![PartitionWindow {
                    start: Duration::from_millis(200),
                    end: Duration::from_secs(3),
                    stripe: 2,
                    residue: 0,
                }],
                ..Scenario::base(
                    "partition",
                    "half the population loses the server, retries, resumes",
                )
            },
            Scenario {
                shard_groups: 4,
                ..Scenario::base(
                    "shard",
                    "3-leg blinded shard groups against shard-gated servers",
                )
            },
            Scenario {
                population: Population {
                    honest: 1200,
                    churning: 320,
                    byzantine: 160,
                    malformed_hello: 80,
                    malformed_shard: 40,
                    replay_dup: 60,
                    replay_gap: 60,
                    slow_loris: 80,
                },
                links: LinkMix::Alternating,
                db_rows: 12,
                batch_size: 4,
                session_deadline: Some(Duration::from_secs(20)),
                max_concurrent: Some(512),
                partitions: vec![PartitionWindow {
                    start: Duration::from_secs(1),
                    end: Duration::from_secs(6),
                    stripe: 5,
                    residue: 2,
                }],
                jitter_per_million: 100_000,
                ..Scenario::base(
                    "mixed",
                    "2k clients: churn + byzantine + partition on both link profiles",
                )
            },
        ]
    }

    /// Looks a scenario up by name.
    pub fn by_name(name: &str) -> Option<Scenario> {
        Scenario::registry().into_iter().find(|s| s.name == name)
    }

    /// This scenario with its population scaled to roughly
    /// `target_total` clients (the CI matrix's small profile).
    #[must_use]
    pub fn with_population(mut self, target_total: usize) -> Self {
        self.population = self.population.scaled_to(target_total);
        self
    }

    /// The database values: deterministic, small, and distinct enough
    /// that wrong sums cannot collide by accident.
    pub fn db_values(&self) -> Vec<u64> {
        (0..self.db_rows).map(|i| (i as u64) * 7 + 3).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_resolvable() {
        let reg = Scenario::registry();
        for s in &reg {
            assert_eq!(Scenario::by_name(s.name).unwrap().name, s.name);
        }
        let mut names: Vec<_> = reg.iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), reg.len());
    }

    #[test]
    fn scaling_keeps_every_nonzero_class() {
        let mixed = Scenario::by_name("mixed").unwrap();
        let small = mixed.clone().with_population(100);
        assert!(small.population.total() <= 120);
        assert!(small.population.byzantine >= 1);
        assert!(small.population.slow_loris >= 1);
        assert!(small.population.replay_gap >= 1);
    }

    #[test]
    fn partition_windows_stripe_the_population() {
        let w = PartitionWindow {
            start: Duration::ZERO,
            end: Duration::from_secs(1),
            stripe: 2,
            residue: 0,
        };
        assert!(w.affects(0));
        assert!(!w.affects(1));
    }
}
