//! The simulated network: point-to-point byte pipes with the paper's
//! link models, plus the failure modes the campaigns inject.
//!
//! Each connection is a pair of directed byte channels. A send computes
//! its delivery time analytically from the connection's [`LinkProfile`]
//! — `latency + (bytes + overhead) · 8 / bandwidth` — serialized behind
//! whatever the sender already has in flight on that direction
//! (`busy_until`), exactly the queueing a real NIC imposes. Optional
//! seeded jitter perturbs propagation without ever reordering bytes
//! *within* a connection (TCP semantics: a connection's byte stream is
//! ordered or dead), while chunks on *different* connections overtake
//! each other freely, which is where campaign-level reordering comes
//! from. A seeded drop roll models loss that exhausts retransmission:
//! the connection is reset, both peers observe a hangup.
//!
//! Partitions are windows during which a set of clients cannot reach
//! the server: established connections are reset at partition start and
//! connection attempts fail until the window closes.

use std::collections::BTreeMap;
use std::time::Duration;

use pps_transport::LinkProfile;

/// Connection identifier, allocated sequentially by the runner.
pub type ConnId = u64;

/// Direction of a byte chunk on a connection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Dir {
    /// Client → server.
    ToServer,
    /// Server → client.
    ToClient,
}

impl Dir {
    /// Short label used in trace lines (`cs` / `sc`).
    pub fn label(self) -> &'static str {
        match self {
            Dir::ToServer => "cs",
            Dir::ToClient => "sc",
        }
    }
}

/// Why the network reset a connection on its own.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ResetCause {
    /// A seeded drop roll exhausted retransmission.
    Drop,
    /// The connection straddled a partition window.
    Partition,
}

/// One live connection's link state.
struct Link {
    profile: LinkProfile,
    /// Per-direction serialization horizon, ns since t0.
    busy_until: [u64; 2],
    /// Per-direction last delivery time — deliveries on one connection
    /// never reorder (TCP), so each is clamped monotone.
    last_delivery: [u64; 2],
    open: bool,
}

/// The simulated network. Owns per-connection link state; the runner
/// owns the event queue, so every mutation returns the delivery time
/// for the runner to schedule.
pub struct SimNet {
    links: BTreeMap<ConnId, Link>,
    next_conn: ConnId,
    /// Deterministic jitter/drop stream (SplitMix64).
    rng_state: u64,
    /// Probability (×1e6) that one send resets the connection.
    drop_per_million: u32,
    /// Max extra propagation jitter, as a fraction (×1e6) of latency.
    jitter_per_million: u32,
    /// Total chunks delivered / dropped, for the report.
    pub chunks_sent: u64,
    /// Connections reset by drop rolls.
    pub resets: u64,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn as_ns(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

impl SimNet {
    /// A network with the given fault dials, seeded for reproducibility.
    pub fn new(seed: u64, drop_per_million: u32, jitter_per_million: u32) -> Self {
        SimNet {
            links: BTreeMap::new(),
            next_conn: 1,
            rng_state: seed ^ 0xD1B5_4A32_D192_ED03,
            drop_per_million,
            jitter_per_million,
            chunks_sent: 0,
            resets: 0,
        }
    }

    /// Opens a connection with `profile`; returns its id and the
    /// one-way connect latency (the runner schedules the server-side
    /// accept one latency later, and the client's first send slot one
    /// round trip later).
    pub fn connect(&mut self, profile: LinkProfile, now_ns: u64) -> (ConnId, u64) {
        let id = self.next_conn;
        self.next_conn += 1;
        let lat = as_ns(profile.latency);
        self.links.insert(
            id,
            Link {
                profile,
                busy_until: [now_ns, now_ns],
                last_delivery: [now_ns, now_ns],
                open: true,
            },
        );
        (id, lat)
    }

    /// Whether the connection still exists and is open.
    pub fn is_open(&self, conn: ConnId) -> bool {
        self.links.get(&conn).is_some_and(|l| l.open)
    }

    /// Computes the delivery time for `len` bytes on `conn` in `dir`,
    /// advancing the link's serialization horizon. Returns `Ok(at_ns)`
    /// to schedule the delivery, or `Err(cause)` when the network
    /// resets the connection instead (seeded drop); the caller closes
    /// both endpoints.
    ///
    /// # Errors
    /// [`ResetCause::Drop`] when the seeded drop roll fires.
    pub fn send(
        &mut self,
        conn: ConnId,
        dir: Dir,
        len: usize,
        now_ns: u64,
    ) -> Result<u64, ResetCause> {
        let drop_roll = self.drop_per_million > 0
            && (splitmix64(&mut self.rng_state) % 1_000_000) < u64::from(self.drop_per_million);
        let jitter_roll = if self.jitter_per_million > 0 {
            splitmix64(&mut self.rng_state) % u64::from(self.jitter_per_million)
        } else {
            0
        };
        let Some(link) = self.links.get_mut(&conn) else {
            return Err(ResetCause::Drop);
        };
        if !link.open {
            return Err(ResetCause::Drop);
        }
        if drop_roll {
            link.open = false;
            self.resets += 1;
            return Err(ResetCause::Drop);
        }
        let d = dir as usize;
        let start = now_ns.max(link.busy_until[d]);
        let serialize = as_ns(
            link.profile
                .serialization_time(len + link.profile.per_message_overhead_bytes),
        );
        link.busy_until[d] = start.saturating_add(serialize);
        let mut latency = as_ns(link.profile.latency);
        if jitter_roll > 0 {
            // Multiply before dividing: sub-millisecond latencies would
            // otherwise truncate to zero jitter. Max product is
            // ~1.5e8 ns × 1e6 ppm, well inside u64.
            latency += latency * jitter_roll / 1_000_000;
        }
        let at = link.busy_until[d].saturating_add(latency);
        // TCP ordering: a jittered chunk may not overtake its
        // predecessor on the same connection+direction.
        let at = at.max(link.last_delivery[d]);
        link.last_delivery[d] = at;
        self.chunks_sent += 1;
        Ok(at)
    }

    /// Closes `conn`. Chunks already scheduled still arrive when
    /// `abrupt` is false (kernel buffers drain after a clean FIN); an
    /// abrupt close (RST, partition) voids them — the runner checks
    /// [`SimNet::delivery_allowed`] at delivery time.
    pub fn close(&mut self, conn: ConnId, abrupt: bool) {
        if abrupt {
            if let Some(l) = self.links.get_mut(&conn) {
                l.open = false;
            }
        } else {
            // Clean close: drop the link record only once both sides
            // are done; keeping `open = true` until removal lets
            // in-flight chunks land. The runner removes endpoints
            // itself, so just forget the link.
            self.links.remove(&conn);
        }
    }

    /// Whether a chunk scheduled earlier may still be delivered.
    pub fn delivery_allowed(&self, conn: ConnId) -> bool {
        // Cleanly-closed links were removed: their in-flight chunks
        // were already scheduled and should land, so unknown ids are
        // allowed; abruptly-closed links are present and closed.
        self.links.get(&conn).is_none_or(|l| l.open)
    }

    /// Resets `conn` for a partition: abrupt, in-flight chunks void.
    pub fn partition_reset(&mut self, conn: ConnId) {
        if let Some(l) = self.links.get_mut(&conn) {
            if l.open {
                l.open = false;
                self.resets += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lan() -> LinkProfile {
        LinkProfile::gigabit_lan()
    }

    #[test]
    fn serialization_queues_behind_prior_sends() {
        let mut net = SimNet::new(1, 0, 0);
        let (c, _) = net.connect(lan(), 0);
        let a = net.send(c, Dir::ToServer, 1000, 0).unwrap();
        let b = net.send(c, Dir::ToServer, 1000, 0).unwrap();
        assert!(b > a, "second chunk serializes behind the first");
        // Opposite direction has its own horizon.
        let r = net.send(c, Dir::ToClient, 1000, 0).unwrap();
        assert_eq!(r, a);
    }

    #[test]
    fn same_connection_never_reorders() {
        let mut net = SimNet::new(7, 0, 500_000);
        let (c, _) = net.connect(lan(), 0);
        let mut last = 0;
        for _ in 0..64 {
            let at = net.send(c, Dir::ToServer, 64, 0).unwrap();
            assert!(at >= last, "delivery times are monotone per direction");
            last = at;
        }
    }

    #[test]
    fn drops_reset_the_connection() {
        let mut net = SimNet::new(3, 1_000_000, 0);
        let (c, _) = net.connect(lan(), 0);
        assert_eq!(net.send(c, Dir::ToServer, 10, 0), Err(ResetCause::Drop));
        assert!(!net.is_open(c));
        assert!(!net.delivery_allowed(c));
    }

    #[test]
    fn modem_is_slower_than_lan() {
        let mut net = SimNet::new(1, 0, 0);
        let (lan_conn, _) = net.connect(lan(), 0);
        let (modem_conn, _) = net.connect(LinkProfile::modem_56k(), 0);
        let a = net.send(lan_conn, Dir::ToServer, 4096, 0).unwrap();
        let b = net.send(modem_conn, Dir::ToServer, 4096, 0).unwrap();
        assert!(b > 100 * a, "56 Kbps dwarfs gigabit for the same bytes");
    }

    #[test]
    fn deterministic_given_a_seed() {
        let run = |seed| {
            let mut net = SimNet::new(seed, 1000, 250_000);
            let (c, _) = net.connect(lan(), 0);
            (0..32)
                .map(|i| net.send(c, Dir::ToServer, 100 + i, i as u64 * 10))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }
}
