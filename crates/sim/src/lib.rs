//! # pps-sim — deterministic population-scale simulation harness
//!
//! A seed-reproducible discrete-event simulator that drives the *real*
//! protocol state machines ([`SessionFlow`](pps_protocol::SessionFlow)
//! on the server side, real frame encoders on the client side) through
//! a simulated network, at populations far beyond what socket-based
//! integration tests can afford.
//!
//! The pieces:
//!
//! * [`scenario`] — named campaign shapes: population mixes, the
//!   paper's two link profiles (gigabit LAN, 56 Kbps modem), partition
//!   windows, fault dials, and server limits;
//! * [`actor`] — client behavior classes (honest, churning, byzantine
//!   frame-corrupting, malformed handshakes, seq replayers, slow-loris,
//!   blinded shard legs) and the deterministic script builder;
//! * [`net`] — the in-memory network: per-link latency/bandwidth
//!   serialization, seeded jitter and drops, partitions;
//! * [`run`] — the discrete-event runner itself: a virtual clock, an
//!   event heap ordered by `(time, seq)`, and two service-scheduling
//!   engines mirroring the real runtimes;
//! * [`oracle`] — the invariant oracle that renders the campaign
//!   verdict (sum correctness, adversary containment, slot/checkpoint
//!   hygiene, shard-blinding discipline);
//! * [`harness`] — shared helpers for tests and CI, including the
//!   repro entry point behind `pps sim run --scenario <s> --seed <n>`.
//!
//! Everything on the simulated path is deterministic: all randomness
//! flows from the campaign seed, time is a [`VirtualClock`]
//! (no real `Instant::now()` or `thread::sleep` is consulted), and two
//! runs with the same `(scenario, seed, engine)` produce bit-identical
//! event traces and metrics snapshots — which is what makes every
//! oracle violation a one-command repro.
//!
//! [`VirtualClock`]: pps_obs::VirtualClock

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod actor;
pub mod harness;
pub mod net;
pub mod oracle;
pub mod run;
pub mod scenario;

pub use actor::Behavior;
pub use net::SimNet;
pub use oracle::{Oracle, Violation};
pub use run::{run_campaign, CampaignReport};
pub use scenario::{LinkMix, Population, Scenario, SimEngine};

/// Simulator-level error (unknown scenario, campaign setup failure).
#[derive(Clone, Debug)]
pub struct SimError(pub String);

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sim error: {}", self.0)
    }
}

impl std::error::Error for SimError {}
