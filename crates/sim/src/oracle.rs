//! The invariant oracle: accumulates observations during a campaign and
//! renders a verdict when the event queue drains.
//!
//! Checked invariants:
//!
//! 1. **Correctness** — every honest-class client completes, and its
//!    decrypted sum equals the plaintext selected sum.
//! 2. **Containment** — no adversarial client ever obtains a sum.
//! 3. **Slot hygiene** — admission slots and the `pps_sessions_active`
//!    gauge return to zero once the population drains.
//! 4. **Checkpoint hygiene** — after virtual time passes the resumption
//!    TTL, no table still holds a checkpoint (nothing leaks past TTL).
//! 5. **Blinding discipline** — a shard leg's session reaches
//!    completion only with a blinding installed, and each group's
//!    partials recombine (mod `M`) to the exact whole-table sum.
//!
//! Every violation carries the one-command repro string so a CI failure
//! is immediately replayable.

use pps_bignum::Uint;

use crate::actor::Behavior;

/// One invariant violation.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Which invariant broke (short slug, e.g. `wrong-sum`).
    pub invariant: &'static str,
    /// Human-readable specifics.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.invariant, self.detail)
    }
}

/// Per-client outcome fed to the oracle as the campaign runs.
struct ClientOutcome {
    behavior: Behavior,
    expected: Option<u64>,
    completed_sum: Option<u64>,
    gave_up: bool,
}

/// Per-shard-group accumulation.
struct GroupOutcome {
    expected: u64,
    partials: Vec<Option<Uint>>,
    unblinded_completions: u32,
}

/// The campaign's invariant oracle.
pub struct Oracle {
    clients: Vec<ClientOutcome>,
    groups: Vec<GroupOutcome>,
    /// Blinding modulus `M = 2^m_bits` for shard recombination.
    m: Uint,
}

impl Oracle {
    /// An oracle for `n_clients` clients and `n_groups` shard groups of
    /// `legs_per_group` legs, recombining mod `2^m_bits`.
    pub fn new(n_groups: usize, legs_per_group: usize, group_expected: u64, m_bits: u32) -> Self {
        Oracle {
            clients: Vec::new(),
            groups: (0..n_groups)
                .map(|_| GroupOutcome {
                    expected: group_expected,
                    partials: vec![None; legs_per_group],
                    unblinded_completions: 0,
                })
                .collect(),
            m: Uint::one().shl(m_bits as usize),
        }
    }

    /// Registers client `id` (ids must be registered in order, 0..n).
    pub fn register(&mut self, behavior: Behavior, expected: Option<u64>) {
        self.clients.push(ClientOutcome {
            behavior,
            expected,
            completed_sum: None,
            gave_up: false,
        });
    }

    /// Client `id` decrypted a product (shard legs report through
    /// [`Oracle::shard_partial`] instead).
    pub fn completed(&mut self, id: usize, sum: u64) {
        self.clients[id].completed_sum = Some(sum);
    }

    /// Client `id` exhausted its retries without completing.
    pub fn gave_up(&mut self, id: usize) {
        self.clients[id].gave_up = true;
    }

    /// Shard leg `(group, leg)` (client `id`) decrypted its blinded
    /// partial.
    pub fn shard_partial(&mut self, id: usize, group: usize, leg: usize, partial: Uint) {
        self.clients[id].completed_sum = Some(0); // marks completion
        self.groups[group].partials[leg] = Some(partial);
    }

    /// A shard-gated server session completed *without* a blinding —
    /// the invariant the gate exists to prevent.
    pub fn unblinded_completion(&mut self, group: usize) {
        if let Some(g) = self.groups.get_mut(group) {
            g.unblinded_completions += 1;
        }
    }

    /// Renders the verdict. `sessions_active` is the drained gauge
    /// value, `open_conns` the count of server connections never
    /// closed, and `leaked_checkpoints` the total checkpoints still
    /// stored after virtual time advanced past the TTL.
    pub fn verdict(
        &self,
        sessions_active: i64,
        open_conns: usize,
        leaked_checkpoints: usize,
    ) -> Vec<Violation> {
        let mut out = Vec::new();
        for (id, c) in self.clients.iter().enumerate() {
            let label = c.behavior.label();
            if c.behavior.is_adversarial() {
                if c.completed_sum.is_some() {
                    out.push(Violation {
                        invariant: "adversarial-completion",
                        detail: format!("client {id} ({label}) obtained a sum"),
                    });
                }
                continue;
            }
            match (c.completed_sum, c.expected) {
                (Some(got), Some(want)) if got != want => out.push(Violation {
                    invariant: "wrong-sum",
                    detail: format!("client {id} ({label}) decrypted {got}, expected {want}"),
                }),
                (None, _) => out.push(Violation {
                    invariant: "honest-incomplete",
                    detail: format!(
                        "client {id} ({label}) never completed{}",
                        if c.gave_up {
                            " (retries exhausted)"
                        } else {
                            ""
                        }
                    ),
                }),
                _ => {}
            }
        }
        if sessions_active != 0 {
            out.push(Violation {
                invariant: "sessions-active-leak",
                detail: format!("pps_sessions_active = {sessions_active} after drain"),
            });
        }
        if open_conns != 0 {
            out.push(Violation {
                invariant: "conn-leak",
                detail: format!("{open_conns} server connection(s) never closed"),
            });
        }
        if leaked_checkpoints != 0 {
            out.push(Violation {
                invariant: "checkpoint-ttl-leak",
                detail: format!(
                    "{leaked_checkpoints} checkpoint(s) survive past the resumption TTL"
                ),
            });
        }
        for (g, group) in self.groups.iter().enumerate() {
            if group.unblinded_completions > 0 {
                out.push(Violation {
                    invariant: "unblinded-shard-completion",
                    detail: format!(
                        "shard group {g}: {} session(s) completed without a blinding",
                        group.unblinded_completions
                    ),
                });
            }
            let mut acc = Uint::zero();
            let mut missing = 0usize;
            for p in &group.partials {
                match p {
                    Some(p) => {
                        // Partials may exceed M by the unblinded sum;
                        // reduce before the modular accumulation.
                        let r = p.rem_of(&self.m).unwrap_or_else(|_| Uint::zero());
                        acc = acc.mod_add(&r, &self.m).unwrap_or_else(|_| Uint::zero());
                    }
                    None => missing += 1,
                }
            }
            if missing > 0 {
                out.push(Violation {
                    invariant: "shard-leg-incomplete",
                    detail: format!("shard group {g}: {missing} leg(s) never delivered a partial"),
                });
            } else if acc.to_u64() != Some(group.expected) {
                out.push(Violation {
                    invariant: "shard-recombine-mismatch",
                    detail: format!(
                        "shard group {g}: recombined {:?}, expected {}",
                        acc.to_u64(),
                        group.expected
                    ),
                });
            }
        }
        out
    }

    /// How many honest-class clients completed (for the report).
    pub fn completions(&self) -> u64 {
        self.clients
            .iter()
            .filter(|c| !c.behavior.is_adversarial() && c.completed_sum.is_some())
            .count() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_campaign_has_no_violations() {
        let mut o = Oracle::new(0, 0, 0, 62);
        o.register(Behavior::Honest, Some(42));
        o.register(Behavior::Byzantine, None);
        o.completed(0, 42);
        assert!(o.verdict(0, 0, 0).is_empty());
        assert_eq!(o.completions(), 1);
    }

    #[test]
    fn wrong_sum_and_leaks_are_flagged() {
        let mut o = Oracle::new(0, 0, 0, 62);
        o.register(Behavior::Honest, Some(42));
        o.completed(0, 41);
        let v = o.verdict(2, 1, 3);
        let slugs: Vec<_> = v.iter().map(|v| v.invariant).collect();
        assert!(slugs.contains(&"wrong-sum"));
        assert!(slugs.contains(&"sessions-active-leak"));
        assert!(slugs.contains(&"conn-leak"));
        assert!(slugs.contains(&"checkpoint-ttl-leak"));
    }

    #[test]
    fn adversarial_completion_is_a_violation() {
        let mut o = Oracle::new(0, 0, 0, 62);
        o.register(Behavior::ReplayDup, None);
        o.completed(0, 7);
        assert_eq!(o.verdict(0, 0, 0)[0].invariant, "adversarial-completion");
    }

    #[test]
    fn shard_partials_recombine_mod_m() {
        // Two legs, M = 2^8: partials (sum0 + r, sum1 + M - r) ≡ total.
        let mut o = Oracle::new(1, 2, 30, 8);
        o.register(Behavior::ShardLeg { group: 0, leg: 0 }, None);
        o.register(Behavior::ShardLeg { group: 0, leg: 1 }, None);
        o.shard_partial(0, 0, 0, Uint::from_u64(10 + 200));
        o.shard_partial(1, 0, 1, Uint::from_u64(20 + 56));
        assert!(o.verdict(0, 0, 0).is_empty());
    }

    #[test]
    fn shard_mismatch_and_unblinded_are_flagged() {
        let mut o = Oracle::new(1, 1, 30, 8);
        o.register(Behavior::ShardLeg { group: 0, leg: 0 }, None);
        o.shard_partial(0, 0, 0, Uint::from_u64(29));
        o.unblinded_completion(0);
        let slugs: Vec<_> = o.verdict(0, 0, 0).iter().map(|v| v.invariant).collect();
        assert!(slugs.contains(&"shard-recombine-mismatch"));
        assert!(slugs.contains(&"unblinded-shard-completion"));
    }
}
