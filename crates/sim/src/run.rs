//! The discrete-event campaign runner.
//!
//! One `BinaryHeap` of timestamped events, one [`VirtualClock`] shared
//! with every [`SessionTable`] and deadline, real [`SessionFlow`] state
//! machines on the server side, and scripted client actors on the other
//! end of a byte-accurate [`SimNet`]. Nothing on the simulated path
//! reads the wall clock or sleeps: a 2 000-client campaign that spans
//! minutes of virtual time runs in real milliseconds, and the same seed
//! replays the same event trace bit-for-bit — the trace hash and
//! metrics snapshot in the [`CampaignReport`] are the reproducibility
//! witnesses CI compares.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, VecDeque};
use std::sync::Arc;
use std::time::Duration;

use bytes::{Bytes, BytesMut};
use pps_obs::{names, Counter, Gauge, Registry, VirtualClock};
use pps_protocol::messages::{HelloAck, MsgType, Resume, ResumeAck};
use pps_protocol::{
    Database, FoldStrategy, ResumptionConfig, SessionFlow, SessionTable, SumClient,
};
use pps_transport::{Frame, LinkProfile};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

use crate::actor::{build_script, prepend_shard_hello, Behavior};
use crate::net::{ConnId, Dir, SimNet};
use crate::oracle::{Oracle, Violation};
use crate::scenario::{Scenario, SimEngine};
use crate::SimError;

/// Retries an honest client spends before giving up.
const MAX_RETRIES: u32 = 8;
/// First retry backoff; doubles per attempt, capped at [`BACKOFF_CAP`].
const BACKOFF_BASE: Duration = Duration::from_millis(50);
/// Retry backoff ceiling.
const BACKOFF_CAP: Duration = Duration::from_secs(1);
/// Gap between a churner's scripted kill and its resume attempt.
const CHURN_PAUSE: Duration = Duration::from_millis(200);
/// Interval between slow-loris bytes.
const LORIS_TICK: Duration = Duration::from_millis(250);
/// Legs per blinded shard group.
pub const SHARD_LEGS: usize = 3;
/// Shared client keypairs (key generation dominates setup otherwise).
const KEY_POOL: usize = 4;

fn ns(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// Per-frame virtual service time on the event engine's worker pool.
fn service_ns(frame_len: usize) -> u64 {
    20_000 + frame_len as u64 * 100
}

/// What a scheduled client wake-up does.
#[derive(Debug)]
enum Wake {
    /// Reconnect (fresh or resume).
    Retry,
    /// Churner: abruptly drop the current connection.
    Kill,
    /// Slow loris: emit the next single byte.
    Trickle,
}

/// The event alphabet.
#[derive(Debug)]
enum Ev {
    /// Client begins its first connection.
    Start { client: usize },
    /// The server decides admission for a connection.
    Accept { conn: ConnId },
    /// A byte chunk reaches an endpoint.
    Deliver { conn: ConnId, dir: Dir, data: Bytes },
    /// An endpoint observes the peer is gone.
    Hangup { conn: ConnId, at_server: bool },
    /// A client-side timer.
    Wake { client: usize, what: Wake },
    /// Session-deadline sweep for one connection.
    Deadline { conn: ConnId },
    /// The event engine finishes servicing one frame.
    JobDone { conn: ConnId },
    /// A partition window opens or closes.
    Partition { window: usize, begin: bool },
}

struct Scheduled {
    t: u64,
    seq: u64,
    ev: Ev,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.t == other.t && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.t, self.seq).cmp(&(other.t, other.seq))
    }
}

/// One campaign client.
struct ClientState {
    behavior: Behavior,
    key: usize,
    profile: LinkProfile,
    frames: Vec<Bytes>,
    kill_after: Option<usize>,
    kill_defers: u32,
    rng: StdRng,
    conn: Option<ConnId>,
    ticket: Option<u64>,
    inbox: BytesMut,
    attempts: u32,
    done: bool,
    loris_sent: usize,
    server: usize,
}

/// One accepted server-side connection.
struct ServerConn<'a> {
    flow: SessionFlow<'a>,
    inbox: BytesMut,
    queue: VecDeque<Frame>,
    busy: bool,
    queued_ready: bool,
    client: usize,
    server: usize,
    closed: bool,
}

/// The campaign's metric set, kept on a real [`Registry`] so the gauge
/// under test is the production `pps_sessions_active` metric.
struct SimMetrics {
    _registry: Registry,
    active: Arc<Gauge>,
    completions: Arc<Counter>,
    resumes: Arc<Counter>,
    protocol_errors: Arc<Counter>,
    evictions: Arc<Counter>,
    refused: Arc<Counter>,
    retries: Arc<Counter>,
}

impl SimMetrics {
    fn new() -> Self {
        let registry = Registry::new();
        SimMetrics {
            active: registry.gauge(names::SESSIONS_ACTIVE, "concurrently active sessions"),
            completions: registry.counter("pps_sim_completions_total", "honest completions"),
            resumes: registry.counter("pps_sim_resumes_total", "granted resumes"),
            protocol_errors: registry.counter(
                "pps_sim_protocol_errors_total",
                "rejected protocol violations",
            ),
            evictions: registry.counter("pps_sim_evictions_total", "deadline evictions"),
            refused: registry.counter("pps_sim_refused_total", "admission refusals"),
            retries: registry.counter("pps_sim_retries_total", "client reconnect attempts"),
            _registry: registry,
        }
    }

    /// Deterministic `name value` lines, sorted by name — the
    /// reproducibility witness alongside the trace hash.
    fn snapshot(&self, chunks: u64, resets: u64) -> String {
        let mut lines = vec![
            format!("{} {}", names::SESSIONS_ACTIVE, self.active.get()),
            format!("pps_sim_chunks_total {chunks}"),
            format!("pps_sim_completions_total {}", self.completions.get()),
            format!("pps_sim_evictions_total {}", self.evictions.get()),
            format!(
                "pps_sim_protocol_errors_total {}",
                self.protocol_errors.get()
            ),
            format!("pps_sim_refused_total {}", self.refused.get()),
            format!("pps_sim_resets_total {resets}"),
            format!("pps_sim_resumes_total {}", self.resumes.get()),
            format!("pps_sim_retries_total {}", self.retries.get()),
        ];
        lines.sort();
        lines.join("\n")
    }
}

/// The outcome of one campaign.
#[derive(Clone, Debug)]
pub struct CampaignReport {
    /// Scenario name.
    pub scenario: String,
    /// Campaign seed.
    pub seed: u64,
    /// Engine the server ran under.
    pub engine: SimEngine,
    /// Total clients simulated (including shard legs).
    pub population: usize,
    /// Events processed.
    pub events: u64,
    /// Virtual time the campaign spanned.
    pub virtual_elapsed: Duration,
    /// Honest-class completions.
    pub completions: u64,
    /// FNV-1a hash over the full event trace — identical across runs of
    /// the same (scenario, seed, engine).
    pub trace_hash: u64,
    /// Sorted `name value` metric lines at drain time.
    pub metrics_snapshot: String,
    /// Invariant violations (empty = campaign passed).
    pub violations: Vec<Violation>,
}

impl CampaignReport {
    /// Whether every invariant held.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// The one-command repro for this exact campaign.
    pub fn repro(&self) -> String {
        format!(
            "pps sim run --scenario {} --seed {} --engine {}",
            self.scenario,
            self.seed,
            self.engine.name()
        )
    }

    /// Human-readable multi-line summary (CLI / CI output).
    pub fn render(&self) -> String {
        let mut out = format!(
            "scenario {} seed {} engine {}: {} clients, {} events, {:?} virtual, \
             {} completions, trace {:016x}\n",
            self.scenario,
            self.seed,
            self.engine.name(),
            self.population,
            self.events,
            self.virtual_elapsed,
            self.completions,
            self.trace_hash,
        );
        if self.ok() {
            out.push_str("oracle: all invariants held\n");
        } else {
            for v in &self.violations {
                out.push_str(&format!("oracle VIOLATION {v}\n"));
            }
            out.push_str(&format!("reproduce with: {}\n", self.repro()));
        }
        out
    }
}

/// Runs one campaign to completion and renders the oracle's verdict.
///
/// # Errors
/// Scenario-construction failures (bad database, key generation);
/// in-campaign anomalies are oracle violations, not errors.
pub fn run_campaign(
    scenario: &Scenario,
    seed: u64,
    engine: SimEngine,
) -> Result<CampaignReport, SimError> {
    let clock = Arc::new(VirtualClock::new());
    let mut setup_rng = StdRng::seed_from_u64(seed ^ 0x5EED_CAFE_F00D_D00D);

    let pool: Vec<SumClient> = (0..KEY_POOL)
        .map(|_| SumClient::generate(scenario.key_bits, &mut setup_rng))
        .collect::<Result<_, _>>()
        .map_err(|e| SimError(format!("keygen: {e}")))?;
    let m_bits = (pool[0].keypair().public.key_bits() - 2) as u32;

    let values = scenario.db_values();
    let total_sum: u64 = values.iter().sum();
    let mut dbs =
        vec![Database::new(values.clone()).map_err(|e| SimError(format!("database: {e}")))?];
    if scenario.shard_groups > 0 {
        for part in values.chunks(values.len().div_ceil(SHARD_LEGS)) {
            dbs.push(Database::new(part.to_vec()).map_err(|e| SimError(format!("shard db: {e}")))?);
        }
    }
    let tables: Vec<SessionTable> = (0..dbs.len())
        .map(|i| {
            SessionTable::deterministic(
                ResumptionConfig {
                    capacity: 4096,
                    ttl: scenario.resume_ttl,
                },
                seed ^ (0x7AB1E << 8) ^ i as u64,
                clock.clone(),
            )
        })
        .collect();

    let mut runner = Runner::new(scenario, seed, engine, clock, &dbs, &tables, &pool)?;
    runner.oracle = Oracle::new(scenario.shard_groups, SHARD_LEGS, total_sum, m_bits);
    runner.populate(m_bits)?;
    runner.run();
    Ok(runner.finish())
}

struct Runner<'a> {
    scenario: &'a Scenario,
    seed: u64,
    engine: SimEngine,
    clock: Arc<VirtualClock>,
    dbs: &'a [Database],
    tables: &'a [SessionTable],
    pool: &'a [SumClient],
    net: SimNet,
    heap: BinaryHeap<Reverse<Scheduled>>,
    next_seq: u64,
    now: u64,
    clients: Vec<ClientState>,
    conns: BTreeMap<ConnId, ServerConn<'a>>,
    conn_owner: BTreeMap<ConnId, usize>,
    active: Vec<usize>,
    busy_workers: usize,
    ready: VecDeque<ConnId>,
    metrics: SimMetrics,
    oracle: Oracle,
    hash: u64,
    events: u64,
}

impl<'a> Runner<'a> {
    fn new(
        scenario: &'a Scenario,
        seed: u64,
        engine: SimEngine,
        clock: Arc<VirtualClock>,
        dbs: &'a [Database],
        tables: &'a [SessionTable],
        pool: &'a [SumClient],
    ) -> Result<Self, SimError> {
        Ok(Runner {
            scenario,
            seed,
            engine,
            clock,
            dbs,
            tables,
            pool,
            net: SimNet::new(
                seed ^ 0x0E57_AB1E,
                scenario.drop_per_million,
                scenario.jitter_per_million,
            ),
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: 0,
            clients: Vec::new(),
            conns: BTreeMap::new(),
            conn_owner: BTreeMap::new(),
            active: vec![0; dbs.len()],
            busy_workers: 0,
            ready: VecDeque::new(),
            metrics: SimMetrics::new(),
            oracle: Oracle::new(0, 0, 0, 62),
            hash: 0xCBF2_9CE4_8422_2325,
            events: 0,
        })
    }

    /// Builds every client's script and schedules the staggered starts.
    fn populate(&mut self, m_bits: u32) -> Result<(), SimError> {
        let p = self.scenario.population;
        let mut roster: Vec<Behavior> = Vec::new();
        roster.extend(std::iter::repeat_n(Behavior::Honest, p.honest));
        roster.extend(std::iter::repeat_n(Behavior::Churning, p.churning));
        roster.extend(std::iter::repeat_n(Behavior::Byzantine, p.byzantine));
        roster.extend(std::iter::repeat_n(
            Behavior::MalformedHello,
            p.malformed_hello,
        ));
        roster.extend(std::iter::repeat_n(
            Behavior::MalformedShard,
            p.malformed_shard,
        ));
        roster.extend(std::iter::repeat_n(Behavior::ReplayDup, p.replay_dup));
        roster.extend(std::iter::repeat_n(Behavior::ReplayGap, p.replay_gap));
        roster.extend(std::iter::repeat_n(Behavior::SlowLoris, p.slow_loris));

        for (id, behavior) in roster.iter().copied().enumerate() {
            let mut rng = StdRng::seed_from_u64(
                self.seed
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(id as u64 + 1),
            );
            let key = id % self.pool.len();
            let script = build_script(
                self.scenario,
                behavior,
                &self.pool[key],
                self.dbs[0].values(),
                &mut rng,
            )?;
            self.clients.push(ClientState {
                behavior,
                key,
                profile: self.scenario.links.profile_for(id),
                frames: script.frames,
                kill_after: script.kill_after,
                kill_defers: 0,
                rng,
                conn: None,
                ticket: None,
                inbox: BytesMut::new(),
                attempts: 0,
                done: false,
                loris_sent: 0,
                server: 0,
            });
            self.oracle.register(behavior, script.expected);
        }

        // Shard legs ride behind the main population; every leg of a
        // group shares one keypair so the partials recombine.
        for g in 0..self.scenario.shard_groups {
            let key = g % self.pool.len();
            let mut grng = StdRng::seed_from_u64(
                self.seed
                    .wrapping_mul(0xD192_ED03_A5A9_43B5)
                    .wrapping_add(g as u64 + 1),
            );
            let mut scripts = Vec::with_capacity(SHARD_LEGS);
            for leg in 0..SHARD_LEGS {
                scripts.push(build_script(
                    self.scenario,
                    Behavior::ShardLeg { group: g, leg },
                    &self.pool[key],
                    self.dbs[1 + leg].values(),
                    &mut grng,
                )?);
            }
            {
                let mut refs: Vec<&mut crate::actor::Script> = scripts.iter_mut().collect();
                prepend_shard_hello(&mut refs, m_bits, &mut grng)?;
            }
            for (leg, script) in scripts.into_iter().enumerate() {
                let id = self.clients.len();
                let behavior = Behavior::ShardLeg { group: g, leg };
                self.clients.push(ClientState {
                    behavior,
                    key,
                    profile: self.scenario.links.profile_for(id),
                    frames: script.frames,
                    kill_after: None,
                    kill_defers: 0,
                    rng: StdRng::seed_from_u64(
                        self.seed.wrapping_add((g * SHARD_LEGS + leg) as u64),
                    ),
                    conn: None,
                    ticket: None,
                    inbox: BytesMut::new(),
                    attempts: 0,
                    done: false,
                    loris_sent: 0,
                    server: 1 + leg,
                });
                self.oracle.register(behavior, None);
            }
        }

        // Staggered starts: 250 µs apart, deterministic by id.
        for id in 0..self.clients.len() {
            self.schedule(id as u64 * 250_000, Ev::Start { client: id });
        }
        // Partition windows.
        for (w, win) in self.scenario.partitions.iter().enumerate() {
            self.schedule(
                ns(win.start),
                Ev::Partition {
                    window: w,
                    begin: true,
                },
            );
            self.schedule(
                ns(win.end),
                Ev::Partition {
                    window: w,
                    begin: false,
                },
            );
        }
        Ok(())
    }

    fn schedule(&mut self, t: u64, ev: Ev) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Scheduled { t, seq, ev }));
    }

    /// Appends one line to the FNV-1a trace hash.
    fn note(&mut self, line: &str) {
        for &b in self.now.to_be_bytes().iter() {
            self.hash = (self.hash ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
        }
        for &b in line.as_bytes() {
            self.hash = (self.hash ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
        }
    }

    fn run(&mut self) {
        while let Some(Reverse(ev)) = self.heap.pop() {
            self.now = ev.t;
            self.clock.advance_to(Duration::from_nanos(ev.t));
            self.events += 1;
            self.handle(ev.ev);
        }
    }

    fn handle(&mut self, ev: Ev) {
        match ev {
            Ev::Start { client } => {
                self.note(&format!("start c{client}"));
                self.client_connect(client);
            }
            Ev::Accept { conn } => self.server_accept(conn),
            Ev::Deliver { conn, dir, data } => match dir {
                Dir::ToServer => self.server_deliver(conn, data),
                Dir::ToClient => self.client_deliver(conn, data),
            },
            Ev::Hangup { conn, at_server } => {
                if at_server {
                    if self.conns.get(&conn).is_some_and(|sc| !sc.closed) {
                        self.note(&format!("hangup s{conn}"));
                        self.close_server_conn(conn, true, false);
                    }
                } else if let Some(&id) = self.conn_owner.get(&conn) {
                    if self.clients[id].conn == Some(conn) {
                        self.note(&format!("hangup c{id}"));
                        self.client_handle_hangup(id);
                    }
                }
            }
            Ev::Wake { client, what } => self.client_wake(client, what),
            Ev::Deadline { conn } => {
                let evict = self
                    .conns
                    .get(&conn)
                    .is_some_and(|sc| !sc.closed && !sc.flow.is_done());
                if evict {
                    self.metrics.evictions.inc();
                    self.note(&format!("evict conn{conn}"));
                    self.close_server_conn(conn, false, true);
                }
            }
            Ev::JobDone { conn } => self.job_done(conn),
            Ev::Partition { window, begin } => self.partition_edge(window, begin),
        }
    }

    // ------------------------------------------------------------------
    // Client side
    // ------------------------------------------------------------------

    /// Latest end of any partition window blocking `id` right now.
    fn partition_block(&self, id: usize) -> Option<u64> {
        self.scenario
            .partitions
            .iter()
            .filter(|w| w.affects(id) && ns(w.start) <= self.now && self.now < ns(w.end))
            .map(|w| ns(w.end))
            .max()
    }

    fn client_connect(&mut self, id: usize) {
        if self.clients[id].done {
            return;
        }
        if let Some(end) = self.partition_block(id) {
            // The connect attempt times out into the partition; retry
            // just after the window closes (no attempt is charged — the
            // client never reached the server).
            let jitter = self.clients[id].rng.next_u32() as u64 % 100_000_000;
            self.note(&format!("blocked c{id}"));
            self.schedule(
                end + 1_000_000 + jitter,
                Ev::Wake {
                    client: id,
                    what: Wake::Retry,
                },
            );
            return;
        }
        let profile = self.clients[id].profile.clone();
        let (conn, lat) = self.net.connect(profile.clone(), self.now);
        self.conn_owner.insert(conn, id);
        self.clients[id].conn = Some(conn);
        self.clients[id].inbox = BytesMut::new();
        self.clients[id].loris_sent = 0;
        self.note(&format!("connect c{id} conn{conn}"));
        self.schedule(self.now + lat, Ev::Accept { conn });

        if self.clients[id].ticket.is_some() {
            self.send_resume(id);
            return;
        }
        match self.clients[id].behavior {
            Behavior::SlowLoris => {
                self.schedule(
                    self.now + 1,
                    Ev::Wake {
                        client: id,
                        what: Wake::Trickle,
                    },
                );
            }
            Behavior::Churning if self.clients[id].kill_after.is_some() => {
                let k = self.clients[id].kill_after.unwrap();
                if let Some(last) = self.send_script(id, 0, k) {
                    self.schedule(
                        last + ns(profile.latency),
                        Ev::Wake {
                            client: id,
                            what: Wake::Kill,
                        },
                    );
                }
            }
            _ => {
                let n = self.clients[id].frames.len();
                self.send_script(id, 0, n);
            }
        }
    }

    fn send_resume(&mut self, id: usize) {
        let Some(ticket) = self.clients[id].ticket else {
            return;
        };
        let frame = Resume {
            session_id: ticket,
            next_seq: 0, // the server's checkpoint, not this guess, is authoritative
            trace: None,
        }
        .encode()
        .expect("resume frame encodes");
        self.note(&format!("resume c{id}"));
        self.send_raw(id, frame.encode());
    }

    /// Sends script frames `[from, to)`; returns the last delivery time
    /// unless the connection reset underneath.
    fn send_script(&mut self, id: usize, from: usize, to: usize) -> Option<u64> {
        let mut last = self.now;
        for i in from..to.min(self.clients[id].frames.len()) {
            let data = self.clients[id].frames[i].clone();
            match self.send_raw(id, data) {
                Some(at) => last = at,
                None => return None,
            }
        }
        Some(last)
    }

    fn send_raw(&mut self, id: usize, data: Bytes) -> Option<u64> {
        let conn = self.clients[id].conn?;
        match self.net.send(conn, Dir::ToServer, data.len(), self.now) {
            Ok(at) => {
                self.schedule(
                    at,
                    Ev::Deliver {
                        conn,
                        dir: Dir::ToServer,
                        data,
                    },
                );
                Some(at)
            }
            Err(_) => {
                self.note(&format!("send-reset c{id}"));
                self.client_handle_hangup(id);
                None
            }
        }
    }

    fn client_handle_hangup(&mut self, id: usize) {
        if self.clients[id].done {
            return;
        }
        if let Some(conn) = self.clients[id].conn.take() {
            self.net.close(conn, true);
        }
        self.clients[id].inbox = BytesMut::new();
        self.clients[id].kill_after = None;
        if !self.clients[id].behavior.retries() {
            // One-shot adversarial client: the hangup is the expected
            // outcome; the oracle separately flags any completion.
            self.clients[id].done = true;
            return;
        }
        self.clients[id].attempts += 1;
        self.metrics.retries.inc();
        let attempts = self.clients[id].attempts;
        if attempts > MAX_RETRIES {
            self.note(&format!("give-up c{id}"));
            self.clients[id].done = true;
            self.oracle.gave_up(id);
            return;
        }
        let backoff = BACKOFF_BASE
            .saturating_mul(1 << (attempts - 1).min(10))
            .min(BACKOFF_CAP);
        let jitter = self.clients[id].rng.next_u32() as u64 % 20_000_000;
        self.schedule(
            self.now + ns(backoff) + jitter,
            Ev::Wake {
                client: id,
                what: Wake::Retry,
            },
        );
    }

    fn client_wake(&mut self, id: usize, what: Wake) {
        if self.clients[id].done {
            return;
        }
        match what {
            Wake::Retry => {
                if self.clients[id].conn.is_none() {
                    self.client_connect(id);
                }
            }
            Wake::Kill => {
                let Some(conn) = self.clients[id].conn else {
                    return;
                };
                if self.clients[id].kill_after.is_none() {
                    return;
                }
                if self.clients[id].ticket.is_none() && self.clients[id].kill_defers < 50 {
                    // The HelloAck (and with it the resume ticket) has
                    // not arrived yet; a real client cannot resume what
                    // it was never granted. Defer the kill briefly.
                    self.clients[id].kill_defers += 1;
                    self.schedule(
                        self.now + 2_000_000,
                        Ev::Wake {
                            client: id,
                            what: Wake::Kill,
                        },
                    );
                    return;
                }
                self.note(&format!("kill c{id}"));
                self.clients[id].kill_after = None;
                self.clients[id].conn = None;
                self.clients[id].inbox = BytesMut::new();
                self.net.close(conn, true);
                let lat = ns(self.clients[id].profile.latency);
                self.schedule(
                    self.now + lat,
                    Ev::Hangup {
                        conn,
                        at_server: true,
                    },
                );
                let jitter = self.clients[id].rng.next_u32() as u64 % 50_000_000;
                self.schedule(
                    self.now + ns(CHURN_PAUSE) + jitter,
                    Ev::Wake {
                        client: id,
                        what: Wake::Retry,
                    },
                );
            }
            Wake::Trickle => {
                let Some(conn) = self.clients[id].conn else {
                    return;
                };
                if !self.net.is_open(conn) {
                    return; // the hangup event will handle cleanup
                }
                let frame = self.clients[id].frames[0].clone();
                let pos = self.clients[id].loris_sent;
                if pos >= frame.len() {
                    return; // handshake exhausted; hold the slot silently
                }
                self.clients[id].loris_sent = pos + 1;
                let byte = frame.slice(pos..pos + 1);
                if self.send_raw(id, byte).is_some() {
                    self.schedule(
                        self.now + ns(LORIS_TICK),
                        Ev::Wake {
                            client: id,
                            what: Wake::Trickle,
                        },
                    );
                }
            }
        }
    }

    fn client_deliver(&mut self, conn: ConnId, data: Bytes) {
        if !self.net.delivery_allowed(conn) {
            return;
        }
        let Some(&id) = self.conn_owner.get(&conn) else {
            return;
        };
        if self.clients[id].done || self.clients[id].conn != Some(conn) {
            return;
        }
        self.clients[id].inbox.extend_from_slice(&data);
        loop {
            let decoded = Frame::decode(&mut self.clients[id].inbox);
            match decoded {
                Ok(Some(frame)) => self.client_frame(id, frame),
                Ok(None) => break,
                Err(e) => {
                    // A server must never send bytes the client cannot
                    // decode; surface it as an honest failure so the
                    // oracle flags the run.
                    self.note(&format!("client-decode-error c{id} {e}"));
                    self.clients[id].done = true;
                    self.oracle.gave_up(id);
                    break;
                }
            }
            if self.clients[id].done || self.clients[id].conn != Some(conn) {
                break;
            }
        }
    }

    fn client_frame(&mut self, id: usize, frame: Frame) {
        if frame.msg_type == MsgType::HelloAck as u8 {
            if let Ok(ack) = HelloAck::decode(&frame) {
                self.note(&format!("ticket c{id}"));
                self.clients[id].ticket = Some(ack.session_id);
            }
            return;
        }
        if frame.msg_type == MsgType::ResumeAck as u8 {
            let Ok(ack) = ResumeAck::decode(&frame) else {
                return;
            };
            let n = self.clients[id].frames.len();
            if ack.granted {
                self.note(&format!("resumed c{id} seq{}", ack.next_seq));
                let start = 1 + usize::try_from(ack.next_seq).unwrap_or(usize::MAX);
                if start < n {
                    self.send_script(id, start, n);
                } else {
                    // Nothing left to stream yet no product: fall back
                    // to a fresh query (the error path re-converges).
                    self.clients[id].ticket = None;
                    self.send_script(id, 0, n);
                }
            } else {
                self.note(&format!("resume-denied c{id}"));
                self.clients[id].ticket = None;
                self.send_script(id, 0, n);
            }
            return;
        }
        if frame.msg_type == MsgType::Product as u8 {
            let key = self.clients[id].key;
            match self.pool[key].decrypt_product(&frame) {
                Ok((sum, _)) => {
                    self.note(&format!("done c{id}"));
                    self.metrics.completions.inc();
                    match self.clients[id].behavior {
                        Behavior::ShardLeg { group, leg } => {
                            self.oracle.shard_partial(id, group, leg, sum);
                        }
                        _ => {
                            self.oracle.completed(id, sum.to_u64().unwrap_or(u64::MAX));
                        }
                    }
                    self.clients[id].done = true;
                    if let Some(conn) = self.clients[id].conn.take() {
                        self.net.close(conn, false);
                        let lat = ns(self.clients[id].profile.latency);
                        self.schedule(
                            self.now + lat,
                            Ev::Hangup {
                                conn,
                                at_server: true,
                            },
                        );
                    }
                }
                Err(e) => {
                    self.note(&format!("decrypt-error c{id} {e}"));
                    self.clients[id].done = true;
                    self.oracle.gave_up(id);
                }
            }
        }
        // Anything else (none today) is ignored by clients.
    }

    // ------------------------------------------------------------------
    // Server side
    // ------------------------------------------------------------------

    fn server_accept(&mut self, conn: ConnId) {
        if !self.net.is_open(conn) {
            return; // reset before the accept completed
        }
        let Some(&id) = self.conn_owner.get(&conn) else {
            return;
        };
        let server = self.clients[id].server;
        let cap = self.scenario.max_concurrent.unwrap_or(usize::MAX);
        if self.active[server] >= cap {
            self.metrics.refused.inc();
            self.note(&format!("refuse conn{conn}"));
            self.net.close(conn, true);
            let lat = ns(self.clients[id].profile.latency);
            self.schedule(
                self.now + lat,
                Ev::Hangup {
                    conn,
                    at_server: false,
                },
            );
            return;
        }
        self.note(&format!("accept conn{conn} s{server}"));
        self.active[server] += 1;
        self.metrics.active.add(1);
        self.conns.insert(
            conn,
            ServerConn {
                flow: SessionFlow::new(
                    &self.dbs[server],
                    FoldStrategy::Incremental,
                    None,
                    &self.tables[server],
                    server > 0,
                ),
                inbox: BytesMut::new(),
                queue: VecDeque::new(),
                busy: false,
                queued_ready: false,
                client: id,
                server,
                closed: false,
            },
        );
        if let Some(d) = self.scenario.session_deadline {
            self.schedule(self.now + ns(d), Ev::Deadline { conn });
        }
    }

    fn server_deliver(&mut self, conn: ConnId, data: Bytes) {
        if !self.net.delivery_allowed(conn) {
            return;
        }
        let Some(sc) = self.conns.get_mut(&conn) else {
            return;
        };
        if sc.closed {
            return;
        }
        sc.inbox.extend_from_slice(&data);
        loop {
            let Some(sc) = self.conns.get_mut(&conn) else {
                return;
            };
            if sc.closed {
                return;
            }
            match Frame::decode(&mut sc.inbox) {
                Ok(Some(frame)) => match self.engine {
                    SimEngine::Threaded => self.process_server_frame(conn, frame),
                    SimEngine::Event => {
                        sc.queue.push_back(frame);
                        if !sc.busy && !sc.queued_ready {
                            sc.queued_ready = true;
                            self.ready.push_back(conn);
                        }
                    }
                },
                Ok(None) => break,
                Err(e) => {
                    self.note(&format!("frame-error conn{conn} {e}"));
                    self.metrics.protocol_errors.inc();
                    self.close_server_conn(conn, false, true);
                    return;
                }
            }
        }
        if self.engine == SimEngine::Event {
            self.dispatch_workers();
        }
    }

    fn dispatch_workers(&mut self) {
        while self.busy_workers < self.scenario.workers {
            let Some(conn) = self.ready.pop_front() else {
                return;
            };
            let Some(sc) = self.conns.get_mut(&conn) else {
                continue;
            };
            sc.queued_ready = false;
            if sc.closed || sc.busy || sc.queue.is_empty() {
                continue;
            }
            sc.busy = true;
            self.busy_workers += 1;
            let len = sc.queue.front().map_or(0, Frame::encoded_len);
            self.schedule(self.now + service_ns(len), Ev::JobDone { conn });
        }
    }

    fn job_done(&mut self, conn: ConnId) {
        let Some(sc) = self.conns.get_mut(&conn) else {
            return;
        };
        sc.busy = false;
        self.busy_workers = self.busy_workers.saturating_sub(1);
        if !sc.closed {
            if let Some(frame) = sc.queue.pop_front() {
                self.process_server_frame(conn, frame);
            }
            if let Some(sc) = self.conns.get_mut(&conn) {
                if !sc.closed && !sc.queue.is_empty() && !sc.busy && !sc.queued_ready {
                    sc.queued_ready = true;
                    self.ready.push_back(conn);
                }
            }
        }
        self.dispatch_workers();
    }

    fn process_server_frame(&mut self, conn: ConnId, frame: Frame) {
        let Some(sc) = self.conns.get_mut(&conn) else {
            return;
        };
        if sc.closed {
            return;
        }
        let msg_type = frame.msg_type;
        match sc.flow.on_frame(&frame) {
            Ok(step) => {
                self.note(&format!("frame conn{conn} t{msg_type}"));
                if step.resumed_now {
                    self.metrics.resumes.inc();
                }
                for reply in step.replies {
                    if !self.server_send(conn, &reply) {
                        return;
                    }
                }
                let done = self
                    .conns
                    .get(&conn)
                    .is_some_and(|sc| !sc.closed && sc.flow.is_done());
                if done {
                    let sc = &self.conns[&conn];
                    if sc.server > 0 && !sc.flow.has_blinding() {
                        if let Behavior::ShardLeg { group, .. } = self.clients[sc.client].behavior {
                            self.oracle.unblinded_completion(group);
                        }
                    }
                    self.note(&format!("flow-done conn{conn}"));
                    self.close_server_conn(conn, true, false);
                }
            }
            Err(e) => {
                self.note(&format!("protocol-error conn{conn} t{msg_type} {e}"));
                self.metrics.protocol_errors.inc();
                self.close_server_conn(conn, false, true);
            }
        }
    }

    /// Sends one reply frame to the peer; returns false when the
    /// connection reset underneath (and closes it).
    fn server_send(&mut self, conn: ConnId, frame: &Frame) -> bool {
        let data = frame.encode();
        match self.net.send(conn, Dir::ToClient, data.len(), self.now) {
            Ok(at) => {
                self.schedule(
                    at,
                    Ev::Deliver {
                        conn,
                        dir: Dir::ToClient,
                        data,
                    },
                );
                true
            }
            Err(_) => {
                self.close_server_conn(conn, false, true);
                false
            }
        }
    }

    fn close_server_conn(&mut self, conn: ConnId, clean: bool, notify_client: bool) {
        let Some(sc) = self.conns.get_mut(&conn) else {
            return;
        };
        if sc.closed {
            return;
        }
        sc.closed = true;
        sc.queue.clear();
        let server = sc.server;
        let client = sc.client;
        self.active[server] -= 1;
        self.metrics.active.sub(1);
        self.net.close(conn, !clean);
        if notify_client {
            let lat = ns(self.clients[client].profile.latency);
            self.schedule(
                self.now + lat,
                Ev::Hangup {
                    conn,
                    at_server: false,
                },
            );
        }
    }

    // ------------------------------------------------------------------
    // Partitions and the verdict
    // ------------------------------------------------------------------

    fn partition_edge(&mut self, window: usize, begin: bool) {
        self.note(&format!(
            "partition w{window} {}",
            if begin { "begin" } else { "end" }
        ));
        if !begin {
            return; // blocked clients rescheduled themselves past the end
        }
        let win = self.scenario.partitions[window];
        let cut: Vec<ConnId> = self
            .conns
            .iter()
            .filter(|(_, sc)| !sc.closed && win.affects(sc.client))
            .map(|(&c, _)| c)
            .collect();
        for conn in cut {
            self.net.partition_reset(conn);
            self.note(&format!("partition-reset conn{conn}"));
            self.close_server_conn(conn, false, true);
        }
    }

    fn finish(self) -> CampaignReport {
        let virtual_elapsed = self.clock.elapsed();
        // Advance virtual time past the resumption TTL: every
        // checkpoint must be gone (invariant 4).
        self.clock
            .advance(self.scenario.resume_ttl + Duration::from_secs(61));
        let leaked: usize = self.tables.iter().map(SessionTable::len).sum();
        let open_conns = self.conns.values().filter(|sc| !sc.closed).count();
        let violations = self
            .oracle
            .verdict(self.metrics.active.get(), open_conns, leaked);
        CampaignReport {
            scenario: self.scenario.name.to_string(),
            seed: self.seed,
            engine: self.engine,
            population: self.clients.len(),
            events: self.events,
            virtual_elapsed,
            completions: self.oracle.completions(),
            trace_hash: self.hash,
            metrics_snapshot: self.metrics.snapshot(self.net.chunks_sent, self.net.resets),
            violations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(name: &str, population: usize) -> Scenario {
        Scenario::by_name(name).unwrap().with_population(population)
    }

    #[test]
    fn clean_lan_campaign_passes_on_both_engines() {
        for engine in SimEngine::all() {
            let report = run_campaign(&small("clean_lan", 8), 7, engine).unwrap();
            assert!(report.ok(), "{}", report.render());
            assert_eq!(report.completions, 8);
        }
    }

    #[test]
    fn churn_campaign_exercises_resume() {
        let report = run_campaign(&small("churn", 12), 21, SimEngine::Threaded).unwrap();
        assert!(report.ok(), "{}", report.render());
        assert!(
            report.metrics_snapshot.contains("pps_sim_resumes_total"),
            "snapshot lists resumes"
        );
        let resumes: u64 = report
            .metrics_snapshot
            .lines()
            .find(|l| l.starts_with("pps_sim_resumes_total"))
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|v| v.parse().ok())
            .unwrap();
        assert!(resumes > 0, "churners must resume:\n{}", report.render());
    }

    #[test]
    fn byzantine_campaign_is_contained() {
        let report = run_campaign(&small("byzantine", 16), 3, SimEngine::Threaded).unwrap();
        assert!(report.ok(), "{}", report.render());
        assert!(
            report
                .metrics_snapshot
                .contains("pps_sim_protocol_errors_total"),
            "{}",
            report.metrics_snapshot
        );
    }

    #[test]
    fn same_seed_same_trace_different_seed_different_trace() {
        let a = run_campaign(&small("churn", 8), 99, SimEngine::Event).unwrap();
        let b = run_campaign(&small("churn", 8), 99, SimEngine::Event).unwrap();
        let c = run_campaign(&small("churn", 8), 100, SimEngine::Event).unwrap();
        assert_eq!(a.trace_hash, b.trace_hash);
        assert_eq!(a.metrics_snapshot, b.metrics_snapshot);
        assert_eq!(a.events, b.events);
        assert_ne!(a.trace_hash, c.trace_hash);
    }

    #[test]
    fn shard_campaign_recombines_blinded_partials() {
        let report =
            run_campaign(&Scenario::by_name("shard").unwrap(), 5, SimEngine::Threaded).unwrap();
        assert!(report.ok(), "{}", report.render());
    }

    #[test]
    fn slow_loris_is_evicted_and_slots_recover() {
        let report = run_campaign(&small("slow_loris", 12), 13, SimEngine::Event).unwrap();
        assert!(report.ok(), "{}", report.render());
        assert!(
            report
                .metrics_snapshot
                .lines()
                .any(|l| l.starts_with("pps_sim_evictions_total") && !l.ends_with(" 0")),
            "loris sessions must be evicted:\n{}",
            report.metrics_snapshot
        );
    }

    #[test]
    fn report_repro_string_replays_the_campaign() {
        let report = run_campaign(&small("clean_lan", 4), 42, SimEngine::Threaded).unwrap();
        assert_eq!(
            report.repro(),
            "pps sim run --scenario clean_lan --seed 42 --engine threaded"
        );
    }
}
