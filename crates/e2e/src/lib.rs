//! Integration-test host crate: the tests live in the repository-root
//! `tests/` directory and span every workspace crate. See the `[[test]]`
//! entries in this crate's manifest.
